//! Cross-crate integration: the three accelerator designs must compute the
//! same function on every Table I benchmark geometry, with dataflow
//! statistics that match the analytical cost-model geometry exactly.
//!
//! Table I layers run channel-scaled (spatial geometry exact, `C`/`M`
//! reduced) so the functional simulation stays tractable; FCN_Deconv2's
//! 568×568 output additionally runs at reduced input extent for the
//! per-design stats checks.

use red_core::prelude::*;
use red_core::tensor::deconv::deconv_direct;
use red_core::tensor::redundancy;

/// Channel-scaled versions of the Table I layers for functional runs.
fn scaled_benchmarks() -> Vec<(Benchmark, LayerShape)> {
    vec![
        (
            Benchmark::GanDeconv1,
            Benchmark::GanDeconv1.scaled_layer(64),
        ),
        (
            Benchmark::GanDeconv2,
            Benchmark::GanDeconv2.scaled_layer(64),
        ),
        (
            Benchmark::GanDeconv3,
            Benchmark::GanDeconv3.scaled_layer(64),
        ),
        (
            Benchmark::GanDeconv4,
            Benchmark::GanDeconv4.scaled_layer(64),
        ),
        (Benchmark::FcnDeconv1, Benchmark::FcnDeconv1.scaled_layer(3)),
        // FCN_Deconv2 spatially reduced: same 16x16 kernel, stride 8.
        (
            Benchmark::FcnDeconv2,
            LayerShape::new(9, 9, 7, 7, 16, 16, 8, 0).unwrap(),
        ),
    ]
}

#[test]
fn all_designs_agree_on_all_benchmarks() {
    for (b, layer) in scaled_benchmarks() {
        let kernel = synth::kernel(&layer, 127, 0xC0FFEE ^ b.name().len() as u64);
        let input = synth::input_dense(&layer, 127, 0xBEEF);
        let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).build();
            let exec = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
            assert_eq!(exec.output, golden, "{b} on {design}");
        }
    }
}

#[test]
fn measured_stats_match_analytic_geometry() {
    let model = CostModel::paper_default();
    for (b, layer) in scaled_benchmarks() {
        let kernel = synth::kernel(&layer, 63, 11);
        let input = synth::input_dense(&layer, 63, 12);
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).build();
            let exec = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
            let geom = model.evaluate(design, &layer).unwrap().geometry;
            assert_eq!(exec.stats.cycles, geom.cycles, "{b} {design} cycles");
            assert_eq!(
                exec.stats.total_row_slots, geom.total_row_slots,
                "{b} {design} row slots"
            );
            // Dense input: the measured non-zero activations equal the
            // closed-form count the energy model bills.
            assert_eq!(
                exec.stats.nonzero_row_activations, geom.nonzero_row_activations,
                "{b} {design} non-zero activations"
            );
        }
    }
}

#[test]
fn red_and_zero_padding_do_identical_nonzero_work() {
    for (b, layer) in scaled_benchmarks() {
        let kernel = synth::kernel(&layer, 90, 3);
        let input = synth::input_dense(&layer, 90, 4);
        let zp = Accelerator::builder()
            .design(Design::ZeroPadding)
            .build()
            .compile(&layer, &kernel)
            .unwrap()
            .run(&input)
            .unwrap();
        let red = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::Auto))
            .build()
            .compile(&layer, &kernel)
            .unwrap()
            .run(&input)
            .unwrap();
        assert_eq!(
            zp.stats.nonzero_row_activations, red.stats.nonzero_row_activations,
            "{b}: zero-skipping must perform exactly the non-zero work"
        );
        assert_eq!(zp.stats.nonzero_macs, red.stats.nonzero_macs, "{b}");
        // And the cycle advantage is stride^2 (/2 when halved).
        let s2 = layer.spec().stride() as u64 * layer.spec().stride() as u64;
        let expect = if layer.taps() > RedLayoutPolicy::AUTO_TAP_THRESHOLD {
            s2 / 2
        } else {
            s2
        };
        assert_eq!(
            zp.stats.cycles,
            red.stats.cycles * expect,
            "{b} cycle ratio"
        );
    }
}

#[test]
fn zero_padding_redundancy_matches_fig4_analytics() {
    for (b, layer) in scaled_benchmarks() {
        let kernel = synth::kernel(&layer, 50, 5);
        let input = synth::input_dense(&layer, 50, 6);
        let zp = Accelerator::builder()
            .design(Design::ZeroPadding)
            .build()
            .compile(&layer, &kernel)
            .unwrap()
            .run(&input)
            .unwrap();
        let analytic =
            redundancy::mac_zero_fraction(layer.input_h(), layer.input_w(), layer.spec()).unwrap();
        assert!(
            (zp.stats.zero_slot_fraction() - analytic).abs() < 1e-12,
            "{b}: measured {} vs analytic {analytic}",
            zp.stats.zero_slot_fraction()
        );
    }
}

#[test]
fn halved_and_full_red_layouts_agree() {
    let layer = LayerShape::new(6, 6, 10, 6, 5, 5, 2, 2).unwrap();
    let kernel = synth::kernel(&layer, 120, 21);
    let input = synth::input_dense(&layer, 120, 22);
    let runs: Vec<_> = [RedLayoutPolicy::AlwaysFull, RedLayoutPolicy::AlwaysHalved]
        .iter()
        .map(|&p| {
            Accelerator::builder()
                .design(Design::red(p))
                .build()
                .compile(&layer, &kernel)
                .unwrap()
                .run(&input)
                .unwrap()
        })
        .collect();
    assert_eq!(runs[0].output, runs[1].output);
    // Eq. 2: the halved layout takes exactly twice the cycles.
    assert_eq!(runs[1].stats.cycles, 2 * runs[0].stats.cycles);
}

#[test]
fn sparse_inputs_reduce_red_work_proportionally() {
    let layer = Benchmark::GanDeconv3.scaled_layer(64);
    let kernel = synth::kernel(&layer, 100, 31);
    let dense = synth::input_dense(&layer, 100, 32);
    let sparse = synth::input_sparse(&layer, 100, 0.5, 33);
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .build();
    let compiled = acc.compile(&layer, &kernel).unwrap();
    let d = compiled.run(&dense).unwrap();
    let s = compiled.run(&sparse).unwrap();
    // Same schedule (cycles fixed by geometry), less non-zero work.
    assert_eq!(d.stats.cycles, s.stats.cycles);
    let ratio = s.stats.nonzero_row_activations as f64 / d.stats.nonzero_row_activations as f64;
    assert!(
        (ratio - 0.5).abs() < 0.06,
        "50% sparsity should halve activations, got ratio {ratio}"
    );
}

#[test]
fn network_stacks_chain_through_red() {
    // Run a scaled SNGAN generator end to end on the RED design; verify
    // each stage against the golden algorithm.
    let stack = red_core::workloads::networks::sngan_generator(64).unwrap();
    assert!(stack.is_chained());
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .build();
    let mut activations = synth::input_dense(&stack.layers[0], 20, 77);
    for (i, layer) in stack.layers.iter().enumerate() {
        let kernel = synth::kernel(layer, 3, 100 + i as u64);
        let exec = acc
            .compile(layer, &kernel)
            .unwrap()
            .run(&activations)
            .unwrap();
        let golden = deconv_direct(&activations, &kernel, layer.spec()).unwrap();
        assert_eq!(exec.output, golden, "stage {i}");
        // Feed forward with a range clamp, standing in for the network's
        // activation function so values stay in crossbar input range.
        activations = exec.output.map(|v| (v % 97).abs() + 1);
    }
    assert_eq!(activations.height(), 32);
}

#[test]
fn quantized_float_pipeline_end_to_end() {
    use red_core::tensor::quant::{
        dequantize_output, quantize_kernel, quantize_map, rmse, sqnr_db,
    };

    let layer = Benchmark::GanDeconv3.scaled_layer(128);
    let fin = synth::input_smooth_f64(&layer, 5);
    let fker = red_core::tensor::Kernel::<f64>::from_fn(
        layer.spec().kernel_h(),
        layer.spec().kernel_w(),
        layer.channels(),
        layer.filters(),
        |i, j, c, m| ((i + 2 * j) as f64 - (c + m) as f64 * 0.3).sin() * 0.4,
    );
    let qi = quantize_map(&fin, 8);
    let qk = quantize_kernel(&fker, 8);

    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .build();
    let exec = acc
        .compile(&layer, &qk.codes)
        .unwrap()
        .run(&qi.codes)
        .unwrap();
    let approx = dequantize_output(&exec.output, qi.params, qk.params);
    let exact = deconv_direct(&fin, &fker, layer.spec()).unwrap();
    assert!(
        sqnr_db(&exact, &approx) > 30.0,
        "8-bit crossbar pipeline should keep >30dB SQNR, got {} (rmse {})",
        sqnr_db(&exact, &approx),
        rmse(&exact, &approx)
    );
}
