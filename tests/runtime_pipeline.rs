//! Integration tests for the `red-runtime` seam: the pipelined multi-tile
//! chip must compute exactly what sequential single-`Accelerator`
//! execution computes, and its measured schedule must reconcile with the
//! analytical `PipelineReport` — for all three designs on a scaled DCGAN
//! stack.

use red_sim::red_core::prelude::*;
use red_sim::red_core::tensor::deconv::deconv_direct;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::{ChipBuilder, ExecMode};

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial
const BATCH: usize = 5;

fn batch_inputs(
    stack: &red_sim::red_core::workloads::networks::DeconvStack,
) -> Vec<FeatureMap<i64>> {
    (0..BATCH)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 2_000 + i as u64))
        .collect()
}

#[test]
fn pipelined_is_bit_exact_vs_sequential_for_all_designs() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let inputs = batch_inputs(&stack);
    for design in Design::paper_lineup() {
        let chip = ChipBuilder::new()
            .design(design)
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let seq = chip.run_sequential(&inputs).unwrap();
        let pipe = chip.run_pipelined(&inputs).unwrap();
        assert_eq!(
            seq.outputs, pipe.outputs,
            "{design}: pipelined output must be bit-exact vs sequential"
        );
        assert_eq!(pipe.outputs.len(), BATCH);
    }
}

#[test]
fn sequential_path_matches_the_golden_algorithm() {
    // The chip's sequential path is itself pinned to `deconv_direct` with
    // the same inter-stage activation, so "bit-exact vs sequential" means
    // bit-exact vs the textbook network execution.
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let inputs = batch_inputs(&stack);
    let run = chip.run_sequential(&inputs).unwrap();
    let fold = chip.activation();
    for (input, chip_out) in inputs.iter().zip(&run.outputs) {
        let mut fm = input.clone();
        for (k, stage) in chip.stages().iter().enumerate() {
            let kernel = synth::kernel(stage.layer(), 5, 42 + k as u64);
            let golden = deconv_direct(&fm, &kernel, stage.layer().spec()).unwrap();
            fm = if k + 1 < chip.depth() {
                fold.apply(&golden)
            } else {
                golden
            };
        }
        assert_eq!(&fm, chip_out);
    }
}

#[test]
fn measured_interval_matches_the_predicted_bottleneck() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let inputs = batch_inputs(&stack);
    for design in Design::paper_lineup() {
        let chip = ChipBuilder::new()
            .design(design)
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let analytic = chip.pipeline_report();
        let pipe = chip.run_pipelined(&inputs).unwrap().report;
        assert_eq!(pipe.mode, ExecMode::Pipelined);
        assert!(
            pipe.reconciles_with(&analytic),
            "{design}: measured (fill {}, interval {}) vs analytic (fill {}, bottleneck {})",
            pipe.fill_latency_ns,
            pipe.steady_interval_ns,
            analytic.fill_latency_ns(),
            analytic.steady_interval_ns(),
        );
        // The steady-state interval IS the bottleneck stage's latency.
        let bottleneck = analytic.stages[analytic.bottleneck()].total_latency_ns();
        assert!(
            (pipe.steady_interval_ns - bottleneck).abs() <= 1e-9 * bottleneck,
            "{design}: interval {} vs bottleneck stage {bottleneck}",
            pipe.steady_interval_ns
        );
        // And the sequential interval is the whole chain: pipelining wins
        // by exactly the fill/bottleneck ratio.
        let seq = chip.run_sequential(&inputs).unwrap().report;
        assert!(seq.reconciles_with(&analytic));
        assert!(seq.steady_interval_ns >= pipe.steady_interval_ns);
    }
}

#[test]
fn red_serves_more_images_per_second_than_the_baselines() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let inputs = batch_inputs(&stack);
    let mut throughput = Vec::new();
    for design in Design::paper_lineup() {
        let chip = ChipBuilder::new()
            .design(design)
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let report = chip.run_pipelined(&inputs).unwrap().report;
        throughput.push((design, report.throughput_per_s()));
    }
    let zp = throughput[0].1;
    let red = throughput[2].1;
    assert!(
        red > zp,
        "RED must out-serve zero-padding: {red} vs {zp} img/s"
    );
    // Every DCGAN stage is stride 2: the serving speedup sits at the
    // paper's stride-2 operating point.
    let s = red / zp;
    assert!((3.4..=4.0).contains(&s), "serving speedup {s}");
}
