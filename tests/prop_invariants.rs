//! Property-based invariants over randomly drawn layer geometries and
//! tensor values, via `proptest`.
//!
//! The central property is the one the whole paper rests on: *all three
//! accelerator dataflows compute exactly the same transposed convolution*
//! for every valid `(kernel, stride, padding, output_padding, input)`
//! combination — not just the Table I points.

use proptest::prelude::*;
use red_core::prelude::*;
use red_core::tensor::deconv::{deconv_direct, deconv_padding_free, deconv_zero_padding};
use red_core::tensor::modes::ModeSet;
use red_core::tensor::redundancy;

/// A random small-but-arbitrary deconvolution problem.
#[derive(Debug, Clone)]
struct Problem {
    layer: LayerShape,
    kernel: Kernel<i64>,
    input: FeatureMap<i64>,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    // kernel 1..=5, stride 1..=4, padding < kernel, op < stride,
    // input 1..=5, channels/filters 1..=4.
    (1usize..=5, 1usize..=4, 1usize..=5, 1usize..=4, 1usize..=4)
        .prop_flat_map(|(k, s, ih, c, m)| {
            (
                Just(k),
                Just(s),
                Just(ih),
                Just(c),
                Just(m),
                0..k.clamp(1, 2), // padding < kernel (kept small)
                0..s,             // output_padding < stride
                any::<u64>(),
                any::<u64>(),
            )
        })
        .prop_filter_map(
            "valid deconv geometry",
            |(k, s, ih, c, m, p, op, kseed, iseed)| {
                let spec = DeconvSpec::with_output_padding(k, k, s, p, op).ok()?;
                let layer = LayerShape::with_spec(ih, ih, c, m, spec).ok()?;
                // Seeded value generation keeps the strategy cheap while
                // still varying contents across cases.
                let kernel = red_core::workloads::synth::kernel(&layer, 127, kseed);
                let input = red_core::workloads::synth::input_sparse(
                    &layer,
                    127,
                    (iseed % 4) as f64 * 0.25,
                    iseed,
                );
                Some(Problem {
                    layer,
                    kernel,
                    input,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The three golden algorithms agree on arbitrary geometry.
    #[test]
    fn golden_algorithms_agree(pb in problem_strategy()) {
        let d = deconv_direct(&pb.input, &pb.kernel, pb.layer.spec()).unwrap();
        let zp = deconv_zero_padding(&pb.input, &pb.kernel, pb.layer.spec()).unwrap();
        let pf = deconv_padding_free(&pb.input, &pb.kernel, pb.layer.spec()).unwrap();
        prop_assert_eq!(&zp, &d);
        prop_assert_eq!(&pf, &d);
    }

    /// All three hardware engines agree with the direct definition on
    /// arbitrary geometry — the repository's core claim.
    #[test]
    fn engines_agree_with_oracle(pb in problem_strategy()) {
        let golden = deconv_direct(&pb.input, &pb.kernel, pb.layer.spec()).unwrap();
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).build();
            let exec = acc.compile(&pb.layer, &pb.kernel).unwrap().run(&pb.input).unwrap();
            prop_assert_eq!(&exec.output, &golden, "{}", design);
        }
    }

    /// Both RED layouts agree and the halved layout costs exactly 2x the
    /// cycles (Eq. 2).
    #[test]
    fn red_layouts_agree(pb in problem_strategy()) {
        let full = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::AlwaysFull))
            .build()
            .compile(&pb.layer, &pb.kernel).unwrap()
            .run(&pb.input).unwrap();
        let halved = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::AlwaysHalved))
            .build()
            .compile(&pb.layer, &pb.kernel).unwrap()
            .run(&pb.input).unwrap();
        prop_assert_eq!(&full.output, &halved.output);
        prop_assert_eq!(halved.stats.cycles, 2 * full.stats.cycles);
    }

    /// The computation modes partition the kernel taps exactly (the
    /// exclusivity the pixel-wise mapping relies on, Fig. 6).
    #[test]
    fn modes_partition_kernel(k in 1usize..=8, s in 1usize..=8) {
        let spec = DeconvSpec::new(k, k, s, 0).unwrap();
        let set = ModeSet::enumerate(&spec);
        let mut seen = std::collections::HashSet::new();
        for mode in &set {
            for &t in &mode.taps {
                prop_assert!(seen.insert(t), "tap {:?} appears in two modes", t);
            }
        }
        prop_assert_eq!(seen.len(), k * k);
        prop_assert_eq!(set.len(), s * s);
    }

    /// Redundancy analytics: the map-level zero fraction is always at
    /// least the interior bound `1 - 1/s²`... (loosely: increases with
    /// stride, bounded by 1) and matches a directly counted padded map.
    #[test]
    fn redundancy_matches_counting(n in 1usize..=8, k in 1usize..=6, s in 1usize..=6) {
        let p = 0usize;
        let spec = DeconvSpec::new(k, k, s, p).unwrap();
        let analytic = redundancy::map_zero_fraction(n, n, &spec).unwrap();
        let input = FeatureMap::<i64>::from_fn(n, n, 1, |_, _, _| 1);
        let padded = red_core::tensor::deconv::zero_insert_pad(&input, &spec);
        let counted = padded.count_zeros() as f64 / padded.len() as f64;
        prop_assert!((analytic - counted).abs() < 1e-12);
        prop_assert!((0.0..1.0).contains(&analytic));
    }

    /// Crossbar analog pipeline is bit-exact with the digital reference
    /// under ideal configuration, for both weight encodings.
    #[test]
    fn analog_vmm_exact(
        rows in 1usize..=24,
        cols in 1usize..=8,
        wseed in any::<u64>(),
        xseed in any::<u64>(),
        offset_binary in any::<bool>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(wseed);
        let weights: Vec<Vec<i64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
            .collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(xseed);
        let input: Vec<i64> = (0..rows).map(|_| rng.gen_range(-127..=127)).collect();
        let cfg = XbarConfig {
            scheme: if offset_binary { WeightScheme::OffsetBinary } else { WeightScheme::Differential },
            ..XbarConfig::ideal()
        };
        let arr = red_core::xbar::CrossbarArray::program(&cfg, &weights).unwrap();
        prop_assert_eq!(arr.vmm_analog(&input), arr.vmm_exact(&input));
    }

    /// Golden equivalence of the rewritten analog pipeline: the planned
    /// path (programming-time effective-current plane, per-call phase
    /// decomposition, frozen recombination map) and the phase-major
    /// batched path are **bit-identical** to the seed
    /// per-phase-recompute pipeline (`vmm_analog_reference`) across
    /// arbitrary scheme x ADC x IR-drop x drift combinations, with
    /// variation and stuck-at faults drawn in too.
    #[test]
    fn analog_plane_bit_identical_to_reference(
        rows in 1usize..=24,
        cols in 1usize..=6,
        wseed in any::<u64>(),
        xseed in any::<u64>(),
        offset_binary in any::<bool>(),
        adc_bits in 0u32..=10,          // <3: ideal converter
        ir_centi_ohm in 0u32..=500,     // 0..=5 ohm/cell in 0.01 steps
        drift_days in 0u32..=365,
        sigma_pct in 0u32..=5,
        fault_pm in 0u32..=20,          // stuck-off rate, per-mille
    ) {
        use rand::{Rng, SeedableRng};
        use red_core::device::DriftModel;
        use red_core::xbar::{CrossbarArray, IrDropModel, VmmScratch};

        let mut rng = rand::rngs::StdRng::seed_from_u64(wseed);
        let weights: Vec<Vec<i64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
            .collect();
        let cfg = XbarConfig {
            scheme: if offset_binary { WeightScheme::OffsetBinary } else { WeightScheme::Differential },
            adc: if adc_bits < 3 {
                AdcModel::Ideal
            } else {
                AdcModel::Saturating { bits: adc_bits }
            },
            variation: red_core::device::variation::VariationModel::with_sigma(
                f64::from(sigma_pct) / 100.0,
                wseed ^ 1,
            ),
            faults: red_core::device::variation::FaultModel::with_rates(
                f64::from(fault_pm) / 1000.0,
                f64::from(fault_pm) / 2000.0,
                wseed ^ 2,
            ),
            ir_drop: IrDropModel::with_resistance(f64::from(ir_centi_ohm) / 100.0),
            drift: DriftModel::after(0.02, f64::from(drift_days) * 86_400.0),
            ..XbarConfig::ideal()
        };
        let arr = CrossbarArray::program(&cfg, &weights).unwrap();

        let mut rng = rand::rngs::StdRng::seed_from_u64(xseed);
        let n = 3usize;
        let inputs: Vec<i64> = (0..n * rows).map(|_| rng.gen_range(-127..=127)).collect();
        let golden: Vec<Vec<i64>> = inputs
            .chunks_exact(rows)
            .map(|x| arr.vmm_analog_reference(x))
            .collect();

        // Single-input planned path.
        let mut scratch = VmmScratch::new();
        let mut out = vec![0i64; cols];
        for (x, g) in inputs.chunks_exact(rows).zip(&golden) {
            arr.vmm_analog_into(x, &mut scratch, &mut out);
            prop_assert_eq!(&out, g, "planned vs reference");
        }
        // Public batched entry point (these planes sit far below the
        // phase-major gate, so this covers the per-input fallback)...
        let mut batch_out = vec![0i64; n * cols];
        arr.vmm_analog_batch(&inputs, n, &mut scratch, &mut batch_out);
        for (k, g) in golden.iter().enumerate() {
            prop_assert_eq!(&batch_out[k * cols..(k + 1) * cols], g.as_slice(), "batched input {}", k);
        }
        // ...and the phase-major row-blocked kernel itself, driven
        // directly so the randomized config sweep reaches it too.
        batch_out.fill(0);
        arr.analog_batch_phase_major(&inputs, n, &mut scratch, &mut batch_out);
        for (k, g) in golden.iter().enumerate() {
            prop_assert_eq!(&batch_out[k * cols..(k + 1) * cols], g.as_slice(), "phase-major input {}", k);
        }
    }

    /// Degraded-tier execution obeys its advertised worst-case error
    /// bound on every crossbar preset, the bound itself is monotone
    /// nondecreasing in dropped bits, and for ideal arrays it is
    /// attained by the sign-aligned adversarial input (tight). The
    /// monotone claim lives on the *bound*: a single sample's observed
    /// error is not monotone in dropped bits — truncating two more bits
    /// can cancel a residue the shallower tier kept (e.g. `W = [2, -1]`,
    /// `x = [1, 2]`: one dropped bit errs by 2, two err by 0).
    #[test]
    fn truncation_error_within_advertised_bound(
        rows in 1usize..=24,
        cols in 1usize..=6,
        wseed in any::<u64>(),
        xseed in any::<u64>(),
        preset in 0usize..=4,
    ) {
        use rand::{Rng, SeedableRng};
        use red_core::xbar::{CrossbarArray, ExecPrecision, VmmScratch};

        let mut rng = rand::rngs::StdRng::seed_from_u64(wseed);
        let weights: Vec<Vec<i64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-127..=127)).collect())
            .collect();
        let name = ["ideal", "variation", "adc", "ir-drop", "full"][preset];
        let cfg = if name == "ideal" {
            XbarConfig::ideal()
        } else {
            XbarConfig::preset(name).unwrap()
        };
        let arr = CrossbarArray::program(&cfg, &weights).unwrap();

        // The advertised bound is monotone in depth by construction.
        for k in 0..8 {
            prop_assert!(
                arr.truncation_error_bound_bits(k) <= arr.truncation_error_bound_bits(k + 1),
                "bound must be nondecreasing in dropped bits at k={}", k
            );
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(xseed);
        let input: Vec<i64> = (0..rows).map(|_| rng.gen_range(-127..=127)).collect();
        let mut scratch = VmmScratch::new();
        let mut full = vec![0i64; cols];
        arr.vmm_into(&input, &mut scratch, &mut full);
        for prec in ExecPrecision::ALL {
            let mut out = vec![0i64; cols];
            arr.vmm_into_at(&input, &mut scratch, &mut out, prec);
            let bound = arr.truncation_error_bound(prec);
            if prec == ExecPrecision::Full {
                prop_assert_eq!(&out, &full, "full tier is bit-identical");
                prop_assert_eq!(bound, 0.0);
            }
            for (m, (&d, &f)) in out.iter().zip(&full).enumerate() {
                let err = (d - f).abs() as f64;
                prop_assert!(
                    err <= bound,
                    "{:?} col {}: observed error {} exceeds advertised bound {}",
                    prec, m, err, bound
                );
            }
        }

        // Ideal arrays: the bound is tight. The adversarial input puts
        // every residue at 2^k - 1 with signs aligned to the worst
        // column, truncates to all-zeros, and attains the bound exactly.
        if preset == 0 {
            let worst = (0..cols)
                .max_by_key(|&m| weights.iter().map(|r| r[m].abs()).sum::<i64>())
                .unwrap();
            for prec in [ExecPrecision::Eco, ExecPrecision::Brownout] {
                let k = prec.dropped_bits().min(6);
                let residue = (1i64 << k) - 1;
                let adversarial: Vec<i64> = weights
                    .iter()
                    .map(|r| if r[worst] < 0 { -residue } else { residue })
                    .collect();
                let mut out = vec![0i64; cols];
                arr.vmm_into_at(&adversarial, &mut scratch, &mut out, prec);
                let mut exact = vec![0i64; cols];
                arr.vmm_into(&adversarial, &mut scratch, &mut exact);
                let attained = (out[worst] - exact[worst]).abs() as f64;
                prop_assert_eq!(
                    attained,
                    arr.truncation_error_bound(prec),
                    "ideal bound is attained at {:?}", prec
                );
            }
        }
    }

    /// Quantization round-trip error is bounded by half a step, and the
    /// quantizer never exceeds the representable code range.
    #[test]
    fn quantization_bounds(bits in 2u32..=12, max_abs in 0.001f64..100.0, v in -200.0f64..200.0) {
        use red_core::tensor::quant::QuantParams;
        let p = QuantParams::fit(bits, max_abs);
        let q = p.quantize(v);
        let qmax = QuantParams::q_max(bits);
        prop_assert!(q.abs() <= qmax);
        if v.abs() <= max_abs {
            let err = (p.dequantize(q) - v).abs();
            prop_assert!(err <= p.scale / 2.0 + 1e-9);
        }
    }

    /// Cost-model sanity on arbitrary geometry: totals are positive and
    /// finite, breakdowns sum to totals, RED never takes more cycles than
    /// zero-padding. (Padding-free *can* exceed zero-padding cycles when
    /// cropping shrinks the output below the input — it computes every
    /// input pixel regardless — so the cycle bound applies to RED only.)
    #[test]
    fn cost_model_sane(pb in problem_strategy()) {
        let model = CostModel::paper_default();
        let zp = model.evaluate(Design::ZeroPadding, &pb.layer).unwrap();
        for design in Design::paper_lineup() {
            let r = model.evaluate(design, &pb.layer).unwrap();
            prop_assert!(r.total_latency_ns().is_finite() && r.total_latency_ns() > 0.0);
            prop_assert!(r.total_energy_pj().is_finite() && r.total_energy_pj() > 0.0);
            prop_assert!(r.total_area_um2().is_finite() && r.total_area_um2() > 0.0);
            let sum = r.array_latency_ns() + r.periphery_latency_ns();
            prop_assert!((sum - r.total_latency_ns()).abs() <= 1e-9 * sum.max(1.0));
            if matches!(design, Design::Red { .. }) {
                // Batches = ceil(OH/s)*ceil(OW/s) <= OH*OW; halved doubles.
                prop_assert!(r.geometry.cycles <= zp.geometry.cycles.max(1) * 2);
            }
        }
    }
}
