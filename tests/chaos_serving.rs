//! Chaos acceptance tests for the self-healing serving layer: under a
//! deterministic fault plan (replica crashes, stalls, retention drift,
//! stuck-at strikes) the server must lose **zero** requests — every
//! request completes exactly once or sheds with an attributed reason —
//! outputs stay bit-exact, the canary prober quarantines drifted
//! replicas, interactive latency re-converges under the SLO once the
//! last repair lands, and the whole faulted session replays
//! byte-identically.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_sim::red_core::prelude::*;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::ChipBuilder;
use red_sim::red_server::{
    drive, ChipFleet, ClientMode, FaultPlan, Fifo, HealthConfig, LoadMode, LoadgenConfig, Outcome,
    Server, ServerConfig,
};
use red_sim::red_telemetry::Telemetry;
use std::sync::OnceLock;

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial

/// One compiled RED fleet (2 replicas) plus its fill latency, shared
/// across proptest cases — compilation dominates otherwise.
fn shared_fleet() -> &'static (ChipFleet, u64) {
    static FLEET: OnceLock<(ChipFleet, u64)> = OnceLock::new();
    FLEET.get_or_init(|| {
        let stack = networks::dcgan_generator(SCALE).unwrap();
        let chip = ChipBuilder::new()
            .design(Design::red(RedLayoutPolicy::Auto))
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let fill = chip.pipeline_report().fill_latency_ns() as u64;
        (ChipFleet::new(chip, 2).unwrap(), fill)
    })
}

/// A seeded arbitrary fault plan against partition 0: always at least
/// one crash (the event class that orphans in-flight requests), plus a
/// random tail of crashes, stalls, drift advances, and strike batches.
fn random_plan(seed: u64, extra: usize, span_ns: u64, replicas: usize) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = || rng.gen_range(1..span_ns.max(2));
    let mut plan = FaultPlan::new(seed).crash(at(), 0, 0);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    for _ in 0..extra {
        let t = at();
        plan = match rng2.gen_range(0..4u32) {
            0 => plan.crash(t, 0, rng2.gen_range(0..replicas)),
            1 => plan.stall(
                t,
                0,
                rng2.gen_range(0..replicas),
                rng2.gen_range(1..200_000),
            ),
            2 => plan.drift(t, 0, rng2.gen_range(1.0e3..1.0e7)),
            _ => plan.strikes(t, 0, rng2.gen_range(0..replicas), rng2.gen_range(1..512)),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The no-lost-request invariant: under an arbitrary fault plan,
    /// every submitted request is answered **exactly once** — modeled
    /// completion or attributed shed — the report's dual ledgers still
    /// reconcile, and every scheduled fault is eventually injected.
    #[test]
    fn no_request_is_lost_under_arbitrary_fault_plans(
        seed in any::<u64>(),
        extra in 0usize..=4,
        with_deadlines in any::<bool>(),
    ) {
        let (fleet, fill) = shared_fleet();
        let fill = *fill;
        let n = 40usize;
        let span = n as u64 * fill;
        let plan = random_plan(seed, extra, span, 2);
        let planned = plan.len() as u64;
        let config = ServerConfig::new()
            .max_batch(4)
            .max_wait_ns(fill / 2)
            .policy(Fifo)
            .model_only()
            .fault_plan(plan);
        let (server, mut clients) =
            Server::start(fleet, &config, &[ClientMode::Open, ClientMode::Open]).unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut clock = 0u64;
        let mut submitted = vec![0u64; clients.len()];
        for i in 0..n {
            clock += rng.gen_range(0..fill);
            let deadline = (with_deadlines && rng.gen_bool(0.5))
                .then(|| clock + rng.gen_range(2 * fill..10 * fill));
            let c = i % clients.len();
            clients[c].submit_modeled(0, clock, deadline).unwrap();
            submitted[c] += 1;
        }
        for client in clients.iter_mut() {
            client.finish();
        }
        let mut shed = 0u64;
        for (c, client) in clients.iter_mut().enumerate() {
            let mut answered = vec![0u32; submitted[c] as usize];
            for _ in 0..submitted[c] {
                let completion = client.recv().unwrap();
                answered[completion.meta.seq as usize] += 1;
                match completion.outcome {
                    Outcome::Modeled => {}
                    Outcome::Shed => shed += 1,
                    other => prop_assert!(false, "unexpected outcome {other:?}"),
                }
            }
            prop_assert!(
                answered.iter().all(|&k| k == 1),
                "client {c}: every seq answered exactly once, got {answered:?}"
            );
        }
        drop(clients);
        let report = server.finish();
        prop_assert_eq!(report.offered, n as u64);
        prop_assert_eq!(report.served + report.shed, n as u64);
        prop_assert_eq!(report.shed, shed);
        prop_assert!(report.reconciles(), "chaos must not break the busy-time ledgers");
        prop_assert_eq!(report.faults_injected, planned);
    }
}

/// The canary prober catches a partition-wide retention-drift advance:
/// both replicas quarantine and re-program, yet — because the witness
/// ages in place of the serving arrays — every served output stays
/// bit-exact against the offline sequential golden path.
#[test]
fn probe_quarantines_drifted_partition_and_outputs_stay_bit_exact() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let inputs: Vec<_> = (0..8)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 9_000 + i as u64))
        .collect();
    let golden = chip.run_sequential(&inputs).unwrap();
    let fleet = ChipFleet::new(chip, 2).unwrap();
    // A month of 3% drift fires at 30 µs; probes run every 10 µs, so the
    // prober sees the aged witness within one cadence of the event.
    let config = ServerConfig::new()
        .max_batch(4)
        .max_wait_ns(2_000)
        .fault_plan(FaultPlan::new(3).drift(30_000, 0, 2_592_000.0))
        .health(HealthConfig::default().probe_interval_ns(10_000));
    let (server, mut clients) = Server::start(&fleet, &config, &[ClientMode::Open]).unwrap();
    for (i, input) in inputs.iter().enumerate() {
        clients[0]
            .submit(input.clone(), 20_000 * i as u64, None)
            .unwrap();
    }
    clients[0].finish();
    let mut got = vec![None; golden.outputs.len()];
    for _ in 0..golden.outputs.len() {
        let completion = clients[0].recv().unwrap();
        let Outcome::Served(output) = completion.outcome else {
            panic!("deadline-free requests are always served");
        };
        got[completion.meta.seq as usize] = Some(output);
    }
    for (i, (output, expected)) in got.iter().zip(&golden.outputs).enumerate() {
        assert_eq!(
            output.as_ref().expect("every seq answered"),
            expected,
            "request {i} must stay bit-exact under drift"
        );
    }
    drop(clients);
    let report = server.finish();
    assert_eq!(report.served, 8);
    assert_eq!(report.faults_injected, 1);
    assert!(
        report.reprograms >= 1,
        "the prober must quarantine and repair the drifted partition"
    );
    assert!(report.reconciles());
}

/// After the last repair, the interactive tail re-converges: every
/// request arriving once the crashed replica is back serves within its
/// deadline, so the tail-window p99 sits under the SLO.
#[test]
fn interactive_p99_reconverges_under_slo_after_repair() {
    let (fleet, fill) = shared_fleet();
    let (fill, n) = (*fill, 300usize);
    let slo = 8 * fill;
    let crash_at = 50 * fill;
    // The repair outage is reprogram_cells * write_time — far shorter
    // than the 150-fill gap between the crash and the tail window.
    let config = ServerConfig::new()
        .max_batch(4)
        .max_wait_ns(fill / 2)
        .policy(Fifo)
        .model_only()
        .fault_plan(FaultPlan::new(11).crash(crash_at, 0, 0))
        .health(HealthConfig::default().reprogram_cells(512));
    let (server, mut clients) = Server::start(fleet, &config, &[ClientMode::Open]).unwrap();
    for i in 0..n {
        let arrival = i as u64 * fill;
        clients[0]
            .submit_modeled(0, arrival, Some(arrival + slo))
            .unwrap();
    }
    clients[0].finish();
    let tail_start = 200 * fill;
    let mut tail_latencies = Vec::new();
    for _ in 0..n {
        let completion = clients[0].recv().unwrap();
        if completion.meta.arrival_ns < tail_start {
            continue; // mid-outage requests may retry, hedge, or shed
        }
        let Outcome::Modeled = completion.outcome else {
            panic!(
                "request arriving at {} (post-repair) must serve, got {:?}",
                completion.meta.arrival_ns, completion.outcome
            );
        };
        tail_latencies.push(completion.timing.completion_ns - completion.meta.arrival_ns);
    }
    drop(clients);
    let report = server.finish();
    assert_eq!(
        report.faults_injected, 1,
        "the crash must have fired before the tail"
    );
    assert!(
        report.reprograms >= 1,
        "the crashed replica must have repaired"
    );
    assert!(report.reconciles());
    tail_latencies.sort_unstable();
    let p99 = tail_latencies[(tail_latencies.len() * 99) / 100 - 1];
    assert!(
        p99 <= slo,
        "post-repair p99 {p99} ns must re-converge under the {slo} ns SLO"
    );
}

/// A faulted session is a pure function of (trace, plan, seed): two
/// independent runs of the same chaos configuration produce identical
/// modeled reports **and** byte-identical telemetry timelines.
#[test]
fn faulted_session_replays_byte_identically() {
    let (fleet, fill) = shared_fleet();
    let fill = *fill;
    let load = LoadgenConfig {
        mode: LoadMode::Open {
            rps: 3.0e9 / fill as f64,
        },
        clients: 4,
        requests: 5_000,
        horizon_ns: None,
        slo_ns: Some(6 * fill),
        seed: 21,
        stream: true,
    };
    let plan = FaultPlan::new(9)
        .crash(40 * fill, 0, 1)
        .drift(200 * fill, 0, 2_592_000.0)
        .stall(400 * fill, 0, 0, 10 * fill)
        .strikes(600 * fill, 0, 1, 256);
    let run = || {
        let telemetry = Telemetry::enabled();
        let config = ServerConfig::new()
            .max_batch(8)
            .max_wait_ns(fill / 2)
            .model_only()
            .fault_plan(plan.clone())
            .telemetry(telemetry.clone());
        let report = drive(fleet, &config, &load, &[]).expect("chaos load runs");
        (report, telemetry.export_chrome_trace())
    };
    let (a, trace_a) = run();
    let (b, trace_b) = run();
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.served, b.served);
    assert_eq!(a.shed, b.shed);
    assert_eq!(a.batches, b.batches);
    assert_eq!(a.modeled_busy_ns, b.modeled_busy_ns);
    assert_eq!(a.last_completion_ns, b.last_completion_ns);
    assert_eq!(a.faults_injected, b.faults_injected);
    assert_eq!(a.reprograms, b.reprograms);
    assert_eq!(a.retries, b.retries);
    assert_eq!(a.hedges, b.hedges);
    assert_eq!(a.sheds_by_reason, b.sheds_by_reason);
    assert_eq!(a.faults_injected, 4, "every planned event fires");
    assert!(a.reconciles() && b.reconciles());
    assert_eq!(
        trace_a, trace_b,
        "the faulted telemetry timeline must replay byte-for-byte"
    );
}
