//! Integration tests for the `red-telemetry` plane: the exported
//! Perfetto timeline and Prometheus metrics must be deterministic
//! (byte-identical) functions of the virtual-clock request trace, and
//! the per-request hardware counters carried on the trace must sum
//! *exactly* to the aggregate figures the runtime and server report —
//! the acceptance criteria of the observability subsystem.

use proptest::prelude::*;
use red_sim::red_core::prelude::*;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::ChipBuilder;
use red_sim::red_server::{drive, ChipFleet, DeadlineShed, LoadMode, LoadgenConfig, ServerConfig};
use red_sim::red_telemetry::{ArgValue, Phase, Telemetry, TraceEvent};

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial

/// Pulls a named u64 argument off a trace event.
fn arg_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.args.iter().flatten().find_map(|(k, v)| match v {
        ArgValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

fn has_str_arg(ev: &TraceEvent, key: &str, want: &str) -> bool {
    ev.args.iter().flatten().any(|(k, v)| match v {
        ArgValue::Str(s) => *k == key && *s == want,
        _ => false,
    })
}

/// One deterministic serving session against a 2-replica DCGAN fleet
/// with a deadline-shedding policy under overload pressure, recorded
/// through `telemetry`.
fn serve_session(telemetry: Telemetry, requests: usize, max_batch: usize, rps: f64) -> ChipFleet {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .compile_seeded(&stack, 5, 42)
        .expect("stack compiles onto the chip");
    let fleet = ChipFleet::new(chip, 2).expect("replicas is positive");
    let config = ServerConfig::new()
        .max_batch(max_batch)
        .max_wait_ns(20_000)
        .policy(DeadlineShed)
        .model_only()
        .telemetry(telemetry);
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps },
        clients: 3,
        requests,
        horizon_ns: None,
        slo_ns: Some(120_000),
        seed: 0xC0FFEE,
        stream: false,
    };
    let report = drive(&fleet, &config, &load, &[]).expect("load generation runs");
    assert!(report.reconciles());
    fleet
}

/// The full observability surface — Perfetto timeline and Prometheus
/// text — is a byte-identical function of the request trace: replaying
/// the same trace through a fresh fleet and a fresh telemetry handle
/// reproduces both documents exactly.
#[test]
fn trace_and_metrics_exports_are_byte_identical_across_replays() {
    let run = || {
        let t = Telemetry::enabled();
        serve_session(t.clone(), 120, 4, 400_000.0);
        (t.export_chrome_trace(), t.export_prometheus())
    };
    let (trace_a, prom_a) = run();
    let (trace_b, prom_b) = run();
    assert!(trace_a.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
    assert!(trace_a.contains("\"ph\":\"b\""), "request spans present");
    assert!(trace_a.contains("\"ph\":\"X\""), "batch spans present");
    assert_eq!(trace_a, trace_b, "timeline must replay byte-identically");
    assert_eq!(prom_a, prom_b, "metrics must replay byte-identically");
}

/// The per-request hardware counters on the trace sum exactly to the
/// aggregate figures: every served request carries its image's integer
/// counters, so `Σ per-request == hw × served == the partition's
/// Prometheus counters`, with sheds accounted separately.
#[test]
fn per_request_hardware_counters_sum_exactly_to_aggregates() {
    let telemetry = Telemetry::enabled();
    // Overload with batch 1 so the deadline policy actually sheds.
    let fleet = serve_session(telemetry.clone(), 160, 1, 600_000.0);
    let hw = fleet.chip().hardware_per_image();
    let events = telemetry.snapshot();
    assert_eq!(telemetry.overflow_total(), 0, "ring must not have dropped");

    let mut served = 0u64;
    let mut shed = 0u64;
    let mut xbar_sum = 0u64;
    let mut adc_sum = 0u64;
    let mut energy_sum = 0u64;
    let mut batch_images = 0u64;
    for ev in &events {
        match (ev.name, ev.ph) {
            ("req", Phase::AsyncEnd) => {
                if has_str_arg(ev, "outcome", "shed") {
                    shed += 1;
                } else {
                    served += 1;
                    xbar_sum += arg_u64(ev, "xbar_activations").expect("served req carries hw");
                    adc_sum += arg_u64(ev, "adc_quantizations").unwrap();
                    energy_sum += arg_u64(ev, "energy_fj").unwrap();
                }
            }
            ("batch", Phase::Complete) => {
                batch_images += arg_u64(ev, "size").expect("batch span carries size");
            }
            _ => {}
        }
    }
    assert!(served > 0, "the session must serve something");
    assert!(shed > 0, "the overloaded session must shed something");
    assert_eq!(
        batch_images, served,
        "batch spans cover every served request"
    );
    // Exact reconciliation: request-level sums equal the scaled
    // per-image integers...
    let total = hw.scaled(served);
    assert_eq!(xbar_sum, total.crossbar_activations);
    assert_eq!(adc_sum, total.adc_quantizations);
    assert_eq!(energy_sum, total.energy_fj);
    // ...and the metrics plane agrees with both, line for line.
    let prom = telemetry.export_prometheus();
    for line in [
        format!("red_images_total{{partition=\"0\"}} {served}"),
        format!(
            "red_xbar_activations_total{{partition=\"0\"}} {}",
            total.crossbar_activations
        ),
        format!(
            "red_adc_quantizations_total{{partition=\"0\"}} {}",
            total.adc_quantizations
        ),
        format!(
            "red_energy_femtojoules_total{{partition=\"0\"}} {}",
            total.energy_fj
        ),
    ] {
        assert!(
            prom.contains(&line),
            "missing metrics line {line:?} in:\n{prom}"
        );
    }
}

/// The chip-side trace reconciles the same way: a pipelined run's `run`
/// span carries exactly `hw × images`, matching the `RuntimeReport` the
/// run returned.
#[test]
fn chip_run_span_reconciles_with_the_runtime_report() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let mut chip = ChipBuilder::new()
        .compile_seeded(&stack, 5, 42)
        .expect("stack compiles onto the chip");
    let telemetry = Telemetry::enabled();
    chip.set_telemetry(telemetry.clone(), 7);
    let inputs: Vec<_> = (0..5)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 4_000 + i as u64))
        .collect();
    let run = chip.run_pipelined(&inputs).expect("batch streams through");
    let hw = chip.hardware_per_image().scaled(inputs.len() as u64);
    let events = telemetry.snapshot();
    let span = events
        .iter()
        .find(|ev| ev.name == "run")
        .expect("run span recorded");
    assert_eq!(arg_u64(span, "images"), Some(inputs.len() as u64));
    assert_eq!(
        arg_u64(span, "xbar_activations"),
        Some(hw.crossbar_activations)
    );
    assert_eq!(
        arg_u64(span, "adc_quantizations"),
        Some(hw.adc_quantizations)
    );
    assert_eq!(arg_u64(span, "energy_fj"), Some(hw.energy_fj));
    // The span's duration is the report's modeled makespan, and the
    // per-stage spans cover every stage of the chip.
    assert_eq!(span.dur_ns, run.report.makespan_ns.round() as u64);
    let stage_spans = events.iter().filter(|ev| ev.name == "stage").count();
    assert_eq!(stage_spans, chip.depth());
    // Femtojoule counters track the report's f64 picojoules to rounding.
    let report_fj = run.report.energy_per_image_pj * inputs.len() as f64 * 1_000.0;
    assert!((hw.energy_fj as f64 - report_fj).abs() / report_fj < 1e-6);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Determinism holds across arbitrary small serving sessions, not
    /// just the hand-picked one: for any (requests, max_batch, rps)
    /// the double replay is byte-identical.
    #[test]
    fn replay_is_byte_identical_for_arbitrary_sessions(
        requests in 1usize..60,
        max_batch in 1usize..6,
        rps in 50_000.0f64..800_000.0,
    ) {
        let run = || {
            let t = Telemetry::enabled();
            serve_session(t.clone(), requests, max_batch, rps);
            (t.export_chrome_trace(), t.export_prometheus())
        };
        let (trace_a, prom_a) = run();
        let (trace_b, prom_b) = run();
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(prom_a, prom_b);
    }
}
