//! Integration coverage for the beyond-the-paper extensions (DESIGN.md
//! §5b) through the public API: convolution, pipelining, macro tiling,
//! programming cost, and sparsity-aware evaluation — and the interactions
//! between them.

use red_core::prelude::*;
use red_core::tensor::conv::conv2d;
use red_core::workloads::networks;

#[test]
fn conv_engine_runs_a_discriminator_block() {
    // A DCGAN-discriminator-style strided conv block: 16x16x8 -> 8x8x16.
    let layer = ConvLayerShape::new(16, 16, 8, 16, 4, 4, 2, 1).unwrap();
    let kernel = Kernel::from_fn(4, 4, 8, 16, |i, j, c, m| {
        ((i * 31 + j * 17 + c * 5 + m) % 160) as i64 - 80
    });
    let input = FeatureMap::from_fn(16, 16, 8, |h, w, c| ((h * 3 + w * 7 + c) % 50) as i64 + 1);
    let engine = ConvEngine::new(&XbarConfig::ideal(), &layer, &kernel).unwrap();
    let exec = engine.run(&input).unwrap();
    let golden = conv2d(&input, &kernel, 2, 1).unwrap();
    assert_eq!(exec.output, golden);
    assert_eq!((exec.output.height(), exec.output.width()), (8, 8));
    // Priced through the same cost model.
    let report = CostModel::paper_default().evaluate_conv(&layer).unwrap();
    assert_eq!(report.geometry.cycles, 64);
    assert!(report.total_energy_pj() > 0.0);
}

#[test]
fn conv_and_deconv_costs_share_the_substrate() {
    // A conv layer and the deconv layer with the same array geometry and
    // output-pixel count must be priced identically — same machine.
    let model = CostModel::paper_default();
    let deconv = LayerShape::new(8, 8, 64, 32, 3, 3, 1, 0).unwrap();
    let zp = model.evaluate(Design::ZeroPadding, &deconv).unwrap();
    let (oh, _) = (deconv.output_geometry().height, ());
    let conv = ConvLayerShape::new(oh, oh, 64, 32, 3, 3, 1, 1).unwrap();
    let cv = model.evaluate_conv(&conv).unwrap();
    assert_eq!(zp.geometry.array.rows, cv.geometry.array.rows);
    assert_eq!(zp.geometry.array.weight_cols, cv.geometry.array.weight_cols);
    // Same per-cycle machinery.
    assert!((zp.cycle_time_ns() - cv.cycle_time_ns()).abs() < 1e-9);
}

#[test]
fn whole_network_pipeline_on_all_designs() {
    let model = CostModel::paper_default();
    let stack = networks::sngan_generator(1).unwrap();
    let zp = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack.layers).unwrap();
    let red = PipelineReport::evaluate(&model, Design::red(RedLayoutPolicy::Auto), &stack.layers)
        .unwrap();
    assert_eq!(zp.depth(), 3);
    // RED compresses the bottleneck by ~stride^2 across the whole network.
    let s = red.speedup_vs(&zp);
    assert!((3.4..=4.0).contains(&s), "pipeline speedup {s}");
    // Pipeline area = sum of stages; both designs keep all weights resident.
    assert!(red.total_area_um2() > zp.total_area_um2());
    // Throughput at batch scale: affine check.
    let b = 32;
    assert!(red.batch_latency_ns(b) < zp.batch_latency_ns(b));
}

#[test]
fn tiling_preserves_paper_bands_qualitatively() {
    let model = CostModel::paper_default();
    for b in Benchmark::gans() {
        let layer = b.layer();
        let zp = model
            .evaluate_tiled(Design::ZeroPadding, &layer, MacroSpec::m512())
            .unwrap();
        let red = model
            .evaluate_tiled(
                Design::red(RedLayoutPolicy::Auto),
                &layer,
                MacroSpec::m512(),
            )
            .unwrap();
        let s = red.speedup_vs(&zp);
        assert!(
            s > 3.0,
            "{b}: tiled RED speedup {s} must stay near stride^2"
        );
        assert!(
            red.energy_saving_vs(&zp) > 0.0,
            "{b}: tiled RED must save energy"
        );
    }
}

#[test]
fn programming_cost_consistency_across_suite() {
    let model = CostModel::paper_default();
    for b in Benchmark::all() {
        let layer = b.layer();
        let costs: Vec<_> = Design::paper_lineup()
            .iter()
            .map(|&d| model.programming_cost(d, &layer).unwrap())
            .collect();
        // Identical cells and write energy; RED never slower to program.
        assert_eq!(costs[0].cells, costs[2].cells, "{b}");
        assert!(costs[2].time_ns <= costs[0].time_ns, "{b}");
        assert_eq!(
            costs[0].cells,
            layer.weights() as u128 * model.cells_per_weight() as u128,
            "{b}"
        );
    }
}

#[test]
fn sparsity_monotonically_reduces_energy() {
    let model = CostModel::paper_default();
    let layer = Benchmark::GanDeconv3.layer();
    let mut last = f64::INFINITY;
    for density in [1.0, 0.75, 0.5, 0.25] {
        let r = model
            .evaluate_with_density(Design::red(RedLayoutPolicy::Auto), &layer, density)
            .unwrap();
        let e = r.total_energy_pj();
        assert!(e < last, "density {density}: energy must fall");
        last = e;
    }
}

#[test]
fn sparsity_helps_every_design_equally_in_relative_terms() {
    // Zero activations are skipped by all three dataflows, so the RED vs
    // zero-padding energy ratio is stable across densities.
    let model = CostModel::paper_default();
    let layer = Benchmark::GanDeconv4.layer();
    let ratio_at = |d: f64| {
        let zp = model
            .evaluate_with_density(Design::ZeroPadding, &layer, d)
            .unwrap();
        let red = model
            .evaluate_with_density(Design::red(RedLayoutPolicy::Auto), &layer, d)
            .unwrap();
        red.total_energy_pj() / zp.total_energy_pj()
    };
    let dense = ratio_at(1.0);
    let sparse = ratio_at(0.5);
    assert!(
        (dense - sparse).abs() < 0.1,
        "relative energy should be density-stable (dense {dense:.3} vs sparse {sparse:.3})"
    );
}

#[test]
fn conv_then_deconv_autoencoder_roundtrip() {
    // Encoder (strided conv) -> decoder (RED deconv): the full
    // autoencoder/GAN pattern through the simulated substrate.
    let enc_layer = ConvLayerShape::new(8, 8, 4, 8, 4, 4, 2, 1).unwrap();
    let enc_kernel = Kernel::from_fn(4, 4, 4, 8, |i, j, c, m| ((i + j + c + m) % 7) as i64 - 3);
    let image = FeatureMap::from_fn(8, 8, 4, |h, w, c| ((h * 5 + w * 3 + c) % 30) as i64 + 1);
    let encoder = ConvEngine::new(&XbarConfig::ideal(), &enc_layer, &enc_kernel).unwrap();
    let code = encoder.run(&image).unwrap().output;
    assert_eq!((code.height(), code.width(), code.channels()), (4, 4, 8));

    // Clamp the code into crossbar input range before decoding.
    let code = code.map(|v| v % 100);
    let dec_layer = LayerShape::new(4, 4, 8, 4, 4, 4, 2, 1).unwrap();
    let dec_kernel = Kernel::from_fn(4, 4, 8, 4, |i, j, c, m| {
        ((i * 3 + j + c + m) % 9) as i64 - 4
    });
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .build();
    let decoded = acc
        .compile(&dec_layer, &dec_kernel)
        .unwrap()
        .run(&code)
        .unwrap();
    assert_eq!(
        (
            decoded.output.height(),
            decoded.output.width(),
            decoded.output.channels()
        ),
        (8, 8, 4)
    );
    // Verified against the golden path.
    let golden =
        red_core::tensor::deconv::deconv_direct(&code, &dec_kernel, dec_layer.spec()).unwrap();
    assert_eq!(decoded.output, golden);
}
