//! Device non-ideality studies: conductance variation, stuck-at faults and
//! ADC saturation injected into the functional crossbar simulation.
//!
//! The paper evaluates ideal devices; these tests are the repository's
//! extension establishing that (a) the simulator degrades the way real
//! ReRAM arrays do, and (b) RED's mapping is no more fragile than the
//! zero-padding baseline under identical device assumptions — RED
//! rearranges *where* weights sit, not how many cells each MAC touches.

use red_core::prelude::*;
use red_core::tensor::deconv::deconv_direct;
use red_core::tensor::quant::{rmse, sqnr_db};

fn layer() -> LayerShape {
    Benchmark::GanDeconv3.scaled_layer(64) // 4x4x8 -> 8x8x4, 4x4 kernel
}

fn to_f64(m: &FeatureMap<i64>) -> FeatureMap<f64> {
    m.map(|v| v as f64)
}

/// Relative RMSE of a noisy run against the exact output.
fn relative_error(design: Design, cfg: &XbarConfig, seed: u64) -> f64 {
    let layer = layer();
    let kernel = synth::kernel(&layer, 127, seed);
    let input = synth::input_dense(&layer, 127, seed + 1);
    let exact = deconv_direct(&input, &kernel, layer.spec()).unwrap();
    let acc = Accelerator::builder()
        .design(design)
        .xbar_config(*cfg)
        .build();
    let noisy = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
    let scale = exact
        .as_slice()
        .iter()
        .map(|v| (*v as f64).abs())
        .fold(0.0, f64::max)
        .max(1.0);
    rmse(&to_f64(&exact), &to_f64(&noisy.output)) / scale
}

#[test]
fn ideal_config_is_error_free() {
    for design in Design::paper_lineup() {
        let err = relative_error(design, &XbarConfig::ideal(), 10);
        assert_eq!(err, 0.0, "{design}: ideal config must be exact");
    }
}

#[test]
fn error_grows_with_variation() {
    // Note: very small sigmas can read back *exactly* — the
    // integrate-and-fire conversion quantizes, and a disturbance under
    // half an LSB rounds away. So assert non-decreasing, ending positive.
    let mut last = 0.0;
    for sigma in [0.02, 0.08, 0.25] {
        let cfg = XbarConfig::noisy(sigma, 0.0, 0.0, 42);
        let err = relative_error(Design::red(RedLayoutPolicy::Auto), &cfg, 20);
        assert!(
            err >= last,
            "sigma={sigma}: error {err} should not drop below {last}"
        );
        last = err;
    }
    assert!(last > 0.0, "sigma=0.25 must visibly perturb the output");
    // Even the largest tested variation stays a bounded perturbation.
    assert!(last < 0.5, "sigma=0.25 error unexpectedly large: {last}");
}

#[test]
fn stuck_faults_degrade_output() {
    let clean = relative_error(
        Design::red(RedLayoutPolicy::Auto),
        &XbarConfig::noisy(0.0, 0.0, 0.0, 7),
        30,
    );
    let faulty = relative_error(
        Design::red(RedLayoutPolicy::Auto),
        &XbarConfig::noisy(0.0, 0.02, 0.005, 7),
        30,
    );
    assert_eq!(clean, 0.0);
    assert!(faulty > 0.0, "stuck cells must perturb the output");
}

#[test]
fn red_is_no_more_fragile_than_zero_padding() {
    // Same device statistics, same workload: RED's error must be in the
    // same ballpark as the baseline's (within 3x either way). Seeds differ
    // per design (different array shapes draw different fault patterns),
    // so compare averages over several seeds.
    let cfg_of = |seed: u64| XbarConfig::noisy(0.05, 0.005, 0.001, seed);
    let avg = |design: Design| -> f64 {
        (0..5)
            .map(|s| relative_error(design, &cfg_of(s), 50 + s))
            .sum::<f64>()
            / 5.0
    };
    let zp = avg(Design::ZeroPadding);
    let red = avg(Design::red(RedLayoutPolicy::Auto));
    assert!(zp > 0.0 && red > 0.0);
    let ratio = red / zp;
    assert!(
        (1.0 / 3.0..=3.0).contains(&ratio),
        "RED/ZP error ratio {ratio} out of parity band (zp={zp}, red={red})"
    );
}

#[test]
fn saturating_adc_clips_only_when_too_narrow() {
    let layer = layer();
    let kernel = synth::kernel(&layer, 127, 70);
    let input = synth::input_dense(&layer, 127, 71);
    let exact = deconv_direct(&input, &kernel, layer.spec()).unwrap();

    // Generous ADC: no saturation at these row counts -> exact.
    let wide = XbarConfig {
        adc: AdcModel::Saturating { bits: 16 },
        ..XbarConfig::ideal()
    };
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .xbar_config(wide)
        .build();
    let out = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
    assert_eq!(
        out.output, exact,
        "16-bit ADC must not clip an 8-channel layer"
    );

    // Boundary width: an 8-channel layer on 2-bit cells can integrate up
    // to 24 counts per phase in the worst case, but the differential
    // encoding splits signs across column pairs, so this workload's
    // per-phase counts stay <= 15 — 4 bits must NOT clip. Pinning this
    // keeps the recalibration below honest: if an encoding change ever
    // pushes counts past 15, this assertion flags it.
    let boundary = XbarConfig {
        adc: AdcModel::Saturating { bits: 4 },
        ..XbarConfig::ideal()
    };
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .xbar_config(boundary)
        .build();
    let out = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
    assert_eq!(
        out.output, exact,
        "4-bit ADC sits exactly at this workload's count ceiling and must not clip"
    );

    // Starved ADC: saturation must show up as error. 3 bits (max 7
    // counts) is decisively below the observed count distribution.
    let narrow = XbarConfig {
        adc: AdcModel::Saturating { bits: 3 },
        ..XbarConfig::ideal()
    };
    let acc = Accelerator::builder()
        .design(Design::red(RedLayoutPolicy::Auto))
        .xbar_config(narrow)
        .build();
    let out = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
    assert_ne!(out.output, exact, "3-bit ADC must clip");
    // But the result is still correlated with the truth (clipping, not noise).
    let db = sqnr_db(&to_f64(&exact), &to_f64(&out.output));
    assert!(db > 3.0, "clipped output should retain signal, got {db} dB");
}

#[test]
fn ir_drop_hurts_long_lines_more() {
    use red_core::xbar::{CrossbarArray, IrDropModel};

    // Same total weights, two aspect ratios: a wide (long-wordline) array
    // vs a narrow one. Identical wire technology must droop the wide array
    // harder — the physical reason RED's short sub-crossbar lines are more
    // robust than the monolithic mappings.
    let r_wire = 25.0;
    let make = |rows: usize, cols: usize| {
        let weights: Vec<Vec<i64>> = (0..rows)
            .map(|r| (0..cols).map(|c| ((r * 7 + c) % 100) as i64 + 1).collect())
            .collect();
        let cfg = XbarConfig {
            ir_drop: IrDropModel::with_resistance(r_wire),
            ..XbarConfig::ideal()
        };
        let arr = CrossbarArray::program(&cfg, &weights).unwrap();
        let input = vec![100i64; rows];
        let exact: f64 = arr.vmm_exact(&input).iter().map(|v| *v as f64).sum();
        let droop: f64 = arr.vmm(&input).iter().map(|v| *v as f64).sum();
        (exact - droop).abs() / exact
    };
    let narrow = make(16, 8);
    let wide = make(16, 256);
    assert!(
        wide > narrow,
        "long wordlines must droop more (wide {wide:.4} vs narrow {narrow:.4})"
    );
    assert!(narrow >= 0.0 && wide < 1.0);
}

#[test]
fn ir_drop_zero_resistance_is_exact() {
    use red_core::xbar::IrDropModel;
    let cfg = XbarConfig {
        ir_drop: IrDropModel::with_resistance(0.0),
        ..XbarConfig::ideal()
    };
    let err = relative_error(Design::red(RedLayoutPolicy::Auto), &cfg, 90);
    assert_eq!(err, 0.0);
}

#[test]
fn retention_drift_degrades_over_time() {
    use red_core::device::DriftModel;
    let day = 86_400.0;
    let mut last = -1.0;
    for t in [day, 30.0 * day, 365.0 * day] {
        let cfg = XbarConfig {
            drift: DriftModel::after(0.03, t),
            ..XbarConfig::ideal()
        };
        let err = relative_error(Design::red(RedLayoutPolicy::Auto), &cfg, 95);
        assert!(
            err >= last,
            "error must not improve with time (t={t}: {err} vs {last})"
        );
        last = err;
    }
    assert!(last > 0.0, "a year of 3% drift must visibly misread");
    // Fresh arrays stay exact.
    let fresh = XbarConfig {
        drift: DriftModel::fresh(),
        ..XbarConfig::ideal()
    };
    assert_eq!(
        relative_error(Design::red(RedLayoutPolicy::Auto), &fresh, 95),
        0.0
    );
}

// ---------------------------------------------------------------------------
// In-field fault determinism: the serving chaos layer (red-server's
// FaultPlan) replays crash/drift/strike events against live arrays and
// promises byte-identical sessions. That promise reduces to three array
// contracts, property-tested here: stuck-at strikes, retention-drift
// advances, and the derived current plane are pure functions of their
// seeds and arguments — two independently constructed arrays given the
// same history read back identically.
// ---------------------------------------------------------------------------

mod chaos_determinism {
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use red_core::device::DriftModel;
    use red_core::xbar::{CrossbarArray, XbarConfig};

    /// Two calls with the same arguments must build byte-identical
    /// arrays: weights drawn from a seeded RNG, programmed ideal.
    fn programmed(rows: usize, cols: usize, wseed: u64) -> CrossbarArray {
        let cfg = XbarConfig::ideal();
        let bound = cfg.weight_bound();
        let mut rng = StdRng::seed_from_u64(wseed);
        let weights: Vec<Vec<i64>> = (0..rows)
            .map(|_| (0..cols).map(|_| rng.gen_range(-bound..=bound)).collect())
            .collect();
        CrossbarArray::program(&cfg, &weights).unwrap()
    }

    fn probe_input(rows: usize) -> Vec<i64> {
        (0..rows).map(|i| ((i * 13) % 7) as i64 - 3).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Identical (strikes, seed) on two independently programmed
        /// arrays -> identical strike maps, identical analog read-back,
        /// and repeated incremental strike batches compose
        /// deterministically.
        #[test]
        fn stuck_at_strikes_replay_identically(
            rows in 2usize..24,
            cols in 2usize..16,
            strikes in 1usize..48,
            fseed in any::<u64>(),
            wseed in any::<u64>(),
        ) {
            let mut a = programmed(rows, cols, wseed);
            let mut b = programmed(rows, cols, wseed);
            let input = probe_input(rows);
            prop_assert_eq!(a.vmm(&input), b.vmm(&input));

            // First strike batch: same running total, same outputs.
            let sa = a.apply_faults(strikes, fseed);
            let sb = b.apply_faults(strikes, fseed);
            prop_assert_eq!(sa, sb);
            prop_assert_eq!(sa, strikes as u64);
            prop_assert_eq!(a.struck_cells(), b.struck_cells());
            let va = a.vmm(&input);
            prop_assert_eq!(&va, &b.vmm(&input));

            // A second, differently seeded batch composes on top of the
            // first without divergence — the incremental path the chaos
            // layer exercises on every Strike event.
            a.apply_faults(strikes, fseed ^ 0x9E37_79B9);
            b.apply_faults(strikes, fseed ^ 0x9E37_79B9);
            prop_assert_eq!(a.struck_cells(), (2 * strikes) as u64);
            prop_assert_eq!(a.vmm(&input), b.vmm(&input));
        }

        /// Advancing retention drift by the same (nu, elapsed) on two
        /// identically programmed arrays rescales both to the same
        /// conductances; rebuilding the derived plane from unchanged
        /// state never moves the output.
        #[test]
        fn drift_advance_replays_identically(
            rows in 2usize..24,
            cols in 2usize..16,
            nu in 0.005f64..0.1,
            elapsed_s in 3600.0f64..1.0e8,
            wseed in any::<u64>(),
        ) {
            let mut a = programmed(rows, cols, wseed);
            let mut b = programmed(rows, cols, wseed);
            let input = probe_input(rows);

            let model = DriftModel::after(nu, elapsed_s);
            a.advance_drift(model);
            b.advance_drift(model);
            let drifted = a.vmm(&input);
            prop_assert_eq!(&drifted, &b.vmm(&input));

            // Plane rebuild is idempotent: re-deriving effective
            // currents from unchanged conductances is a no-op.
            a.rebuild_plane();
            prop_assert_eq!(&a.vmm(&input), &drifted);

            // A further advance (the chaos layer's cumulative-drift
            // path: DriftModel::after(nu, t1 + t2)) stays in lockstep.
            let later = DriftModel::after(nu, 2.0 * elapsed_s);
            a.advance_drift(later);
            b.advance_drift(later);
            prop_assert_eq!(a.vmm(&input), b.vmm(&input));
        }

        /// Strikes and drift interleave deterministically, and
        /// reprogramming (the repair the health prober schedules)
        /// restores an exact array no matter the fault history.
        #[test]
        fn fault_history_then_reprogram_restores_exact(
            rows in 2usize..20,
            cols in 2usize..12,
            strikes in 1usize..32,
            fseed in any::<u64>(),
            wseed in any::<u64>(),
        ) {
            let mut a = programmed(rows, cols, wseed);
            let mut b = programmed(rows, cols, wseed);
            let input = probe_input(rows);
            let golden = programmed(rows, cols, wseed).vmm_exact(&input);

            for arr in [&mut a, &mut b] {
                arr.apply_faults(strikes, fseed);
                arr.advance_drift(DriftModel::after(0.03, 86_400.0));
                arr.apply_faults(strikes, fseed.wrapping_add(1));
            }
            prop_assert_eq!(a.vmm(&input), b.vmm(&input));

            // Repair: the health layer reprograms by rewriting every
            // cell from the stored weights — modeled as a fresh program
            // of the same weights, which forgets the fault history.
            let repaired = programmed(rows, cols, wseed);
            prop_assert_eq!(repaired.struck_cells(), 0);
            prop_assert_eq!(repaired.vmm(&input), golden);
        }
    }
}

#[test]
fn variation_error_is_reproducible_per_seed() {
    let cfg = XbarConfig::noisy(0.08, 0.0, 0.0, 99);
    let a = relative_error(Design::red(RedLayoutPolicy::Auto), &cfg, 80);
    let b = relative_error(Design::red(RedLayoutPolicy::Auto), &cfg, 80);
    assert_eq!(a, b, "same seed, same error");
    let other = XbarConfig::noisy(0.08, 0.0, 0.0, 100);
    let c = relative_error(Design::red(RedLayoutPolicy::Auto), &other, 80);
    assert_ne!(a, c, "different seed, different draw");
}
