//! Workspace-seam smoke test: drives one full-size (unscaled) Table I
//! benchmark through every crate boundary CI exercises — workloads →
//! tensor → xbar → arch → core — and asserts the end-to-end contract the
//! whole repository rests on: all three designs are bit-exact with the
//! textbook deconvolution.
//!
//! The sibling suites cover the same designs on channel-scaled layers;
//! this one exists to guard the cross-crate dependency graph itself, so it
//! deliberately reaches each layer only through `red_core`'s re-exports
//! (the paths an external consumer of the workspace would use).

use red_core::prelude::*;
use red_core::tensor::deconv::deconv_direct;

/// FCN_Deconv1 is the one Table I layer whose full channel count (21) is
/// cheap enough to simulate functionally in a debug-profile CI run.
fn full_size_benchmark() -> (Benchmark, LayerShape) {
    let b = Benchmark::FcnDeconv1;
    (b, b.layer())
}

#[test]
fn all_three_designs_bit_exact_on_full_table1_layer() {
    let (b, layer) = full_size_benchmark();
    assert_eq!(
        (layer.input_h(), layer.channels(), layer.filters()),
        (16, 21, 21),
        "FCN_Deconv1 geometry drifted from Table I"
    );

    // workloads seam: seeded synthetic tensors at the exact geometry.
    let kernel = synth::kernel(&layer, 127, 2024);
    let input = synth::input_dense(&layer, 127, 2025);

    // tensor seam: the golden oracle.
    let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
    assert_eq!(
        (golden.height(), golden.width(), golden.channels()),
        (34, 34, 21),
        "FCN_Deconv1 output geometry drifted from Table I"
    );

    // core -> arch -> xbar seam: compile and run every paper design.
    for design in [
        Design::ZeroPadding,
        Design::PaddingFree,
        Design::red(RedLayoutPolicy::Auto),
    ] {
        let acc = Accelerator::builder().design(design).build();
        let exec = acc.compile(&layer, &kernel).unwrap().run(&input).unwrap();
        assert_eq!(exec.output, golden, "{b} on {design} must be bit-exact");
        assert!(exec.stats.cycles > 0, "{design} must report cycles");
    }
}

#[test]
fn cost_model_and_comparison_agree_across_seams() {
    let (_, layer) = full_size_benchmark();

    // circuit + device seams: the cost model is built from technology and
    // circuit parameters re-exported at the top level.
    let _ = TechnologyParams::node_65nm();
    let _ = CircuitParams::default();
    let _ = CellConfig::default();
    let model = CostModel::paper_default();

    // arch seam: each design prices to positive, finite totals.
    let zp = model.evaluate(Design::ZeroPadding, &layer).unwrap();
    let red = model
        .evaluate(Design::red(RedLayoutPolicy::Auto), &layer)
        .unwrap();
    assert!(zp.total_latency_ns().is_finite() && zp.total_latency_ns() > 0.0);
    assert!(red.total_latency_ns().is_finite() && red.total_latency_ns() > 0.0);

    // core seam: Comparison wraps the same three evaluations; its RED row
    // must match a direct evaluation and show the paper's stride-2 shape
    // (RED strictly faster than zero-padding).
    let cmp = Comparison::evaluate(&model, &layer).unwrap();
    assert_eq!(cmp.red().geometry.cycles, red.geometry.cycles);
    assert!(
        cmp.red().speedup_vs(cmp.zero_padding()) > 1.0,
        "RED must beat zero-padding at stride 2"
    );
}

#[test]
fn xbar_seam_programs_and_multiplies() {
    // xbar seam reached directly (as red-arch does internally): program a
    // small array through the re-exported path and check the VMM contract.
    let cfg = XbarConfig::ideal();
    let weights = vec![vec![64, -64], vec![127, 1], vec![-127, 0]];
    let array = red_core::xbar::CrossbarArray::program(&cfg, &weights).unwrap();
    let out = array.vmm(&[1, -2, 3]);
    assert_eq!(out, array.vmm_exact(&[1, -2, 3]));
    assert_eq!(out, vec![64 - 254 - 381, -64 - 2]);
}
