//! Integration tests for the allocation-free batched execution layer:
//! `CompiledLayer::run_batch` and the plan-based `run` must be bit-exact
//! against per-image execution and the golden algorithm for all three
//! designs — on the ideal path, on a noisy (`XbarConfig::noisy`) analog
//! configuration, and through the pipelined runtime at every worker
//! count — and steady-state execution must not allocate per pixel.
#![allow(unsafe_code)] // the counting global allocator below

use proptest::prelude::*;
use red_sim::red_core::prelude::*;
use red_sim::red_core::tensor::deconv::deconv_direct;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::ChipBuilder;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// System allocator wrapper counting every allocation *per thread*, so
/// the allocation-budget test measures only its own thread's work even
/// when libtest runs the other tests concurrently.
struct CountingAlloc;

thread_local! {
    // const-initialized TLS never allocates on first access, so the
    // allocator can touch it without recursing.
    static TL_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump_thread_allocations() {
    // try_with: TLS may be gone during thread teardown; skip counting then.
    let _ = TL_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump_thread_allocations();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump_thread_allocations();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed by the calling thread so far.
fn allocations_now() -> u64 {
    TL_ALLOCATIONS.with(|c| c.get())
}

/// A random small-but-arbitrary deconvolution problem plus batch.
#[derive(Debug, Clone)]
struct Problem {
    layer: LayerShape,
    kernel: Kernel<i64>,
    batch: Vec<FeatureMap<i64>>,
}

fn problem_strategy() -> impl Strategy<Value = Problem> {
    (1usize..=5, 1usize..=4, 1usize..=5, 1usize..=4, 1usize..=4)
        .prop_flat_map(|(k, s, ih, c, m)| {
            (
                Just(k),
                Just(s),
                Just(ih),
                Just(c),
                Just(m),
                0..k.clamp(1, 2), // padding < kernel (kept small)
                0..s,             // output_padding < stride
                1usize..=4,       // batch size
                any::<u64>(),
                any::<u64>(),
            )
        })
        .prop_filter_map(
            "valid deconv geometry",
            |(k, s, ih, c, m, p, op, batch, kseed, iseed)| {
                let spec = DeconvSpec::with_output_padding(k, k, s, p, op).ok()?;
                let layer = LayerShape::with_spec(ih, ih, c, m, spec).ok()?;
                let kernel = red_sim::red_core::workloads::synth::kernel(&layer, 127, kseed);
                let batch = (0..batch)
                    .map(|i| {
                        red_sim::red_core::workloads::synth::input_sparse(
                            &layer,
                            127,
                            (iseed % 4) as f64 * 0.25,
                            iseed.wrapping_add(i as u64),
                        )
                    })
                    .collect();
                Some(Problem {
                    layer,
                    kernel,
                    batch,
                })
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `run_batch`, scratch-reusing `run_with`, per-image `run`, and the
    /// golden algorithm all agree on arbitrary geometry for all three
    /// designs (the plan-based executor computes the seed per-pixel
    /// function exactly).
    #[test]
    fn batched_execution_is_bit_exact_on_arbitrary_geometry(pb in problem_strategy()) {
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).build();
            let compiled = acc.compile(&pb.layer, &pb.kernel).unwrap();
            let batch = compiled.run_batch(&pb.batch).unwrap();
            let mut scratch = compiled.make_scratch();
            for (input, exec) in pb.batch.iter().zip(&batch) {
                let golden = deconv_direct(input, &pb.kernel, pb.layer.spec()).unwrap();
                let single = compiled.run(input).unwrap();
                let with = compiled.run_with(input, &mut scratch).unwrap();
                prop_assert_eq!(&exec.output, &golden, "{} run_batch vs golden", design);
                prop_assert_eq!(&single.output, &golden, "{} run vs golden", design);
                prop_assert_eq!(&with.output, &golden, "{} run_with vs golden", design);
                prop_assert_eq!(&single.stats, &exec.stats, "{} stats", design);
            }
        }
    }

    /// On a noisy analog configuration (variation + stuck-at faults) the
    /// batched path must still be bit-exact against per-image execution:
    /// non-idealities are frozen at programming time, so execution stays
    /// deterministic.
    #[test]
    fn batched_execution_matches_per_image_on_noisy_arrays(pb in problem_strategy()) {
        let noisy = XbarConfig::noisy(0.01, 0.002, 0.001, 1234);
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).xbar_config(noisy).build();
            let compiled = acc.compile(&pb.layer, &pb.kernel).unwrap();
            let batch = compiled.run_batch(&pb.batch).unwrap();
            for (input, exec) in pb.batch.iter().zip(&batch) {
                let single = compiled.run(input).unwrap();
                prop_assert_eq!(&single.output, &exec.output, "{} noisy", design);
                prop_assert_eq!(&single.stats, &exec.stats, "{} noisy stats", design);
            }
        }
    }
}

#[test]
fn pipelined_workers_one_vs_many_bit_exact_for_all_designs() {
    let stack = networks::dcgan_generator(16).unwrap();
    let inputs: Vec<_> = (0..6)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 3_000 + i as u64))
        .collect();
    for design in Design::paper_lineup() {
        let one = ChipBuilder::new()
            .design(design)
            .workers(1)
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let many = ChipBuilder::new()
            .design(design)
            .workers(4)
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let seq = one.run_sequential(&inputs).unwrap();
        let run1 = one.run_pipelined(&inputs).unwrap();
        let run4 = many.run_pipelined(&inputs).unwrap();
        assert_eq!(
            seq.outputs, run1.outputs,
            "{design}: workers=1 vs sequential"
        );
        assert_eq!(
            seq.outputs, run4.outputs,
            "{design}: workers=4 vs sequential"
        );
        // The modeled hardware schedule is worker-count invariant.
        assert_eq!(run1.report.fill_latency_ns, run4.report.fill_latency_ns);
        assert_eq!(
            run1.report.steady_interval_ns,
            run4.report.steady_interval_ns
        );
        assert!(run4.report.reconciles_with(&many.pipeline_report()));
    }
}

/// A warmed caller-owned [`VmmScratch`] makes `vmm_analog_batch` — and
/// the `vmm_batch` non-ideal fallback that routes through it — perform
/// **zero** heap allocations, above and below the phase-major threshold:
/// every buffer (phase decomposition, column currents, batch
/// accumulators) lives in the scratch, which PR 3's allocation-free
/// contract hands to the caller.
#[test]
fn warmed_analog_batch_allocates_nothing() {
    use red_sim::red_core::xbar::{CrossbarArray, VmmScratch};
    // 512 x 128 differential: 4 MiB effective-current plane, exactly the
    // phase-major gate; 24 x 4 stays on the per-input fallback.
    for (rows, cols, phase_major) in [(512usize, 128usize, true), (24, 4, false)] {
        let cfg = XbarConfig::noisy(0.02, 0.001, 0.0, 13);
        let weights: Vec<Vec<i64>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * 31 + c * 7) % 255) as i64 - 127)
                    .collect()
            })
            .collect();
        let a = CrossbarArray::program(&cfg, &weights).unwrap();
        assert_eq!(a.analog_batching_pays(), phase_major, "{rows}x{cols}");
        let n = 3;
        let inputs: Vec<i64> = (0..n * rows)
            .map(|i| ((i * 17) % 255) as i64 - 127)
            .collect();
        let mut scratch = VmmScratch::new();
        let mut out = vec![0i64; n * cols];
        // Warm both entry points, then count.
        a.vmm_analog_batch(&inputs, n, &mut scratch, &mut out);
        a.vmm_batch(&inputs, n, &mut scratch, &mut out);
        let before = allocations_now();
        a.vmm_analog_batch(&inputs, n, &mut scratch, &mut out);
        a.vmm_batch(&inputs, n, &mut scratch, &mut out);
        let during = allocations_now() - before;
        assert_eq!(
            during, 0,
            "{rows}x{cols}: warmed analog batch must not touch the heap"
        );
    }
}

/// Batched noisy execution allocates per *batch*, never per pixel: a
/// second `run_batch` on a layer whose crossbar crosses the phase-major
/// analog threshold stays within a small per-batch budget (outputs,
/// batch gather buffers, one scratch) — orders of magnitude below the
/// output-pixel count the batch produces.
#[test]
fn noisy_run_batch_allocates_per_batch_not_per_pixel() {
    // 4x4 stride-2 deconv, 128 channels, 64 filters: the zero-padding
    // array's plane is (16*128) x 512 f64 = 8 MiB and padding-free's
    // 128 x 8192 f64 = 8 MiB — both cross the phase-major gate; RED's
    // per-tap planes (128 x 512) stay below it and take the per-image
    // fallback, which must be equally bounded.
    let spec = DeconvSpec::with_output_padding(4, 4, 2, 1, 0).unwrap();
    let layer = LayerShape::with_spec(4, 4, 128, 64, spec).unwrap();
    let kernel = synth::kernel(&layer, 100, 7);
    let inputs: Vec<_> = (0..3)
        .map(|i| synth::input_dense(&layer, 100, 20 + i))
        .collect();
    let pixels = layer.output_geometry().pixels() as u64 * inputs.len() as u64;
    assert!(pixels >= 64, "test layer must be non-trivial");
    let budget = 48 + 16 * inputs.len() as u64;
    for design in Design::paper_lineup() {
        let acc = Accelerator::builder()
            .design(design)
            .xbar_config(XbarConfig::noisy(0.01, 0.0005, 0.0, 5))
            .build();
        let compiled = acc.compile(&layer, &kernel).unwrap();
        let warm = compiled.run_batch(&inputs).unwrap();
        let before = allocations_now();
        let batch = compiled.run_batch(&inputs).unwrap();
        let during = allocations_now() - before;
        for (w, b) in warm.iter().zip(&batch) {
            assert_eq!(w.output, b.output);
        }
        assert!(
            during <= budget,
            "{design}: {during} allocations per noisy batch (budget {budget}, \
             {pixels} output pixels)"
        );
    }
}

/// Steady-state execution performs no per-pixel heap allocation: once the
/// plan is built (compile time) and the scratch is warm (first run), a
/// whole-image `run_with` allocates only the output tensor and a few
/// bookkeeping cells — orders of magnitude fewer allocations than the
/// hundreds of output pixels it produces.
#[test]
fn steady_state_run_allocates_output_only() {
    let layer = Benchmark::GanDeconv3.scaled_layer(64); // 8x8 -> stride-2 deconv
    let kernel = synth::kernel(&layer, 100, 7);
    let input = synth::input_dense(&layer, 100, 8);
    let pixels = layer.output_geometry().pixels() as u64;
    assert!(pixels >= 64, "test layer must be non-trivial");
    for (cfg, budget) in [
        // Ideal path: output tensor + Execution plumbing only.
        (XbarConfig::ideal(), 8u64),
        // Analog path: same budget — the bit-serial phase buffers all
        // live in the warmed scratch.
        (XbarConfig::noisy(0.01, 0.001, 0.0, 5), 8u64),
    ] {
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder()
                .design(design)
                .xbar_config(cfg)
                .build();
            let compiled = acc.compile(&layer, &kernel).unwrap();
            let mut scratch = compiled.make_scratch();
            let warm = compiled.run_with(&input, &mut scratch).unwrap();
            let before = allocations_now();
            let exec = compiled.run_with(&input, &mut scratch).unwrap();
            let during = allocations_now() - before;
            assert_eq!(warm.output, exec.output);
            assert!(
                during <= budget,
                "{design}: {during} allocations in steady state (budget {budget}, \
                 {pixels} output pixels)"
            );
        }
    }
}
