//! Observability acceptance tests: the deterministic scrape pipeline
//! and the burn-rate alert engine, exercised through a full chaos +
//! overload serving session. The scraped window deltas must reconcile
//! *exactly* with the end-of-run registry totals (the conservation
//! ledger survives ring eviction), at least one alert must fire during
//! the induced outage and resolve after the repair lands, and the
//! whole alert + time-series record must replay byte-identically —
//! alerts are pure functions of the scrape-window sequence, which is a
//! pure function of (trace, plan, seed).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_sim::red_core::prelude::*;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::ChipBuilder;
use red_sim::red_server::{
    drive, ChipFleet, FaultPlan, Fifo, LoadMode, LoadgenConfig, ScrapeConfig, ServerConfig,
    TenantClass,
};
use red_sim::red_telemetry::{SeriesSnapshot, Telemetry};
use std::sync::OnceLock;

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial

/// One compiled RED fleet (1 partition, 2 replicas) plus its fill
/// latency, shared across cases — compilation dominates otherwise.
fn shared_fleet() -> &'static (ChipFleet, u64) {
    static FLEET: OnceLock<(ChipFleet, u64)> = OnceLock::new();
    FLEET.get_or_init(|| {
        let stack = networks::dcgan_generator(SCALE).unwrap();
        let chip = ChipBuilder::new()
            .design(Design::red(RedLayoutPolicy::Auto))
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        let fill = chip.pipeline_report().fill_latency_ns() as u64;
        (ChipFleet::new(chip, 2).unwrap(), fill)
    })
}

/// Two service tiers so the burn-rate rules have per-tenant SLOs to
/// evaluate against: a deadline-carrying interactive class and a
/// best-effort batch class.
fn two_tiers(fill: u64) -> Vec<TenantClass> {
    vec![
        TenantClass::named("interactive")
            .weight(4.0)
            .priority(0)
            .slo_ns(6 * fill),
        TenantClass::named("batch").weight(1.0).priority(1),
    ]
}

/// The conservation invariant, per counter series: the eviction ledger
/// plus every retained window delta reproduces the registry total
/// exactly, even after the bounded ring wrapped.
fn assert_conservation(series: &[SeriesSnapshot]) {
    let mut counters = 0usize;
    for s in series {
        if s.kind != "counter" {
            continue;
        }
        counters += 1;
        let retained: i64 = s.samples.iter().map(|&(_, v)| v).sum();
        assert_eq!(
            s.evicted_sum + retained,
            s.total,
            "{}/{}: evicted_sum {} + retained {} must equal total {}",
            s.chart,
            s.key,
            s.evicted_sum,
            retained,
            s.total
        );
    }
    assert!(counters > 0, "the scrape export must carry counter series");
}

/// Sums the `total` of every counter series on `chart` (partition 0 is
/// the only partition in these sessions).
fn chart_total(series: &[SeriesSnapshot], chart: &str) -> i64 {
    series
        .iter()
        .filter(|s| s.kind == "counter" && s.chart == chart)
        .map(|s| s.total)
        .sum()
}

/// A chaos + overload session with a deliberately tiny scrape ring:
/// the rings wrap (eviction is exercised, not just configured), yet
/// every counter series still reconciles with the end-of-run registry
/// totals, which in turn match the server report's own ledgers.
#[test]
fn scraped_window_deltas_reconcile_with_registry_totals() {
    let (fleet, fill) = shared_fleet();
    let fill = *fill;
    let telemetry = Telemetry::enabled();
    let plan = FaultPlan::new(17)
        .crash(40 * fill, 0, 1)
        .drift(300 * fill, 0, 2_592_000.0)
        .strikes(500 * fill, 0, 0, 256);
    let config = ServerConfig::new()
        .max_batch(8)
        .max_wait_ns(fill / 2)
        .model_only()
        .tenants(two_tiers(fill))
        .fault_plan(plan)
        .scrape(ScrapeConfig {
            interval_ns: 2 * fill,
            ring_capacity: 32, // force eviction: the session spans far more windows
        })
        .telemetry(telemetry.clone());
    let load = LoadgenConfig {
        mode: LoadMode::Open {
            rps: 3.0e9 / fill as f64,
        },
        clients: 4,
        requests: 3_000,
        horizon_ns: None,
        slo_ns: None,
        seed: 33,
        stream: true,
    };
    let report = drive(fleet, &config, &load, &[]).expect("chaos load runs");
    assert!(report.reconciles());
    assert_eq!(report.faults_injected, 3);

    let series = telemetry.timeseries_snapshot();
    assert_conservation(&series);
    assert!(
        series.iter().any(|s| s.kind == "counter" && s.evicted > 0),
        "a 32-slot ring over a 3000-request session must have evicted samples"
    );
    assert_eq!(
        chart_total(&series, "served"),
        report.served as i64,
        "summed served window deltas must reproduce the report total"
    );
    assert_eq!(
        chart_total(&series, "shed"),
        report.shed as i64,
        "summed shed window deltas must reproduce the report total"
    );
    let faults: i64 = series
        .iter()
        .filter(|s| s.chart == "faults" && s.key == "injected")
        .map(|s| s.total)
        .sum();
    assert_eq!(faults, report.faults_injected as i64);
}

/// A replica crash quarantines and re-programs mid-session: the
/// level-triggered `quarantine` rule must fire while the replica is
/// out, then resolve (hysteretically) once the repair lands and the
/// calm span elapses — all stamped on the virtual clock.
#[test]
fn alert_fires_during_outage_and_resolves_after_repair() {
    let (fleet, fill) = shared_fleet();
    let fill = *fill;
    let crash_at = 40 * fill;
    let telemetry = Telemetry::enabled();
    let config = ServerConfig::new()
        .max_batch(8)
        .max_wait_ns(fill / 2)
        .policy(Fifo)
        .model_only()
        .tenants(two_tiers(fill))
        .fault_plan(FaultPlan::new(7).crash(crash_at, 0, 1))
        .scrape(ScrapeConfig {
            interval_ns: fill,
            ..ScrapeConfig::default()
        })
        .telemetry(telemetry.clone());
    let load = LoadgenConfig {
        mode: LoadMode::Open {
            rps: 2.0e9 / fill as f64,
        },
        clients: 4,
        requests: 4_000,
        horizon_ns: None,
        slo_ns: None,
        seed: 5,
        stream: true,
    };
    let report = drive(fleet, &config, &load, &[]).expect("chaos load runs");
    assert!(report.reconciles());
    assert_eq!(report.faults_injected, 1);
    assert!(report.reprograms >= 1, "the crashed replica must repair");

    let quarantine = report
        .alerts
        .iter()
        .find(|a| a.rule == "quarantine")
        .expect("the quarantine rule must fire while the replica is out");
    assert_eq!(quarantine.partition, 0);
    // Elapsed windows flush at the next batch-close pump and read gauge
    // levels at flush time, so the fire edge may be stamped up to the
    // pump lag *before* the crash's own instant — bound that lag.
    assert!(
        quarantine.fired_at_ns + 8 * fill >= crash_at,
        "fired at {} — too far before the crash at {crash_at}",
        quarantine.fired_at_ns
    );
    let resolved = quarantine
        .resolved_at_ns
        .expect("the alert must resolve after the repair");
    assert!(
        resolved > crash_at && resolved > quarantine.fired_at_ns,
        "resolve edge {resolved} must land after the crash at {crash_at} \
         and the fire edge {}",
        quarantine.fired_at_ns
    );
    // Every reported episode is well-formed: fire precedes resolve.
    for a in &report.alerts {
        if let Some(r) = a.resolved_at_ns {
            assert!(r > a.fired_at_ns, "{}: resolve must follow fire", a.rule);
        }
    }
}

/// A seeded arbitrary fault plan against partition 0, as in the chaos
/// suite: always at least one crash, plus a random tail of crashes,
/// stalls, drift advances, and strike batches.
fn random_plan(seed: u64, extra: usize, span_ns: u64, replicas: usize) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut at = || rng.gen_range(1..span_ns.max(2));
    let mut plan = FaultPlan::new(seed).crash(at(), 0, 0);
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    for _ in 0..extra {
        let t = at();
        plan = match rng2.gen_range(0..4u32) {
            0 => plan.crash(t, 0, rng2.gen_range(0..replicas)),
            1 => plan.stall(
                t,
                0,
                rng2.gen_range(0..replicas),
                rng2.gen_range(1..200_000),
            ),
            2 => plan.drift(t, 0, rng2.gen_range(1.0e3..1.0e7)),
            _ => plan.strikes(t, 0, rng2.gen_range(0..replicas), rng2.gen_range(1..512)),
        };
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under an arbitrary chaos plan, the scraped time-series still
    /// conserve exactly, and the full observability record — alert
    /// fire/resolve sequence and every retained sample — double-replays
    /// identically: same episodes, same values, same bytes.
    #[test]
    fn alert_sequences_double_replay_identically_under_chaos(
        seed in any::<u64>(),
        extra in 0usize..=4,
    ) {
        let (fleet, fill) = shared_fleet();
        let fill = *fill;
        let n = 400usize;
        let span = n as u64 * fill / 2;
        let plan = random_plan(seed, extra, span, 2);
        let load = LoadgenConfig {
            mode: LoadMode::Open { rps: 2.0e9 / fill as f64 },
            clients: 4,
            requests: n,
            horizon_ns: None,
            slo_ns: None,
            seed: seed ^ 0x5EED,
            stream: true,
        };
        let run = || {
            let telemetry = Telemetry::enabled();
            let config = ServerConfig::new()
                .max_batch(8)
                .max_wait_ns(fill / 2)
                .model_only()
                .tenants(two_tiers(fill))
                .fault_plan(plan.clone())
                .scrape(ScrapeConfig { interval_ns: fill, ring_capacity: 64 })
                .telemetry(telemetry.clone());
            let report = drive(fleet, &config, &load, &[]).expect("chaos load runs");
            (report, telemetry.timeseries_snapshot(), telemetry.export_chrome_trace())
        };
        let (a, series_a, trace_a) = run();
        let (b, series_b, trace_b) = run();
        prop_assert!(a.reconciles() && b.reconciles());
        assert_conservation(&series_a);
        prop_assert_eq!(
            &a.alerts, &b.alerts,
            "alert fire/resolve episodes must replay identically"
        );
        prop_assert_eq!(
            series_a, series_b,
            "every retained sample and eviction ledger must replay identically"
        );
        prop_assert_eq!(
            trace_a, trace_b,
            "the exported timeline (alert instants, counter tracks) must \
             replay byte-for-byte"
        );
    }
}
