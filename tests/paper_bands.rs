//! Calibration guard: every headline ratio the paper reports must fall in
//! (or near) its quoted band under the default cost model.
//!
//! These bands pin the reproduction: if a change to `CircuitParams`,
//! `TechnologyParams`, the geometry derivation, or the component models
//! breaks the shape of the paper's results, this suite fails.
//!
//! Paper anchors (RED, DATE 2019, §IV):
//! * Fig. 7(a): RED speedup over zero-padding 3.69×–31.15×;
//! * §IV-B1: zero-padding latency 1.55×–2.62× the padding-free design (GANs);
//! * §IV-B1: zero-padding needs `stride²` more cycles, hence ~4× periphery
//!   latency at stride 2;
//! * Fig. 8 / §IV-B2: padding-free array energy 4.48×–7.53× the others;
//!   padding-free total energy up to 6.68× on GANs; RED saves 8 %–88.36 %
//!   vs zero-padding; zero-padding and RED have similar array energy;
//! * Fig. 9 / §IV-B3: identical cell (array) area; padding-free +9.79 %
//!   (GANs) / +116.57 % (FCNs) total area; RED ≈ +21.41 %.
//!
//! Where our substituted NeuroSim-style model cannot hit the exact quoted
//! number, the band is widened and the deviation is documented in
//! EXPERIMENTS.md (notably FCN area overheads, which depend strongly on
//! how per-sub-crossbar periphery is shared — see DESIGN.md §3).

use red_core::prelude::*;
use red_core::Comparison;

fn comparisons() -> Vec<(Benchmark, Comparison)> {
    let model = CostModel::paper_default();
    Benchmark::all()
        .iter()
        .map(|&b| {
            (
                b,
                Comparison::evaluate(&model, &b.layer()).expect("evaluation succeeds"),
            )
        })
        .collect()
}

#[test]
fn fig7a_red_speedup_band() {
    let mut speedups = Vec::new();
    for (b, cmp) in comparisons() {
        let s = cmp.red().speedup_vs(cmp.zero_padding());
        speedups.push((b, s));
    }
    let min = speedups
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let max = speedups.iter().map(|(_, s)| *s).fold(0.0, f64::max);
    // Paper: 3.69–31.15.
    assert!(
        (3.4..=4.0).contains(&min),
        "min RED speedup {min:.2} outside [3.4, 4.0] (paper 3.69): {speedups:?}"
    );
    assert!(
        (29.0..=33.0).contains(&max),
        "max RED speedup {max:.2} outside [29, 33] (paper 31.15): {speedups:?}"
    );
    // The maximum must come from the halved-SCT FCN layer.
    let (b_max, _) = speedups
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty");
    assert_eq!(*b_max, Benchmark::FcnDeconv2);
}

#[test]
fn fig7_zero_padding_vs_padding_free_latency_gans() {
    for (b, cmp) in comparisons() {
        if !b.is_gan() {
            continue;
        }
        let ratio = cmp.zero_padding().total_latency_ns() / cmp.padding_free().total_latency_ns();
        // Paper: 1.55–2.62 on the GAN benchmarks.
        assert!(
            (1.55..=2.62).contains(&ratio),
            "{b}: ZP/PF latency {ratio:.2} outside paper band [1.55, 2.62]"
        );
    }
}

#[test]
fn fig7b_periphery_latency_scales_with_stride_squared() {
    for (b, cmp) in comparisons() {
        if b.layer().spec().stride() != 2 {
            continue;
        }
        let ratio = cmp.zero_padding().periphery_latency_ns() / cmp.red().periphery_latency_ns();
        // Paper: "the zero-padding design reaches 4x periphery latency
        // compared to the padding-free design and RED" at stride 2. RED's
        // merge stage makes its periphery slightly slower per cycle, so
        // the measured ratio sits just below 4.
        assert!(
            (3.0..=4.5).contains(&ratio),
            "{b}: ZP/RED periphery latency ratio {ratio:.2} outside [3.0, 4.5]"
        );
    }
}

#[test]
fn fig8_padding_free_array_energy_band_gans() {
    for (b, cmp) in comparisons() {
        if !b.is_gan() {
            continue;
        }
        let vs_zp = cmp.padding_free().array_energy_pj() / cmp.zero_padding().array_energy_pj();
        // Paper: 4.48–7.53x "compared to the other two designs".
        assert!(
            (4.0..=8.0).contains(&vs_zp),
            "{b}: PF/ZP array energy {vs_zp:.2} outside [4.0, 8.0] (paper 4.48-7.53)"
        );
    }
}

#[test]
fn fig8_zero_padding_and_red_have_similar_array_energy() {
    for (b, cmp) in comparisons() {
        let ratio = cmp.red().array_energy_pj() / cmp.zero_padding().array_energy_pj();
        if b.is_gan() {
            // §IV-B2: "the zero-padding design and RED have the similar
            // array energy" — identical non-zero work, identical wordline
            // geometry; only the small bitline-precharge term differs.
            assert!(
                (0.75..=1.1).contains(&ratio),
                "{b}: RED/ZP array energy {ratio:.3} not similar"
            );
        } else {
            // On the FCN layers the zero-padding design's stride²-inflated
            // cycle count burns extra bitline precharge, so RED's array
            // energy comes out lower rather than equal (deviation noted in
            // EXPERIMENTS.md); it must never be higher.
            assert!(
                ratio <= 1.05,
                "{b}: RED array energy must not exceed zero-padding's ({ratio:.3})"
            );
        }
    }
}

#[test]
fn fig8a_red_energy_saving_band() {
    let mut savings = Vec::new();
    for (b, cmp) in comparisons() {
        let s = cmp.red().energy_saving_vs(cmp.zero_padding());
        assert!(s > 0.0, "{b}: RED must save energy");
        savings.push(s);
    }
    let min = savings.iter().copied().fold(f64::INFINITY, f64::min);
    let max = savings.iter().copied().fold(0.0, f64::max);
    // Paper: 8%–88.36%.
    assert!(
        (0.05..=0.30).contains(&min),
        "min RED energy saving {:.1}% outside [5%, 30%] (paper 8%)",
        min * 100.0
    );
    assert!(
        (0.80..=0.97).contains(&max),
        "max RED energy saving {:.1}% outside [80%, 97%] (paper 88.36%)",
        max * 100.0
    );
}

#[test]
fn fig8_padding_free_total_energy_gans() {
    let mut worst: f64 = 0.0;
    for (b, cmp) in comparisons() {
        if !b.is_gan() {
            continue;
        }
        let rel = cmp.padding_free().total_energy_pj() / cmp.zero_padding().total_energy_pj();
        assert!(
            rel > 2.0,
            "{b}: PF should cost much more energy on GANs, got {rel:.2}"
        );
        worst = worst.max(rel);
    }
    // Paper: "consumes up to 6.68x more energy than the others when
    // implementing GAN".
    assert!(
        (4.0..=7.5).contains(&worst),
        "worst PF/ZP GAN energy {worst:.2} outside [4.0, 7.5] (paper 6.68)"
    );
}

#[test]
fn fig9_identical_array_cell_area() {
    for (b, cmp) in comparisons() {
        let zp = cmp.zero_padding().area_um2(Component::Computation);
        for r in cmp.reports() {
            let rel = (r.area_um2(Component::Computation) - zp).abs() / zp;
            assert!(
                rel < 1e-9,
                "{b}: cell area must be identical across designs"
            );
        }
    }
}

#[test]
fn fig9_padding_free_area_overheads() {
    for (b, cmp) in comparisons() {
        let ovh = cmp.padding_free().area_overhead_vs(cmp.zero_padding());
        if b.is_gan() {
            // Paper: +9.79% on GANs (ours sits slightly lower because the
            // read-circuit unit area must also satisfy the FCN band).
            assert!(
                (0.02..=0.15).contains(&ovh),
                "{b}: PF area overhead {:.1}% outside [2%, 15%] (paper 9.79%)",
                ovh * 100.0
            );
        } else if b == Benchmark::FcnDeconv2 {
            // Paper: +116.57% on FCN_Deconv2.
            assert!(
                (0.9..=1.6).contains(&ovh),
                "FCN_Deconv2: PF area overhead {:.1}% outside [90%, 160%] (paper 116.57%)",
                ovh * 100.0
            );
        }
    }
}

#[test]
fn fig9_red_area_overhead() {
    for (b, cmp) in comparisons() {
        let ovh = cmp.red().area_overhead_vs(cmp.zero_padding());
        if b.is_gan() {
            // Paper: +21.41% (abstract quotes 22.14%).
            assert!(
                (0.15..=0.30).contains(&ovh),
                "{b}: RED area overhead {:.1}% outside [15%, 30%] (paper 21.41%)",
                ovh * 100.0
            );
        } else {
            // FCN layers cannot amortize per-sub-crossbar periphery over 21
            // channels; our model reports a larger overhead than the
            // paper's flat ~21% claim (documented in EXPERIMENTS.md). RED
            // must still be far cheaper than the padding-free design's
            // overhead on FCN_Deconv2.
            assert!(ovh > 0.0, "{b}: RED costs area");
            if b == Benchmark::FcnDeconv2 {
                let pf = cmp.padding_free().area_overhead_vs(cmp.zero_padding());
                assert!(ovh < pf, "FCN_Deconv2: RED overhead must undercut PF");
            }
        }
    }
}

#[test]
fn fig4_redundancy_anchors() {
    // 86.8% at stride 2 and 99.8% at stride 32 for the SNGAN 4x4 input.
    let pts =
        red_core::tensor::redundancy::sweep_strides(4, 4, 4, 1, &[2, 32]).expect("sweep succeeds");
    assert!((pts[0].map_zero_fraction - 0.868).abs() < 0.001);
    assert!((pts[1].map_zero_fraction - 0.998).abs() < 0.0005);
}

#[test]
fn latency_reduction_vs_zero_padding_band() {
    // §IV-B1: RED arouses 76.9%–96.8% less array+periphery latency than
    // the zero-padding design. 1 - 1/3.69 = 72.9% at the low end in our
    // units; keep a generous band around the paper's.
    for (b, cmp) in comparisons() {
        let red = cmp.red().total_latency_ns();
        let zp = cmp.zero_padding().total_latency_ns();
        let reduction = 1.0 - red / zp;
        assert!(
            (0.70..=0.98).contains(&reduction),
            "{b}: latency reduction {:.1}% outside [70%, 98%] (paper 76.9-96.8%)",
            reduction * 100.0
        );
    }
}

#[test]
fn speedup_ordering_is_monotone_in_design_quality() {
    // On every benchmark: RED fastest, zero-padding slowest (the paper's
    // Fig. 7(a) ordering).
    for (b, cmp) in comparisons() {
        let zp = cmp.zero_padding().total_latency_ns();
        let pf = cmp.padding_free().total_latency_ns();
        let red = cmp.red().total_latency_ns();
        assert!(red < pf && pf < zp, "{b}: expected RED < PF < ZP latency");
    }
}
