//! Acceptance tests for brownout serving: precision-degrading overload
//! control with bounded-error accounting.
//!
//! The headline claim: under a quarantine-heavy fault plan at well over
//! the fleet's capacity, a brownout-enabled run serves **strictly
//! more** requests (sheds fewer) than the identical trace with brownout
//! off, the full-pinned interactive tenant's p99 stays under its SLO,
//! and both sessions — being pure functions of the request trace —
//! replay byte-identically, telemetry timeline included. Functional
//! sessions additionally meter the worst *observed* output deviation of
//! every degraded batch against its full-precision re-execution and
//! must stay within the advertised worst-case bound.

use proptest::prelude::*;
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use red_server::{
    drive, BrownoutConfig, ChipFleet, DeadlineShed, ExecPrecision, FaultPlan, HealthConfig,
    LoadMode, LoadgenConfig, ServerConfig, ServerReport, TenantClass,
};
use red_telemetry::Telemetry;
use std::sync::OnceLock;

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial

/// One compiled RED fleet (2 replicas), shared across cases.
fn shared_fleet() -> &'static ChipFleet {
    static FLEET: OnceLock<ChipFleet> = OnceLock::new();
    FLEET.get_or_init(|| {
        let stack = networks::dcgan_generator(SCALE).unwrap();
        let chip = ChipBuilder::new()
            .design(Design::red(RedLayoutPolicy::Auto))
            .compile_seeded(&stack, 5, 42)
            .unwrap();
        ChipFleet::new(chip, 2).unwrap()
    })
}

/// An interactive tenant pinned to bit-exact service plus three
/// deadline-bound best-effort tenants free to brown out — the mix the
/// precision floor exists for. Three best-effort classes (one client
/// each) keep pure best-effort batches common, and those are the only
/// batches a full-pinned neighbour cannot drag back to full precision.
fn tenant_mix(slo_ns: u64) -> Vec<TenantClass> {
    vec![
        TenantClass::named("interactive")
            .weight(4.0)
            .slo_ns(slo_ns)
            .precision_floor(ExecPrecision::Full),
        TenantClass::named("be0").slo_ns(3 * slo_ns),
        TenantClass::named("be1").slo_ns(3 * slo_ns),
        TenantClass::named("be2").slo_ns(3 * slo_ns),
    ]
}

/// Drives the shared fleet at `overload`x its peak throughput under a
/// quarantine-heavy fault plan (a stuck-at strike burst plus a
/// retention-drift advance — both quarantine and reprogram replicas),
/// with or without brownout control, capturing the telemetry timeline.
fn chaos_session(overload: f64, brownout: bool, seed: u64) -> (ServerReport, String) {
    let fleet = shared_fleet();
    let slo_ns = 400_000u64;
    let plan = FaultPlan::new(seed)
        .strikes(40_000, 0, 0, 512)
        .drift(120_000, 0, 2_592_000.0);
    let tele = Telemetry::enabled();
    // DeadlineShed makes degraded pricing monotone: a request doomed at
    // full-precision latency can fit its deadline at the shorter
    // degraded makespan, so brownout turns sheds directly into serves.
    let mut config = ServerConfig::new()
        .max_batch(4)
        .max_wait_ns(20_000)
        .policy(DeadlineShed)
        .tenants(tenant_mix(slo_ns))
        .model_only()
        .fault_plan(plan)
        .health(HealthConfig::default().probe_interval_ns(10_000))
        .telemetry(tele.clone());
    if brownout {
        config = config.brownout(BrownoutConfig::default());
    }
    let load = LoadgenConfig {
        mode: LoadMode::Open {
            rps: overload * fleet.peak_throughput_per_s(),
        },
        clients: 4,
        requests: 2_000,
        horizon_ns: None,
        slo_ns: None,
        seed,
        stream: true,
    };
    let report = drive(fleet, &config, &load, &[]).unwrap();
    (report, tele.export_chrome_trace())
}

#[test]
fn brownout_outserves_shedding_under_quarantine_overload() {
    let (off, off_trace) = chaos_session(1.6, false, 7);
    let (on, on_trace) = chaos_session(1.6, true, 7);

    // Same trace, same faults: degradation must turn sheds into serves.
    assert_eq!(on.offered, off.offered, "identical offered trace");
    assert!(
        on.served > off.served && on.shed < off.shed,
        "brownout must serve strictly more than shedding: \
         served {} vs {}, shed {} vs {}",
        on.served,
        off.served,
        on.shed,
        off.shed,
    );
    let degraded: u64 = on
        .served_by_tier
        .iter()
        .filter(|(tier, _)| tier != "full")
        .map(|&(_, n)| n)
        .sum();
    assert!(degraded > 0, "the extra headroom comes from degraded tiers");
    assert!(
        on.partition_reports[0].brownout_events.len() >= 2,
        "the controller stepped down and (eventually) back"
    );
    // Brownout off: nothing degrades, no transitions, ledger unchanged.
    assert_eq!(off.served_by_tier[0], ("full".to_string(), off.served));
    assert!(off.partition_reports[0].brownout_events.is_empty());

    // The interactive tenant is pinned Full: it keeps its SLO and is
    // never harmed by the degradation serving its neighbours.
    let interactive = &on.tenant_reports[0];
    assert!(
        interactive.total.p99() <= interactive.slo_ns.unwrap(),
        "interactive p99 {} must stay under the {} ns SLO",
        interactive.total.p99(),
        interactive.slo_ns.unwrap(),
    );
    assert!(interactive.served >= off.tenant_reports[0].served);

    // Both sessions replay byte-identically, timeline included.
    let (off2, off_trace2) = chaos_session(1.6, false, 7);
    let (on2, on_trace2) = chaos_session(1.6, true, 7);
    assert_eq!(off_trace, off_trace2, "brownout-off replay diverged");
    assert_eq!(on_trace, on_trace2, "brownout-on replay diverged");
    assert_eq!(off.served, off2.served);
    assert_eq!(on.served_by_tier, on2.served_by_tier);

    // Both ledgers still reconcile at repriced tiers.
    assert!(on.reconciles() && off.reconciles());
}

#[test]
fn degraded_functional_outputs_stay_within_the_advertised_bound() {
    // A tiny functional fleet, every tenant free to brown out, driven
    // past capacity so the controller actually degrades: the workers
    // re-run every degraded batch at full precision and meter the worst
    // observed deviation, which must respect the crossbar bound.
    let stack = networks::dcgan_generator(4).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let bound_eco = chip.truncation_error_bound(ExecPrecision::Eco);
    let bound_deep = chip.truncation_error_bound(ExecPrecision::Brownout);
    assert!(
        0.0 < bound_eco && bound_eco <= bound_deep,
        "advertised bound grows with degradation depth"
    );
    let fleet = ChipFleet::new(chip, 1).unwrap();
    let traffic = networks::request_stream(&stack, 8, 16, 0xBEEF);
    let config = ServerConfig::new()
        .max_batch(4)
        .max_wait_ns(20_000)
        .tenants(vec![TenantClass::default()])
        .brownout(BrownoutConfig {
            cooldown_ns: 100_000,
            ..BrownoutConfig::default()
        });
    let load = LoadgenConfig {
        mode: LoadMode::Open {
            rps: 3.0 * fleet.peak_throughput_per_s(),
        },
        clients: 2,
        requests: 120,
        horizon_ns: None,
        slo_ns: None,
        seed: 9,
        stream: false,
    };
    let report = drive(&fleet, &config, &load, std::slice::from_ref(&traffic)).unwrap();
    let degraded: u64 = report.served_by_tier[1..].iter().map(|&(_, n)| n).sum();
    assert!(degraded > 0, "overload must reach a degraded tier");
    assert!(
        report.precision_error_bound >= bound_eco,
        "the session advertises the deepest executed tier's bound"
    );
    assert!(
        report.max_observed_error <= report.precision_error_bound,
        "observed error {} exceeds the advertised bound {}",
        report.max_observed_error,
        report.precision_error_bound,
    );
    assert!(report.reconciles(), "tier repricing preserves the ledgers");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// A brownout session is a pure function of its request trace:
    /// arbitrary seeds, double replay, byte-identical timeline and
    /// identical per-tier ledger.
    #[test]
    fn brownout_sessions_replay_byte_identically(seed in any::<u64>()) {
        let (a, trace_a) = chaos_session(1.4, true, seed);
        let (b, trace_b) = chaos_session(1.4, true, seed);
        prop_assert_eq!(trace_a, trace_b);
        prop_assert_eq!(a.served, b.served);
        prop_assert_eq!(a.shed, b.shed);
        prop_assert_eq!(a.served_by_tier, b.served_by_tier);
        prop_assert_eq!(
            a.partition_reports[0].brownout_events.len(),
            b.partition_reports[0].brownout_events.len()
        );
    }
}
