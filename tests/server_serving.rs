//! Integration tests for the `red-server` seam: online serving must
//! compute exactly what offline sequential execution computes, the batch
//! former must honor its bounds and per-client ordering for arbitrary
//! traces, SLO shedding must never execute a request past its deadline,
//! and micro-batching must buy measurable modeled throughput — the
//! acceptance criteria of the serving subsystem.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_sim::red_core::prelude::*;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::ChipBuilder;
use red_sim::red_server::{
    drive, BatchFormer, ChipFleet, ClientMode, DeadlineShed, Fifo, LoadMode, LoadgenConfig,
    Outcome, RequestMeta, Server, ServerConfig,
};

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial

/// Served outputs are bit-exact against the chip's sequential golden
/// path for every design, on ideal and fully non-ideal crossbars — the
/// scheduler changes when and together with what requests execute, never
/// what they compute.
#[test]
fn served_outputs_are_bit_exact_vs_sequential_for_all_designs() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let inputs: Vec<_> = (0..6)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 3_000 + i as u64))
        .collect();
    for cfg in [
        XbarConfig::ideal(),
        XbarConfig::preset("full").expect("known preset"),
    ] {
        for design in Design::paper_lineup() {
            let chip = ChipBuilder::new()
                .design(design)
                .xbar_config(cfg)
                .compile_seeded(&stack, 5, 42)
                .unwrap();
            let golden = chip.run_sequential(&inputs).unwrap();
            let fleet = ChipFleet::new(chip, 2).unwrap();
            let config = ServerConfig::new().max_batch(4).max_wait_ns(2_000);
            let (server, mut clients) =
                Server::start(&fleet, &config, &[ClientMode::Open, ClientMode::Open]).unwrap();
            // Interleave the six requests over two open-loop clients with
            // staggered virtual arrivals; remember which input each
            // (client, seq) carries.
            let mut expected = vec![Vec::new(); 2];
            for (i, input) in inputs.iter().enumerate() {
                let c = i % 2;
                let meta = clients[c]
                    .submit(input.clone(), 700 * i as u64, None)
                    .unwrap();
                assert_eq!(meta.seq as usize, i / 2);
                expected[c].push(golden.outputs[i].clone());
            }
            // Finish every client before draining: the former (correctly)
            // refuses to finalize a batch that a still-active client
            // could preempt with an earlier virtual arrival.
            for client in clients.iter_mut() {
                client.finish();
            }
            for (c, client) in clients.iter_mut().enumerate() {
                let mut got = vec![None; expected[c].len()];
                for _ in 0..expected[c].len() {
                    let completion = client.recv().unwrap();
                    let Outcome::Served(output) = completion.outcome else {
                        panic!("{design}: every request is served under FIFO");
                    };
                    got[completion.meta.seq as usize] = Some(output);
                }
                for (seq, (g, e)) in got.iter().zip(&expected[c]).enumerate() {
                    assert_eq!(
                        g.as_ref().expect("all seqs answered"),
                        e,
                        "{design}: client {c} seq {seq} must be bit-exact vs sequential"
                    );
                }
            }
            let report = server.finish();
            assert_eq!(report.served, 6);
            assert_eq!(report.failed, 0);
            assert!(
                report.reconciles(),
                "{design}: scheduler charge must reconcile with measured runtime reports"
            );
        }
    }
}

/// The acceptance benchmark: at equal offered overload on 2 ideal DCGAN
/// replicas, `max_batch = 16` must sustain strictly more modeled
/// images/sec than `max_batch = 1` — micro-batching amortizes the
/// pipeline fill across outputs.
#[test]
fn batching_sustains_higher_throughput_at_equal_offered_load() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let analytic = chip.pipeline_report();
    // Offer 3x the fleet's max_batch=1 capacity (one output per fill
    // latency per replica): overload for the unbatched server, near the
    // bottleneck rate for the batched one.
    let rps = 3.0 * 2.0 * 1e9 / analytic.fill_latency_ns();
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let inputs = networks::request_stream(&stack, 8, 64, 11);
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps },
        clients: 4,
        requests: 128,
        horizon_ns: None,
        slo_ns: None,
        seed: 9,
        stream: false,
    };
    let run = |max_batch: usize| {
        let config = ServerConfig::new()
            .max_batch(max_batch)
            .max_wait_ns(20_000)
            .policy(Fifo);
        let report =
            drive(&fleet, &config, &load, std::slice::from_ref(&inputs)).expect("load runs");
        assert_eq!(report.served, 128, "FIFO serves everything");
        assert_eq!(report.failed, 0);
        assert!(report.reconciles(), "batch {max_batch} must reconcile");
        report
    };
    let single = run(1);
    let batched = run(16);
    assert!(
        batched.served_per_s() > single.served_per_s(),
        "max_batch=16 ({:.0} img/s) must beat max_batch=1 ({:.0} img/s) at equal offered load",
        batched.served_per_s(),
        single.served_per_s()
    );
    assert!(batched.mean_batch() > 1.5, "overload must actually batch");
    assert_eq!(single.mean_batch(), 1.0);
}

/// The acceptance SLO criterion: under overload, `DeadlineShed` keeps
/// the served p99 at or below the SLO and sheds a nonzero share, while
/// `Fifo` at the same load blows through the SLO instead.
#[test]
fn deadline_shed_meets_slo_under_overload_where_fifo_does_not() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let analytic = chip.pipeline_report();
    let fill_ns = analytic.fill_latency_ns() as u64;
    let slo_ns = 4 * fill_ns;
    let rps = 4.0 * 2.0 * 1e9 / analytic.fill_latency_ns(); // 4x capacity
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let inputs = networks::request_stream(&stack, 8, 64, 12);
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps },
        clients: 4,
        requests: 160,
        horizon_ns: None,
        slo_ns: Some(slo_ns),
        seed: 17,
        stream: false,
    };
    let config = ServerConfig::new().max_batch(8).max_wait_ns(5_000);
    let shed_report = drive(
        &fleet,
        &config.clone().policy(DeadlineShed),
        &load,
        std::slice::from_ref(&inputs),
    )
    .expect("load runs");
    assert!(shed_report.reconciles());
    assert!(shed_report.shed > 0, "overload must shed");
    assert!(shed_report.served > 0, "shedding must not starve the fleet");
    assert!(
        shed_report.total.p99() <= slo_ns,
        "served p99 {} ns must stay within the {} ns SLO",
        shed_report.total.p99(),
        slo_ns
    );
    assert!(
        shed_report.total.max_ns() <= slo_ns,
        "DeadlineShed never serves past the deadline, so even the max meets the SLO"
    );
    let fifo_report = drive(
        &fleet,
        &config.clone().policy(Fifo),
        &load,
        std::slice::from_ref(&inputs),
    )
    .expect("load runs");
    assert_eq!(fifo_report.shed, 0);
    assert!(
        fifo_report.total.p99() > slo_ns,
        "FIFO under 4x overload must miss the SLO (p99 {} ns vs {} ns)",
        fifo_report.total.p99(),
        slo_ns
    );
}

/// Closed-loop clients self-throttle: offered load equals served load,
/// nothing sheds even with deadlines armed, and per-client completions
/// arrive in submission order.
#[test]
fn closed_loop_clients_self_throttle_and_stay_ordered() {
    let stack = networks::sngan_generator(64).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::ZeroPadding)
        .compile_seeded(&stack, 5, 11)
        .unwrap();
    let analytic = chip.pipeline_report();
    let slo = (4.0 * analytic.fill_latency_ns()) as u64;
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let inputs = networks::request_stream(&stack, 4, 40, 5);
    let load = LoadgenConfig {
        mode: LoadMode::Closed,
        clients: 3,
        requests: 30,
        horizon_ns: None,
        slo_ns: Some(slo),
        seed: 3,
        stream: false,
    };
    let config = ServerConfig::new()
        .max_batch(4)
        .max_wait_ns(1_000)
        .policy(DeadlineShed);
    let report = drive(&fleet, &config, &load, std::slice::from_ref(&inputs)).expect("load runs");
    assert_eq!(report.offered, 30);
    assert_eq!(report.served + report.shed, 30);
    assert!(report.reconciles());
    // A closed-loop client is never more than one request deep, so its
    // deadline is always meetable: nothing sheds.
    assert_eq!(report.shed, 0, "closed loop never overloads the fleet");
    assert!(report.total.max_ns() <= slo);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batch former never emits more than `max_batch` requests, never
    /// spans more than `max_wait` of virtual time inside one batch, never
    /// reorders a single client's requests, and never loses or duplicates
    /// a request — for arbitrary multi-client traces and arbitrary
    /// frontier schedules.
    #[test]
    fn batch_former_honors_bounds_order_and_conservation(
        seed in any::<u64>(),
        clients in 1usize..=5,
        n in 1usize..=120,
        max_batch in 1usize..=9,
        max_wait in 0u64..=2_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut former = BatchFormer::new(max_batch, max_wait);
        let mut clocks = vec![0u64; clients];
        let mut seqs = vec![0u64; clients];
        let mut emitted: Vec<Vec<u64>> = vec![Vec::new(); clients]; // per-client seqs
        let mut emitted_total = 0usize;
        for _ in 0..n {
            let c = rng.gen_range(0..clients);
            clocks[c] += rng.gen_range(0..=500u64);
            let meta = RequestMeta {
                client: c,
                tenant: 0,
                network: 0,
                seq: seqs[c],
                arrival_ns: clocks[c],
                deadline_ns: None,
            };
            seqs[c] += 1;
            former.push(meta, ());
            // The frontier the scheduler would report: the slowest
            // client's current clock (each client's next arrival is at
            // or after its own clock).
            let frontier = clocks.iter().copied().min().unwrap();
            while let Some(batch) = former.try_close(frontier, 0) {
                prop_assert!(batch.requests.len() <= max_batch);
                prop_assert!(!batch.requests.is_empty());
                let arrivals: Vec<u64> =
                    batch.requests.iter().map(|(m, ())| m.arrival_ns).collect();
                prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
                prop_assert!(arrivals[arrivals.len() - 1] - arrivals[0] <= max_wait);
                prop_assert!(batch.close_ns >= arrivals[arrivals.len() - 1]);
                prop_assert!(batch.close_ns <= arrivals[0].saturating_add(max_wait));
                for (m, ()) in &batch.requests {
                    emitted[m.client].push(m.seq);
                    emitted_total += 1;
                }
            }
        }
        while let Some(batch) = former.try_close(u64::MAX, u64::MAX) {
            prop_assert!(batch.requests.len() <= max_batch);
            for (m, ()) in &batch.requests {
                emitted[m.client].push(m.seq);
                emitted_total += 1;
            }
        }
        prop_assert_eq!(emitted_total, n, "every request emitted exactly once");
        for (c, seq_list) in emitted.iter().enumerate() {
            prop_assert_eq!(seq_list.len() as u64, seqs[c]);
            prop_assert!(
                seq_list.windows(2).all(|w| w[0] < w[1]),
                "client {} seqs out of order: {:?}", c, seq_list
            );
        }
    }

    /// End-to-end through a real server: `DeadlineShed` never serves a
    /// request past its deadline, whatever the load, SLO, or batch
    /// bounds — and every request is answered exactly once.
    #[test]
    fn deadline_shed_never_executes_past_deadline(
        seed in any::<u64>(),
        rps_scale in 1u32..=8,       // x0.5 .. x4 of fleet capacity
        slo_scale in 1u32..=6,       // x0.5 .. x3 of fill latency
        max_batch in 1usize..=6,
        max_wait in 0u64..=20_000,
    ) {
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new()
            .design(Design::PaddingFree)
            .compile_seeded(&stack, 5, 11)
            .unwrap();
        let analytic = chip.pipeline_report();
        let fill = analytic.fill_latency_ns();
        let rps = f64::from(rps_scale) * 0.5 * 1e9 / fill;
        let slo_ns = (f64::from(slo_scale) * 0.5 * fill) as u64;
        let fleet = ChipFleet::new(chip, 1).unwrap();
        let config = ServerConfig::new()
            .max_batch(max_batch)
            .max_wait_ns(max_wait)
            .policy(DeadlineShed);
        let (server, mut clients) =
            Server::start(&fleet, &config, &[ClientMode::Open]).unwrap();
        let input = synth::input_dense(&stack.layers[0], 40, seed % 1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clock = 0.0f64;
        let n = 40usize;
        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            clock += -(1.0 - u).ln() / rps * 1e9;
            let arrival = clock as u64;
            clients[0]
                .submit(input.clone(), arrival, Some(arrival + slo_ns))
                .unwrap();
        }
        clients[0].finish();
        let mut served = 0u64;
        let mut shed = 0u64;
        for _ in 0..n {
            let completion = clients[0].recv().unwrap();
            let deadline = completion.meta.deadline_ns.unwrap();
            match completion.outcome {
                Outcome::Served(_) => {
                    served += 1;
                    prop_assert!(
                        completion.timing.completion_ns <= deadline,
                        "served at {} past deadline {}",
                        completion.timing.completion_ns,
                        deadline
                    );
                }
                Outcome::Shed => shed += 1,
                Outcome::Modeled => prop_assert!(false, "functional servers never answer Modeled"),
                Outcome::Failed => prop_assert!(false, "no request may fail"),
            }
        }
        drop(clients);
        let report = server.finish();
        prop_assert_eq!(report.served, served);
        prop_assert_eq!(report.shed, shed);
        prop_assert_eq!(served + shed, n as u64);
        prop_assert!(report.reconciles());
    }
}

// ===========================================================================
// Multi-tenant fleet serving: multi-network routing, streaming-driver
// equivalence, tenant isolation, model-only equivalence, autoscaling
// determinism, and histogram accuracy at one million samples.
// ===========================================================================

use red_sim::red_server::{
    AdmissionPolicy, AutoscaleConfig, LatencyHistogram, ServerReport, ServiceEstimate,
    StrictPriority, TenantClass, WeightedFair,
};

/// The tenant lineup of the committed `BENCH_loadgen.json` baseline: a
/// latency-pinned interactive class, a mid-tier standard class, and a
/// best-effort batch class without a deadline.
fn tenant_lineup(slo_ns: u64) -> Vec<TenantClass> {
    vec![
        TenantClass::named("interactive")
            .weight(4.0)
            .priority(0)
            .slo_ns(slo_ns),
        TenantClass::named("standard")
            .weight(2.0)
            .priority(1)
            .slo_ns(8 * slo_ns),
        TenantClass::named("batch").weight(1.0).priority(2),
    ]
}

/// A two-network fleet (DCGAN + SNGAN generators on RED chips) plus its
/// aggregate modeled peak throughput, for the model-only tests.
fn two_network_fleet(replicas: usize) -> (ChipFleet, f64) {
    let a = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&networks::dcgan_generator(SCALE).unwrap(), 5, 42)
        .unwrap();
    let b = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&networks::sngan_generator(64).unwrap(), 5, 42)
        .unwrap();
    let fleet = ChipFleet::multi(vec![(a, replicas), (b, replicas)]).unwrap();
    let peak = fleet.peak_throughput_per_s();
    (fleet, peak)
}

/// Asserts every modeled (virtual-clock) statistic of two reports is
/// identical — counts, spans, busy-time ledgers, every histogram's
/// moments and quantiles, and the per-tenant / per-partition breakdowns
/// including autoscale events. Host-side fields are deliberately not
/// compared.
fn assert_modeled_stats_identical(a: &ServerReport, b: &ServerReport) {
    assert_eq!(a.offered, b.offered, "offered");
    assert_eq!(a.served, b.served, "served");
    assert_eq!(a.shed, b.shed, "shed");
    assert_eq!(a.failed, b.failed, "failed");
    assert_eq!(a.batches, b.batches, "batches");
    assert_eq!(a.first_arrival_ns, b.first_arrival_ns, "first arrival");
    assert_eq!(
        a.last_completion_ns, b.last_completion_ns,
        "last completion"
    );
    assert_eq!(a.modeled_busy_ns, b.modeled_busy_ns, "modeled busy");
    for (name, ha, hb) in [
        ("total", &a.total, &b.total),
        ("queue_wait", &a.queue_wait, &b.queue_wait),
        ("execute", &a.execute, &b.execute),
        ("shed_wait", &a.shed_wait, &b.shed_wait),
        ("batch_sizes", &a.batch_sizes, &b.batch_sizes),
    ] {
        assert_eq!(ha.count(), hb.count(), "{name} count");
        assert_eq!(ha.min_ns(), hb.min_ns(), "{name} min");
        assert_eq!(ha.max_ns(), hb.max_ns(), "{name} max");
        assert_eq!(
            ha.mean_ns().to_bits(),
            hb.mean_ns().to_bits(),
            "{name} mean"
        );
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(ha.quantile(q), hb.quantile(q), "{name} q{q}");
        }
    }
    assert_eq!(a.tenant_reports.len(), b.tenant_reports.len());
    for (ta, tb) in a.tenant_reports.iter().zip(&b.tenant_reports) {
        assert_eq!(ta.offered, tb.offered, "tenant {} offered", ta.name);
        assert_eq!(ta.served, tb.served, "tenant {} served", ta.name);
        assert_eq!(ta.shed, tb.shed, "tenant {} shed", ta.name);
        assert_eq!(ta.total.p99(), tb.total.p99(), "tenant {} p99", ta.name);
        assert_eq!(
            ta.queue_wait.p99(),
            tb.queue_wait.p99(),
            "tenant {} queue p99",
            ta.name
        );
    }
    assert_eq!(a.partition_reports.len(), b.partition_reports.len());
    for (pa, pb) in a.partition_reports.iter().zip(&b.partition_reports) {
        assert_eq!(pa.offered, pb.offered, "partition {} offered", pa.network);
        assert_eq!(pa.served, pb.served, "partition {} served", pa.network);
        assert_eq!(pa.shed, pb.shed, "partition {} shed", pa.network);
        assert_eq!(pa.batches, pb.batches, "partition {} batches", pa.network);
        assert_eq!(
            pa.replicas_active, pb.replicas_active,
            "partition {} final active",
            pa.network
        );
        assert_eq!(
            pa.total.p99(),
            pb.total.p99(),
            "partition {} p99",
            pa.network
        );
        assert_eq!(
            pa.scale_events, pb.scale_events,
            "partition {} scale events",
            pa.network
        );
    }
}

/// A multi-network fleet routes every request to the partition its tag
/// names and each partition's outputs stay bit-exact against that
/// chip's own sequential golden path.
#[test]
fn multi_network_fleet_routes_requests_bit_exact_per_network() {
    let stack_a = networks::dcgan_generator(SCALE).unwrap();
    let stack_b = networks::sngan_generator(64).unwrap();
    let chip_a = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack_a, 5, 42)
        .unwrap();
    let chip_b = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack_b, 5, 42)
        .unwrap();
    let inputs_a: Vec<_> = (0..4)
        .map(|i| synth::input_dense(&stack_a.layers[0], 48, 100 + i as u64))
        .collect();
    let inputs_b: Vec<_> = (0..4)
        .map(|i| synth::input_dense(&stack_b.layers[0], 48, 200 + i as u64))
        .collect();
    let golden_a = chip_a.run_sequential(&inputs_a).unwrap();
    let golden_b = chip_b.run_sequential(&inputs_b).unwrap();
    let fleet = ChipFleet::multi(vec![(chip_a, 1), (chip_b, 1)]).unwrap();
    let config = ServerConfig::new().max_batch(4).max_wait_ns(2_000);
    let (server, mut clients) =
        Server::start(&fleet, &config, &[ClientMode::Open, ClientMode::Open]).unwrap();
    for (i, input) in inputs_a.iter().enumerate() {
        clients[0]
            .submit_to(0, input.clone(), 500 * i as u64, None)
            .unwrap();
    }
    for (i, input) in inputs_b.iter().enumerate() {
        clients[1]
            .submit_to(1, input.clone(), 500 * i as u64, None)
            .unwrap();
    }
    for client in clients.iter_mut() {
        client.finish();
    }
    for (c, golden) in [(0usize, &golden_a), (1usize, &golden_b)] {
        for _ in 0..4 {
            let completion = clients[c].recv().unwrap();
            let Outcome::Served(output) = completion.outcome else {
                panic!("FIFO serves everything");
            };
            assert_eq!(
                &output, &golden.outputs[completion.meta.seq as usize],
                "network {c} seq {} must be bit-exact vs its own chip",
                completion.meta.seq
            );
            assert_eq!(completion.meta.network, c, "routing tag preserved");
        }
    }
    let report = server.finish();
    assert_eq!(report.partition_reports.len(), 2);
    for p in &report.partition_reports {
        assert_eq!(p.offered, 4);
        assert_eq!(p.served, 4);
        assert!(p.reconciles(), "partition {} reconciles", p.network);
    }
    assert!(report.reconciles());
    assert!(
        report.network.contains('+'),
        "aggregate report names both resident networks: {}",
        report.network
    );
}

/// The O(1)-memory streaming driver and the thread-per-client driver
/// produce **bit-identical** modeled statistics for the same
/// configuration: batch close instants are trace-deterministic, so the
/// report cannot depend on which driver delivered the trace.
#[test]
fn streaming_driver_matches_threaded_driver_bit_for_bit() {
    let (fleet, peak) = two_network_fleet(2);
    let slo_ns = 200_000;
    let classes = tenant_lineup(slo_ns);
    let config = ServerConfig::new()
        .max_batch(8)
        .max_wait_ns(20_000)
        .policy(WeightedFair::new(&classes, 100_000))
        .tenants(classes)
        .model_only();
    let load = |stream: bool| LoadgenConfig {
        mode: LoadMode::Open { rps: 1.8 * peak },
        clients: 9,
        requests: 30_000,
        horizon_ns: None,
        slo_ns: None,
        seed: 23,
        stream,
    };
    let threaded = drive(&fleet, &config, &load(false), &[]).unwrap();
    let streaming = drive(&fleet, &config, &load(true), &[]).unwrap();
    assert!(threaded.reconciles());
    assert!(streaming.reconciles());
    assert!(threaded.shed > 0, "1.8x overload must shed");
    assert_modeled_stats_identical(&threaded, &streaming);
}

/// Under sustained overload, weighted-fair admission pins the
/// interactive tenant's served p99 at or below its SLO while the
/// best-effort batch tenant absorbs a disproportionate share of the
/// shed — and still is not starved.
#[test]
fn weighted_fair_pins_interactive_p99_while_batch_absorbs_the_shed() {
    // A single-network fleet: with two resident networks the round-robin
    // routing would pin the slower partition at ~4x *local* overload
    // regardless of the aggregate rate, putting every tenant over its
    // share there and washing out the isolation this test measures.
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&networks::dcgan_generator(SCALE).unwrap(), 5, 42)
        .unwrap();
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let peak = fleet.peak_throughput_per_s();
    let slo_ns = 200_000;
    let classes = tenant_lineup(slo_ns);
    let config = ServerConfig::new()
        .max_batch(8)
        .max_wait_ns(20_000)
        .policy(WeightedFair::new(&classes, 50_000))
        .tenants(classes)
        .model_only();
    // 1.5x aggregate overload: each tenant offers 0.5x peak, so the
    // interactive class (fair share 4/7 ≈ 0.57x) stays inside its
    // share and sheds only doomed requests, while the batch class
    // (share 1/7) is far over its own and absorbs the overload.
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps: 1.5 * peak },
        clients: 9,
        requests: 60_000,
        horizon_ns: None,
        slo_ns: None,
        seed: 31,
        stream: true,
    };
    let report = drive(&fleet, &config, &load, &[]).unwrap();
    assert!(report.reconciles());
    assert!(report.shed > 0, "2x overload must shed");
    let [interactive, _standard, batch] = report.tenant_reports.as_slice() else {
        panic!("three tenant classes reported");
    };
    assert!(
        interactive.total.p99() <= slo_ns,
        "interactive served p99 {} ns must stay within the {} ns SLO under overload",
        interactive.total.p99(),
        slo_ns
    );
    let shed_frac = |t: &red_sim::red_server::TenantReport| t.shed as f64 / t.offered as f64;
    assert!(
        shed_frac(batch) > 2.0 * shed_frac(interactive),
        "batch tenant absorbs the overload: shed {:.1}% vs interactive {:.1}%",
        100.0 * shed_frac(batch),
        100.0 * shed_frac(interactive)
    );
    assert!(batch.served > 0, "weighted-fair never starves a tenant");
}

/// A model-only server charges exactly the virtual-clock statistics of
/// the functional server over the same trace — it just skips executing
/// the crossbars.
#[test]
fn model_only_matches_functional_virtual_stats_bit_for_bit() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let peak = fleet.peak_throughput_per_s();
    let inputs = networks::request_stream(&stack, 8, 48, 11);
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps: 1.2 * peak },
        clients: 4,
        requests: 256,
        horizon_ns: None,
        slo_ns: None,
        seed: 5,
        stream: false,
    };
    let config = ServerConfig::new()
        .max_batch(8)
        .max_wait_ns(10_000)
        .policy(Fifo);
    let functional = drive(&fleet, &config, &load, std::slice::from_ref(&inputs)).unwrap();
    let modeled = drive(&fleet, &config.clone().model_only(), &load, &[]).unwrap();
    assert!(functional.reconciles());
    assert!(modeled.reconciles());
    assert!(functional.host_exec_ns > 0, "functional run executes");
    assert_eq!(modeled.host_exec_ns, 0, "model-only run never executes");
    assert_modeled_stats_identical(&functional, &modeled);
}

/// End-to-end autoscaling: under overload the partitions scale up from
/// the configured floor, the scale-event ledgers are identical run to
/// run, and the virtual statistics stay deterministic with autoscaling
/// enabled.
#[test]
fn autoscaling_scales_up_under_overload_and_stays_deterministic() {
    let run = || {
        let (fleet, peak) = two_network_fleet(4);
        let config = ServerConfig::new()
            .max_batch(8)
            .max_wait_ns(20_000)
            .policy(Fifo)
            .autoscale(AutoscaleConfig {
                min_replicas: 1,
                cooldown_ns: 200_000,
                ..AutoscaleConfig::default()
            })
            .model_only();
        let load = LoadgenConfig {
            mode: LoadMode::Open { rps: 2.0 * peak },
            clients: 6,
            requests: 20_000,
            horizon_ns: None,
            slo_ns: None,
            seed: 13,
            stream: true,
        };
        drive(&fleet, &config, &load, &[]).unwrap()
    };
    let a = run();
    let b = run();
    assert!(a.reconciles());
    for p in &a.partition_reports {
        assert!(
            !p.scale_events.is_empty(),
            "partition {} must scale under 2x overload from a floor of 1",
            p.network
        );
        assert!(
            p.scale_events.iter().any(|e| e.to > e.from),
            "partition {} must scale UP",
            p.network
        );
        assert!(
            p.replicas_active > 1,
            "partition {} ends above the floor",
            p.network
        );
        for w in p.scale_events.windows(2) {
            assert!(
                w[1].at_ns - w[0].at_ns >= 200_000,
                "cooldown respected between scale events"
            );
            assert!(
                (w[1].to as i64 - w[1].from as i64).abs() == 1,
                "one step at a time"
            );
        }
    }
    assert_modeled_stats_identical(&a, &b);
}

/// One million log-uniform samples: every quantile the reports publish
/// stays within one log-bucket (3.2% relative) of the exact sorted
/// value, and the histogram's footprint does not grow with the sample
/// count — the O(1)-memory property the streaming load generator
/// depends on.
#[test]
fn histogram_million_sample_quantiles_within_one_log_bucket() {
    let mut rng = StdRng::seed_from_u64(99);
    let mut h = LatencyHistogram::new();
    let buckets_before = h.bucket_count();
    let n = 1_000_000usize;
    let mut samples = Vec::with_capacity(n);
    for _ in 0..n {
        let exp: f64 = rng.gen_range(0.0..36.0);
        let v = 2f64.powf(exp) as u64;
        h.record(v);
        samples.push(v);
    }
    samples.sort_unstable();
    for q in [0.5, 0.9, 0.99, 0.999, 0.9999] {
        let target = ((q * n as f64).ceil() as usize).clamp(1, n);
        let exact = samples[target - 1];
        let est = h.quantile(q);
        assert!(est >= exact, "q{q}: estimate {est} below exact {exact}");
        assert!(
            est - exact <= exact / 32 + 1,
            "q{q}: estimate {est} more than one log-bucket above exact {exact}"
        );
    }
    assert_eq!(
        h.bucket_count(),
        buckets_before,
        "footprint independent of sample count"
    );
    assert!(
        h.bucket_count() * 8 < 16 * 1024,
        "fixed footprint stays under 16 KiB"
    );
    assert_eq!(h.count(), n as u64);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Histogram quantiles track the exact sorted values within one
    /// log-bucket for arbitrary sample sets at any magnitude, and the
    /// bucket array never grows.
    #[test]
    fn histogram_quantiles_track_exact_for_arbitrary_samples(
        seed in any::<u64>(),
        n in 1usize..=4_000,
        scale_bits in 0u32..=48,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = LatencyHistogram::new();
        let buckets_before = h.bucket_count();
        let mut samples = Vec::with_capacity(n);
        for _ in 0..n {
            let v = rng.gen_range(0..=(1u64 << scale_bits));
            h.record(v);
            samples.push(v);
        }
        samples.sort_unstable();
        for q in [0.25, 0.5, 0.9, 0.99, 1.0] {
            let target = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = samples[target - 1];
            let est = h.quantile(q);
            prop_assert!(est >= exact, "q{}: {} below exact {}", q, est, exact);
            prop_assert!(
                est - exact <= exact / 32 + 1,
                "q{}: {} more than one log-bucket above {}", q, est, exact
            );
        }
        prop_assert_eq!(h.bucket_count(), buckets_before);
    }

    /// Weighted-fair admission invariants for arbitrary weight tables
    /// and offer sequences: work-conserving when the queue lag is
    /// within bounds, and no tenant starves under sustained pressure.
    #[test]
    fn weighted_fair_work_conserves_and_never_starves(
        seed in any::<u64>(),
        n_tenants in 2usize..=4,
    ) {
        let mut wrng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let classes: Vec<TenantClass> = (0..n_tenants)
            .map(|i| {
                let w: u32 = wrng.gen_range(1..=8);
                TenantClass::named(&format!("t{i}")).weight(f64::from(w))
            })
            .collect();
        let max_lag = 10_000u64;
        let mut wf = WeightedFair::new(&classes, max_lag);
        let mut rng = StdRng::seed_from_u64(seed);
        let offer = |wf: &mut WeightedFair, tenant: usize, seq: u64, lag: u64| {
            let arrival = seq * 100;
            let start = arrival + lag;
            let meta = RequestMeta {
                client: 0,
                tenant,
                network: 0,
                seq,
                arrival_ns: arrival,
                deadline_ns: None,
            };
            let estimate = ServiceEstimate {
                batch_start_ns: start,
                position: 0,
                fill_latency_ns: 50,
                steady_interval_ns: 10,
                predicted_completion_ns: start + 50,
            };
            wf.admit(&meta, &estimate)
        };
        // Work conservation: within the lag bound nothing is shed,
        // whatever the tenant mix.
        for k in 0..200u64 {
            let t = rng.gen_range(0..classes.len());
            prop_assert!(
                offer(&mut wf, t, k, max_lag / 2),
                "within-lag offers must all admit (work conservation)"
            );
        }
        // Sustained pressure: random offers at 4x the lag bound. Every
        // tenant must still get service in proportion to a positive
        // share — no starvation.
        let mut served = vec![0u32; classes.len()];
        for k in 200..2_600u64 {
            let t = rng.gen_range(0..classes.len());
            if offer(&mut wf, t, k, 4 * max_lag) {
                served[t] += 1;
            }
        }
        for (t, s) in served.iter().enumerate() {
            prop_assert!(*s > 0, "tenant {} starved under pressure: {:?}", t, served);
        }
    }

    /// Strict-priority admission is monotone in priority: whenever a
    /// lower tier admits a request at some queue lag, every higher tier
    /// admits the same request — and tier budgets shrink geometrically.
    #[test]
    fn strict_priority_is_monotone_in_tier(
        lag in 0u64..=1_000_000,
        max_lag in 1u64..=1_000_000,
    ) {
        let classes: Vec<TenantClass> = (0..4)
            .map(|p| TenantClass::named(&format!("p{p}")).priority(p))
            .collect();
        let mut sp = StrictPriority::new(&classes, max_lag);
        let admit_at = |sp: &mut StrictPriority, tenant: usize| {
            let meta = RequestMeta {
                client: 0,
                tenant,
                network: 0,
                seq: 0,
                arrival_ns: 0,
                deadline_ns: None,
            };
            let estimate = ServiceEstimate {
                batch_start_ns: lag,
                position: 0,
                fill_latency_ns: 50,
                steady_interval_ns: 10,
                predicted_completion_ns: lag + 50,
            };
            sp.admit(&meta, &estimate)
        };
        let decisions: Vec<bool> = (0..4).map(|t| admit_at(&mut sp, t)).collect();
        for w in decisions.windows(2) {
            prop_assert!(
                w[0] || !w[1],
                "a lower tier admitted where a higher tier shed: {:?}", decisions
            );
        }
        for p in 0..3u32 {
            prop_assert!(sp.lag_budget_ns(p) >= sp.lag_budget_ns(p + 1));
        }
        prop_assert_eq!(sp.lag_budget_ns(0), max_lag);
    }
}
