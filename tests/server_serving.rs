//! Integration tests for the `red-server` seam: online serving must
//! compute exactly what offline sequential execution computes, the batch
//! former must honor its bounds and per-client ordering for arbitrary
//! traces, SLO shedding must never execute a request past its deadline,
//! and micro-batching must buy measurable modeled throughput — the
//! acceptance criteria of the serving subsystem.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_sim::red_core::prelude::*;
use red_sim::red_core::workloads::networks;
use red_sim::red_runtime::ChipBuilder;
use red_sim::red_server::{
    drive, BatchFormer, ChipFleet, ClientMode, DeadlineShed, Fifo, LoadMode, LoadgenConfig,
    Outcome, RequestMeta, Server, ServerConfig,
};

const SCALE: usize = 16; // DCGAN at 64 base channels: fast but non-trivial

/// Served outputs are bit-exact against the chip's sequential golden
/// path for every design, on ideal and fully non-ideal crossbars — the
/// scheduler changes when and together with what requests execute, never
/// what they compute.
#[test]
fn served_outputs_are_bit_exact_vs_sequential_for_all_designs() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let inputs: Vec<_> = (0..6)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 3_000 + i as u64))
        .collect();
    for cfg in [
        XbarConfig::ideal(),
        XbarConfig::preset("full").expect("known preset"),
    ] {
        for design in Design::paper_lineup() {
            let chip = ChipBuilder::new()
                .design(design)
                .xbar_config(cfg)
                .compile_seeded(&stack, 5, 42)
                .unwrap();
            let golden = chip.run_sequential(&inputs).unwrap();
            let fleet = ChipFleet::new(chip, 2).unwrap();
            let config = ServerConfig::new().max_batch(4).max_wait_ns(2_000);
            let (server, mut clients) =
                Server::start(&fleet, &config, &[ClientMode::Open, ClientMode::Open]).unwrap();
            // Interleave the six requests over two open-loop clients with
            // staggered virtual arrivals; remember which input each
            // (client, seq) carries.
            let mut expected = vec![Vec::new(); 2];
            for (i, input) in inputs.iter().enumerate() {
                let c = i % 2;
                let meta = clients[c]
                    .submit(input.clone(), 700 * i as u64, None)
                    .unwrap();
                assert_eq!(meta.seq as usize, i / 2);
                expected[c].push(golden.outputs[i].clone());
            }
            // Finish every client before draining: the former (correctly)
            // refuses to finalize a batch that a still-active client
            // could preempt with an earlier virtual arrival.
            for client in clients.iter_mut() {
                client.finish();
            }
            for (c, client) in clients.iter_mut().enumerate() {
                let mut got = vec![None; expected[c].len()];
                for _ in 0..expected[c].len() {
                    let completion = client.recv().unwrap();
                    let Outcome::Served(output) = completion.outcome else {
                        panic!("{design}: every request is served under FIFO");
                    };
                    got[completion.meta.seq as usize] = Some(output);
                }
                for (seq, (g, e)) in got.iter().zip(&expected[c]).enumerate() {
                    assert_eq!(
                        g.as_ref().expect("all seqs answered"),
                        e,
                        "{design}: client {c} seq {seq} must be bit-exact vs sequential"
                    );
                }
            }
            let report = server.finish();
            assert_eq!(report.served, 6);
            assert_eq!(report.failed, 0);
            assert!(
                report.reconciles(),
                "{design}: scheduler charge must reconcile with measured runtime reports"
            );
        }
    }
}

/// The acceptance benchmark: at equal offered overload on 2 ideal DCGAN
/// replicas, `max_batch = 16` must sustain strictly more modeled
/// images/sec than `max_batch = 1` — micro-batching amortizes the
/// pipeline fill across outputs.
#[test]
fn batching_sustains_higher_throughput_at_equal_offered_load() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let analytic = chip.pipeline_report();
    // Offer 3x the fleet's max_batch=1 capacity (one output per fill
    // latency per replica): overload for the unbatched server, near the
    // bottleneck rate for the batched one.
    let rps = 3.0 * 2.0 * 1e9 / analytic.fill_latency_ns();
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let inputs = networks::request_stream(&stack, 8, 64, 11);
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps },
        clients: 4,
        requests: 128,
        horizon_ns: None,
        slo_ns: None,
        seed: 9,
    };
    let run = |max_batch: usize| {
        let config = ServerConfig::new()
            .max_batch(max_batch)
            .max_wait_ns(20_000)
            .policy(Fifo);
        let report = drive(&fleet, &config, &load, &inputs).expect("load runs");
        assert_eq!(report.served, 128, "FIFO serves everything");
        assert_eq!(report.failed, 0);
        assert!(report.reconciles(), "batch {max_batch} must reconcile");
        report
    };
    let single = run(1);
    let batched = run(16);
    assert!(
        batched.served_per_s() > single.served_per_s(),
        "max_batch=16 ({:.0} img/s) must beat max_batch=1 ({:.0} img/s) at equal offered load",
        batched.served_per_s(),
        single.served_per_s()
    );
    assert!(batched.mean_batch() > 1.5, "overload must actually batch");
    assert_eq!(single.mean_batch(), 1.0);
}

/// The acceptance SLO criterion: under overload, `DeadlineShed` keeps
/// the served p99 at or below the SLO and sheds a nonzero share, while
/// `Fifo` at the same load blows through the SLO instead.
#[test]
fn deadline_shed_meets_slo_under_overload_where_fifo_does_not() {
    let stack = networks::dcgan_generator(SCALE).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let analytic = chip.pipeline_report();
    let fill_ns = analytic.fill_latency_ns() as u64;
    let slo_ns = 4 * fill_ns;
    let rps = 4.0 * 2.0 * 1e9 / analytic.fill_latency_ns(); // 4x capacity
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let inputs = networks::request_stream(&stack, 8, 64, 12);
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps },
        clients: 4,
        requests: 160,
        horizon_ns: None,
        slo_ns: Some(slo_ns),
        seed: 17,
    };
    let config = ServerConfig::new().max_batch(8).max_wait_ns(5_000);
    let shed_report =
        drive(&fleet, &config.clone().policy(DeadlineShed), &load, &inputs).expect("load runs");
    assert!(shed_report.reconciles());
    assert!(shed_report.shed > 0, "overload must shed");
    assert!(shed_report.served > 0, "shedding must not starve the fleet");
    assert!(
        shed_report.total.p99() <= slo_ns,
        "served p99 {} ns must stay within the {} ns SLO",
        shed_report.total.p99(),
        slo_ns
    );
    assert!(
        shed_report.total.max_ns() <= slo_ns,
        "DeadlineShed never serves past the deadline, so even the max meets the SLO"
    );
    let fifo_report =
        drive(&fleet, &config.clone().policy(Fifo), &load, &inputs).expect("load runs");
    assert_eq!(fifo_report.shed, 0);
    assert!(
        fifo_report.total.p99() > slo_ns,
        "FIFO under 4x overload must miss the SLO (p99 {} ns vs {} ns)",
        fifo_report.total.p99(),
        slo_ns
    );
}

/// Closed-loop clients self-throttle: offered load equals served load,
/// nothing sheds even with deadlines armed, and per-client completions
/// arrive in submission order.
#[test]
fn closed_loop_clients_self_throttle_and_stay_ordered() {
    let stack = networks::sngan_generator(64).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::ZeroPadding)
        .compile_seeded(&stack, 5, 11)
        .unwrap();
    let analytic = chip.pipeline_report();
    let slo = (4.0 * analytic.fill_latency_ns()) as u64;
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let inputs = networks::request_stream(&stack, 4, 40, 5);
    let load = LoadgenConfig {
        mode: LoadMode::Closed,
        clients: 3,
        requests: 30,
        horizon_ns: None,
        slo_ns: Some(slo),
        seed: 3,
    };
    let config = ServerConfig::new()
        .max_batch(4)
        .max_wait_ns(1_000)
        .policy(DeadlineShed);
    let report = drive(&fleet, &config, &load, &inputs).expect("load runs");
    assert_eq!(report.offered, 30);
    assert_eq!(report.served + report.shed, 30);
    assert!(report.reconciles());
    // A closed-loop client is never more than one request deep, so its
    // deadline is always meetable: nothing sheds.
    assert_eq!(report.shed, 0, "closed loop never overloads the fleet");
    assert!(report.total.max_ns() <= slo);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The batch former never emits more than `max_batch` requests, never
    /// spans more than `max_wait` of virtual time inside one batch, never
    /// reorders a single client's requests, and never loses or duplicates
    /// a request — for arbitrary multi-client traces and arbitrary
    /// frontier schedules.
    #[test]
    fn batch_former_honors_bounds_order_and_conservation(
        seed in any::<u64>(),
        clients in 1usize..=5,
        n in 1usize..=120,
        max_batch in 1usize..=9,
        max_wait in 0u64..=2_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut former = BatchFormer::new(max_batch, max_wait);
        let mut clocks = vec![0u64; clients];
        let mut seqs = vec![0u64; clients];
        let mut emitted: Vec<Vec<u64>> = vec![Vec::new(); clients]; // per-client seqs
        let mut emitted_total = 0usize;
        for _ in 0..n {
            let c = rng.gen_range(0..clients);
            clocks[c] += rng.gen_range(0..=500u64);
            let meta = RequestMeta {
                client: c,
                seq: seqs[c],
                arrival_ns: clocks[c],
                deadline_ns: None,
            };
            seqs[c] += 1;
            former.push(meta, ());
            // The frontier the scheduler would report: the slowest
            // client's current clock (each client's next arrival is at
            // or after its own clock).
            let frontier = clocks.iter().copied().min().unwrap();
            while let Some(batch) = former.try_close(frontier) {
                prop_assert!(batch.requests.len() <= max_batch);
                prop_assert!(!batch.requests.is_empty());
                let arrivals: Vec<u64> =
                    batch.requests.iter().map(|(m, ())| m.arrival_ns).collect();
                prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
                prop_assert!(arrivals[arrivals.len() - 1] - arrivals[0] <= max_wait);
                prop_assert!(batch.close_ns >= arrivals[arrivals.len() - 1]);
                prop_assert!(batch.close_ns <= arrivals[0].saturating_add(max_wait));
                for (m, ()) in &batch.requests {
                    emitted[m.client].push(m.seq);
                    emitted_total += 1;
                }
            }
        }
        while let Some(batch) = former.try_close(u64::MAX) {
            prop_assert!(batch.requests.len() <= max_batch);
            for (m, ()) in &batch.requests {
                emitted[m.client].push(m.seq);
                emitted_total += 1;
            }
        }
        prop_assert_eq!(emitted_total, n, "every request emitted exactly once");
        for (c, seq_list) in emitted.iter().enumerate() {
            prop_assert_eq!(seq_list.len() as u64, seqs[c]);
            prop_assert!(
                seq_list.windows(2).all(|w| w[0] < w[1]),
                "client {} seqs out of order: {:?}", c, seq_list
            );
        }
    }

    /// End-to-end through a real server: `DeadlineShed` never serves a
    /// request past its deadline, whatever the load, SLO, or batch
    /// bounds — and every request is answered exactly once.
    #[test]
    fn deadline_shed_never_executes_past_deadline(
        seed in any::<u64>(),
        rps_scale in 1u32..=8,       // x0.5 .. x4 of fleet capacity
        slo_scale in 1u32..=6,       // x0.5 .. x3 of fill latency
        max_batch in 1usize..=6,
        max_wait in 0u64..=20_000,
    ) {
        let stack = networks::sngan_generator(64).unwrap();
        let chip = ChipBuilder::new()
            .design(Design::PaddingFree)
            .compile_seeded(&stack, 5, 11)
            .unwrap();
        let analytic = chip.pipeline_report();
        let fill = analytic.fill_latency_ns();
        let rps = f64::from(rps_scale) * 0.5 * 1e9 / fill;
        let slo_ns = (f64::from(slo_scale) * 0.5 * fill) as u64;
        let fleet = ChipFleet::new(chip, 1).unwrap();
        let config = ServerConfig::new()
            .max_batch(max_batch)
            .max_wait_ns(max_wait)
            .policy(DeadlineShed);
        let (server, mut clients) =
            Server::start(&fleet, &config, &[ClientMode::Open]).unwrap();
        let input = synth::input_dense(&stack.layers[0], 40, seed % 1000);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut clock = 0.0f64;
        let n = 40usize;
        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            clock += -(1.0 - u).ln() / rps * 1e9;
            let arrival = clock as u64;
            clients[0]
                .submit(input.clone(), arrival, Some(arrival + slo_ns))
                .unwrap();
        }
        clients[0].finish();
        let mut served = 0u64;
        let mut shed = 0u64;
        for _ in 0..n {
            let completion = clients[0].recv().unwrap();
            let deadline = completion.meta.deadline_ns.unwrap();
            match completion.outcome {
                Outcome::Served(_) => {
                    served += 1;
                    prop_assert!(
                        completion.timing.completion_ns <= deadline,
                        "served at {} past deadline {}",
                        completion.timing.completion_ns,
                        deadline
                    );
                }
                Outcome::Shed => shed += 1,
                Outcome::Failed => prop_assert!(false, "no request may fail"),
            }
        }
        drop(clients);
        let report = server.finish();
        prop_assert_eq!(report.served, served);
        prop_assert_eq!(report.shed, shed);
        prop_assert_eq!(served + shed, n as u64);
        prop_assert!(report.reconciles());
    }
}
