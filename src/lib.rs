//! # red-sim
//!
//! Umbrella package for the **red-sim** workspace — a from-scratch Rust
//! reproduction of *RED: A ReRAM-based Deconvolution Accelerator* (Fan,
//! Li, Li, Chen, Li — DATE 2019, arXiv:1907.02987).
//!
//! This crate re-exports [`red_core`], the public API facade,
//! [`red_runtime`], the multi-tile chip runtime that serves whole networks
//! with batched, pipelined inference, [`red_server`], the online
//! serving subsystem (chip fleet, micro-batching scheduler, SLO-aware
//! admission, load generator), and [`red_telemetry`], the deterministic
//! virtual-clock tracing and metrics plane threaded through both; see the
//! workspace `README.md` for the crate-layer diagram. It exists so the
//! repository-level `tests/` integration suite and `examples/` have a
//! package to hang off.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use red_core;
pub use red_runtime;
pub use red_server;
pub use red_telemetry;
