//! Full deconvolution stacks of the networks behind Table I.
//!
//! The paper benchmarks single layers; the end-to-end examples in this
//! repository chain whole up-sampling pipelines, so this module records
//! the published stack geometries:
//!
//! * [`dcgan_generator`] — the DCGAN generator's four 5×5/stride-2
//!   deconvolutions, 4×4×1024 → 64×64×3 (Radford et al., 2015);
//! * [`sngan_generator`] — the SNGAN CIFAR generator's three 4×4/stride-2
//!   deconvolutions, 4×4×512 → 32×32×…;
//! * [`fcn8s_upsampling`] — FCN-8s's two-stage up-sampling head: 2×
//!   (4×4/stride-2) then 8× (16×16/stride-8) over the 21 VOC classes.
//!
//! Channel counts can be scaled down uniformly for tractable functional
//! simulation while keeping every spatial geometry exact.

use red_tensor::{DeconvSpec, FeatureMap, LayerShape, ShapeError};

/// A named sequence of deconvolution layers whose shapes chain (each
/// layer's output feeds the next one's input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeconvStack {
    /// Human-readable network name.
    pub name: &'static str,
    /// The layers in execution order.
    pub layers: Vec<LayerShape>,
}

impl DeconvStack {
    /// Verifies the chain property: layer `i+1`'s input extent and channel
    /// count equal layer `i`'s output.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError::ChainMismatch`] naming the first broken seam
    /// (the downstream layer index plus the produced vs expected
    /// `(height, width, channels)` triples).
    pub fn validate(&self) -> Result<(), ShapeError> {
        for (i, w) in self.layers.windows(2).enumerate() {
            let out = w[0].output_geometry();
            let produced = (out.height, out.width, w[0].filters());
            let expected = (w[1].input_h(), w[1].input_w(), w[1].channels());
            if produced != expected {
                return Err(ShapeError::ChainMismatch {
                    layer: i + 1,
                    produced,
                    expected,
                });
            }
        }
        Ok(())
    }

    /// `true` when every seam chains — a thin wrapper over [`validate`].
    ///
    /// [`validate`]: DeconvStack::validate
    pub fn is_chained(&self) -> bool {
        self.validate().is_ok()
    }
}

fn scaled(c: usize, factor: usize) -> usize {
    (c / factor.max(1)).max(1)
}

/// The DCGAN generator deconvolution stack (project: 4×4×1024), scaled in
/// channels by `channel_scale` (1 = full size).
///
/// # Errors
///
/// Returns [`ShapeError`] only if scaling produces an invalid geometry
/// (not possible for supported factors, but propagated for honesty).
pub fn dcgan_generator(channel_scale: usize) -> Result<DeconvStack, ShapeError> {
    let spec = DeconvSpec::with_output_padding(5, 5, 2, 2, 1)?;
    let chans = [1024, 512, 256, 128, 3];
    let mut layers = Vec::new();
    let mut extent = 4;
    for i in 0..4 {
        layers.push(LayerShape::with_spec(
            extent,
            extent,
            scaled(chans[i], channel_scale),
            scaled(chans[i + 1], channel_scale),
            spec,
        )?);
        extent *= 2;
    }
    Ok(DeconvStack {
        name: "DCGAN generator",
        layers,
    })
}

/// The SNGAN CIFAR-10 generator deconvolution stack (4×4×512 input),
/// scaled in channels by `channel_scale`.
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn sngan_generator(channel_scale: usize) -> Result<DeconvStack, ShapeError> {
    let spec = DeconvSpec::new(4, 4, 2, 1)?;
    let chans = [512, 256, 128, 64];
    let mut layers = Vec::new();
    let mut extent = 4;
    for i in 0..3 {
        layers.push(LayerShape::with_spec(
            extent,
            extent,
            scaled(chans[i], channel_scale),
            scaled(chans[i + 1], channel_scale),
            spec,
        )?);
        extent *= 2;
    }
    Ok(DeconvStack {
        name: "SNGAN generator",
        layers,
    })
}

/// The FCN-8s up-sampling head over the 21 PASCAL-VOC classes: the 2×
/// deconvolution (Table I FCN_Deconv1 geometry at the given input extent)
/// followed by the 8× deconvolution (FCN_Deconv2 geometry).
///
/// `input_extent` is the coarse score-map extent (16 reproduces
/// FCN_Deconv1's Table I row; the following 8× stage then sees the 2×
/// output minus the published crop).
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn fcn8s_upsampling(input_extent: usize) -> Result<DeconvStack, ShapeError> {
    fcn8s_upsampling_scaled(input_extent, 1)
}

/// [`fcn8s_upsampling`] with the 21 VOC classes scaled down by
/// `class_scale` (floored at one class), for tractable functional
/// simulation of the 16×16/stride-8 stage — the FCN analogue of the
/// GAN generators' channel scaling.
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn fcn8s_upsampling_scaled(
    input_extent: usize,
    class_scale: usize,
) -> Result<DeconvStack, ShapeError> {
    // FCN-8s crops the 2x output when fusing with the pool3 skip before the
    // final 8x stage; Table I reflects the fused extent (34 -> fused skip
    // path -> 70 for the published crop schedule). We chain directly at the
    // fused extent.
    fcn8s_head(input_extent, class_scale, |two_x_out| two_x_out * 2 + 2)
}

/// The FCN-8s head as a *directly chained* two-stage stack for end-to-end
/// serving: the 8× stage consumes the 2× stage's own output extent
/// instead of the skip-fused extent of [`fcn8s_upsampling`] (the pool3
/// fusion and crop happen outside the deconvolution accelerator, so a
/// chip serving only the deconvolutions sees this geometry). Classes
/// scale like [`fcn8s_upsampling_scaled`].
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn fcn8s_serving(input_extent: usize, class_scale: usize) -> Result<DeconvStack, ShapeError> {
    fcn8s_head(input_extent, class_scale, |two_x_out| two_x_out)
}

/// Shared builder of the two-stage FCN-8s head: the published and serving
/// variants differ only in the extent the 8× stage consumes, computed by
/// `eight_x_extent` from the 2× stage's output extent.
fn fcn8s_head(
    input_extent: usize,
    class_scale: usize,
    eight_x_extent: impl FnOnce(usize) -> usize,
) -> Result<DeconvStack, ShapeError> {
    let two_x = DeconvSpec::new(4, 4, 2, 0)?;
    let eight_x = DeconvSpec::new(16, 16, 8, 0)?;
    let classes = scaled(21, class_scale);
    let l1 = LayerShape::with_spec(input_extent, input_extent, classes, classes, two_x)?;
    let mid = eight_x_extent(l1.output_geometry().height);
    let l2 = LayerShape::with_spec(mid, mid, classes, classes, eight_x)?;
    Ok(DeconvStack {
        name: "FCN-8s upsampling head",
        layers: vec![l1, l2],
    })
}

/// The three stacks the runtime's `serve` driver pushes traffic through:
/// the DCGAN and SNGAN generators channel-scaled by `channel_scale`, plus
/// the chained FCN-8s serving head ([`fcn8s_serving`]) with its classes
/// scaled by the same factor (at the published 16 input extent when
/// unscaled, a reduced extent of 8 otherwise so the 16×16/stride-8 stage
/// stays tractable for functional simulation). Every returned stack
/// chains, so all of them compile onto a `red-runtime` chip.
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn serving_lineup(channel_scale: usize) -> Result<Vec<DeconvStack>, ShapeError> {
    let fcn_extent = if channel_scale <= 1 { 16 } else { 8 };
    Ok(vec![
        dcgan_generator(channel_scale)?,
        sngan_generator(channel_scale)?,
        fcn8s_serving(fcn_extent, channel_scale)?,
    ])
}

/// A deterministic request stream for serving `stack`: `n` dense seeded
/// inputs shaped for the stack's first layer, each drawn with a distinct
/// seed derived from `seed`. The `red-server` load generator rotates
/// such a stream round-robin across its client threads; a fixed
/// `(n, bound, seed)` triple always reproduces the same traffic.
///
/// # Panics
///
/// Panics if `bound` is not positive (propagated from `synth::input_dense`)
/// or the stack is empty.
pub fn request_stream(
    stack: &DeconvStack,
    n: usize,
    bound: i64,
    seed: u64,
) -> Vec<FeatureMap<i64>> {
    let first = stack
        .layers
        .first()
        .expect("a request stream needs a non-empty stack");
    (0..n)
        .map(|i| crate::synth::input_dense(first, bound, seed.wrapping_add(i as u64)))
        .collect()
}

/// One [`request_mix`] entry: a serving stack paired with its request
/// stream.
pub type NetworkTraffic = (DeconvStack, Vec<FeatureMap<i64>>);

/// The serving request mix: every [`serving_lineup`] stack paired with a
/// [`request_stream`] of `per_network` inputs — the traffic `red-bench
/// --bin loadgen` drives through per-network fleets. Streams are
/// decorrelated across networks (each network's seed is derived from
/// `seed` and its lineup position) but fully determined by the
/// arguments.
///
/// # Errors
///
/// Propagates [`ShapeError`] from stack construction.
///
/// # Panics
///
/// Panics if `bound` is not positive.
pub fn request_mix(
    channel_scale: usize,
    per_network: usize,
    bound: i64,
    seed: u64,
) -> Result<Vec<NetworkTraffic>, ShapeError> {
    Ok(serving_lineup(channel_scale)?
        .into_iter()
        .enumerate()
        .map(|(i, stack)| {
            let stream_seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64));
            let stream = request_stream(&stack, per_network, bound, stream_seed);
            (stack, stream)
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcgan_stack_chains_to_64() {
        let s = dcgan_generator(1).unwrap();
        assert_eq!(s.layers.len(), 4);
        assert!(s.is_chained());
        assert_eq!(s.layers[0].channels(), 1024);
        assert_eq!(s.layers[3].output_geometry().height, 64);
        assert_eq!(s.layers[3].filters(), 3);
        // Layer 1 at scale 2 matches GAN_Deconv1's C/M (512 -> 256).
        let scaled = dcgan_generator(2).unwrap();
        assert_eq!(scaled.layers[0].channels(), 512);
    }

    #[test]
    fn sngan_stack_chains_to_32() {
        let s = sngan_generator(1).unwrap();
        assert_eq!(s.layers.len(), 3);
        assert!(s.is_chained());
        assert_eq!(s.layers[0].channels(), 512);
        assert_eq!(s.layers[2].output_geometry().height, 32);
    }

    #[test]
    fn fcn_head_matches_table1_geometries() {
        let s = fcn8s_upsampling(16).unwrap();
        assert_eq!(s.layers.len(), 2);
        // First stage is exactly FCN_Deconv1.
        assert_eq!(s.layers[0].output_geometry().height, 34);
        // Second stage is exactly FCN_Deconv2: 70 -> 568.
        assert_eq!(s.layers[1].input_h(), 70);
        assert_eq!(s.layers[1].output_geometry().height, 568);
    }

    #[test]
    fn validate_names_the_first_broken_seam() {
        let mut s = dcgan_generator(8).unwrap();
        assert!(s.validate().is_ok());
        // Swap layers 1 and 2: the seam into the (new) layer 1 breaks first.
        s.layers.swap(1, 2);
        match s.validate() {
            Err(ShapeError::ChainMismatch {
                layer,
                produced,
                expected,
            }) => {
                assert_eq!(layer, 1);
                let out = s.layers[0].output_geometry();
                assert_eq!(produced, (out.height, out.width, s.layers[0].filters()));
                assert_eq!(
                    expected,
                    (
                        s.layers[1].input_h(),
                        s.layers[1].input_w(),
                        s.layers[1].channels()
                    )
                );
            }
            other => panic!("expected ChainMismatch, got {other:?}"),
        }
        assert!(!s.is_chained());
    }

    #[test]
    fn fcn_class_scaling_preserves_spatial_geometry() {
        let full = fcn8s_upsampling(16).unwrap();
        let scaled = fcn8s_upsampling_scaled(16, 8).unwrap();
        assert_eq!(scaled.layers[0].channels(), 2); // 21 / 8, floored
        for (f, s) in full.layers.iter().zip(&scaled.layers) {
            assert_eq!(f.input_h(), s.input_h());
            assert_eq!(f.output_geometry().height, s.output_geometry().height);
        }
        // The published head is NOT directly chained (the skip fusion sits
        // between the stages); the serving variant is.
        assert!(full.validate().is_err());
        let serving = fcn8s_serving(16, 1).unwrap();
        assert!(serving.validate().is_ok());
        assert_eq!(serving.layers[1].input_h(), 34); // the 2x output itself
    }

    #[test]
    fn serving_lineup_chains_at_every_scale() {
        for scale in [1, 8, 64] {
            let stacks = serving_lineup(scale).unwrap();
            assert_eq!(stacks.len(), 3);
            for stack in &stacks {
                assert!(stack.validate().is_ok(), "{} at scale {scale}", stack.name);
            }
        }
    }

    #[test]
    fn request_streams_are_deterministic_and_shaped() {
        let stack = sngan_generator(64).unwrap();
        let a = request_stream(&stack, 4, 40, 123);
        let b = request_stream(&stack, 4, 40, 123);
        assert_eq!(a, b, "same seed, same stream");
        assert_eq!(a.len(), 4);
        let first = &stack.layers[0];
        for fm in &a {
            assert_eq!(
                (fm.height(), fm.width(), fm.channels()),
                (first.input_h(), first.input_w(), first.channels())
            );
        }
        // Distinct per-request seeds produce distinct inputs.
        assert_ne!(a[0], a[1]);
        let c = request_stream(&stack, 4, 40, 124);
        assert_ne!(a, c, "different seed, different stream");
    }

    #[test]
    fn request_mix_pairs_every_lineup_stack_with_a_stream() {
        let mix = request_mix(64, 3, 40, 9).unwrap();
        let lineup = serving_lineup(64).unwrap();
        assert_eq!(mix.len(), lineup.len());
        for ((stack, stream), expected) in mix.iter().zip(&lineup) {
            assert_eq!(stack.name, expected.name);
            assert_eq!(stream.len(), 3);
            let first = &stack.layers[0];
            assert!(stream.iter().all(|fm| {
                (fm.height(), fm.width(), fm.channels())
                    == (first.input_h(), first.input_w(), first.channels())
            }));
        }
        // The whole mix is reproducible from its arguments.
        let again = request_mix(64, 3, 40, 9).unwrap();
        assert!(mix.iter().zip(&again).all(|((_, s1), (_, s2))| s1 == s2));
    }

    #[test]
    fn channel_scaling_floors_at_one() {
        let s = dcgan_generator(10_000).unwrap();
        assert!(s
            .layers
            .iter()
            .all(|l| l.channels() == 1 && l.filters() == 1));
        assert!(s.is_chained());
    }
}
