//! Full deconvolution stacks of the networks behind Table I.
//!
//! The paper benchmarks single layers; the end-to-end examples in this
//! repository chain whole up-sampling pipelines, so this module records
//! the published stack geometries:
//!
//! * [`dcgan_generator`] — the DCGAN generator's four 5×5/stride-2
//!   deconvolutions, 4×4×1024 → 64×64×3 (Radford et al., 2015);
//! * [`sngan_generator`] — the SNGAN CIFAR generator's three 4×4/stride-2
//!   deconvolutions, 4×4×512 → 32×32×…;
//! * [`fcn8s_upsampling`] — FCN-8s's two-stage up-sampling head: 2×
//!   (4×4/stride-2) then 8× (16×16/stride-8) over the 21 VOC classes.
//!
//! Channel counts can be scaled down uniformly for tractable functional
//! simulation while keeping every spatial geometry exact.

use red_tensor::{DeconvSpec, LayerShape, ShapeError};

/// A named sequence of deconvolution layers whose shapes chain (each
/// layer's output feeds the next one's input).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeconvStack {
    /// Human-readable network name.
    pub name: &'static str,
    /// The layers in execution order.
    pub layers: Vec<LayerShape>,
}

impl DeconvStack {
    /// Verifies the chain property: layer `i+1`'s input extent and channel
    /// count equal layer `i`'s output.
    pub fn is_chained(&self) -> bool {
        self.layers.windows(2).all(|w| {
            let out = w[0].output_geometry();
            out.height == w[1].input_h()
                && out.width == w[1].input_w()
                && w[0].filters() == w[1].channels()
        })
    }
}

fn scaled(c: usize, factor: usize) -> usize {
    (c / factor.max(1)).max(1)
}

/// The DCGAN generator deconvolution stack (project: 4×4×1024), scaled in
/// channels by `channel_scale` (1 = full size).
///
/// # Errors
///
/// Returns [`ShapeError`] only if scaling produces an invalid geometry
/// (not possible for supported factors, but propagated for honesty).
pub fn dcgan_generator(channel_scale: usize) -> Result<DeconvStack, ShapeError> {
    let spec = DeconvSpec::with_output_padding(5, 5, 2, 2, 1)?;
    let chans = [1024, 512, 256, 128, 3];
    let mut layers = Vec::new();
    let mut extent = 4;
    for i in 0..4 {
        layers.push(LayerShape::with_spec(
            extent,
            extent,
            scaled(chans[i], channel_scale),
            scaled(chans[i + 1], channel_scale),
            spec,
        )?);
        extent *= 2;
    }
    Ok(DeconvStack {
        name: "DCGAN generator",
        layers,
    })
}

/// The SNGAN CIFAR-10 generator deconvolution stack (4×4×512 input),
/// scaled in channels by `channel_scale`.
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn sngan_generator(channel_scale: usize) -> Result<DeconvStack, ShapeError> {
    let spec = DeconvSpec::new(4, 4, 2, 1)?;
    let chans = [512, 256, 128, 64];
    let mut layers = Vec::new();
    let mut extent = 4;
    for i in 0..3 {
        layers.push(LayerShape::with_spec(
            extent,
            extent,
            scaled(chans[i], channel_scale),
            scaled(chans[i + 1], channel_scale),
            spec,
        )?);
        extent *= 2;
    }
    Ok(DeconvStack {
        name: "SNGAN generator",
        layers,
    })
}

/// The FCN-8s up-sampling head over the 21 PASCAL-VOC classes: the 2×
/// deconvolution (Table I FCN_Deconv1 geometry at the given input extent)
/// followed by the 8× deconvolution (FCN_Deconv2 geometry).
///
/// `input_extent` is the coarse score-map extent (16 reproduces
/// FCN_Deconv1's Table I row; the following 8× stage then sees the 2×
/// output minus the published crop).
///
/// # Errors
///
/// Propagates [`ShapeError`] from layer construction.
pub fn fcn8s_upsampling(input_extent: usize) -> Result<DeconvStack, ShapeError> {
    let two_x = DeconvSpec::new(4, 4, 2, 0)?;
    let eight_x = DeconvSpec::new(16, 16, 8, 0)?;
    let classes = 21;
    let l1 = LayerShape::with_spec(input_extent, input_extent, classes, classes, two_x)?;
    // FCN-8s crops the 2x output when fusing with the pool3 skip before the
    // final 8x stage; Table I reflects the fused extent (34 -> fused skip
    // path -> 70 for the published crop schedule). We chain directly at the
    // fused extent.
    let fused = l1.output_geometry().height * 2 + 2;
    let l2 = LayerShape::with_spec(fused, fused, classes, classes, eight_x)?;
    Ok(DeconvStack {
        name: "FCN-8s upsampling head",
        layers: vec![l1, l2],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dcgan_stack_chains_to_64() {
        let s = dcgan_generator(1).unwrap();
        assert_eq!(s.layers.len(), 4);
        assert!(s.is_chained());
        assert_eq!(s.layers[0].channels(), 1024);
        assert_eq!(s.layers[3].output_geometry().height, 64);
        assert_eq!(s.layers[3].filters(), 3);
        // Layer 1 at scale 2 matches GAN_Deconv1's C/M (512 -> 256).
        let scaled = dcgan_generator(2).unwrap();
        assert_eq!(scaled.layers[0].channels(), 512);
    }

    #[test]
    fn sngan_stack_chains_to_32() {
        let s = sngan_generator(1).unwrap();
        assert_eq!(s.layers.len(), 3);
        assert!(s.is_chained());
        assert_eq!(s.layers[0].channels(), 512);
        assert_eq!(s.layers[2].output_geometry().height, 32);
    }

    #[test]
    fn fcn_head_matches_table1_geometries() {
        let s = fcn8s_upsampling(16).unwrap();
        assert_eq!(s.layers.len(), 2);
        // First stage is exactly FCN_Deconv1.
        assert_eq!(s.layers[0].output_geometry().height, 34);
        // Second stage is exactly FCN_Deconv2: 70 -> 568.
        assert_eq!(s.layers[1].input_h(), 70);
        assert_eq!(s.layers[1].output_geometry().height, 568);
    }

    #[test]
    fn channel_scaling_floors_at_one() {
        let s = dcgan_generator(10_000).unwrap();
        assert!(s
            .layers
            .iter()
            .all(|l| l.channels() == 1 && l.filters() == 1));
        assert!(s.is_chained());
    }
}
