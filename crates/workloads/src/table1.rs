use red_tensor::{DeconvSpec, LayerShape};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The six benchmark deconvolution layers of the paper's Table I.
///
/// | Layer | Network | Dataset | In | Out | Kernel | Stride |
/// |---|---|---|---|---|---|---|
/// | `GanDeconv1` | DCGAN | LSUN | 8×8×512 | 16×16×256 | 5×5 | 2 |
/// | `GanDeconv2` | Improved GAN | Cifar-10 | 4×4×512 | 8×8×256 | 5×5 | 2 |
/// | `GanDeconv3` | SNGAN | Cifar-10 | 4×4×512 | 8×8×256 | 4×4 | 2 |
/// | `GanDeconv4` | SNGAN | STL-10 | 6×6×512 | 12×12×256 | 4×4 | 2 |
/// | `FcnDeconv1` | voc-fcn8s 2x | PASCAL VOC | 16×16×21 | 34×34×21 | 4×4 | 2 |
/// | `FcnDeconv2` | voc-fcn8s 8x | PASCAL VOC | 70×70×21 | 568×568×21 | 16×16 | 8 |
///
/// The 5×5/stride-2 layers are only geometrically consistent with
/// `padding = 2, output_padding = 1` (PyTorch convention); the 4×4 GAN
/// layers use `padding = 1` and the FCN layers `padding = 0`, matching the
/// published network definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// DCGAN generator deconvolution (LSUN), 8→16 up-sampling.
    GanDeconv1,
    /// Improved-GAN generator deconvolution (Cifar-10), 4→8.
    GanDeconv2,
    /// SNGAN generator deconvolution (Cifar-10), 4→8.
    GanDeconv3,
    /// SNGAN generator deconvolution (STL-10), 6→12.
    GanDeconv4,
    /// FCN-8s 2× up-sampling head (PASCAL VOC), 16→34.
    FcnDeconv1,
    /// FCN-8s 8× up-sampling head (PASCAL VOC), 70→568.
    FcnDeconv2,
}

impl Benchmark {
    /// All six benchmarks in Table I order.
    pub fn all() -> [Benchmark; 6] {
        [
            Benchmark::GanDeconv1,
            Benchmark::GanDeconv2,
            Benchmark::GanDeconv3,
            Benchmark::GanDeconv4,
            Benchmark::FcnDeconv1,
            Benchmark::FcnDeconv2,
        ]
    }

    /// The GAN subset (the paper separates GAN and FCN behaviour).
    pub fn gans() -> [Benchmark; 4] {
        [
            Benchmark::GanDeconv1,
            Benchmark::GanDeconv2,
            Benchmark::GanDeconv3,
            Benchmark::GanDeconv4,
        ]
    }

    /// The FCN subset.
    pub fn fcns() -> [Benchmark; 2] {
        [Benchmark::FcnDeconv1, Benchmark::FcnDeconv2]
    }

    /// The layer name as printed in Table I.
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::GanDeconv1 => "GAN_Deconv1",
            Benchmark::GanDeconv2 => "GAN_Deconv2",
            Benchmark::GanDeconv3 => "GAN_Deconv3",
            Benchmark::GanDeconv4 => "GAN_Deconv4",
            Benchmark::FcnDeconv1 => "FCN_Deconv1",
            Benchmark::FcnDeconv2 => "FCN_Deconv2",
        }
    }

    /// The source network model.
    pub fn network(&self) -> &'static str {
        match self {
            Benchmark::GanDeconv1 => "DCGAN",
            Benchmark::GanDeconv2 => "Improved GAN",
            Benchmark::GanDeconv3 | Benchmark::GanDeconv4 => "SNGAN",
            Benchmark::FcnDeconv1 => "voc-fcn8s 2x",
            Benchmark::FcnDeconv2 => "voc-fcn8s 8x",
        }
    }

    /// The dataset the paper evaluated this layer's network on.
    pub fn dataset(&self) -> &'static str {
        match self {
            Benchmark::GanDeconv1 => "LSUN",
            Benchmark::GanDeconv2 | Benchmark::GanDeconv3 => "Cifar-10",
            Benchmark::GanDeconv4 => "STL-10",
            Benchmark::FcnDeconv1 | Benchmark::FcnDeconv2 => "PASCAL VOC",
        }
    }

    /// `true` for the GAN layers.
    pub fn is_gan(&self) -> bool {
        matches!(
            self,
            Benchmark::GanDeconv1
                | Benchmark::GanDeconv2
                | Benchmark::GanDeconv3
                | Benchmark::GanDeconv4
        )
    }

    /// The exact Table I layer geometry.
    ///
    /// # Panics
    ///
    /// Never panics in practice — all Table I geometries are valid (pinned
    /// by tests).
    pub fn layer(&self) -> LayerShape {
        let (ih, c, m, k, s, p, op) = match self {
            Benchmark::GanDeconv1 => (8, 512, 256, 5, 2, 2, 1),
            Benchmark::GanDeconv2 => (4, 512, 256, 5, 2, 2, 1),
            Benchmark::GanDeconv3 => (4, 512, 256, 4, 2, 1, 0),
            Benchmark::GanDeconv4 => (6, 512, 256, 4, 2, 1, 0),
            Benchmark::FcnDeconv1 => (16, 21, 21, 4, 2, 0, 0),
            Benchmark::FcnDeconv2 => (70, 21, 21, 16, 8, 0, 0),
        };
        let spec = DeconvSpec::with_output_padding(k, k, s, p, op)
            .expect("Table I hyper-parameters are valid");
        LayerShape::with_spec(ih, ih, c, m, spec).expect("Table I dimensions are valid")
    }

    /// A channel-scaled version of the layer for functional simulation
    /// (spatial geometry exact, `C`/`M` divided by `factor`).
    pub fn scaled_layer(&self, factor: usize) -> LayerShape {
        self.layer().scaled_channels(factor)
    }
}

impl fmt::Display for Benchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_geometries_match_paper() {
        // (name, IH, C, OH, M, KH, stride)
        let expect = [
            ("GAN_Deconv1", 8, 512, 16, 256, 5, 2),
            ("GAN_Deconv2", 4, 512, 8, 256, 5, 2),
            ("GAN_Deconv3", 4, 512, 8, 256, 4, 2),
            ("GAN_Deconv4", 6, 512, 12, 256, 4, 2),
            ("FCN_Deconv1", 16, 21, 34, 21, 4, 2),
            ("FCN_Deconv2", 70, 21, 568, 21, 16, 8),
        ];
        for (b, (name, ih, c, oh, m, k, s)) in Benchmark::all().iter().zip(expect) {
            assert_eq!(b.name(), name);
            let l = b.layer();
            assert_eq!(l.input_h(), ih, "{name} IH");
            assert_eq!(l.channels(), c, "{name} C");
            assert_eq!(l.output_geometry().height, oh, "{name} OH");
            assert_eq!(l.filters(), m, "{name} M");
            assert_eq!(l.spec().kernel_h(), k, "{name} KH");
            assert_eq!(l.spec().stride(), s, "{name} stride");
        }
    }

    #[test]
    fn subsets_partition_the_suite() {
        assert_eq!(Benchmark::gans().len() + Benchmark::fcns().len(), 6);
        assert!(Benchmark::gans().iter().all(Benchmark::is_gan));
        assert!(!Benchmark::fcns().iter().any(Benchmark::is_gan));
    }

    #[test]
    fn provenance_strings() {
        assert_eq!(Benchmark::GanDeconv1.network(), "DCGAN");
        assert_eq!(Benchmark::GanDeconv1.dataset(), "LSUN");
        assert_eq!(Benchmark::FcnDeconv2.network(), "voc-fcn8s 8x");
        assert_eq!(Benchmark::GanDeconv3.to_string(), "GAN_Deconv3");
    }

    #[test]
    fn scaled_layers_keep_spatial_shape() {
        let l = Benchmark::FcnDeconv2.scaled_layer(7);
        assert_eq!(l.channels(), 3);
        assert_eq!(l.output_geometry().height, 568);
    }
}
