//! # red-workloads
//!
//! Benchmark workloads for the RED accelerator reproduction.
//!
//! * [`Benchmark`] — the six deconvolution layers of the paper's Table I
//!   (four GAN layers, two FCN layers), with their network/dataset
//!   provenance;
//! * [`networks`] — the full deconvolution stacks those layers came from
//!   (DCGAN generator, SNGAN generator, FCN-8s upsampling head), for
//!   end-to-end examples;
//! * [`synth`] — seeded synthetic weight/activation generators.
//!
//! **Substitution note** (see DESIGN.md §4): the paper evaluates with
//! trained models on LSUN / CIFAR-10 / STL-10 / PASCAL VOC. Latency,
//! energy and area depend only on the layer *geometry* and the padded-zero
//! structure, not on learned values, so this crate generates seeded
//! synthetic tensors with the exact Table I geometries instead. Functional
//! correctness is established separately by value-exact equivalence
//! between all three engine dataflows and the golden algorithms.
//!
//! # Example
//!
//! ```
//! use red_workloads::Benchmark;
//!
//! let all = Benchmark::all();
//! assert_eq!(all.len(), 6);
//! let l = Benchmark::GanDeconv1.layer();
//! assert_eq!((l.input_h(), l.channels(), l.filters()), (8, 512, 256));
//! assert_eq!(l.output_geometry().height, 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod networks;
pub mod synth;
mod table1;

pub use table1::Benchmark;
