//! Seeded synthetic tensor generators.
//!
//! Replaces the trained weights and dataset activations the paper used
//! (LSUN/CIFAR/STL/VOC) with reproducible synthetic tensors of the exact
//! same geometry — see the crate docs and DESIGN.md §4 for why this
//! preserves every reported metric.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_tensor::{FeatureMap, Kernel, LayerShape};

/// Generates a seeded kernel with integer weights uniform in
/// `[-bound, bound]` (defaults sized for 8-bit crossbar programming).
///
/// # Panics
///
/// Panics if `bound <= 0`.
///
/// # Example
///
/// ```
/// use red_workloads::{synth, Benchmark};
///
/// let layer = Benchmark::GanDeconv3.scaled_layer(64);
/// let k = synth::kernel(&layer, 127, 42);
/// assert_eq!(k.kernel_h(), 4);
/// assert_eq!(k.channels(), layer.channels());
/// // Same seed, same kernel.
/// assert_eq!(k, synth::kernel(&layer, 127, 42));
/// ```
pub fn kernel(layer: &LayerShape, bound: i64, seed: u64) -> Kernel<i64> {
    assert!(bound > 0, "weight bound must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    Kernel::from_fn(
        layer.spec().kernel_h(),
        layer.spec().kernel_w(),
        layer.channels(),
        layer.filters(),
        |_, _, _, _| rng.gen_range(-bound..=bound),
    )
}

/// Generates a seeded dense input feature map with values uniform in
/// `[1, bound]` — strictly positive, matching post-ReLU activations
/// feeding a deconvolution (and making every input pixel non-zero, the
/// paper's assumption for its redundancy analysis).
///
/// # Panics
///
/// Panics if `bound <= 0`.
pub fn input_dense(layer: &LayerShape, bound: i64, seed: u64) -> FeatureMap<i64> {
    assert!(bound > 0, "input bound must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    FeatureMap::from_fn(
        layer.input_h(),
        layer.input_w(),
        layer.channels(),
        |_, _, _| rng.gen_range(1..=bound),
    )
}

/// Generates a seeded input with approximately `sparsity` of its values
/// zero (element-wise Bernoulli) — for studying activation sparsity on top
/// of the structural padding zeros.
///
/// # Panics
///
/// Panics if `bound <= 0` or `sparsity` is outside `[0, 1]`.
pub fn input_sparse(layer: &LayerShape, bound: i64, sparsity: f64, seed: u64) -> FeatureMap<i64> {
    assert!(bound > 0, "input bound must be positive");
    assert!((0.0..=1.0).contains(&sparsity), "sparsity must be in [0,1]");
    let mut rng = StdRng::seed_from_u64(seed);
    FeatureMap::from_fn(
        layer.input_h(),
        layer.input_w(),
        layer.channels(),
        |_, _, _| {
            if rng.gen_bool(sparsity) {
                0
            } else {
                rng.gen_range(1..=bound)
            }
        },
    )
}

/// Generates a smooth floating-point feature map (sum of spatial
/// sinusoids) for quantization-error studies: smooth data exposes
/// quantization noise more faithfully than white noise.
pub fn input_smooth_f64(layer: &LayerShape, seed: u64) -> FeatureMap<f64> {
    let phase = (seed % 97) as f64;
    FeatureMap::from_fn(
        layer.input_h(),
        layer.input_w(),
        layer.channels(),
        |h, w, c| {
            let (x, y, z) = (h as f64, w as f64, c as f64);
            ((x * 0.7 + phase).sin() + (y * 0.5 + z * 0.3).cos()) * 0.5
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Benchmark;

    fn layer() -> LayerShape {
        Benchmark::GanDeconv3.scaled_layer(128)
    }

    #[test]
    fn kernels_are_seeded_and_bounded() {
        let a = kernel(&layer(), 127, 1);
        let b = kernel(&layer(), 127, 1);
        let c = kernel(&layer(), 127, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&w| w.abs() <= 127));
    }

    #[test]
    fn dense_input_has_no_zeros() {
        let i = input_dense(&layer(), 127, 3);
        assert_eq!(i.count_zeros(), 0);
        assert!(i.as_slice().iter().all(|&v| (1..=127).contains(&v)));
    }

    #[test]
    fn sparse_input_matches_requested_rate() {
        let big = LayerShape::new(64, 64, 8, 4, 4, 4, 2, 1).unwrap();
        let i = input_sparse(&big, 100, 0.3, 9);
        let frac = i.count_zeros() as f64 / i.len() as f64;
        assert!((frac - 0.3).abs() < 0.02, "got {frac}");
        // Extremes.
        assert_eq!(input_sparse(&big, 10, 0.0, 1).count_zeros(), 0);
        assert_eq!(input_sparse(&big, 10, 1.0, 1).count_zeros(), 64 * 64 * 8);
    }

    #[test]
    fn smooth_input_is_bounded_and_seeded() {
        let a = input_smooth_f64(&layer(), 5);
        let b = input_smooth_f64(&layer(), 5);
        assert_eq!(a, b);
        assert!(a.as_slice().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "sparsity")]
    fn bad_sparsity_panics() {
        let _ = input_sparse(&layer(), 10, 1.5, 0);
    }
}
