//! One-stop imports for the common simulation workflow.
//!
//! ```
//! use red_core::prelude::*;
//!
//! let layer = Benchmark::GanDeconv3.scaled_layer(128);
//! let model = CostModel::paper_default();
//! let report = model.evaluate(Design::ZeroPadding, &layer).unwrap();
//! assert!(report.total_latency_ns() > 0.0);
//! ```

pub use crate::{
    Accelerator, AcceleratorBuilder, Comparison, CompiledLayer, DesignRow, LayerScratch,
};
pub use red_arch::{
    Component, ConvEngine, CostModel, CostReport, DeconvEngine, Design, Execution, ExecutionStats,
    MacroSpec, PipelineReport, RedLayoutPolicy, TrafficReport,
};
pub use red_circuit::CircuitParams;
pub use red_device::{CellConfig, TechnologyParams};
pub use red_tensor::ConvLayerShape;
pub use red_tensor::{DeconvSpec, FeatureMap, Kernel, LayerShape, Tensor3, Tensor4};
pub use red_workloads::{synth, Benchmark};
pub use red_xbar::{AdcModel, ExecPrecision, SctLayout, WeightScheme, XbarConfig};
