use red_arch::{
    ArchError, CostModel, CostReport, DeconvEngine, Design, Execution, PaddingFreeEngine,
    RedEngine, RedLayoutPolicy, ZeroPaddingEngine,
};
use red_tensor::{FeatureMap, Kernel, LayerShape};
use red_xbar::{ExecPrecision, XbarConfig};

/// A configured accelerator: one design plus the device/circuit models it
/// is priced and simulated with.
///
/// Build with [`Accelerator::builder`], then either [`estimate`] a layer's
/// cost analytically or [`compile`] it onto simulated crossbars and run
/// real data through it.
///
/// [`estimate`]: Accelerator::estimate
/// [`compile`]: Accelerator::compile
///
/// # Example
///
/// ```
/// use red_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let layer = Benchmark::FcnDeconv1.scaled_layer(4);
/// let acc = Accelerator::builder()
///     .design(Design::red(RedLayoutPolicy::Auto))
///     .build();
/// let report = acc.estimate(&layer)?;
/// assert_eq!(report.geometry.array.instances, 16); // 4x4 kernel -> 16 SCs
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Accelerator {
    design: Design,
    xbar: XbarConfig,
    model: CostModel,
}

impl Accelerator {
    /// Starts building an accelerator (defaults: RED with the paper's
    /// layout policy, ideal crossbars, paper-calibrated cost model).
    pub fn builder() -> AcceleratorBuilder {
        AcceleratorBuilder::new()
    }

    /// The configured design.
    pub fn design(&self) -> Design {
        self.design
    }

    /// The functional crossbar configuration.
    pub fn xbar_config(&self) -> &XbarConfig {
        &self.xbar
    }

    /// The analytical cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// Analytically prices `layer` on this design (no crossbar
    /// programming; fast even for full Table I channel counts).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] if the geometry cannot be derived.
    pub fn estimate(&self, layer: &LayerShape) -> Result<CostReport, ArchError> {
        self.model.evaluate(self.design, layer)
    }

    /// Programs `kernel` onto simulated crossbars for `layer`, returning a
    /// runnable compiled layer together with its cost report.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError`] for kernel/layer mismatches or weight-range
    /// violations.
    pub fn compile(
        &self,
        layer: &LayerShape,
        kernel: &Kernel<i64>,
    ) -> Result<CompiledLayer, ArchError> {
        let cost = self.estimate(layer)?;
        let engine = match self.design {
            Design::ZeroPadding => {
                EngineKind::ZeroPadding(ZeroPaddingEngine::new(&self.xbar, layer, kernel)?)
            }
            Design::PaddingFree => {
                EngineKind::PaddingFree(PaddingFreeEngine::new(&self.xbar, layer, kernel)?)
            }
            Design::Red { policy } => {
                EngineKind::Red(RedEngine::new(&self.xbar, layer, kernel, policy)?)
            }
        };
        Ok(CompiledLayer { engine, cost })
    }
}

impl Default for Accelerator {
    fn default() -> Self {
        Accelerator::builder().build()
    }
}

/// Builder for [`Accelerator`].
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    design: Design,
    xbar: XbarConfig,
    model: CostModel,
}

impl AcceleratorBuilder {
    /// Creates the builder with paper defaults.
    pub fn new() -> Self {
        Self {
            design: Design::red(RedLayoutPolicy::Auto),
            xbar: XbarConfig::ideal(),
            model: CostModel::paper_default(),
        }
    }

    /// Selects the accelerator design.
    pub fn design(mut self, design: Design) -> Self {
        self.design = design;
        self
    }

    /// Sets the functional crossbar configuration (ADC model, variation,
    /// faults, precisions).
    pub fn xbar_config(mut self, cfg: XbarConfig) -> Self {
        self.xbar = cfg;
        self
    }

    /// Sets the analytical cost model.
    pub fn cost_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> Accelerator {
        Accelerator {
            design: self.design,
            xbar: self.xbar,
            model: self.model,
        }
    }
}

impl Default for AcceleratorBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Clone)]
enum EngineKind {
    ZeroPadding(ZeroPaddingEngine),
    PaddingFree(PaddingFreeEngine),
    Red(RedEngine),
}

/// Reusable working memory for [`CompiledLayer::run_with`]: the compiled
/// engine's scratch buffers (accumulators, gather windows, analog-path
/// VMM state), built once per execution context — a batch, a pipeline
/// worker — and reused across images so steady-state execution performs
/// no per-pixel heap allocation.
#[derive(Debug)]
pub struct LayerScratch(ScratchKind);

#[derive(Debug)]
enum ScratchKind {
    ZeroPadding(red_arch::ZpScratch),
    PaddingFree(red_arch::PfScratch),
    Red(red_arch::RedScratch),
}

/// A layer compiled onto simulated crossbars, ready to execute.
#[derive(Debug, Clone)]
pub struct CompiledLayer {
    engine: EngineKind,
    cost: CostReport,
}

impl CompiledLayer {
    /// Executes the layer on `input`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    pub fn run(&self, input: &FeatureMap<i64>) -> Result<Execution, ArchError> {
        self.run_with(input, &mut self.make_scratch())
    }

    /// Creates working memory for [`CompiledLayer::run_with`].
    pub fn make_scratch(&self) -> LayerScratch {
        LayerScratch(match &self.engine {
            EngineKind::ZeroPadding(e) => ScratchKind::ZeroPadding(e.make_scratch()),
            EngineKind::PaddingFree(e) => ScratchKind::PaddingFree(e.make_scratch()),
            EngineKind::Red(e) => ScratchKind::Red(e.make_scratch()),
        })
    }

    /// Executes the layer on `input` with caller-provided scratch, so
    /// repeated executions (a batch, a serving loop) pay the buffer setup
    /// once instead of per image.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was created by a [`CompiledLayer`] of a
    /// different design.
    pub fn run_with(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut LayerScratch,
    ) -> Result<Execution, ArchError> {
        match (&self.engine, &mut scratch.0) {
            (EngineKind::ZeroPadding(e), ScratchKind::ZeroPadding(s)) => e.run_with(input, s),
            (EngineKind::PaddingFree(e), ScratchKind::PaddingFree(s)) => e.run_with(input, s),
            (EngineKind::Red(e), ScratchKind::Red(s)) => e.run_with(input, s),
            _ => panic!("LayerScratch used with a different design's CompiledLayer"),
        }
    }

    /// [`CompiledLayer::run_with`] at an explicit precision tier: `prec`
    /// selects how many low input bits every crossbar VMM drops (see
    /// [`ExecPrecision`]); `ExecPrecision::Full` is bit-identical to
    /// [`CompiledLayer::run_with`], and the worst-case output deviation
    /// of a degraded tier is
    /// [`CompiledLayer::truncation_error_bound`]. [`red_arch::ExecutionStats`]
    /// are identical across tiers.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InputMismatch`] for a wrong-shaped input.
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was created by a [`CompiledLayer`] of a
    /// different design.
    pub fn run_with_at(
        &self,
        input: &FeatureMap<i64>,
        scratch: &mut LayerScratch,
        prec: ExecPrecision,
    ) -> Result<Execution, ArchError> {
        match (&self.engine, &mut scratch.0) {
            (EngineKind::ZeroPadding(e), ScratchKind::ZeroPadding(s)) => {
                e.run_with_at(input, s, prec)
            }
            (EngineKind::PaddingFree(e), ScratchKind::PaddingFree(s)) => {
                e.run_with_at(input, s, prec)
            }
            (EngineKind::Red(e), ScratchKind::Red(s)) => e.run_with_at(input, s, prec),
            _ => panic!("LayerScratch used with a different design's CompiledLayer"),
        }
    }

    /// Executes the layer on every input of a batch, bit-exact against
    /// per-input [`CompiledLayer::run`] calls. Scratch buffers are reused
    /// across the batch, and when the crossbars are large enough the
    /// engines multiply whole-batch gathers at once: the row-blocked
    /// exact VMM on ideal configurations, the phase-major analog VMM over
    /// the programming-time effective-current plane on noisy ones — so
    /// weights (or plane rows) stream from cache once per block instead
    /// of once per image on both paths.
    ///
    /// # Errors
    ///
    /// As [`CompiledLayer::run`]; the first failing input aborts the
    /// batch.
    pub fn run_batch(&self, inputs: &[FeatureMap<i64>]) -> Result<Vec<Execution>, ArchError> {
        match &self.engine {
            EngineKind::ZeroPadding(e) => e.run_batch(inputs),
            EngineKind::PaddingFree(e) => e.run_batch(inputs),
            EngineKind::Red(e) => e.run_batch(inputs),
        }
    }

    /// [`CompiledLayer::run_batch`] with caller-provided scratch: when
    /// the crossbars are below the batched-VMM threshold the per-image
    /// fallback reuses `scratch` instead of allocating one per call, so a
    /// serving loop pushing many small batches through the same layer
    /// performs no steady-state scratch allocation. Bit-exact against
    /// [`CompiledLayer::run_batch`] on every path.
    ///
    /// # Errors
    ///
    /// As [`CompiledLayer::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was created by a [`CompiledLayer`] of a
    /// different design.
    pub fn run_batch_with(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut LayerScratch,
    ) -> Result<Vec<Execution>, ArchError> {
        match (&self.engine, &mut scratch.0) {
            (EngineKind::ZeroPadding(e), ScratchKind::ZeroPadding(s)) => {
                e.run_batch_with(inputs, s)
            }
            (EngineKind::PaddingFree(e), ScratchKind::PaddingFree(s)) => {
                e.run_batch_with(inputs, s)
            }
            (EngineKind::Red(e), ScratchKind::Red(s)) => e.run_batch_with(inputs, s),
            _ => panic!("LayerScratch used with a different design's CompiledLayer"),
        }
    }

    /// [`CompiledLayer::run_batch_with`] at an explicit precision tier
    /// (see [`CompiledLayer::run_with_at`]).
    ///
    /// # Errors
    ///
    /// As [`CompiledLayer::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `scratch` was created by a [`CompiledLayer`] of a
    /// different design.
    pub fn run_batch_with_at(
        &self,
        inputs: &[FeatureMap<i64>],
        scratch: &mut LayerScratch,
        prec: ExecPrecision,
    ) -> Result<Vec<Execution>, ArchError> {
        match (&self.engine, &mut scratch.0) {
            (EngineKind::ZeroPadding(e), ScratchKind::ZeroPadding(s)) => {
                e.run_batch_with_at(inputs, s, prec)
            }
            (EngineKind::PaddingFree(e), ScratchKind::PaddingFree(s)) => {
                e.run_batch_with_at(inputs, s, prec)
            }
            (EngineKind::Red(e), ScratchKind::Red(s)) => e.run_batch_with_at(inputs, s, prec),
            _ => panic!("LayerScratch used with a different design's CompiledLayer"),
        }
    }

    /// Worst-case absolute deviation of any output element at `prec`
    /// relative to the same input at [`ExecPrecision::Full`]: the
    /// per-VMM bound (see
    /// [`red_xbar::CrossbarArray::truncation_error_bound`]) scaled by
    /// the design's accumulation fan-in — zero-padding computes each
    /// output pixel in one VMM, while padding-free's overlap-add and
    /// RED's vertical sum-up each merge up to `KH·KW` tap VMMs into one
    /// output element. Zero for `Full`; a sound (per-tap-tight) upper
    /// bound for degraded tiers.
    pub fn truncation_error_bound(&self, prec: ExecPrecision) -> f64 {
        let taps = self.layer().spec().taps() as f64;
        match &self.engine {
            EngineKind::ZeroPadding(e) => e.array().truncation_error_bound(prec),
            EngineKind::PaddingFree(e) => taps * e.array().truncation_error_bound(prec),
            EngineKind::Red(e) => taps * e.sct().truncation_error_bound(prec),
        }
    }

    /// The analytical cost report for this layer on this design.
    pub fn cost(&self) -> &CostReport {
        &self.cost
    }

    /// The design this layer was compiled for.
    pub fn design(&self) -> Design {
        match &self.engine {
            EngineKind::ZeroPadding(e) => e.design(),
            EngineKind::PaddingFree(e) => e.design(),
            EngineKind::Red(e) => e.design(),
        }
    }

    /// The layer shape this was compiled for.
    pub fn layer(&self) -> &LayerShape {
        match &self.engine {
            EngineKind::ZeroPadding(e) => e.layer(),
            EngineKind::PaddingFree(e) => e.layer(),
            EngineKind::Red(e) => e.layer(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_tensor::deconv::deconv_direct;
    use red_workloads::{synth, Benchmark};

    #[test]
    fn all_designs_compile_and_agree() {
        let layer = Benchmark::GanDeconv3.scaled_layer(128);
        let kernel = synth::kernel(&layer, 100, 1);
        let input = synth::input_dense(&layer, 100, 2);
        let golden = deconv_direct(&input, &kernel, layer.spec()).unwrap();
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).build();
            let compiled = acc.compile(&layer, &kernel).unwrap();
            let exec = compiled.run(&input).unwrap();
            assert_eq!(exec.output, golden, "{design}");
            assert_eq!(compiled.design().label(), design.label());
            assert_eq!(compiled.layer(), &layer);
            // Measured cycles match the priced geometry.
            assert_eq!(
                exec.stats.cycles,
                compiled.cost().geometry.cycles,
                "{design}"
            );
        }
    }

    #[test]
    fn run_batch_and_run_with_match_per_image_runs() {
        let layer = Benchmark::GanDeconv3.scaled_layer(128);
        let kernel = synth::kernel(&layer, 100, 1);
        let inputs: Vec<_> = (0..3)
            .map(|i| synth::input_dense(&layer, 100, 10 + i))
            .collect();
        for design in Design::paper_lineup() {
            let acc = Accelerator::builder().design(design).build();
            let compiled = acc.compile(&layer, &kernel).unwrap();
            let batch = compiled.run_batch(&inputs).unwrap();
            let mut scratch = compiled.make_scratch();
            for (input, exec) in inputs.iter().zip(&batch) {
                let single = compiled.run(input).unwrap();
                let with = compiled.run_with(input, &mut scratch).unwrap();
                assert_eq!(single.output, exec.output, "{design}");
                assert_eq!(single.stats, exec.stats, "{design}");
                assert_eq!(with.output, exec.output, "{design}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "different design")]
    fn mismatched_scratch_panics() {
        let layer = Benchmark::GanDeconv3.scaled_layer(128);
        let kernel = synth::kernel(&layer, 100, 1);
        let input = synth::input_dense(&layer, 100, 2);
        let red = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::Auto))
            .build()
            .compile(&layer, &kernel)
            .unwrap();
        let zp = Accelerator::builder()
            .design(Design::ZeroPadding)
            .build()
            .compile(&layer, &kernel)
            .unwrap();
        let mut scratch = zp.make_scratch();
        let _ = red.run_with(&input, &mut scratch);
    }

    #[test]
    fn estimate_without_compiling() {
        let layer = Benchmark::GanDeconv1.layer(); // full size: analytic only
        let acc = Accelerator::default();
        let report = acc.estimate(&layer).unwrap();
        assert_eq!(report.geometry.cycles, 64); // 256 outputs / 4 modes
    }

    #[test]
    fn builder_accessors() {
        let acc = Accelerator::builder().design(Design::PaddingFree).build();
        assert_eq!(acc.design(), Design::PaddingFree);
        let _ = acc.xbar_config();
        let _ = acc.cost_model();
    }
}
