use red_arch::{ArchError, Component, CostModel, CostReport, Design, RedLayoutPolicy};
use red_tensor::LayerShape;
use serde::Serialize;

/// One design's normalized results for a layer, in the form the paper's
/// figures report them (everything relative to the zero-padding baseline).
#[derive(Debug, Clone, Serialize)]
pub struct DesignRow {
    /// Design label ("zero-padding" / "padding-free" / "RED").
    pub design: String,
    /// Speedup over the zero-padding design (Fig. 7(a)).
    pub speedup: f64,
    /// Array share of this design's own latency, in percent (Fig. 7(b)).
    pub array_latency_pct: f64,
    /// Periphery share of this design's own latency, in percent.
    pub periphery_latency_pct: f64,
    /// Energy relative to zero-padding (Fig. 8(a): saving = 1 - this).
    pub energy_rel: f64,
    /// Array share of this design's own energy, in percent (Fig. 8(b)).
    pub array_energy_pct: f64,
    /// Periphery share of this design's own energy, in percent.
    pub periphery_energy_pct: f64,
    /// Total area relative to zero-padding, in percent (Fig. 9).
    pub area_rel_pct: f64,
    /// Array share of this design's own area, in percent.
    pub array_area_pct: f64,
    /// Cycles to complete the layer.
    pub cycles: u64,
}

/// Side-by-side evaluation of the paper's three designs on one layer.
///
/// # Example
///
/// ```
/// use red_core::Comparison;
/// use red_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let cmp = Comparison::evaluate(&CostModel::paper_default(),
///                                &Benchmark::GanDeconv3.layer())?;
/// let red = cmp.red();
/// let zp = cmp.zero_padding();
/// assert!(red.speedup_vs(zp) > 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Comparison {
    layer: LayerShape,
    reports: [CostReport; 3],
}

impl Comparison {
    /// Evaluates all three designs (zero-padding, padding-free, RED with
    /// the paper's layout policy) on `layer`.
    ///
    /// # Errors
    ///
    /// Propagates [`ArchError`] from geometry derivation.
    pub fn evaluate(model: &CostModel, layer: &LayerShape) -> Result<Self, ArchError> {
        Ok(Self {
            layer: *layer,
            reports: [
                model.evaluate(Design::ZeroPadding, layer)?,
                model.evaluate(Design::PaddingFree, layer)?,
                model.evaluate(Design::red(RedLayoutPolicy::Auto), layer)?,
            ],
        })
    }

    /// The layer compared.
    pub fn layer(&self) -> &LayerShape {
        &self.layer
    }

    /// The zero-padding baseline report.
    pub fn zero_padding(&self) -> &CostReport {
        &self.reports[0]
    }

    /// The padding-free report.
    pub fn padding_free(&self) -> &CostReport {
        &self.reports[1]
    }

    /// The RED report.
    pub fn red(&self) -> &CostReport {
        &self.reports[2]
    }

    /// All three reports in paper order.
    pub fn reports(&self) -> &[CostReport; 3] {
        &self.reports
    }

    /// The normalized rows the paper's figures plot, in paper order
    /// (zero-padding, padding-free, RED).
    pub fn rows(&self) -> Vec<DesignRow> {
        let zp = self.zero_padding();
        self.reports
            .iter()
            .map(|r| {
                let lat = r.total_latency_ns();
                let en = r.total_energy_pj();
                let ar = r.total_area_um2();
                DesignRow {
                    design: r.design.label().to_string(),
                    speedup: r.speedup_vs(zp),
                    array_latency_pct: 100.0 * r.array_latency_ns() / lat,
                    periphery_latency_pct: 100.0 * r.periphery_latency_ns() / lat,
                    energy_rel: en / zp.total_energy_pj(),
                    array_energy_pct: 100.0 * r.array_energy_pj() / en,
                    periphery_energy_pct: 100.0 * r.periphery_energy_pj() / en,
                    area_rel_pct: 100.0 * ar / zp.total_area_um2(),
                    array_area_pct: 100.0 * r.array_area_um2() / ar,
                    cycles: r.geometry.cycles,
                }
            })
            .collect()
    }

    /// Latency breakdown of one report as `(component, percent)` pairs of
    /// its own total, skipping zero entries.
    pub fn latency_breakdown_pct(report: &CostReport) -> Vec<(Component, f64)> {
        let total = report.total_latency_ns();
        Component::ALL
            .iter()
            .filter_map(|&c| {
                let v = report.latency_ns(c);
                (v > 0.0).then_some((c, 100.0 * v / total))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_workloads::Benchmark;

    #[test]
    fn rows_are_normalized_to_zero_padding() {
        let cmp = Comparison::evaluate(&CostModel::paper_default(), &Benchmark::GanDeconv4.layer())
            .unwrap();
        let rows = cmp.rows();
        assert_eq!(rows.len(), 3);
        assert!((rows[0].speedup - 1.0).abs() < 1e-12);
        assert!((rows[0].energy_rel - 1.0).abs() < 1e-12);
        assert!((rows[0].area_rel_pct - 100.0).abs() < 1e-9);
        // Shares sum to 100.
        for row in &rows {
            assert!((row.array_latency_pct + row.periphery_latency_pct - 100.0).abs() < 1e-6);
            assert!((row.array_energy_pct + row.periphery_energy_pct - 100.0).abs() < 1e-6);
        }
        // RED is the fastest design.
        assert!(rows[2].speedup > rows[1].speedup);
        assert!(rows[2].speedup > 1.0);
    }

    #[test]
    fn breakdown_skips_zero_components() {
        let cmp = Comparison::evaluate(&CostModel::paper_default(), &Benchmark::GanDeconv3.layer())
            .unwrap();
        let bd = Comparison::latency_breakdown_pct(cmp.zero_padding());
        // Zero-padding has no accumulator and no computation latency.
        assert!(bd.iter().all(|(c, _)| *c != Component::Accumulator));
        let total: f64 = bd.iter().map(|(_, p)| p).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }
}
