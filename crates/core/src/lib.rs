//! # red-core
//!
//! Public API facade for **red-sim** — a from-scratch Rust reproduction of
//! *RED: A ReRAM-based Deconvolution Accelerator* (Fan, Li, Li, Chen, Li —
//! DATE 2019, arXiv:1907.02987).
//!
//! RED accelerates deconvolution (transposed convolution) on ReRAM
//! processing-in-memory hardware with two techniques: **pixel-wise
//! mapping** (the kernel split across `KH·KW` sub-crossbars, Eq. 1) and a
//! **zero-skipping data flow** (only real input pixels are ever driven;
//! the `stride²` computation modes run concurrently). This crate stitches
//! the full simulator stack into one API:
//!
//! * [`Accelerator`] — configure a design, compile a layer onto simulated
//!   crossbars, execute it, and read the latency/energy/area bill;
//! * [`Comparison`] — evaluate all three designs the paper compares
//!   (zero-padding, padding-free, RED) side by side, normalized the way
//!   the paper's figures are;
//! * re-exports of every layer of the stack ([`tensor`], [`device`],
//!   [`circuit`], [`xbar`], [`arch`], [`workloads`]) for direct use.
//!
//! # Quickstart
//!
//! ```
//! use red_core::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's GAN_Deconv3 benchmark, channel-scaled for a fast demo.
//! let layer = Benchmark::GanDeconv3.scaled_layer(64);
//! let kernel = synth::kernel(&layer, 127, 42);
//! let input = synth::input_dense(&layer, 127, 7);
//!
//! // Compile onto the RED design and run.
//! let acc = Accelerator::builder().design(Design::red(RedLayoutPolicy::Auto)).build();
//! let compiled = acc.compile(&layer, &kernel)?;
//! let exec = compiled.run(&input)?;
//!
//! // Output is bit-exact with the textbook deconvolution.
//! let golden = red_core::tensor::deconv::deconv_direct(&input, &kernel, layer.spec())?;
//! assert_eq!(exec.output, golden);
//!
//! // And the paper's headline: ~4x fewer cycles than zero-padding at stride 2.
//! let zp = Accelerator::builder().design(Design::ZeroPadding).build();
//! let zp_cycles = zp.estimate(&layer)?.geometry.cycles;
//! assert_eq!(zp_cycles, 4 * exec.stats.cycles);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accelerator;
mod comparison;
pub mod prelude;

pub use accelerator::{Accelerator, AcceleratorBuilder, CompiledLayer, LayerScratch};
pub use comparison::{Comparison, DesignRow};

/// The tensor / golden-algorithm substrate (re-export of `red-tensor`).
pub use red_tensor as tensor;

/// ReRAM device and technology models (re-export of `red-device`).
pub use red_device as device;

/// Periphery circuit models (re-export of `red-circuit`).
pub use red_circuit as circuit;

/// Functional crossbar simulation (re-export of `red-xbar`).
pub use red_xbar as xbar;

/// Architecture engines and cost model (re-export of `red-arch`).
pub use red_arch as arch;

/// Table I benchmarks and synthetic workloads (re-export of `red-workloads`).
pub use red_workloads as workloads;
