//! Conductance retention/drift model.
//!
//! Programmed ReRAM conductances drift over time — the standard compact
//! model is a power law `G(t) = G0 · (t/t0)^(-nu)` with drift exponents
//! around 0.005–0.1 for filamentary oxide cells. The paper evaluates
//! freshly programmed (ideal) arrays; this model is the repository's
//! extension for studying how long a programmed deconvolution kernel
//! stays accurate.

use serde::{Deserialize, Serialize};

/// Power-law conductance drift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftModel {
    /// Drift exponent `nu` (0 disables drift).
    pub nu: f64,
    /// Time since programming, in seconds.
    pub elapsed_s: f64,
    /// Reference time `t0` in seconds (normalisation of the power law;
    /// conventionally 1 s).
    pub t0_s: f64,
}

impl DriftModel {
    /// Freshly programmed: no drift.
    pub fn fresh() -> Self {
        Self {
            nu: 0.0,
            elapsed_s: 0.0,
            t0_s: 1.0,
        }
    }

    /// A drift model with exponent `nu` evaluated `elapsed_s` after
    /// programming.
    ///
    /// # Panics
    ///
    /// Panics if `nu` or `elapsed_s` is negative.
    pub fn after(nu: f64, elapsed_s: f64) -> Self {
        assert!(nu >= 0.0, "drift exponent must be non-negative");
        assert!(elapsed_s >= 0.0, "elapsed time must be non-negative");
        Self {
            nu,
            elapsed_s,
            t0_s: 1.0,
        }
    }

    /// `true` when this model changes nothing.
    pub fn is_fresh(&self) -> bool {
        self.nu == 0.0 || self.elapsed_s <= self.t0_s
    }

    /// Multiplicative conductance factor at the configured time:
    /// `(t/t0)^(-nu)`, clamped to 1 for `t <= t0` (no "anti-drift").
    pub fn factor(&self) -> f64 {
        if self.is_fresh() {
            return 1.0;
        }
        (self.elapsed_s / self.t0_s).powf(-self.nu)
    }
}

impl Default for DriftModel {
    fn default() -> Self {
        Self::fresh()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_identity() {
        assert_eq!(DriftModel::fresh().factor(), 1.0);
        assert!(DriftModel::fresh().is_fresh());
        // t below the reference time never amplifies.
        assert_eq!(DriftModel::after(0.05, 0.5).factor(), 1.0);
    }

    #[test]
    fn drift_decays_monotonically() {
        let day = 86_400.0;
        let f1 = DriftModel::after(0.02, day).factor();
        let f30 = DriftModel::after(0.02, 30.0 * day).factor();
        let f365 = DriftModel::after(0.02, 365.0 * day).factor();
        assert!(f1 < 1.0);
        assert!(f30 < f1);
        assert!(f365 < f30);
        // Power law: a 2% exponent keeps a year's drift above 60%.
        assert!(f365 > 0.6, "got {f365}");
    }

    #[test]
    fn stronger_exponent_drifts_faster() {
        let t = 1e6;
        assert!(DriftModel::after(0.1, t).factor() < DriftModel::after(0.01, t).factor());
    }

    #[test]
    fn factor_matches_power_law() {
        let m = DriftModel::after(0.05, 1000.0);
        assert!((m.factor() - 1000f64.powf(-0.05)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_nu_panics() {
        let _ = DriftModel::after(-0.1, 10.0);
    }
}
