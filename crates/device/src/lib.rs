//! # red-device
//!
//! ReRAM device and technology models for the RED accelerator reproduction.
//!
//! The paper evaluates RED with a modified NeuroSim+ at a 65 nm technology
//! node, 2 GHz clock and 1T1R ReRAM cells (§IV-A). NeuroSim's device layer
//! is not available here, so this crate rebuilds the pieces the simulator
//! actually consumes:
//!
//! * [`TechnologyParams`] — the 65 nm process constants (supply, gate/wire
//!   capacitance, unit delays) that every circuit model in `red-circuit`
//!   scales from;
//! * [`CellConfig`] / [`ReramCell`] — the 1T1R cell: conductance range,
//!   multi-bit level quantization, read current/energy, cell area;
//! * [`variation`] — lognormal conductance variation and stuck-at fault
//!   injection for accuracy studies (our extension; the paper's evaluation
//!   assumes ideal devices).
//!
//! Constants are *representative*, not foundry-measured: the paper's results
//! are all normalized to its own zero-padding baseline, so only relative
//! scaling matters (see DESIGN.md §3/§4). Every constant documents its
//! plausible physical range.
//!
//! # Example
//!
//! ```
//! use red_device::{CellConfig, ReramCell};
//!
//! let cfg = CellConfig::default(); // 2 bits/cell, 1T1R
//! let cell = ReramCell::programmed(&cfg, 3).unwrap(); // code 3 of 0..=3
//! assert!(cell.conductance_s() > 0.0);
//! assert_eq!(cfg.levels(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cell;
pub mod retention;
mod tech;
pub mod variation;

pub use cell::{CellConfig, CellError, ReramCell};
pub use retention::DriftModel;
pub use tech::TechnologyParams;
