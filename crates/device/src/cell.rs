use crate::TechnologyParams;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors from cell programming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CellError {
    /// The requested code does not fit in the configured bits-per-cell.
    CodeOutOfRange {
        /// The offending code.
        code: u16,
        /// Number of representable levels.
        levels: u16,
    },
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CellError::CodeOutOfRange { code, levels } => {
                write!(f, "cell code {code} out of range for {levels} levels")
            }
        }
    }
}

impl Error for CellError {}

/// Configuration of the 1T1R ReRAM cell used by the paper (§IV-A).
///
/// A cell stores `bits_per_cell` bits as one of `2^bits` evenly spaced
/// conductance levels between `1/r_off` (code 0) and `1/r_on` (max code).
/// Multi-bit weights are *bit-sliced* across several cells by the crossbar
/// layer; this struct only describes a single device.
///
/// # Example
///
/// ```
/// use red_device::CellConfig;
///
/// let cfg = CellConfig::default();
/// assert_eq!(cfg.levels(), 4); // 2 bits/cell
/// let g0 = cfg.conductance_for(0).unwrap();
/// let g3 = cfg.conductance_for(3).unwrap();
/// assert!(g3 > g0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellConfig {
    /// Bits stored per cell (2 by default, the common MLC choice in
    /// ISAAC/PipeLayer-class designs).
    pub bits_per_cell: u32,
    /// Low-resistance state in ohms (typical HfOx: 10–100 kΩ).
    pub r_on_ohm: f64,
    /// High-resistance state in ohms (typical 10–100× `r_on`).
    pub r_off_ohm: f64,
    /// Read voltage pulse amplitude in volts (kept below SET threshold,
    /// typically 0.1–0.3 V).
    pub read_voltage: f64,
    /// Read pulse width in nanoseconds (one clock at 2 GHz = 0.5 ns).
    pub read_pulse_ns: f64,
    /// Cell footprint in F² — 1T1R cells are transistor-limited, ~12 F²
    /// (a crosspoint 0T1R would be 4 F²).
    pub area_f2: f64,
    /// SET/RESET programming voltage in volts (well above the read
    /// voltage; 1.5–3 V is typical for HfOx).
    pub write_voltage: f64,
    /// Single programming pulse width in nanoseconds (10–100 ns typical).
    pub write_pulse_ns: f64,
    /// Average program-and-verify iterations per cell write (multi-level
    /// cells need several tuning pulses; 4 is a representative mean).
    pub avg_write_pulses: f64,
}

impl CellConfig {
    /// Number of representable conductance levels, `2^bits_per_cell`.
    pub fn levels(&self) -> u16 {
        1u16 << self.bits_per_cell
    }

    /// Conductance in siemens for a level code.
    ///
    /// Levels are evenly spaced in conductance: code 0 maps to `1/r_off`
    /// (nearly off) and the maximum code to `1/r_on`.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::CodeOutOfRange`] when `code >= levels()`.
    pub fn conductance_for(&self, code: u16) -> Result<f64, CellError> {
        let levels = self.levels();
        if code >= levels {
            return Err(CellError::CodeOutOfRange { code, levels });
        }
        let g_min = 1.0 / self.r_off_ohm;
        let g_max = 1.0 / self.r_on_ohm;
        let step = (g_max - g_min) / f64::from(levels - 1);
        Ok(g_min + step * f64::from(code))
    }

    /// Read current in amperes when the cell is selected at `read_voltage`:
    /// `I = G · V`.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::CodeOutOfRange`] when `code >= levels()`.
    pub fn read_current_a(&self, code: u16) -> Result<f64, CellError> {
        Ok(self.conductance_for(code)? * self.read_voltage)
    }

    /// Energy in picojoules dissipated in the cell during one read pulse:
    /// `V² · G · t`.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::CodeOutOfRange`] when `code >= levels()`.
    pub fn read_energy_pj(&self, code: u16) -> Result<f64, CellError> {
        let g = self.conductance_for(code)?;
        // V²·G is watts; × pulse width in ns gives nJ; ×1000 gives pJ.
        Ok(self.read_voltage * self.read_voltage * g * self.read_pulse_ns * 1000.0)
    }

    /// Average read energy over all levels, used by the cost model for the
    /// per-MAC computation energy (`Ec` in the paper's Eq. 4).
    pub fn avg_read_energy_pj(&self) -> f64 {
        let levels = self.levels();
        let sum: f64 = (0..levels)
            .map(|c| self.read_energy_pj(c).expect("code in range"))
            .sum();
        sum / f64::from(levels)
    }

    /// Cell area in µm² at the given technology node.
    pub fn area_um2(&self, tech: &TechnologyParams) -> f64 {
        self.area_f2 * tech.f2_um2()
    }

    /// Average energy to program one cell, in pJ: `V_w²·G_mid·t_w` per
    /// pulse times the mean program-and-verify pulse count. Used by the
    /// one-time programming-cost report (`red-arch`); the paper's
    /// evaluation covers inference only, with weights assumed resident.
    pub fn write_energy_pj(&self) -> f64 {
        let g_mid = 0.5 * (1.0 / self.r_on_ohm + 1.0 / self.r_off_ohm);
        self.write_voltage
            * self.write_voltage
            * g_mid
            * self.write_pulse_ns
            * 1000.0
            * self.avg_write_pulses
    }

    /// Time to program one cell (all verify iterations), in ns.
    pub fn write_time_ns(&self) -> f64 {
        self.write_pulse_ns * self.avg_write_pulses
    }
}

impl Default for CellConfig {
    fn default() -> Self {
        Self {
            bits_per_cell: 2,
            r_on_ohm: 20e3,
            r_off_ohm: 500e3,
            read_voltage: 0.2,
            read_pulse_ns: 0.5,
            area_f2: 12.0,
            write_voltage: 2.0,
            write_pulse_ns: 20.0,
            avg_write_pulses: 4.0,
        }
    }
}

/// A single programmed ReRAM cell.
///
/// Thin value type pairing a level code with its ideal conductance;
/// variation models perturb the conductance without touching the code
/// (a read disturbance, not a reprogram).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReramCell {
    code: u16,
    conductance_s: f64,
}

impl ReramCell {
    /// Programs a cell to `code` under `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CellError::CodeOutOfRange`] when the code does not fit.
    pub fn programmed(config: &CellConfig, code: u16) -> Result<Self, CellError> {
        Ok(Self {
            code,
            conductance_s: config.conductance_for(code)?,
        })
    }

    /// The stored level code.
    pub fn code(&self) -> u16 {
        self.code
    }

    /// Present (possibly perturbed) conductance in siemens.
    pub fn conductance_s(&self) -> f64 {
        self.conductance_s
    }

    /// Applies a multiplicative conductance perturbation (variation model
    /// hook). Factors are clamped to be non-negative.
    pub fn perturb(&mut self, factor: f64) {
        self.conductance_s *= factor.max(0.0);
    }

    /// Forces the conductance to an absolute value (stuck-at fault hook).
    pub fn force_conductance(&mut self, conductance_s: f64) {
        self.conductance_s = conductance_s.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_count_follows_bits() {
        for bits in 1..=4 {
            let cfg = CellConfig {
                bits_per_cell: bits,
                ..CellConfig::default()
            };
            assert_eq!(cfg.levels(), 1 << bits);
        }
    }

    #[test]
    fn conductance_monotone_in_code() {
        let cfg = CellConfig::default();
        let mut last = -1.0;
        for code in 0..cfg.levels() {
            let g = cfg.conductance_for(code).unwrap();
            assert!(g > last);
            last = g;
        }
    }

    #[test]
    fn extreme_codes_hit_ron_roff() {
        let cfg = CellConfig::default();
        let g0 = cfg.conductance_for(0).unwrap();
        let gmax = cfg.conductance_for(cfg.levels() - 1).unwrap();
        assert!((g0 - 1.0 / cfg.r_off_ohm).abs() < 1e-15);
        assert!((gmax - 1.0 / cfg.r_on_ohm).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_code_is_error() {
        let cfg = CellConfig::default();
        assert!(matches!(
            cfg.conductance_for(4),
            Err(CellError::CodeOutOfRange { code: 4, levels: 4 })
        ));
        assert!(ReramCell::programmed(&cfg, 255).is_err());
    }

    #[test]
    fn read_current_follows_ohms_law() {
        let cfg = CellConfig::default();
        let code = cfg.levels() - 1;
        let i = cfg.read_current_a(code).unwrap();
        assert!((i - cfg.read_voltage / cfg.r_on_ohm).abs() < 1e-15);
    }

    #[test]
    fn read_energy_positive_and_increasing() {
        let cfg = CellConfig::default();
        let e0 = cfg.read_energy_pj(0).unwrap();
        let e3 = cfg.read_energy_pj(3).unwrap();
        assert!(e0 > 0.0);
        assert!(e3 > e0);
        let avg = cfg.avg_read_energy_pj();
        assert!(avg > e0 && avg < e3);
    }

    #[test]
    fn cell_area_at_65nm() {
        let cfg = CellConfig::default();
        let tech = TechnologyParams::node_65nm();
        // 12 F^2 at 65nm = 12 * 0.065^2 um^2.
        assert!((cfg.area_um2(&tech) - 12.0 * 0.065 * 0.065).abs() < 1e-12);
    }

    #[test]
    fn write_energy_exceeds_read_energy() {
        let cfg = CellConfig::default();
        // Programming at 2 V for 80 ns total dwarfs a 0.2 V / 0.5 ns read.
        assert!(cfg.write_energy_pj() > 100.0 * cfg.avg_read_energy_pj());
        assert_eq!(cfg.write_time_ns(), 80.0);
    }

    #[test]
    fn perturb_and_force() {
        let cfg = CellConfig::default();
        let mut cell = ReramCell::programmed(&cfg, 2).unwrap();
        let g = cell.conductance_s();
        cell.perturb(1.1);
        assert!((cell.conductance_s() - 1.1 * g).abs() < 1e-18);
        cell.perturb(-5.0); // clamped to zero
        assert_eq!(cell.conductance_s(), 0.0);
        cell.force_conductance(1e-6);
        assert_eq!(cell.conductance_s(), 1e-6);
        assert_eq!(cell.code(), 2); // code untouched by read disturbance
    }
}
