use serde::{Deserialize, Serialize};

/// CMOS technology parameters that every analytical circuit model scales
/// from.
///
/// Defaults describe the paper's 65 nm node at a 2 GHz system clock
/// (§IV-A). Values are representative of published 65 nm characterisation
/// (ITRS/NeuroSim-style) rather than a specific foundry PDK; the evaluation
/// only consumes *ratios* between designs, which are insensitive to the
/// absolute choice (see the calibration test `tests/paper_bands.rs`).
///
/// # Example
///
/// ```
/// use red_device::TechnologyParams;
///
/// let tech = TechnologyParams::node_65nm();
/// assert_eq!(tech.feature_nm, 65.0);
/// // One F^2 in um^2:
/// assert!((tech.f2_um2() - 0.065 * 0.065).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechnologyParams {
    /// Feature size in nanometres (65 for the paper's node).
    pub feature_nm: f64,
    /// Supply voltage in volts (~1.1 V at 65 nm).
    pub vdd: f64,
    /// System clock in GHz (2 GHz in the paper).
    pub clock_ghz: f64,
    /// Gate capacitance of a minimum inverter input, in femtofarads.
    /// Typical 65 nm minimum inverters sit near 0.5–2 fF.
    pub c_gate_min_ff: f64,
    /// Intrinsic FO1 inverter delay in picoseconds (~10–20 ps at 65 nm).
    pub inv_delay_ps: f64,
    /// Wire capacitance per micrometre of array-pitch metal, in fF/µm
    /// (~0.2 fF/µm for intermediate metal layers).
    pub c_wire_ff_per_um: f64,
    /// Wire resistance per micrometre, in ohms/µm (~1–3 Ω/µm).
    pub r_wire_ohm_per_um: f64,
    /// Area of a minimum-size inverter in square micrometres.
    pub inv_area_um2: f64,
}

impl TechnologyParams {
    /// The paper's configuration: 65 nm, 1.1 V, 2 GHz.
    pub fn node_65nm() -> Self {
        Self {
            feature_nm: 65.0,
            vdd: 1.1,
            clock_ghz: 2.0,
            c_gate_min_ff: 1.0,
            inv_delay_ps: 15.0,
            c_wire_ff_per_um: 0.2,
            r_wire_ohm_per_um: 2.0,
            inv_area_um2: 0.1,
        }
    }

    /// Clock period in nanoseconds.
    pub fn clock_period_ns(&self) -> f64 {
        1.0 / self.clock_ghz
    }

    /// One F² (squared feature size) in µm².
    pub fn f2_um2(&self) -> f64 {
        let f_um = self.feature_nm / 1000.0;
        f_um * f_um
    }

    /// Dynamic switching energy of a capacitance `c_ff` (in fF) charged to
    /// `vdd`, in picojoules: `C·V²` (full-swing, both edges folded in).
    pub fn switch_energy_pj(&self, c_ff: f64) -> f64 {
        // fF * V^2 = fJ; /1000 -> pJ.
        c_ff * self.vdd * self.vdd / 1000.0
    }

    /// Delay of a logical-effort-sized buffer chain driving `c_load_ff`
    /// from a minimum gate, in nanoseconds.
    ///
    /// Stage count is `ceil(log4(C_load / C_gate))` (classic optimal fanout
    /// of 4) with a floor of one stage; each stage costs one FO4 ≈
    /// `4 × inv_delay_ps`.
    pub fn buffer_chain_delay_ns(&self, c_load_ff: f64) -> f64 {
        let ratio = (c_load_ff / self.c_gate_min_ff).max(1.0);
        let stages = ratio.log(4.0).ceil().max(1.0);
        stages * 4.0 * self.inv_delay_ps / 1000.0
    }

    /// Total gate capacitance of that buffer chain in fF (geometric series
    /// summing to roughly a third of the load, plus the load itself is
    /// *not* included — callers add their own line capacitance).
    pub fn buffer_chain_cap_ff(&self, c_load_ff: f64) -> f64 {
        let ratio = (c_load_ff / self.c_gate_min_ff).max(1.0);
        // Sum of geometric series c_gate * (4 + 16 + ...) ≈ load / 3.
        (ratio / 3.0).max(1.0) * self.c_gate_min_ff
    }
}

impl Default for TechnologyParams {
    fn default() -> Self {
        Self::node_65nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_node() {
        let t = TechnologyParams::default();
        assert_eq!(t.feature_nm, 65.0);
        assert_eq!(t.clock_ghz, 2.0);
        assert_eq!(t.clock_period_ns(), 0.5);
    }

    #[test]
    fn switch_energy_scales_with_cap_and_v2() {
        let t = TechnologyParams::node_65nm();
        let e1 = t.switch_energy_pj(10.0);
        let e2 = t.switch_energy_pj(20.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-12);
        let mut hv = t;
        hv.vdd = 2.2;
        assert!((hv.switch_energy_pj(10.0) / e1 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_delay_is_logarithmic_in_load() {
        let t = TechnologyParams::node_65nm();
        let d_small = t.buffer_chain_delay_ns(4.0);
        let d_big = t.buffer_chain_delay_ns(4096.0);
        // 4096/1 = 4^6 -> 6 stages vs 1 stage.
        assert!((d_big / d_small - 6.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_delay_monotone_nondecreasing() {
        let t = TechnologyParams::node_65nm();
        let mut last = 0.0;
        for exp in 0..12 {
            let d = t.buffer_chain_delay_ns(f64::from(1 << exp));
            assert!(d >= last);
            last = d;
        }
    }

    #[test]
    fn tiny_load_clamps_to_one_stage() {
        let t = TechnologyParams::node_65nm();
        assert_eq!(t.buffer_chain_delay_ns(0.001), t.buffer_chain_delay_ns(1.0));
        assert!(t.buffer_chain_cap_ff(0.001) >= t.c_gate_min_ff);
    }
}
