//! Device non-ideality models: conductance variation and stuck-at faults.
//!
//! The paper's evaluation assumes ideal devices; these models are our
//! extension for studying how RED's accuracy degrades under realistic
//! ReRAM behaviour (used by the fault-injection tests and the ablation
//! bench). Two effects are modelled:
//!
//! * **Cycle-to-cycle/device-to-device variation**: each read sees the
//!   programmed conductance scaled by a lognormal factor
//!   `exp(N(0, sigma))` — the standard compact model for ReRAM read
//!   dispersion.
//! * **Stuck-at faults**: a fraction of cells is stuck at the lowest
//!   (stuck-off/SA0) or highest (stuck-on/SA1) conductance regardless of
//!   the programmed code.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Lognormal multiplicative conductance variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VariationModel {
    /// Standard deviation of the underlying normal in log-space.
    /// Published HfOx arrays span roughly 0.01–0.3; 0 disables variation.
    pub sigma: f64,
    /// RNG seed so simulations are reproducible.
    pub seed: u64,
}

impl VariationModel {
    /// An ideal (no-variation) model.
    pub fn ideal() -> Self {
        Self {
            sigma: 0.0,
            seed: 0,
        }
    }

    /// A model with the given log-space sigma and seed.
    pub fn with_sigma(sigma: f64, seed: u64) -> Self {
        Self { sigma, seed }
    }

    /// `true` when this model perturbs nothing.
    pub fn is_ideal(&self) -> bool {
        self.sigma == 0.0
    }

    /// Creates the sampling state for one simulation run.
    pub fn sampler(&self) -> VariationSampler {
        VariationSampler {
            sigma: self.sigma,
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

impl Default for VariationModel {
    fn default() -> Self {
        Self::ideal()
    }
}

/// Streaming sampler of lognormal factors.
#[derive(Debug, Clone)]
pub struct VariationSampler {
    sigma: f64,
    rng: StdRng,
}

impl VariationSampler {
    /// Next multiplicative factor, `exp(N(0, sigma))`; exactly 1.0 when the
    /// model is ideal.
    pub fn next_factor(&mut self) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        // Box-Muller using two uniform draws; avoids needing rand_distr.
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.sigma * z).exp()
    }
}

/// Polarity of a stuck cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StuckPolarity {
    /// Cell reads as minimum conductance no matter the code (SA0).
    StuckOff,
    /// Cell reads as maximum conductance no matter the code (SA1).
    StuckOn,
}

/// Stuck-at fault injection model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultModel {
    /// Probability that any given cell is stuck-off (SA0). Published defect
    /// rates are typically below 1 %.
    pub p_stuck_off: f64,
    /// Probability that any given cell is stuck-on (SA1).
    pub p_stuck_on: f64,
    /// RNG seed for reproducible fault maps.
    pub seed: u64,
}

impl FaultModel {
    /// A fault-free model.
    pub fn none() -> Self {
        Self {
            p_stuck_off: 0.0,
            p_stuck_on: 0.0,
            seed: 0,
        }
    }

    /// A model with the given per-cell fault probabilities.
    ///
    /// # Panics
    ///
    /// Panics if either probability is outside `[0, 1]` or their sum
    /// exceeds 1.
    pub fn with_rates(p_stuck_off: f64, p_stuck_on: f64, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p_stuck_off)
                && (0.0..=1.0).contains(&p_stuck_on)
                && p_stuck_off + p_stuck_on <= 1.0,
            "fault probabilities must be in [0,1] and sum to at most 1"
        );
        Self {
            p_stuck_off,
            p_stuck_on,
            seed,
        }
    }

    /// `true` when no faults will ever be injected.
    pub fn is_none(&self) -> bool {
        self.p_stuck_off == 0.0 && self.p_stuck_on == 0.0
    }

    /// Creates the sampling state for one simulation run.
    pub fn sampler(&self) -> FaultSampler {
        FaultSampler {
            p_stuck_off: self.p_stuck_off,
            p_stuck_on: self.p_stuck_on,
            rng: StdRng::seed_from_u64(self.seed),
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Streaming sampler of per-cell fault outcomes.
#[derive(Debug, Clone)]
pub struct FaultSampler {
    p_stuck_off: f64,
    p_stuck_on: f64,
    rng: StdRng,
}

impl FaultSampler {
    /// Fault status of the next cell, `None` for a healthy cell.
    pub fn next_fault(&mut self) -> Option<StuckPolarity> {
        if self.p_stuck_off == 0.0 && self.p_stuck_on == 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u < self.p_stuck_off {
            Some(StuckPolarity::StuckOff)
        } else if u < self.p_stuck_off + self.p_stuck_on {
            Some(StuckPolarity::StuckOn)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_variation_is_identity() {
        let mut s = VariationModel::ideal().sampler();
        for _ in 0..100 {
            assert_eq!(s.next_factor(), 1.0);
        }
    }

    #[test]
    fn variation_is_reproducible_with_seed() {
        let a: Vec<f64> = {
            let mut s = VariationModel::with_sigma(0.1, 42).sampler();
            (0..50).map(|_| s.next_factor()).collect()
        };
        let b: Vec<f64> = {
            let mut s = VariationModel::with_sigma(0.1, 42).sampler();
            (0..50).map(|_| s.next_factor()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<f64> = {
            let mut s = VariationModel::with_sigma(0.1, 43).sampler();
            (0..50).map(|_| s.next_factor()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn variation_factors_center_near_one() {
        let mut s = VariationModel::with_sigma(0.05, 7).sampler();
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| s.next_factor()).sum::<f64>() / n as f64;
        // E[lognormal(0, 0.05)] = exp(0.00125) ≈ 1.00125.
        assert!((mean - 1.0).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn variation_spread_grows_with_sigma() {
        let spread = |sigma: f64| {
            let mut s = VariationModel::with_sigma(sigma, 3).sampler();
            let xs: Vec<f64> = (0..5000).map(|_| s.next_factor()).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
        };
        assert!(spread(0.2) > spread(0.02) * 10.0);
    }

    #[test]
    fn fault_rates_respected_statistically() {
        let mut s = FaultModel::with_rates(0.05, 0.02, 11).sampler();
        let n = 50_000;
        let mut off = 0;
        let mut on = 0;
        for _ in 0..n {
            match s.next_fault() {
                Some(StuckPolarity::StuckOff) => off += 1,
                Some(StuckPolarity::StuckOn) => on += 1,
                None => {}
            }
        }
        let p_off = off as f64 / n as f64;
        let p_on = on as f64 / n as f64;
        assert!((p_off - 0.05).abs() < 0.005, "p_off = {p_off}");
        assert!((p_on - 0.02).abs() < 0.004, "p_on = {p_on}");
    }

    #[test]
    fn none_model_yields_no_faults() {
        let mut s = FaultModel::none().sampler();
        assert!((0..1000).all(|_| s.next_fault().is_none()));
        assert!(FaultModel::none().is_none());
    }

    #[test]
    #[should_panic(expected = "fault probabilities")]
    fn invalid_rates_panic() {
        let _ = FaultModel::with_rates(0.7, 0.5, 0);
    }
}
