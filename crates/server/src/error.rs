//! Error type of the serving subsystem.

use red_runtime::RuntimeError;

/// Everything that can go wrong standing up or driving a server.
#[derive(Debug)]
pub enum ServerError {
    /// A fleet needs at least one replica.
    EmptyFleet,
    /// A server needs at least one client.
    NoClients,
    /// The load generator needs at least one input to rotate through.
    NoInputs,
    /// A request's input does not match the chip's first-stage layer.
    InputMismatch {
        /// `(height, width, channels)` the first stage expects.
        expected: (usize, usize, usize),
        /// `(height, width, channels)` the request carried.
        actual: (usize, usize, usize),
    },
    /// A request targeted a partition (resident network) the fleet does
    /// not host.
    UnknownNetwork {
        /// The requested partition index.
        network: usize,
        /// How many partitions the fleet hosts.
        partitions: usize,
    },
    /// A client was registered with a tenant index outside the
    /// configured tenant classes.
    UnknownTenant {
        /// The requested tenant index.
        tenant: usize,
        /// How many tenant classes the config declares.
        tenants: usize,
    },
    /// `submit_modeled` was called on a functional server — the replica
    /// workers would have nothing to execute.
    NeedsInput,
    /// The load generator's traffic set does not cover the fleet's
    /// partitions one-to-one.
    TrafficMismatch {
        /// Partitions the fleet hosts.
        expected: usize,
        /// Input sets the caller supplied.
        actual: usize,
    },
    /// The server (scheduler thread) is gone — submitted after shutdown.
    Disconnected,
    /// A replica worker thread died (panicked) instead of reporting its
    /// statistics at shutdown.
    ReplicaFailed {
        /// Fleet partition of the failed worker.
        partition: usize,
        /// Replica index within the partition.
        replica: usize,
    },
    /// The scheduler thread died (panicked) instead of returning its
    /// session state at shutdown — e.g. a panicking custom
    /// [`crate::AdmissionPolicy`]. Surfaced as a value from
    /// [`crate::Server::try_finish`] (and a clean panic message from
    /// [`crate::Server::finish`]) rather than re-raising the foreign
    /// panic payload.
    SchedulerFailed {
        /// The panic message, when the payload carried one.
        message: String,
    },
    /// A runtime error from chip compilation or execution.
    Runtime(RuntimeError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::EmptyFleet => write!(f, "a chip fleet needs at least one replica"),
            ServerError::NoClients => write!(f, "a server needs at least one client"),
            ServerError::NoInputs => {
                write!(f, "the load generator needs at least one request input")
            }
            ServerError::InputMismatch { expected, actual } => write!(
                f,
                "request input {}x{}x{} does not match the chip's first stage ({}x{}x{})",
                actual.0, actual.1, actual.2, expected.0, expected.1, expected.2
            ),
            ServerError::UnknownNetwork {
                network,
                partitions,
            } => write!(
                f,
                "request targets partition {network} but the fleet hosts {partitions}"
            ),
            ServerError::UnknownTenant { tenant, tenants } => write!(
                f,
                "client registered with tenant {tenant} but the config declares {tenants}"
            ),
            ServerError::NeedsInput => write!(
                f,
                "submit_modeled requires a model-only server (ServerConfig::model_only)"
            ),
            ServerError::TrafficMismatch { expected, actual } => write!(
                f,
                "load generator got {actual} input sets for a fleet of {expected} partitions"
            ),
            ServerError::Disconnected => {
                write!(f, "the server is no longer running (channel disconnected)")
            }
            ServerError::ReplicaFailed { partition, replica } => write!(
                f,
                "replica worker {replica} of partition {partition} died without reporting"
            ),
            ServerError::SchedulerFailed { message } => {
                write!(f, "the scheduler thread died without reporting: {message}")
            }
            ServerError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServerError {
    fn from(e: RuntimeError) -> Self {
        ServerError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_problem() {
        let msg = ServerError::InputMismatch {
            expected: (4, 4, 8),
            actual: (2, 2, 1),
        }
        .to_string();
        assert!(msg.contains("2x2x1") && msg.contains("4x4x8"));
        assert!(ServerError::EmptyFleet.to_string().contains("replica"));
        assert!(ServerError::Disconnected.to_string().contains("server"));
        let msg = ServerError::UnknownNetwork {
            network: 3,
            partitions: 2,
        }
        .to_string();
        assert!(msg.contains('3') && msg.contains('2'));
        assert!(ServerError::NeedsInput.to_string().contains("model-only"));
        let msg = ServerError::ReplicaFailed {
            partition: 1,
            replica: 2,
        }
        .to_string();
        assert!(msg.contains("replica worker 2") && msg.contains("partition 1"));
        let msg = ServerError::TrafficMismatch {
            expected: 3,
            actual: 1,
        }
        .to_string();
        assert!(msg.contains('3') && msg.contains('1'));
        let msg = ServerError::SchedulerFailed {
            message: "policy panicked".into(),
        }
        .to_string();
        assert!(msg.contains("scheduler") && msg.contains("policy panicked"));
    }
}
