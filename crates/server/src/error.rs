//! Error type of the serving subsystem.

use red_runtime::RuntimeError;

/// Everything that can go wrong standing up or driving a server.
#[derive(Debug)]
pub enum ServerError {
    /// A fleet needs at least one replica.
    EmptyFleet,
    /// A server needs at least one client.
    NoClients,
    /// The load generator needs at least one input to rotate through.
    NoInputs,
    /// A request's input does not match the chip's first-stage layer.
    InputMismatch {
        /// `(height, width, channels)` the first stage expects.
        expected: (usize, usize, usize),
        /// `(height, width, channels)` the request carried.
        actual: (usize, usize, usize),
    },
    /// The server (scheduler thread) is gone — submitted after shutdown.
    Disconnected,
    /// A runtime error from chip compilation or execution.
    Runtime(RuntimeError),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::EmptyFleet => write!(f, "a chip fleet needs at least one replica"),
            ServerError::NoClients => write!(f, "a server needs at least one client"),
            ServerError::NoInputs => {
                write!(f, "the load generator needs at least one request input")
            }
            ServerError::InputMismatch { expected, actual } => write!(
                f,
                "request input {}x{}x{} does not match the chip's first stage ({}x{}x{})",
                actual.0, actual.1, actual.2, expected.0, expected.1, expected.2
            ),
            ServerError::Disconnected => {
                write!(f, "the server is no longer running (channel disconnected)")
            }
            ServerError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServerError {
    fn from(e: RuntimeError) -> Self {
        ServerError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_name_the_problem() {
        let msg = ServerError::InputMismatch {
            expected: (4, 4, 8),
            actual: (2, 2, 1),
        }
        .to_string();
        assert!(msg.contains("2x2x1") && msg.contains("4x4x8"));
        assert!(ServerError::EmptyFleet.to_string().contains("replica"));
        assert!(ServerError::Disconnected.to_string().contains("server"));
    }
}
