//! Requests, completions, and their virtual-clock lifecycle.
//!
//! The serving subsystem keeps **two clocks**. Host wall time measures
//! what the simulator itself costs; the **virtual clock** (u64
//! nanoseconds) is modeled hardware time: arrivals are stamped by the
//! load generator, batches are charged the chip's modeled pipeline
//! schedule, and every latency figure in a
//! [`ServerReport`](crate::ServerReport) is virtual. That makes queueing
//! behavior — batch forming, SLO shedding, tail percentiles —
//! deterministic for a given request trace, independent of how fast the
//! host happens to run the functional simulation.

use red_tensor::FeatureMap;

/// Identifies one registered client of a [`Server`](crate::Server).
pub type ClientId = usize;

/// Immutable identity and timing of a request — what the batch former
/// orders on and what admission policies see.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestMeta {
    /// The submitting client.
    pub client: ClientId,
    /// The client's tenant class (index into
    /// [`ServerConfig::tenants`](crate::ServerConfig::tenants)) — what
    /// weighted-fair and priority admission differentiate on.
    pub tenant: crate::TenantId,
    /// Target fleet partition (resident network), set by
    /// [`ClientHandle::submit_to`](crate::ClientHandle::submit_to).
    pub network: usize,
    /// Per-client submission sequence number (0-based, contiguous).
    pub seq: u64,
    /// Virtual arrival time, in ns. Nondecreasing per client.
    pub arrival_ns: u64,
    /// Optional absolute virtual deadline: the SLO instant by which the
    /// request's output must be ready. `None` means best-effort.
    pub deadline_ns: Option<u64>,
}

/// Virtual-clock lifecycle of one finished (served or shed) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestTiming {
    /// Virtual arrival time (possibly clamped to the client's frontier —
    /// see [`ClientHandle::submit`](crate::ClientHandle::submit)).
    pub arrival_ns: u64,
    /// When the request's batch was dispatched to a replica (shed
    /// requests: when the shedding decision was made).
    pub dispatch_ns: u64,
    /// When the request's output emerged from the replica pipeline (shed
    /// requests: equal to `dispatch_ns`).
    pub completion_ns: u64,
}

impl RequestTiming {
    /// Time spent waiting in the batch former and for a free replica.
    pub fn queue_wait_ns(&self) -> u64 {
        self.dispatch_ns - self.arrival_ns
    }

    /// Modeled execution time on the replica (0 for shed requests).
    pub fn execute_ns(&self) -> u64 {
        self.completion_ns - self.dispatch_ns
    }

    /// End-to-end latency (queue wait plus execution).
    pub fn total_ns(&self) -> u64 {
        self.completion_ns - self.arrival_ns
    }
}

/// How a request ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Executed; carries the final-stage feature map.
    Served(FeatureMap<i64>),
    /// Admitted and charged modeled chip time, but functional execution
    /// was skipped — the server ran with
    /// [`ServerConfig::model_only`](crate::ServerConfig::model_only).
    /// Every virtual-clock figure is identical to the functional run's;
    /// only the output bits are absent.
    Modeled,
    /// Rejected by the admission policy (e.g. its deadline was already
    /// unmeetable at dispatch time). Never executed.
    Shed,
    /// Admitted but the replica's functional execution failed (cannot
    /// happen for shape-validated inputs; kept for honest accounting).
    Failed,
}

impl Outcome {
    /// `true` for [`Outcome::Served`].
    pub fn is_served(&self) -> bool {
        matches!(self, Outcome::Served(_))
    }

    /// `true` for the admitted outcomes ([`Outcome::Served`] or
    /// [`Outcome::Modeled`]) — the request got chip time.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Outcome::Served(_) | Outcome::Modeled)
    }
}

/// The server's reply to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Completion {
    /// The request this answers.
    pub meta: RequestMeta,
    /// Its virtual-clock lifecycle.
    pub timing: RequestTiming,
    /// Output or rejection.
    pub outcome: Outcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_arithmetic_is_consistent() {
        let t = RequestTiming {
            arrival_ns: 100,
            dispatch_ns: 250,
            completion_ns: 700,
        };
        assert_eq!(t.queue_wait_ns(), 150);
        assert_eq!(t.execute_ns(), 450);
        assert_eq!(t.total_ns(), 600);
        assert_eq!(t.queue_wait_ns() + t.execute_ns(), t.total_ns());
    }

    #[test]
    fn outcome_classifies_served_and_admitted() {
        assert!(Outcome::Served(FeatureMap::zeros(1, 1, 1)).is_served());
        assert!(!Outcome::Shed.is_served());
        assert!(!Outcome::Failed.is_served());
        assert!(!Outcome::Modeled.is_served());
        assert!(Outcome::Modeled.is_admitted());
        assert!(Outcome::Served(FeatureMap::zeros(1, 1, 1)).is_admitted());
        assert!(!Outcome::Shed.is_admitted());
    }
}
