//! Closed- and open-loop load generation against a [`ChipFleet`].
//!
//! **Open loop** models independent user traffic: each client owns a
//! seeded Poisson arrival process (exponential inter-arrival gaps at
//! `rps / clients` per client) and submits its trace fire-and-forget,
//! so offered load does not slow down when the server falls behind —
//! the regime where batching policy and admission control actually
//! matter. **Closed loop** models synchronous callers: each client
//! submits, waits for the completion, and immediately submits again at
//! the completion's virtual time, so concurrency is capped at the
//! client count and offered load self-throttles.
//!
//! Clients are assigned round-robin to the server's tenant classes and
//! route request `k` of client `i` to fleet partition `(i + k) %
//! partitions`, so every tenant exercises every resident network.
//!
//! Arrival traces live on the virtual clock and derive only from
//! `(seed, rps, clients, budget)`, so a load run's statistics are
//! reproducible run to run — that determinism is what the committed
//! `BENCH_loadgen.json` baseline and the CI bench-gate rely on.
//!
//! # Streaming mode
//!
//! The thread-per-client open-loop driver submits each client's whole
//! trace before draining completions, which retains O(requests) channel
//! memory — fine at 10⁴ requests, hopeless at 10⁶. With
//! [`LoadgenConfig::stream`] set, open-loop traffic instead runs on a
//! **single driver thread** that merges the per-client Poisson streams
//! in global arrival order and caps each client's outstanding window at
//! `2 · partitions · max_batch + 64` requests. When the earliest-
//! arrival client is window-full, the driver heartbeats every client's
//! watermark ([`ClientHandle::advance`]) and blocks on that client's
//! completions: the watermarks push the scheduler's frontier past every
//! outstanding arrival, and the window is wide enough that some
//! partition then holds a closable full batch (pigeonhole over
//! `2·max_batch` requests in one former), so the blocking receive
//! always makes progress. Memory is O(clients · window), independent of
//! the request budget — the property the CI million-request smoke's RSS
//! ceiling asserts. The per-client traces are drawn from the same seeds
//! and gap formula as the threaded driver, and batch close instants are
//! trace-deterministic (see [`BatchFormer`](crate::BatchFormer)), so a
//! streaming run's modeled statistics are **bit-identical** to the
//! threaded run over the same configuration (asserted in
//! `tests/server_serving.rs`).

use crate::server::{ClientHandle, ClientMode, ClientSpec, Server, ServerConfig};
use crate::{ChipFleet, ServerError, ServerReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_tensor::FeatureMap;

/// How the load generator drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Poisson arrivals at `rps` requests/second (virtual), split evenly
    /// across clients, submitted fire-and-forget.
    Open {
        /// Aggregate offered rate, in requests per virtual second.
        rps: f64,
    },
    /// Each client keeps exactly one request outstanding, resubmitting
    /// at its previous completion's virtual time.
    Closed,
}

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Open- or closed-loop driving.
    pub mode: LoadMode,
    /// Client count.
    pub clients: usize,
    /// Total request budget across clients.
    pub requests: usize,
    /// Stop issuing past this virtual instant (open loop: arrivals
    /// beyond it are dropped; closed loop: a client whose clock passes
    /// it stops). `None` = budget-limited only.
    pub horizon_ns: Option<u64>,
    /// Fallback per-request SLO for tenants without their own:
    /// deadline = arrival + `slo_ns`. A tenant class's
    /// [`slo_ns`](crate::TenantClass::slo_ns) takes precedence. `None`
    /// = best-effort requests without deadlines.
    pub slo_ns: Option<u64>,
    /// Trace seed (per-client streams are derived from it).
    pub seed: u64,
    /// Use the O(1)-memory single-threaded streaming driver for
    /// open-loop traffic (see the module docs). Ignored for closed
    /// loops, which are already O(clients).
    pub stream: bool,
}

/// Splits the request budget across clients (first `total % clients`
/// clients get one extra).
fn client_budget(total: usize, clients: usize, idx: usize) -> usize {
    total / clients + usize::from(idx < total % clients)
}

/// The per-client Poisson seed stream, shared verbatim by the threaded
/// and streaming drivers so their traces are identical.
fn client_rng(seed: u64, idx: usize) -> StdRng {
    StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx as u64 + 1))
}

/// Drives `fleet` with the configured load and returns the session's
/// [`ServerReport`]. `traffic` holds one input set per fleet partition,
/// rotated round-robin across that partition's requests; on a
/// model-only server (`server_config.is_functional() == false`) the
/// inputs are never executed, so `traffic` may be empty.
///
/// # Errors
///
/// [`ServerError::NoClients`] for zero clients;
/// [`ServerError::TrafficMismatch`] when a functional run's `traffic`
/// does not provide exactly one input set per partition;
/// [`ServerError::NoInputs`] for an empty per-partition set;
/// [`ServerError::InputMismatch`] when an input does not match its
/// partition's first stage.
///
/// # Panics
///
/// Panics if an open-loop `rps` is not strictly positive.
pub fn drive(
    fleet: &ChipFleet,
    server_config: &ServerConfig,
    load: &LoadgenConfig,
    traffic: &[Vec<FeatureMap<i64>>],
) -> Result<ServerReport, ServerError> {
    if load.clients == 0 {
        return Err(ServerError::NoClients);
    }
    if let LoadMode::Open { rps } = load.mode {
        assert!(rps > 0.0, "open-loop rps must be positive, got {rps}");
    }
    let partitions = fleet.partition_count();
    if server_config.is_functional() {
        if traffic.len() != partitions {
            return Err(ServerError::TrafficMismatch {
                expected: partitions,
                actual: traffic.len(),
            });
        }
        for (p, set) in traffic.iter().enumerate() {
            if set.is_empty() {
                return Err(ServerError::NoInputs);
            }
            let expected = fleet.partitions()[p].chip().input_shape();
            for input in set {
                let actual = (input.height(), input.width(), input.channels());
                if actual != expected {
                    return Err(ServerError::InputMismatch { expected, actual });
                }
            }
        }
    }
    let tenants = server_config.tenant_classes().len();
    let specs: Vec<ClientSpec> = (0..load.clients)
        .map(|i| ClientSpec {
            mode: match load.mode {
                LoadMode::Open { .. } => ClientMode::Open,
                LoadMode::Closed => ClientMode::Closed,
            },
            tenant: i % tenants,
        })
        .collect();
    // Per-tenant effective SLO: the class's own, else the load's.
    let slos: Vec<Option<u64>> = server_config
        .tenant_classes()
        .iter()
        .map(|t| t.slo_ns.or(load.slo_ns))
        .collect();
    let (server, handles) = Server::start(fleet, server_config, &specs)?;
    let ctx = DriveCtx {
        load,
        traffic,
        slos: &slos,
        partitions,
        functional: server_config.is_functional(),
    };
    if load.stream && matches!(load.mode, LoadMode::Open { .. }) {
        drive_streaming(handles, &ctx, server_config.max_batch_bound());
    } else {
        std::thread::scope(|scope| {
            for handle in handles {
                let ctx = &ctx;
                scope.spawn(move || drive_client(handle, ctx));
            }
        });
    }
    server.try_finish()
}

/// Everything a driver needs besides the handles.
struct DriveCtx<'a> {
    load: &'a LoadgenConfig,
    traffic: &'a [Vec<FeatureMap<i64>>],
    slos: &'a [Option<u64>],
    partitions: usize,
    functional: bool,
}

impl DriveCtx<'_> {
    /// Partition for request `k` of client `idx`.
    fn network(&self, idx: usize, k: usize) -> usize {
        (idx + k) % self.partitions
    }

    /// Input for request `k` of client `idx` on partition `net`.
    fn input(&self, idx: usize, k: usize, net: usize) -> FeatureMap<i64> {
        let set = &self.traffic[net];
        set[(idx + k * self.load.clients) % set.len()].clone()
    }

    /// Submits request `k` of a client (functional or modeled).
    fn submit(&self, handle: &mut ClientHandle, k: usize, arrival: u64) -> Result<(), ServerError> {
        let idx = handle.id();
        let net = self.network(idx, k);
        let deadline = self.slos[handle.tenant()].map(|s| arrival + s);
        if self.functional {
            handle.submit_to(net, self.input(idx, k, net), arrival, deadline)?;
        } else {
            handle.submit_modeled(net, arrival, deadline)?;
        }
        Ok(())
    }
}

/// One client thread's life: issue its trace, then drain completions.
fn drive_client(mut handle: ClientHandle, ctx: &DriveCtx<'_>) {
    let load = ctx.load;
    let idx = handle.id();
    let budget = client_budget(load.requests, load.clients, idx);
    match load.mode {
        LoadMode::Open { rps } => {
            let rate = rps / load.clients as f64;
            let mut rng = client_rng(load.seed, idx);
            let mut clock = 0.0f64;
            let mut sent = 0usize;
            for k in 0..budget {
                let u: f64 = rng.gen_range(0.0..1.0);
                clock += -(1.0 - u).ln() / rate * 1e9;
                if load.horizon_ns.is_some_and(|h| clock > h as f64) {
                    break;
                }
                if ctx.submit(&mut handle, k, clock as u64).is_err() {
                    break;
                }
                sent += 1;
            }
            handle.finish();
            for _ in 0..sent {
                if handle.recv().is_err() {
                    break;
                }
            }
        }
        LoadMode::Closed => {
            let mut clock = 0u64;
            for k in 0..budget {
                if load.horizon_ns.is_some_and(|h| clock > h) {
                    break;
                }
                if ctx.submit(&mut handle, k, clock).is_err() {
                    break;
                }
                match handle.recv() {
                    // Shed completions advance the clock too: the caller
                    // learns of the rejection at the shedding instant.
                    Ok(completion) => clock = completion.timing.completion_ns,
                    Err(_) => break,
                }
            }
            handle.finish();
        }
    }
}

/// One client's state inside the streaming driver.
struct StreamClient {
    handle: ClientHandle,
    rng: StdRng,
    clock: f64,
    /// Next request index (gap draws and input rotation stay aligned
    /// with the threaded driver's `k`).
    k: usize,
    budget: usize,
    outstanding: usize,
    /// The next arrival, already drawn; `None` once the trace is
    /// exhausted (budget spent or horizon passed).
    next: Option<u64>,
}

impl StreamClient {
    /// Draws the arrival of request `k`, or retires the trace.
    fn draw_next(&mut self, load: &LoadgenConfig, rate: f64) {
        if self.k >= self.budget {
            self.next = None;
        } else {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            self.clock += -(1.0 - u).ln() / rate * 1e9;
            self.next = if load.horizon_ns.is_some_and(|h| self.clock > h as f64) {
                None
            } else {
                Some(self.clock as u64)
            };
        }
        if self.next.is_none() {
            // Retire promptly: a quiet-but-unfinished client would pin
            // the scheduler's frontier and stall everyone's batches.
            self.handle.finish();
        }
    }
}

/// The O(1)-memory open-loop driver (see the module docs).
fn drive_streaming(handles: Vec<ClientHandle>, ctx: &DriveCtx<'_>, max_batch: usize) {
    let load = ctx.load;
    let LoadMode::Open { rps } = load.mode else {
        unreachable!("streaming applies to open loops only");
    };
    let rate = rps / load.clients as f64;
    let window = 2 * ctx.partitions * max_batch + 64;
    let mut cls: Vec<StreamClient> = handles
        .into_iter()
        .enumerate()
        .map(|(idx, handle)| {
            let mut cl = StreamClient {
                handle,
                rng: client_rng(load.seed, idx),
                clock: 0.0,
                k: 0,
                budget: client_budget(load.requests, load.clients, idx),
                outstanding: 0,
                next: None,
            };
            cl.draw_next(load, rate);
            cl
        })
        .collect();
    // Globally earliest pending arrival, lowest client id on ties.
    let earliest = |cls: &[StreamClient]| {
        cls.iter()
            .enumerate()
            .filter_map(|(i, cl)| cl.next.map(|t| (t, i)))
            .min()
            .map(|(_, i)| i)
    };
    while let Some(c) = earliest(&cls) {
        if cls[c].outstanding < window {
            let arrival = cls[c].next.take().expect("selected for a pending arrival");
            let k = cls[c].k;
            cls[c].k += 1;
            if ctx.submit(&mut cls[c].handle, k, arrival).is_ok() {
                cls[c].outstanding += 1;
            }
            cls[c].draw_next(load, rate);
        } else {
            // The earliest client is window-full: promise every
            // client's next arrival to the scheduler so the frontier
            // clears all outstanding work, then block on the earliest
            // client — the window guarantees a closable full batch.
            for cl in cls.iter_mut() {
                if let Some(t) = cl.next {
                    let _ = cl.handle.advance(t);
                }
            }
            if cls[c].handle.recv().is_err() {
                break;
            }
            cls[c].outstanding -= 1;
        }
    }
    // Every trace is retired (handles finished); drain what's in
    // flight.
    for cl in &mut cls {
        cl.handle.finish();
        while cl.outstanding > 0 {
            if cl.handle.recv().is_err() {
                break;
            }
            cl.outstanding -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_splits_evenly_with_remainder_up_front() {
        let shares: Vec<_> = (0..4).map(|i| client_budget(10, 4, i)).collect();
        assert_eq!(shares, vec![3, 3, 2, 2]);
        assert_eq!(shares.iter().sum::<usize>(), 10);
        assert_eq!(client_budget(2, 4, 3), 0);
    }

    #[test]
    fn threaded_and_streaming_drivers_draw_identical_traces() {
        let load = LoadgenConfig {
            mode: LoadMode::Open { rps: 1000.0 },
            clients: 3,
            requests: 50,
            horizon_ns: None,
            slo_ns: None,
            seed: 7,
            stream: true,
        };
        for idx in 0..load.clients {
            let rate = 1000.0 / load.clients as f64;
            // Threaded formula, inlined.
            let mut rng = client_rng(load.seed, idx);
            let mut clock = 0.0f64;
            let threaded: Vec<u64> = (0..client_budget(load.requests, load.clients, idx))
                .map(|_| {
                    let u: f64 = rng.gen_range(0.0..1.0);
                    clock += -(1.0 - u).ln() / rate * 1e9;
                    clock as u64
                })
                .collect();
            // Streaming draw loop.
            let mut arrivals = Vec::new();
            let mut rng = client_rng(load.seed, idx);
            let mut clock = 0.0f64;
            for _ in 0..client_budget(load.requests, load.clients, idx) {
                let u: f64 = rng.gen_range(0.0..1.0);
                clock += -(1.0 - u).ln() / rate * 1e9;
                arrivals.push(clock as u64);
            }
            assert_eq!(threaded, arrivals);
        }
    }
}
