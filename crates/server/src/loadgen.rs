//! Closed- and open-loop load generation against a [`ChipFleet`].
//!
//! **Open loop** models independent user traffic: each client thread
//! owns a seeded Poisson arrival process (exponential inter-arrival
//! gaps at `rps / clients` per client) and submits its trace
//! fire-and-forget, so offered load does not slow down when the server
//! falls behind — the regime where batching policy and admission
//! control actually matter. **Closed loop** models synchronous callers:
//! each client submits, waits for the completion, and immediately
//! submits again at the completion's virtual time, so concurrency is
//! capped at the client count and offered load self-throttles.
//!
//! Arrival traces live on the virtual clock and derive only from
//! `(seed, rps, clients, budget)`, so a load run's statistics are
//! reproducible run to run — that determinism is what the committed
//! `BENCH_loadgen.json` baseline and the CI smoke rely on.

use crate::server::{ClientHandle, ClientMode, Server, ServerConfig};
use crate::{ChipFleet, ServerError, ServerReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_tensor::FeatureMap;

/// How the load generator drives the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadMode {
    /// Poisson arrivals at `rps` requests/second (virtual), split evenly
    /// across clients, submitted fire-and-forget.
    Open {
        /// Aggregate offered rate, in requests per virtual second.
        rps: f64,
    },
    /// Each client keeps exactly one request outstanding, resubmitting
    /// at its previous completion's virtual time.
    Closed,
}

/// Load-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadgenConfig {
    /// Open- or closed-loop driving.
    pub mode: LoadMode,
    /// Client thread count.
    pub clients: usize,
    /// Total request budget across clients.
    pub requests: usize,
    /// Stop issuing past this virtual instant (open loop: arrivals
    /// beyond it are dropped; closed loop: a client whose clock passes
    /// it stops). `None` = budget-limited only.
    pub horizon_ns: Option<u64>,
    /// Per-request SLO: deadline = arrival + `slo_ns`. `None` =
    /// best-effort requests without deadlines.
    pub slo_ns: Option<u64>,
    /// Trace seed (per-client streams are derived from it).
    pub seed: u64,
}

/// Splits the request budget across clients (first `total % clients`
/// clients get one extra).
fn client_budget(total: usize, clients: usize, idx: usize) -> usize {
    total / clients + usize::from(idx < total % clients)
}

/// Drives `fleet` with the configured load from `clients` scoped
/// threads, rotating `inputs` round-robin across requests, and returns
/// the session's [`ServerReport`].
///
/// # Errors
///
/// [`ServerError::NoClients`] for zero clients, [`ServerError::NoInputs`]
/// for an empty input set, [`ServerError::InputMismatch`] when any input
/// does not match the chip's first stage.
///
/// # Panics
///
/// Panics if an open-loop `rps` is not strictly positive.
pub fn drive(
    fleet: &ChipFleet,
    server_config: &ServerConfig,
    load: &LoadgenConfig,
    inputs: &[FeatureMap<i64>],
) -> Result<ServerReport, ServerError> {
    if load.clients == 0 {
        return Err(ServerError::NoClients);
    }
    if inputs.is_empty() {
        return Err(ServerError::NoInputs);
    }
    if let LoadMode::Open { rps } = load.mode {
        assert!(rps > 0.0, "open-loop rps must be positive, got {rps}");
    }
    let layer0 = fleet
        .chip()
        .stage(0)
        .expect("compiled chips have stages")
        .layer();
    let expected = (layer0.input_h(), layer0.input_w(), layer0.channels());
    for input in inputs {
        let actual = (input.height(), input.width(), input.channels());
        if actual != expected {
            return Err(ServerError::InputMismatch { expected, actual });
        }
    }
    let mode = match load.mode {
        LoadMode::Open { .. } => ClientMode::Open,
        LoadMode::Closed => ClientMode::Closed,
    };
    let modes = vec![mode; load.clients];
    let (server, handles) = Server::start(fleet, server_config, &modes)?;
    std::thread::scope(|scope| {
        for handle in handles {
            scope.spawn(move || drive_client(handle, load, inputs));
        }
    });
    Ok(server.finish())
}

/// One client thread's life: issue its trace, then drain completions.
fn drive_client(mut handle: ClientHandle, load: &LoadgenConfig, inputs: &[FeatureMap<i64>]) {
    let idx = handle.id();
    let budget = client_budget(load.requests, load.clients, idx);
    let input_at = |k: usize| inputs[(idx + k * load.clients) % inputs.len()].clone();
    match load.mode {
        LoadMode::Open { rps } => {
            let rate = rps / load.clients as f64;
            let mut rng = StdRng::seed_from_u64(
                load.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(idx as u64 + 1),
            );
            let mut clock = 0.0f64;
            let mut sent = 0usize;
            for k in 0..budget {
                let u: f64 = rng.gen_range(0.0..1.0);
                clock += -(1.0 - u).ln() / rate * 1e9;
                if load.horizon_ns.is_some_and(|h| clock > h as f64) {
                    break;
                }
                let arrival = clock as u64;
                let deadline = load.slo_ns.map(|s| arrival + s);
                if handle.submit(input_at(k), arrival, deadline).is_err() {
                    break;
                }
                sent += 1;
            }
            handle.finish();
            for _ in 0..sent {
                if handle.recv().is_err() {
                    break;
                }
            }
        }
        LoadMode::Closed => {
            let mut clock = 0u64;
            for k in 0..budget {
                if load.horizon_ns.is_some_and(|h| clock > h) {
                    break;
                }
                let deadline = load.slo_ns.map(|s| clock + s);
                match handle.call(input_at(k), clock, deadline) {
                    // Shed completions advance the clock too: the caller
                    // learns of the rejection at the shedding instant.
                    Ok(completion) => clock = completion.timing.completion_ns,
                    Err(_) => break,
                }
            }
            handle.finish();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_splits_evenly_with_remainder_up_front() {
        let shares: Vec<_> = (0..4).map(|i| client_budget(10, 4, i)).collect();
        assert_eq!(shares, vec![3, 3, 2, 2]);
        assert_eq!(shares.iter().sum::<usize>(), 10);
        assert_eq!(client_budget(2, 4, 3), 0);
    }
}
