//! Deterministic precision-degrading overload control (brownout) on
//! the virtual clock.
//!
//! Where the [`crate::AutoscaleConfig`] autoscaler answers pressure by
//! adding replicas, the brownout controller answers it by serving
//! *worse*: stepping the partition's execution tier
//! `Full → Eco → Brownout` ([`red_runtime::ExecPrecision`]) so every
//! batch streams fewer input bit phases — proportionally cheaper fill
//! and steady intervals, at a worst-case output error the crossbar
//! layer bounds exactly (`Chip::truncation_error_bound`). Degradation
//! turns would-be sheds into served-slightly-worse requests, which is
//! the robustness shape hard admission control cannot reach.
//!
//! The controller evaluates at batch-dispatch instants from three
//! trace-deterministic signals, mirroring the autoscaler: the **queue
//! depth** (modeled backlog ahead of the newest dispatch, in full-batch
//! makespans), the window's **shed count**, and the **replica loss**
//! reported by the PR 8 health plane (provisioned minus routable — a
//! quarantined replica reads as lost capacity and browns the remainder
//! out rather than shedding). All three derive solely from the
//! partition's own dispatch sequence, so tier decisions — like scale
//! decisions — are a pure function of the request trace, and a
//! brownout session replays byte-identically.
//!
//! Hysteresis: at most one ±1-tier step per `cooldown_ns` of virtual
//! time, with the observation window reset after every evaluation.
//! Recovery requires a *clean* window (zero sheds) **and** a drained
//! queue, so the tier does not flap at the pressure boundary.

use red_runtime::ExecPrecision;
use serde::Serialize;

/// Brownout controller tuning. Strictly opt-in
/// ([`crate::ServerConfig::brownout`]); without it every batch runs
/// [`ExecPrecision::Full`] and the dispatch path is byte-identical to
/// earlier builds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrownoutConfig {
    /// Degrade when the queue depth — backlog ahead of the newest
    /// dispatch, in full-batch makespans — exceeds
    /// `queue_high · routable`.
    pub queue_high: f64,
    /// Degrade when the observation window shed at least this many
    /// requests: admission control caps the queue near its lag bound,
    /// so a shedding partition signals overload through denials, not
    /// backlog.
    pub shed_high: u64,
    /// Recover one tier when the window shed nothing **and** the queue
    /// depth is at most `recover_low · routable`.
    pub recover_low: f64,
    /// Minimum virtual time between tier steps, in ns.
    pub cooldown_ns: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        Self {
            queue_high: 2.0,
            shed_high: 4,
            recover_low: 0.5,
            cooldown_ns: 500_000,
        }
    }
}

/// One applied tier transition, on the virtual clock. Records the
/// decision inputs alongside the step so brownout causes are
/// inspectable in reports and traces without replaying the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BrownoutEvent {
    /// Virtual instant of the decision, in ns.
    pub at_ns: u64,
    /// The fleet partition that changed tier.
    pub partition: usize,
    /// Execution tier before.
    pub from: ExecPrecision,
    /// Execution tier after.
    pub to: ExecPrecision,
    /// Queue depth (full-batch makespans) that informed the decision.
    pub queue_depth: usize,
    /// Requests shed by admission control in the observation window.
    pub shed_in_window: u64,
    /// Provisioned-but-unroutable replicas at the decision (the health
    /// plane's quarantined/reprogramming count; 0 without a fault
    /// plan).
    pub replicas_lost: usize,
    /// Modeled backlog ahead of the newest dispatch, in ns (the raw
    /// signal `queue_depth` discretizes).
    pub backlog_ns: u64,
}

/// Per-partition brownout state (see the module docs).
#[derive(Debug, Clone)]
pub(crate) struct BrownoutController {
    cfg: BrownoutConfig,
    partition: usize,
    window_start_ns: u64,
    shed_in_window: u64,
    tier: ExecPrecision,
}

impl BrownoutController {
    /// A controller for fleet partition `partition`, starting at
    /// [`ExecPrecision::Full`].
    pub(crate) fn new(cfg: BrownoutConfig, partition: usize) -> Self {
        Self {
            cfg,
            partition,
            window_start_ns: 0,
            shed_in_window: 0,
            tier: ExecPrecision::Full,
        }
    }

    /// The tier the partition currently serves at.
    pub(crate) fn tier(&self) -> ExecPrecision {
        self.tier
    }

    /// Accounts `n` admission denials in the observation window.
    pub(crate) fn observe_shed(&mut self, n: u64) {
        self.shed_in_window += n;
    }

    /// `true` when the cooldown has elapsed and a decision is due.
    pub(crate) fn due(&self, now_ns: u64) -> bool {
        now_ns.saturating_sub(self.window_start_ns) >= self.cfg.cooldown_ns
    }

    /// Evaluates one decision at virtual instant `now_ns` (no-op before
    /// the cooldown elapses). `routable` is the replica pool the
    /// dispatch could route to, `provisioned` the partition's active
    /// pool — the difference is the health plane's lost capacity.
    /// Returns the transition to apply when the tier changes; the
    /// observation window resets either way.
    pub(crate) fn decide(
        &mut self,
        now_ns: u64,
        queue_depth: usize,
        backlog_ns: u64,
        routable: usize,
        provisioned: usize,
    ) -> Option<BrownoutEvent> {
        if !self.due(now_ns) {
            return None;
        }
        let shed = self.shed_in_window;
        self.window_start_ns = now_ns;
        self.shed_in_window = 0;
        let routable = routable.max(1);
        let lost = provisioned.saturating_sub(routable);
        let pressured = queue_depth as f64 > self.cfg.queue_high * routable as f64
            || shed >= self.cfg.shed_high
            || (lost > 0 && queue_depth > 0);
        let recovered = shed == 0 && (queue_depth as f64) <= self.cfg.recover_low * routable as f64;
        let to = if pressured {
            self.tier.deeper()
        } else if recovered {
            self.tier.shallower()
        } else {
            return None;
        };
        if to == self.tier {
            return None;
        }
        let from = self.tier;
        self.tier = to;
        Some(BrownoutEvent {
            at_ns: now_ns,
            partition: self.partition,
            from,
            to,
            queue_depth,
            shed_in_window: shed,
            replicas_lost: lost,
            backlog_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn controller() -> BrownoutController {
        BrownoutController::new(
            BrownoutConfig {
                queue_high: 2.0,
                shed_high: 4,
                recover_low: 0.5,
                cooldown_ns: 1_000,
            },
            2,
        )
    }

    #[test]
    fn degrades_one_tier_at_a_time_under_queue_pressure() {
        let mut b = controller();
        let e = b.decide(1_000, 10, 9_999, 2, 2).expect("queue 10 > 2·2");
        assert_eq!((e.from, e.to), (ExecPrecision::Full, ExecPrecision::Eco));
        assert_eq!((e.partition, e.backlog_ns), (2, 9_999));
        // Still pressured, but the cooldown gates the next step.
        assert!(b.decide(1_500, 10, 0, 2, 2).is_none(), "within cooldown");
        let e = b.decide(2_500, 10, 0, 2, 2).expect("cooldown elapsed");
        assert_eq!(e.to, ExecPrecision::Brownout);
        // At the floor tier: pressure holds but there is nowhere deeper.
        assert!(b.decide(4_000, 10, 0, 2, 2).is_none());
        assert_eq!(b.tier(), ExecPrecision::Brownout);
    }

    #[test]
    fn degrades_on_window_sheds_despite_an_empty_queue() {
        let mut b = controller();
        b.observe_shed(4);
        let e = b.decide(1_000, 0, 0, 2, 2).expect("shed 4 >= 4");
        assert_eq!(e.to, ExecPrecision::Eco);
        assert_eq!(e.shed_in_window, 4);
    }

    #[test]
    fn degrades_when_capacity_is_lost_and_work_is_queued() {
        let mut b = controller();
        // One of two replicas quarantined, any queue at all: brown out.
        let e = b.decide(1_000, 1, 500, 1, 2).expect("lost replica + queue");
        assert_eq!(e.replicas_lost, 1);
        assert_eq!(e.to, ExecPrecision::Eco);
        // Lost capacity with a fully drained queue is not pressure.
        let mut b = controller();
        assert!(
            b.decide(1_000, 0, 0, 1, 2).is_none(),
            "idle partition keeps full precision even while degraded"
        );
    }

    #[test]
    fn recovers_only_on_a_clean_window_with_a_drained_queue() {
        let mut b = controller();
        b.observe_shed(10);
        assert!(b.decide(1_000, 0, 0, 2, 2).is_some(), "degraded to eco");
        // Sheds in the window block recovery even with an empty queue.
        b.observe_shed(1);
        assert!(b.decide(2_000, 0, 0, 2, 2).is_none());
        // A queue above recover_low·routable blocks recovery too.
        assert!(b.decide(3_000, 2, 0, 2, 2).is_none());
        // Clean window, drained queue: one step back toward full.
        let e = b.decide(4_000, 1, 0, 2, 2).expect("queue 1 <= 0.5·2");
        assert_eq!((e.from, e.to), (ExecPrecision::Eco, ExecPrecision::Full));
        // Already at full precision: nothing shallower.
        assert!(b.decide(5_000, 0, 0, 2, 2).is_none());
    }

    #[test]
    fn window_shed_count_resets_after_every_evaluation() {
        let mut b = controller();
        b.observe_shed(3); // below shed_high, and it blocks recovery
        assert!(b.decide(1_000, 0, 0, 2, 2).is_none());
        // The 3 sheds must not leak into the next window: if they did,
        // one more shed would cross shed_high and force a step.
        b.observe_shed(1);
        assert!(
            b.decide(2_000, 0, 0, 2, 2).is_none(),
            "1 shed < 4: neither pressured nor clean"
        );
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let run = || {
            let mut b = controller();
            let mut events = Vec::new();
            for k in 0..60u64 {
                b.observe_shed(k % 5);
                if let Some(e) = b.decide(k * 400, (k % 7) as usize, k * 50, 2, 3) {
                    events.push(e);
                }
            }
            events
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }
}
