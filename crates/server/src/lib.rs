//! # red-server
//!
//! Online serving subsystem for the RED reproduction: where
//! `red-runtime` executes a pre-collected batch through one chip and
//! returns when it drains, this crate serves **live traffic** — requests
//! arriving one by one on a queue, answered under latency objectives —
//! the way a production ReRAM inference fleet would sit behind user
//! load.
//!
//! The subsystem has four parts:
//!
//! * a **[`ChipFleet`]** replicates a compiled `red_runtime::Chip` N
//!   ways. Replication is `Arc`-shallow (one copy of the programmed
//!   crossbars, per-replica scratch) but priced honestly: the fleet
//!   reports the aggregate floorplan of N physical chips;
//! * a **[`Server`]** runs the dynamic micro-batching scheduler:
//!   requests arrive on an MPSC queue with virtual-clock timestamps and
//!   optional deadlines, the [`BatchFormer`] closes a batch on
//!   `max_batch` **or** `max_wait` (whichever first), and an
//!   [`AdmissionPolicy`] ([`Fifo`], [`DeadlineShed`], or anything
//!   implementing the trait) decides at dispatch which requests are
//!   still worth the chip time. Batching matters because the chip is a
//!   layer pipeline: a batch of B costs `fill + (B-1)·steady` modeled
//!   time, so larger batches amortize the pipeline fill (the
//!   DAC/ADC-dominated stage latencies) across outputs;
//! * a **[`ServerReport`]** aggregates per-request lifecycle accounting
//!   (queue wait, execute, total) into HDR-style log-bucketed
//!   [`LatencyHistogram`]s with p50/p95/p99/p999, and reconciles the
//!   scheduler's virtual charge against the measured
//!   `red_runtime::RuntimeReport`s the replicas actually produced
//!   ([`ServerReport::reconciles`]) — the serving-layer analogue of
//!   `RuntimeReport::reconciles_with(PipelineReport)`;
//! * a **load generator** ([`drive`]) pushes closed-loop or open-loop
//!   (Poisson-arrival) traffic from `std::thread::scope` client threads,
//!   exposed on the command line as `red-bench --bin loadgen`.
//!
//! Served outputs are **bit-exact** against
//! `Chip::run_sequential` of the same inputs: the scheduler changes
//! *when and together with what* requests execute, never what they
//! compute (asserted in `tests/server_serving.rs`).
//!
//! # Example
//!
//! ```
//! use red_server::{ChipFleet, ServerConfig, Server, ClientMode, DeadlineShed};
//! use red_runtime::ChipBuilder;
//! use red_workloads::{networks, synth};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = networks::sngan_generator(64)?;
//! let chip = ChipBuilder::new().compile_seeded(&stack, 5, 42)?;
//! let fleet = ChipFleet::new(chip, 2)?;
//! let config = ServerConfig::new()
//!     .max_batch(4)
//!     .max_wait_ns(2_000)
//!     .policy(DeadlineShed);
//! let (server, mut clients) = Server::start(&fleet, &config, &[ClientMode::Closed])?;
//! let input = synth::input_dense(&stack.layers[0], 40, 7);
//! let reply = clients[0].call(input, 0, Some(10_000_000))?;
//! assert!(reply.outcome.is_served());
//! drop(clients);
//! let report = server.finish();
//! assert_eq!(report.served, 1);
//! assert!(report.reconciles());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod fleet;
mod former;
mod histogram;
mod loadgen;
mod policy;
mod report;
mod request;
mod server;

pub use error::ServerError;
pub use fleet::{ChipFleet, FleetFloorplan};
pub use former::{BatchFormer, FormedBatch};
pub use histogram::LatencyHistogram;
pub use loadgen::{drive, LoadMode, LoadgenConfig};
pub use policy::{policy_by_name, AdmissionPolicy, DeadlineShed, Fifo, ServiceEstimate};
pub use report::{ReplicaReport, ServerReport};
pub use request::{ClientId, Completion, Outcome, RequestMeta, RequestTiming};
pub use server::{ClientHandle, ClientMode, Server, ServerConfig};
