//! # red-server
//!
//! Online serving subsystem for the RED reproduction: where
//! `red-runtime` executes a pre-collected batch through one chip and
//! returns when it drains, this crate serves **live traffic** — requests
//! arriving one by one on a queue, answered under latency objectives —
//! the way a production ReRAM inference fleet would sit behind user
//! load.
//!
//! The subsystem's parts:
//!
//! * a **[`ChipFleet`]** hosts one or more resident networks, each on
//!   its own **partition** of N replicas of a compiled
//!   `red_runtime::Chip`. Replication is `Arc`-shallow (one copy of the
//!   programmed crossbars, per-replica scratch) but priced honestly:
//!   the fleet reports the aggregate floorplan of all physical chips
//!   across partitions;
//! * a **[`Server`]** runs the dynamic micro-batching scheduler:
//!   requests arrive on an MPSC queue with virtual-clock timestamps,
//!   optional deadlines, and a network routing tag; each partition's
//!   [`BatchFormer`] closes a batch on `max_batch` **or** `max_wait`
//!   (whichever first), and an [`AdmissionPolicy`] decides at dispatch
//!   which requests are still worth the chip time. Batching matters
//!   because the chip is a layer pipeline: a batch of B costs
//!   `fill + (B-1)·steady` modeled time, so larger batches amortize the
//!   pipeline fill (the DAC/ADC-dominated stage latencies) across
//!   outputs;
//! * **multi-tenant admission**: clients register under
//!   [`TenantClass`]es (weight, priority tier, per-class SLO) via
//!   [`ClientSpec`]; [`WeightedFair`] shares capacity by weight under
//!   overload and [`StrictPriority`] pins high tiers at the expense of
//!   low ones, alongside the tenant-blind [`Fifo`] and
//!   [`DeadlineShed`]. Reports break admission and latency down per
//!   tenant ([`TenantReport`]) — the tail-latency isolation evidence in
//!   `BENCH_loadgen.json`;
//! * **replica autoscaling** ([`AutoscaleConfig`]): each partition
//!   scales its active replica count from trace-deterministic
//!   queue-depth and utilization signals on the virtual clock, with
//!   cooldown hysteresis, logging every step as a [`ScaleEvent`];
//! * **brownout overload control** ([`BrownoutConfig`]): each partition
//!   steps its execution tier `Full → Eco → Brownout`
//!   ([`ExecPrecision`]) from the same trace-deterministic signals the
//!   autoscaler reads — queue depth, window sheds, and health-plane
//!   capacity loss — serving degraded-but-bounded-error outputs
//!   instead of shedding. [`TenantClass::precision_floor`] pins
//!   latency-sensitive tenants to bit-exact service, and reports carry
//!   every tier transition ([`BrownoutEvent`]) plus served-per-tier
//!   counts and observed-vs-advertised error accounting;
//! * **deterministic chaos & self-healing** ([`FaultPlan`],
//!   [`HealthConfig`]): seeded, virtual-clock-scheduled replica
//!   crashes/stalls, retention-drift advances, and stuck-at strikes; a
//!   canary prober replays a golden probe per replica and drives the
//!   `Active → Degraded → Quarantined → Reprogramming → Active` repair
//!   state machine ([`ReplicaState`]), with reprogram outages priced by
//!   `red_arch::CostModel::reprogram_cost`. Requests orphaned by a
//!   crash are re-queued, hedged to a sibling, or shed with
//!   [`ShedReason::ReplicaLost`] — never silently lost (proptested in
//!   `tests/chaos_serving.rs`);
//! * a **[`ServerReport`]** aggregates per-request lifecycle accounting
//!   (queue wait, execute, total) into HDR-style log-bucketed
//!   [`LatencyHistogram`]s with p50/p95/p99/p999 — per session, per
//!   tenant, and per partition ([`PartitionReport`]) — and reconciles
//!   the scheduler's virtual charge against the replicas' own
//!   accounting ([`ServerReport::reconciles`]);
//! * a **load generator** ([`drive`]) pushes closed-loop or open-loop
//!   (Poisson-arrival) multi-tenant traffic, either from
//!   thread-per-client or from the O(1)-memory streaming driver
//!   ([`LoadgenConfig::stream`]) that sustains 10⁶-request runs;
//!   exposed on the command line as `red-bench --bin loadgen`.
//!
//! Served outputs are **bit-exact** against `Chip::run_sequential` of
//! the same inputs: the scheduler changes *when and together with what*
//! requests execute, never what they compute (asserted in
//! `tests/server_serving.rs`). For statistics at scales where
//! functional execution is beside the point, model-only serving
//! ([`ServerConfig::model_only`]) keeps every virtual-clock figure and
//! skips the chip work.
//!
//! # Example
//!
//! ```
//! use red_server::{ChipFleet, ServerConfig, Server, ClientMode, DeadlineShed};
//! use red_runtime::ChipBuilder;
//! use red_workloads::{networks, synth};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stack = networks::sngan_generator(64)?;
//! let chip = ChipBuilder::new().compile_seeded(&stack, 5, 42)?;
//! let fleet = ChipFleet::new(chip, 2)?;
//! let config = ServerConfig::new()
//!     .max_batch(4)
//!     .max_wait_ns(2_000)
//!     .policy(DeadlineShed);
//! let (server, mut clients) = Server::start(&fleet, &config, &[ClientMode::Closed])?;
//! let input = synth::input_dense(&stack.layers[0], 40, 7);
//! let reply = clients[0].call(input, 0, Some(10_000_000))?;
//! assert!(reply.outcome.is_served());
//! drop(clients);
//! let report = server.finish();
//! assert_eq!(report.served, 1);
//! assert!(report.reconciles());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod autoscale;
mod brownout;
mod error;
mod fault;
mod fleet;
mod former;
mod health;
mod loadgen;
mod policy;
mod report;
mod request;
mod server;
mod tenant;

pub use autoscale::{AutoscaleConfig, ScaleEvent};
pub use brownout::{BrownoutConfig, BrownoutEvent};
pub use error::ServerError;
pub use fault::{FaultEvent, FaultKind, FaultPlan};
pub use fleet::{ChipFleet, FleetFloorplan, FleetPartition, PartitionFloorplan};
pub use former::{BatchFormer, CloseTrigger, FormedBatch};
pub use health::{HealthConfig, ReplicaState};
pub use loadgen::{drive, LoadMode, LoadgenConfig};
pub use policy::{
    policy_by_name, policy_for, AdmissionPolicy, DeadlineShed, Fifo, ServiceEstimate, ShedReason,
    StrictPriority, WeightedFair,
};
pub use red_runtime::ExecPrecision;
pub use red_telemetry::{AlertPolicy, LatencyHistogram, ScrapeConfig};
pub use report::{AlertReport, PartitionReport, ReplicaReport, ServerReport, TenantReport};
pub use request::{ClientId, Completion, Outcome, RequestMeta, RequestTiming};
pub use server::{ClientHandle, ClientMode, ClientSpec, Server, ServerConfig};
pub use tenant::{TenantClass, TenantId};
