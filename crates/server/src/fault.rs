//! Deterministic runtime fault plans.
//!
//! A [`FaultPlan`] is a seeded list of virtual-clock-scheduled fault
//! events — replica crashes, stalls, per-partition retention-drift
//! advances, and incremental stuck-at strikes — that the scheduler
//! injects while serving. Like the batch former, the plan carries no
//! hidden host-time state: a chaos run's statistics, telemetry, and
//! repair history are a pure function of `(request trace, plan, seed)`,
//! so a faulted session replays bit-identically (asserted in
//! `tests/chaos_serving.rs`).

use red_device::DriftModel;

/// What one fault event does to its target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// The replica process dies at the event instant: requests in flight
    /// past the instant are lost (and retried/hedged/shed by the
    /// scheduler), and the replica re-programs before returning.
    Crash,
    /// The replica pauses for the given duration (e.g. a thermal
    /// throttle or a host hiccup): nothing is lost, availability slips.
    Stall {
        /// Stall duration, in virtual ns.
        ns: u64,
    },
    /// Retention drift advances on every replica of the target
    /// partition: conductances decay per [`DriftModel::after`] with the
    /// configured exponent, detectable by the canary prober.
    Drift {
        /// Time since programming the drift law is evaluated at, in
        /// seconds (composes additively across drift events).
        elapsed_s: f64,
    },
    /// `cells` seeded-random stuck-at strikes land on the target
    /// replica (via `CrossbarArray::apply_faults`).
    Strikes {
        /// Cells struck.
        cells: usize,
    },
}

impl FaultKind {
    /// Stable lowercase label for traces and logs.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall { .. } => "stall",
            FaultKind::Drift { .. } => "drift",
            FaultKind::Strikes { .. } => "strike",
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Virtual instant the fault fires, in ns.
    pub at_ns: u64,
    /// Target fleet partition.
    pub partition: usize,
    /// Target replica within the partition (ignored for
    /// [`FaultKind::Drift`], which hits the whole partition).
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

/// A seeded, virtual-clock-ordered fault schedule.
///
/// Events are kept sorted by `(at_ns, insertion order)`; the seed
/// derives the per-event randomness (strike cell positions), so two
/// plans built from the same spec are identical objects.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            events: Vec::new(),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events, sorted by fire instant (stable on ties).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Scheduled event count.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The per-event strike seed: a splitmix-style mix of the plan seed
    /// and the event's position in the sorted schedule, so incremental
    /// strikes compose deterministically and independently of when the
    /// scheduler consumes them.
    pub fn event_seed(&self, index: usize) -> u64 {
        self.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)
    }

    /// Adds an event, keeping the schedule sorted by `at_ns` (insertion
    /// order on ties).
    pub fn push(mut self, event: FaultEvent) -> Self {
        let pos = self.events.partition_point(|e| e.at_ns <= event.at_ns);
        self.events.insert(pos, event);
        self
    }

    /// Schedules a replica crash.
    pub fn crash(self, at_ns: u64, partition: usize, replica: usize) -> Self {
        self.push(FaultEvent {
            at_ns,
            partition,
            replica,
            kind: FaultKind::Crash,
        })
    }

    /// Schedules a replica stall of `dur_ns`.
    pub fn stall(self, at_ns: u64, partition: usize, replica: usize, dur_ns: u64) -> Self {
        self.push(FaultEvent {
            at_ns,
            partition,
            replica,
            kind: FaultKind::Stall { ns: dur_ns },
        })
    }

    /// Schedules a partition-wide drift advance to `elapsed_s` seconds
    /// after programming (see [`DriftModel::after`]).
    pub fn drift(self, at_ns: u64, partition: usize, elapsed_s: f64) -> Self {
        self.push(FaultEvent {
            at_ns,
            partition,
            replica: 0,
            kind: FaultKind::Drift { elapsed_s },
        })
    }

    /// Schedules `cells` stuck-at strikes on one replica.
    pub fn strikes(self, at_ns: u64, partition: usize, replica: usize, cells: usize) -> Self {
        self.push(FaultEvent {
            at_ns,
            partition,
            replica,
            kind: FaultKind::Strikes { cells },
        })
    }

    /// Parses the `loadgen --fault-plan` spec: comma-separated events,
    /// each `kind:at_us:partition:...` with times in virtual µs —
    ///
    /// * `crash:AT_US:PART:REPLICA`
    /// * `stall:AT_US:PART:REPLICA:DUR_US`
    /// * `drift:AT_US:PART:ELAPSED_S`
    /// * `strike:AT_US:PART:REPLICA:CELLS`
    ///
    /// e.g. `crash:40000:0:0,drift:60000:1:2592000`.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the malformed event.
    pub fn parse(spec: &str, seed: u64) -> Result<Self, String> {
        let mut plan = FaultPlan::new(seed);
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            let fields: Vec<&str> = part.split(':').collect();
            let bad = |what: &str| format!("fault event `{part}`: {what}");
            let int = |f: &str, what: &str| f.parse::<u64>().map_err(|_| bad(what));
            let kind = *fields.first().ok_or_else(|| bad("empty event"))?;
            let at_ns = int(
                fields.get(1).ok_or_else(|| bad("missing time"))?,
                "bad time",
            )?
            .saturating_mul(1_000);
            let pnum = int(
                fields.get(2).ok_or_else(|| bad("missing partition"))?,
                "bad partition",
            )? as usize;
            plan = match (kind, fields.len()) {
                ("crash", 4) => plan.crash(at_ns, pnum, int(fields[3], "bad replica")? as usize),
                ("stall", 5) => plan.stall(
                    at_ns,
                    pnum,
                    int(fields[3], "bad replica")? as usize,
                    int(fields[4], "bad duration")?.saturating_mul(1_000),
                ),
                ("drift", 4) => {
                    let elapsed: f64 = fields[3].parse().map_err(|_| bad("bad elapsed_s"))?;
                    if elapsed.is_nan() || elapsed < 0.0 {
                        return Err(bad("elapsed_s must be non-negative"));
                    }
                    plan.drift(at_ns, pnum, elapsed)
                }
                ("strike", 5) => plan.strikes(
                    at_ns,
                    pnum,
                    int(fields[3], "bad replica")? as usize,
                    int(fields[4], "bad cells")? as usize,
                ),
                _ => return Err(bad("unknown kind or wrong field count")),
            };
        }
        Ok(plan)
    }

    /// The drift model `elapsed_s` additional seconds of aging maps to,
    /// composed with `current` (drift advances never rejuvenate).
    pub fn composed_drift(current: DriftModel, nu: f64, elapsed_s: f64) -> DriftModel {
        DriftModel::after(nu, current.elapsed_s + elapsed_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_the_builder() {
        let parsed = FaultPlan::parse(
            "crash:40000:0:0,drift:60000:1:2592000,strike:80000:0:1:64",
            7,
        )
        .unwrap();
        let built = FaultPlan::new(7)
            .crash(40_000_000, 0, 0)
            .drift(60_000_000, 1, 2_592_000.0)
            .strikes(80_000_000, 0, 1, 64);
        assert_eq!(parsed, built);
        assert_eq!(parsed.len(), 3);
        assert_eq!(parsed.events()[0].kind.as_str(), "crash");
    }

    #[test]
    fn events_sort_by_time_with_stable_ties() {
        let plan = FaultPlan::new(0)
            .crash(50, 0, 1)
            .stall(10, 0, 0, 5)
            .crash(50, 1, 0);
        let at: Vec<(u64, usize)> = plan
            .events()
            .iter()
            .map(|e| (e.at_ns, e.partition))
            .collect();
        assert_eq!(at, vec![(10, 0), (50, 0), (50, 1)]);
    }

    #[test]
    fn parse_rejects_malformed_events() {
        assert!(FaultPlan::parse("crash:1:0", 0).is_err());
        assert!(FaultPlan::parse("meteor:1:0:0", 0).is_err());
        assert!(FaultPlan::parse("drift:1:0:-3", 0).is_err());
        assert!(FaultPlan::parse("stall:1:0:0", 0).is_err());
        assert!(FaultPlan::parse("", 0).unwrap().is_empty());
    }

    #[test]
    fn event_seeds_differ_per_index_and_plan_seed() {
        let plan = FaultPlan::new(7);
        assert_ne!(plan.event_seed(0), plan.event_seed(1));
        assert_ne!(
            FaultPlan::new(7).event_seed(0),
            FaultPlan::new(8).event_seed(0)
        );
    }
}
