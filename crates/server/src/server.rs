//! The online serving engine: MPSC request queue → per-partition
//! dynamic micro-batch formers → SLO-aware tenant admission → replica
//! workers, with optional virtual-clock autoscaling.
//!
//! # Threads and channels
//!
//! ```text
//! clients ──(unbounded MPSC, Submit/Advance/Done)──▶ scheduler thread
//!    ▲                                                  │ (bounded, per replica)
//!    │                                                  ▼
//!    └──(unbounded, Completion)◀── replica workers (per partition × replica)
//! ```
//!
//! The **scheduler** owns the virtual clock: it merges per-client
//! request streams in `(arrival, client, seq)` order, routes each
//! request to its target **partition** (resident network), closes
//! micro-batches through one [`BatchFormer`] per partition (never
//! finalizing a batch a future arrival could still change — see the
//! former's module docs), runs the partition's forked
//! [`AdmissionPolicy`] at dispatch with that chip's modeled service
//! law, and charges each executed batch the pipelined schedule
//! `fill + (B-1)·steady` on the virtual clock. **Replica workers** do
//! the host-side functional execution (`Chip::run_batched_with_scratch`,
//! bit-exact against the sequential golden path) and deliver outputs
//! directly to clients, so virtual-time bookkeeping never waits on host
//! execution. Shed requests are answered by the scheduler itself and
//! cost zero chip time. In model-only mode
//! ([`ServerConfig::model_only`]) workers skip execution and answer
//! [`Outcome::Modeled`] — every virtual-clock figure is unchanged,
//! which is what lets the load generator sustain 10⁶-request runs.
//!
//! Because every latency figure derives from the virtual clock, a
//! serving session's statistics are a deterministic function of the
//! request trace — independent of host thread interleaving — which is
//! what makes the committed `BENCH_loadgen.json` baselines and the CI
//! bench-gate assertions reproducible. Stateful admission and
//! autoscaling keep that property by scoping their state per partition:
//! each partition's decision sequence is deterministic even though
//! cross-partition dispatch interleaving is not.

use crate::autoscale::Autoscaler;
use crate::brownout::{BrownoutConfig, BrownoutController, BrownoutEvent};
use crate::fault::{FaultEvent, FaultKind, FaultPlan};
use crate::former::{BatchFormer, FormedBatch};
use crate::health::{HealthConfig, ReplicaState, Witness};
use crate::policy::{AdmissionPolicy, Fifo, ServiceEstimate, ShedReason};
use crate::report::{AlertReport, PartitionReport, ReplicaReport, ServerReport, TenantReport};
use crate::request::{ClientId, Completion, Outcome, RequestMeta, RequestTiming};
use crate::tenant::{TenantClass, TenantId};
use crate::{AutoscaleConfig, ChipFleet, ScaleEvent, ServerError};
use red_arch::CostModel;
use red_device::DriftModel;
use red_runtime::{ExecPrecision, HardwarePerImage};
use red_telemetry::{
    AlertEngine, AlertPolicy, AlertState, AlertTransition, AlertWindow, ArgValue, Counter, Gauge,
    LatencyHistogram, Phase, ScrapeConfig, Scraper, Telemetry, TenantWindow, TraceEvent,
    WindowSnapshot,
};
use red_tensor::FeatureMap;
use std::collections::HashMap;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Scheduler tuning: batch former bounds, admission policy, tenant
/// classes, autoscaling, and the functional/model-only switch.
#[derive(Clone)]
pub struct ServerConfig {
    max_batch: usize,
    max_wait_ns: u64,
    policy: Arc<dyn AdmissionPolicy>,
    tenants: Vec<TenantClass>,
    autoscale: Option<AutoscaleConfig>,
    brownout: Option<BrownoutConfig>,
    functional: bool,
    telemetry: Telemetry,
    fault_plan: Option<FaultPlan>,
    health: HealthConfig,
    scrape: Option<ScrapeConfig>,
    alerts: Option<AlertPolicy>,
}

impl ServerConfig {
    /// Defaults: `max_batch` 8, `max_wait` 0 (batch only what arrives
    /// together), [`Fifo`] admission, one default tenant class, no
    /// autoscaling, functional execution.
    pub fn new() -> Self {
        Self {
            max_batch: 8,
            max_wait_ns: 0,
            policy: Arc::new(Fifo),
            tenants: vec![TenantClass::default()],
            autoscale: None,
            brownout: None,
            functional: true,
            telemetry: Telemetry::disabled(),
            fault_plan: None,
            health: HealthConfig::default(),
            scrape: None,
            alerts: None,
        }
    }

    /// Sets the batch-size bound.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "max_batch must be positive");
        self.max_batch = n;
        self
    }

    /// Sets the forming-window bound, in virtual ns.
    pub fn max_wait_ns(mut self, ns: u64) -> Self {
        self.max_wait_ns = ns;
        self
    }

    /// Sets the admission policy (forked once per fleet partition).
    pub fn policy(mut self, policy: impl AdmissionPolicy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// Sets an already-shared admission policy (e.g. from
    /// [`crate::policy_for`]).
    pub fn policy_arc(mut self, policy: Arc<dyn AdmissionPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// Declares the tenant classes clients may register under.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn tenants(mut self, classes: Vec<TenantClass>) -> Self {
        assert!(
            !classes.is_empty(),
            "a server needs at least one tenant class"
        );
        self.tenants = classes;
        self
    }

    /// Enables per-partition replica autoscaling.
    pub fn autoscale(mut self, cfg: AutoscaleConfig) -> Self {
        self.autoscale = Some(cfg);
        self
    }

    /// Enables per-partition brownout control: under overload or lost
    /// capacity the partition steps its execution tier
    /// `Full → Eco → Brownout` ([`ExecPrecision`]) instead of only
    /// shedding, trading a bounded output error for proportionally
    /// cheaper batches. Tenants cap the degradation via
    /// [`TenantClass::precision_floor`]. Strictly opt-in — without this
    /// call every batch runs at full precision and the dispatch path is
    /// byte-identical to earlier builds.
    pub fn brownout(mut self, cfg: BrownoutConfig) -> Self {
        self.brownout = Some(cfg);
        self
    }

    /// Arms a deterministic fault plan: the scheduler injects the
    /// plan's crashes, stalls, drift advances, and stuck-at strikes on
    /// the virtual clock, runs the canary prober, and self-heals via
    /// the [`ReplicaState`] machine. Strictly opt-in — with no plan the
    /// dispatch path is byte-identical to a chaos-free build.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Tunes the canary prober and self-healing loop (only read when a
    /// [`ServerConfig::fault_plan`] is armed).
    pub fn health(mut self, cfg: HealthConfig) -> Self {
        self.health = cfg;
        self
    }

    /// The armed fault plan, if any.
    pub fn fault_plan_ref(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// The health/self-healing tuning.
    pub fn health_config(&self) -> HealthConfig {
        self.health
    }

    /// Attaches a telemetry handle: the scheduler records per-request
    /// lifecycle spans, batch/stage execute spans, scale instants, and
    /// the per-tenant/per-partition metrics plane into it. The default
    /// disabled handle costs one branch per would-be record. Every
    /// recorded timestamp is virtual-clock, and all emission happens on
    /// the scheduler thread into per-partition streams, so the exported
    /// trace is a deterministic function of the request trace.
    pub fn telemetry(mut self, handle: Telemetry) -> Self {
        self.telemetry = handle;
        self
    }

    /// The attached telemetry handle (disabled unless
    /// [`ServerConfig::telemetry`] was called).
    pub fn telemetry_handle(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Arms the windowed time-series scraper: each partition snapshots
    /// its metric registry on the virtual clock at the configured
    /// interval, driven from the scheduler's batch-close pump so scrape
    /// instants — and everything derived from them — are a pure
    /// function of the request trace. Scraping feeds the alert engine
    /// (see [`ServerConfig::alerts`]), emits Chrome-trace `"C"` counter
    /// tracks interleaved with the request spans, and publishes the
    /// per-window series for the JSON reports. Only effective when a
    /// telemetry handle is attached ([`ServerConfig::telemetry`]);
    /// strictly opt-in — without this call the dispatch path is
    /// byte-identical to a scrape-free build.
    pub fn scrape(mut self, cfg: ScrapeConfig) -> Self {
        self.scrape = Some(cfg);
        self
    }

    /// Tunes the multi-window SLO burn-rate alert rules evaluated over
    /// the scrape windows (only read when [`ServerConfig::scrape`] is
    /// armed; the scraper runs [`AlertPolicy::default`] otherwise).
    pub fn alerts(mut self, policy: AlertPolicy) -> Self {
        self.alerts = Some(policy);
        self
    }

    /// The armed scrape cadence, if any.
    pub fn scrape_config(&self) -> Option<ScrapeConfig> {
        self.scrape
    }

    /// The configured alert policy, if one was set.
    pub fn alert_policy(&self) -> Option<AlertPolicy> {
        self.alerts.clone()
    }

    /// Skips functional execution: workers charge the modeled schedule
    /// and answer [`Outcome::Modeled`]. Virtual-clock statistics are
    /// identical to a functional run over the same trace (asserted in
    /// `tests/server_serving.rs`); host cost drops by the chip
    /// simulation, which is what makes 10⁶-request load runs feasible.
    pub fn model_only(mut self) -> Self {
        self.functional = false;
        self
    }

    /// The configured batch-size bound.
    pub fn max_batch_bound(&self) -> usize {
        self.max_batch
    }

    /// The configured forming-window bound, in ns.
    pub fn max_wait_bound_ns(&self) -> u64 {
        self.max_wait_ns
    }

    /// The configured policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// The configured tenant classes.
    pub fn tenant_classes(&self) -> &[TenantClass] {
        &self.tenants
    }

    /// The autoscaler tuning, if autoscaling is enabled.
    pub fn autoscale_config(&self) -> Option<AutoscaleConfig> {
        self.autoscale
    }

    /// The brownout tuning, if brownout control is enabled.
    pub fn brownout_config(&self) -> Option<BrownoutConfig> {
        self.brownout
    }

    /// `false` when the server runs model-only.
    pub fn is_functional(&self) -> bool {
        self.functional
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_batch", &self.max_batch)
            .field("max_wait_ns", &self.max_wait_ns)
            .field("policy", &self.policy.name())
            .field("tenants", &self.tenants.len())
            .field("autoscale", &self.autoscale)
            .field("brownout", &self.brownout)
            .field("functional", &self.functional)
            .field("telemetry", &self.telemetry.is_enabled())
            .field("fault_plan", &self.fault_plan.as_ref().map(FaultPlan::len))
            .field("health", &self.health)
            .field("scrape", &self.scrape)
            .field("alerts", &self.alerts.is_some())
            .finish()
    }
}

/// How a client interacts with the server — the scheduler needs to know
/// to merge request streams deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// Fire-and-forget: submits whenever its trace says, regardless of
    /// completions (open-loop load).
    Open,
    /// One request outstanding: submits only after receiving the
    /// previous completion, at or after its virtual completion time
    /// (closed-loop load).
    Closed,
}

/// One client's registration: its loop mode plus the tenant class its
/// requests are accounted (and admission-differentiated) under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientSpec {
    /// Open- or closed-loop interaction.
    pub mode: ClientMode,
    /// Tenant class index into [`ServerConfig::tenants`].
    pub tenant: TenantId,
}

impl ClientSpec {
    /// An open-loop client of the given tenant.
    pub fn open(tenant: TenantId) -> Self {
        Self {
            mode: ClientMode::Open,
            tenant,
        }
    }

    /// A closed-loop client of the given tenant.
    pub fn closed(tenant: TenantId) -> Self {
        Self {
            mode: ClientMode::Closed,
            tenant,
        }
    }
}

impl From<ClientMode> for ClientSpec {
    /// A bare mode registers under tenant 0 — the single-tenant
    /// convenience that keeps `Server::start(&fleet, &config,
    /// &[ClientMode::Closed])` working.
    fn from(mode: ClientMode) -> Self {
        Self { mode, tenant: 0 }
    }
}

/// What clients send to the scheduler.
enum Event {
    Submit {
        meta: RequestMeta,
        input: Option<FeatureMap<i64>>,
        responder: Sender<Completion>,
    },
    /// A watermark heartbeat: the client promises to submit nothing
    /// before the given virtual instant.
    Advance(ClientId, u64),
    Done(ClientId),
}

/// A client's handle to a running [`Server`]: submit requests, receive
/// [`Completion`]s.
///
/// Dropping the handle (or calling [`ClientHandle::finish`]) tells the
/// server this client will submit no more requests — required for the
/// server to drain and shut down.
///
/// **Liveness contract:** deterministic virtual-time batching means the
/// scheduler will not finalize a batch that a still-active client could
/// preempt with an earlier-timestamped request. An [`ClientMode::Open`]
/// client must therefore keep submitting, [`advance`] its watermark, or
/// [`finish`] before blocking on [`recv`] — a client that silently goes
/// quiet stalls batch forming for everyone. [`ClientMode::Closed`]
/// clients are exempt while a request is in flight (the scheduler knows
/// they cannot submit), which is what makes
/// [`call`](ClientHandle::call) safe. When blocking is not an option,
/// poll with [`try_recv`] or bound the wait with [`recv_timeout`] —
/// both return instead of deadlocking, so a client that forgot to
/// heartbeat gets an error path rather than a hang.
///
/// [`advance`]: ClientHandle::advance
/// [`finish`]: ClientHandle::finish
/// [`recv`]: ClientHandle::recv
/// [`try_recv`]: ClientHandle::try_recv
/// [`recv_timeout`]: ClientHandle::recv_timeout
#[derive(Debug)]
pub struct ClientHandle {
    id: ClientId,
    tenant: TenantId,
    seq: u64,
    last_arrival_ns: u64,
    expected_shapes: Arc<Vec<(usize, usize, usize)>>,
    functional: bool,
    events: Sender<Event>,
    completion_tx: Sender<Completion>,
    completions: Receiver<Completion>,
    done: bool,
}

impl ClientHandle {
    /// This client's id (index into the client slice given to
    /// [`Server::start`]).
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// This client's tenant class index.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Submits a request to partition 0 — the whole fleet, for
    /// single-network fleets. See [`ClientHandle::submit_to`].
    ///
    /// # Errors
    ///
    /// As [`ClientHandle::submit_to`].
    pub fn submit(
        &mut self,
        input: FeatureMap<i64>,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<RequestMeta, ServerError> {
        self.submit_to(0, input, arrival_ns, deadline_ns)
    }

    /// Submits a request for the network resident on fleet partition
    /// `network`, arriving at virtual time `arrival_ns` with an
    /// optional absolute deadline. Arrivals must be nondecreasing per
    /// client; a too-early stamp is clamped to the client's frontier
    /// (its last arrival or [`advance`](ClientHandle::advance)
    /// watermark here, and additionally its last virtual completion on
    /// the scheduler side for closed-loop clients). Returns the
    /// request's final metadata.
    ///
    /// # Errors
    ///
    /// [`ServerError::UnknownNetwork`] for an out-of-range partition;
    /// [`ServerError::InputMismatch`] for a wrong-shaped input;
    /// [`ServerError::Disconnected`] after [`ClientHandle::finish`] or
    /// server shutdown.
    pub fn submit_to(
        &mut self,
        network: usize,
        input: FeatureMap<i64>,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<RequestMeta, ServerError> {
        let expected = *self
            .expected_shapes
            .get(network)
            .ok_or(ServerError::UnknownNetwork {
                network,
                partitions: self.expected_shapes.len(),
            })?;
        let actual = (input.height(), input.width(), input.channels());
        if actual != expected {
            return Err(ServerError::InputMismatch { expected, actual });
        }
        self.send_submit(network, Some(input), arrival_ns, deadline_ns)
    }

    /// Submits an input-less request on a model-only server (the
    /// functional payload would never be executed; skipping it keeps
    /// the 10⁶-request streaming load generator free of per-request
    /// tensor clones).
    ///
    /// # Errors
    ///
    /// [`ServerError::NeedsInput`] on a functional server;
    /// [`ServerError::UnknownNetwork`] / [`ServerError::Disconnected`]
    /// as [`ClientHandle::submit_to`].
    pub fn submit_modeled(
        &mut self,
        network: usize,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<RequestMeta, ServerError> {
        if self.functional {
            return Err(ServerError::NeedsInput);
        }
        if network >= self.expected_shapes.len() {
            return Err(ServerError::UnknownNetwork {
                network,
                partitions: self.expected_shapes.len(),
            });
        }
        self.send_submit(network, None, arrival_ns, deadline_ns)
    }

    fn send_submit(
        &mut self,
        network: usize,
        input: Option<FeatureMap<i64>>,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<RequestMeta, ServerError> {
        if self.done {
            return Err(ServerError::Disconnected);
        }
        let arrival = arrival_ns.max(self.last_arrival_ns);
        let meta = RequestMeta {
            client: self.id,
            tenant: self.tenant,
            network,
            seq: self.seq,
            arrival_ns: arrival,
            deadline_ns,
        };
        self.events
            .send(Event::Submit {
                meta,
                input,
                responder: self.completion_tx.clone(),
            })
            .map_err(|_| ServerError::Disconnected)?;
        self.seq += 1;
        self.last_arrival_ns = arrival;
        Ok(meta)
    }

    /// Promises the scheduler this client will submit nothing before
    /// virtual instant `watermark_ns` — a heartbeat that lets batches
    /// below the watermark close without this client submitting or
    /// finishing. The streaming load generator sends one per client
    /// before blocking on completions; no-op when the watermark does
    /// not advance.
    ///
    /// # Errors
    ///
    /// [`ServerError::Disconnected`] after [`ClientHandle::finish`] or
    /// server shutdown.
    pub fn advance(&mut self, watermark_ns: u64) -> Result<(), ServerError> {
        if self.done {
            return Err(ServerError::Disconnected);
        }
        if watermark_ns <= self.last_arrival_ns {
            return Ok(());
        }
        self.events
            .send(Event::Advance(self.id, watermark_ns))
            .map_err(|_| ServerError::Disconnected)?;
        self.last_arrival_ns = watermark_ns;
        Ok(())
    }

    /// Blocks for the next completion addressed to this client.
    ///
    /// # Errors
    ///
    /// [`ServerError::Disconnected`] when the server is gone and no
    /// completion is queued.
    pub fn recv(&self) -> Result<Completion, ServerError> {
        self.completions
            .recv()
            .map_err(|_| ServerError::Disconnected)
    }

    /// Non-blocking poll for the next completion: `Ok(None)` when
    /// nothing is queued yet. The liveness-safe alternative to
    /// [`recv`](ClientHandle::recv) for clients that interleave
    /// submission and collection without heartbeating.
    ///
    /// # Errors
    ///
    /// [`ServerError::Disconnected`] when the server is gone and no
    /// completion is queued.
    pub fn try_recv(&self) -> Result<Option<Completion>, ServerError> {
        use std::sync::mpsc::TryRecvError;
        match self.completions.try_recv() {
            Ok(c) => Ok(Some(c)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(ServerError::Disconnected),
        }
    }

    /// Blocks up to `timeout` (host time) for the next completion:
    /// `Ok(None)` on timeout. Bounds the wait where
    /// [`recv`](ClientHandle::recv) would deadlock a client that
    /// stalled batch forming by going quiet.
    ///
    /// # Errors
    ///
    /// [`ServerError::Disconnected`] when the server is gone and no
    /// completion is queued.
    pub fn recv_timeout(
        &self,
        timeout: std::time::Duration,
    ) -> Result<Option<Completion>, ServerError> {
        use std::sync::mpsc::RecvTimeoutError;
        match self.completions.recv_timeout(timeout) {
            Ok(c) => Ok(Some(c)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(ServerError::Disconnected),
        }
    }

    /// Closed-loop convenience: [`submit`](ClientHandle::submit) then
    /// [`recv`](ClientHandle::recv).
    ///
    /// # Errors
    ///
    /// As `submit` and `recv`.
    pub fn call(
        &mut self,
        input: FeatureMap<i64>,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<Completion, ServerError> {
        self.submit(input, arrival_ns, deadline_ns)?;
        self.recv()
    }

    /// Declares this client finished (no more submissions). Idempotent;
    /// also called on drop. Completions can still be received afterward.
    pub fn finish(&mut self) {
        if !self.done {
            self.done = true;
            let _ = self.events.send(Event::Done(self.id));
        }
    }
}

impl Drop for ClientHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Scheduler-side client bookkeeping (see the module docs).
struct ClientState {
    mode: ClientMode,
    done: bool,
    in_flight: u64,
    watermark_ns: u64,
}

/// One request riding to a replica worker.
struct ExecItem {
    meta: RequestMeta,
    timing: RequestTiming,
    responder: Sender<Completion>,
}

/// One admitted batch riding to a replica worker (`inputs[i]` belongs
/// to `items[i]`; `inputs` is empty on a model-only server). The
/// scheduler stamps the execution tier the batch was priced at; the
/// worker executes (and re-derives its charge) at the same tier.
struct ExecBatch {
    inputs: Vec<FeatureMap<i64>>,
    items: Vec<ExecItem>,
    tier: ExecPrecision,
}

/// What one replica worker hands back at shutdown.
#[derive(Default)]
struct ReplicaStats {
    batches: u64,
    images: u64,
    runtime_modeled_ns: u64,
    host_ns: u128,
    unreconciled: u64,
    failed: u64,
    first_error: Option<String>,
    /// Largest elementwise deviation any degraded batch's outputs
    /// showed against a full-precision double-run of the same inputs
    /// (functional mode only; 0 when every batch ran at full tier).
    max_observed_error: f64,
    /// Largest advertised worst-case bound among the tiers this
    /// replica actually executed at.
    error_bound: f64,
}

type Payload = (Option<FeatureMap<i64>>, Sender<Completion>);

/// Pre-bound per-partition metric handles (all no-ops when telemetry is
/// disabled): binding happens once at [`Server::start`], so the
/// dispatch hot path only touches atomics.
struct PartitionMetrics {
    served_by_tenant: Vec<Counter>,
    shed_by_tenant: Vec<Counter>,
    /// Served requests whose end-to-end latency exceeded their tenant's
    /// SLO (`red_slo_miss_total`, labeled by tenant; best-effort
    /// tenants never miss).
    slo_miss_by_tenant: Vec<Counter>,
    /// One counter per [`ShedReason::ALL`] member (`red_sheds_total`,
    /// labeled by reason).
    shed_by_reason: Vec<Counter>,
    xbar_activations: Counter,
    bit_phase_sweeps: Counter,
    plane_row_adds: Counter,
    adc_quantizations: Counter,
    energy_fj: Counter,
    images: Counter,
    replicas_active: Gauge,
    faults_injected: Counter,
    reprograms: Counter,
    retries: Counter,
    hedges: Counter,
    /// One counter per [`ExecPrecision::ALL`] member
    /// (`red_requests_served_by_tier_total`, labeled by tier).
    served_by_tier: Vec<Counter>,
    /// Current execution tier as [`ExecPrecision::index`] (0 = full).
    precision_tier: Gauge,
    /// Modeled backlog ahead of the newest dispatch, in virtual ns
    /// (`red_backlog_ns`; refreshed at scrape-pump instants).
    backlog_ns: Gauge,
    /// Replicas the dispatch may currently route to — active minus
    /// quarantined/reprogramming (`red_replicas_routable`).
    replicas_routable: Gauge,
}

/// One fire-order alert episode under construction (becomes an
/// [`AlertReport`] at shutdown).
struct AlertEpisode {
    rule: &'static str,
    tenant: Option<usize>,
    fired_at_ns: u64,
    resolved_at_ns: Option<u64>,
    value: f64,
}

/// Per-partition observability plane, armed by [`ServerConfig::scrape`]:
/// the windowed registry [`Scraper`], the [`AlertEngine`] consuming its
/// window sequence, the scraper series ids that assemble each
/// [`AlertWindow`], and the pre-bound `red_alerts_fired_total` handles.
/// Everything here is pumped from the scheduler's batch-close loop on
/// the virtual clock, so scrape windows, alert edges, and the exported
/// series are pure functions of the request trace.
struct PartitionObs {
    scraper: Scraper,
    engine: AlertEngine,
    tele: Telemetry,
    partition: usize,
    pid: u32,
    /// Per-tenant `served` counter-series ids, by tenant index.
    served_ids: Vec<usize>,
    /// Per-tenant `shed` counter-series ids.
    shed_ids: Vec<usize>,
    /// Per-tenant `slo_miss` counter-series ids.
    slo_miss_ids: Vec<usize>,
    /// The `sheds_by_reason` series of [`ShedReason::ReplicaLost`].
    replica_lost_id: usize,
    /// The `replicas_active` gauge series.
    active_id: usize,
    /// The `replicas_routable` gauge series.
    routable_id: usize,
    /// `(rule, tenant) → red_alerts_fired_total` handles, linear-scanned
    /// (a handful of entries).
    fired: Vec<(&'static str, Option<usize>, Counter)>,
    /// Fire-order episode log; resolves close the latest open episode
    /// of their `(rule, tenant)`.
    episodes: Vec<AlertEpisode>,
}

impl PartitionObs {
    /// Runs the alert engine over freshly closed scrape windows,
    /// counting fire edges, logging episodes, and emitting one `alert`
    /// instant per transition onto the partition's autoscale track.
    fn ingest(&mut self, windows: &[WindowSnapshot]) {
        for w in windows {
            let tenants = (0..self.served_ids.len())
                .map(|t| TenantWindow {
                    served: w.values[self.served_ids[t]].max(0) as u64,
                    shed: w.values[self.shed_ids[t]].max(0) as u64,
                    slo_miss: w.values[self.slo_miss_ids[t]].max(0) as u64,
                })
                .collect();
            let aw = AlertWindow {
                t_ns: w.t_ns,
                tenants,
                replica_lost: w.values[self.replica_lost_id].max(0) as u64,
                active: w.values[self.active_id],
                routable: w.values[self.routable_id],
            };
            for tr in self.engine.observe(&aw) {
                self.apply(&tr);
            }
        }
    }

    fn apply(&mut self, tr: &AlertTransition) {
        match tr.state {
            AlertState::Fired => {
                if let Some((_, _, c)) = self
                    .fired
                    .iter()
                    .find(|(rule, tenant, _)| *rule == tr.rule && *tenant == tr.tenant)
                {
                    c.add(1);
                }
                self.episodes.push(AlertEpisode {
                    rule: tr.rule,
                    tenant: tr.tenant,
                    fired_at_ns: tr.t_ns,
                    resolved_at_ns: None,
                    value: tr.value,
                });
            }
            AlertState::Resolved => {
                if let Some(e) = self.episodes.iter_mut().rev().find(|e| {
                    e.rule == tr.rule && e.tenant == tr.tenant && e.resolved_at_ns.is_none()
                }) {
                    e.resolved_at_ns = Some(tr.t_ns);
                }
            }
        }
        if self.tele.is_enabled() {
            self.tele.record(
                self.partition,
                TraceEvent::new(tr.rule, "alert", Phase::Instant, tr.t_ns)
                    .track(self.pid, TRACE_TID_AUTOSCALE)
                    .arg("state", ArgValue::Str(tr.state.as_str()))
                    .arg("tenant", ArgValue::I64(tr.tenant.map_or(-1, |t| t as i64)))
                    .arg("value", ArgValue::F64(tr.value)),
            );
        }
    }

    /// Drains the episode log into report form.
    fn into_reports(self) -> Vec<AlertReport> {
        let p = self.partition;
        self.episodes
            .into_iter()
            .map(|e| AlertReport {
                partition: p,
                rule: e.rule.to_string(),
                tenant: e.tenant,
                fired_at_ns: e.fired_at_ns,
                resolved_at_ns: e.resolved_at_ns,
                value: e.value,
            })
            .collect()
    }
}

/// Per-partition scheduler state: its own former, service law, forked
/// policy, replica pool, autoscaler, and ledgers. Scoping mutable
/// policy/autoscaler state here is what keeps reports deterministic —
/// only the per-partition dispatch order is a function of the trace.
struct PartitionState {
    former: BatchFormer<Payload>,
    fill_ns: u64,
    steady_ns: u64,
    /// Tier-priced fill latencies, indexed by [`ExecPrecision::index`]
    /// (`[0] == fill_ns` exactly — the full-precision tier is never
    /// repriced).
    tier_fill_ns: [u64; 3],
    /// Tier-priced steady intervals, same indexing.
    tier_steady_ns: [u64; 3],
    /// Live-over-full phase ratio per tier (`[0] == 1.0`), for scaling
    /// the tracer's analytic per-stage spans.
    tier_ratio: [f64; 3],
    /// Per-image hardware counters per tier (`[0] == hw` exactly).
    hw_by_tier: [HardwarePerImage; 3],
    /// Per-stage priced latencies, for the tracer's analytic per-stage
    /// execute spans.
    stage_lat: Vec<f64>,
    /// Exact per-image hardware counters of this partition's chip.
    hw: HardwarePerImage,
    metrics: PartitionMetrics,
    policy: Box<dyn AdmissionPolicy>,
    replica_tx: Vec<SyncSender<ExecBatch>>,
    free_at: Vec<u64>,
    active: usize,
    autoscaler: Option<Autoscaler>,
    scale_events: Vec<ScaleEvent>,
    brownout: Option<BrownoutController>,
    brownout_events: Vec<BrownoutEvent>,
    /// Served requests per tier, indexed by [`ExecPrecision::index`].
    served_by_tier: [u64; 3],
    offered: u64,
    served: u64,
    shed: u64,
    batches: u64,
    modeled_busy_ns: u64,
    total: LatencyHistogram,
    per_replica: Vec<(u64, u64, u64)>, // (batches, images, busy_ns)
    /// Scraper + alert engine, armed by [`ServerConfig::scrape`].
    obs: Option<PartitionObs>,
}

/// Per-tenant ledgers the scheduler accumulates.
struct TenantStat {
    offered: u64,
    served: u64,
    shed: u64,
    queue_wait: LatencyHistogram,
    total: LatencyHistogram,
}

/// Session-wide ledgers.
struct GlobalStats {
    offered: u64,
    served: u64,
    shed: u64,
    send_failures: u64,
    batches: u64,
    queue_wait: LatencyHistogram,
    execute: LatencyHistogram,
    total: LatencyHistogram,
    shed_wait: LatencyHistogram,
    batch_sizes: LatencyHistogram,
    first_arrival_ns: u64,
    last_completion_ns: u64,
    modeled_busy_ns: u64,
    /// Sheds by [`ShedReason::index`].
    sheds_by_reason: Vec<u64>,
    faults_injected: u64,
    reprograms: u64,
    retries: u64,
    hedges: u64,
    /// Served requests by [`ExecPrecision::index`].
    served_by_tier: [u64; 3],
}

/// Per-replica self-healing state (fault-plan runs only).
struct ReplicaChaos {
    state: ReplicaState,
    witness: Witness,
    next_probe_ns: u64,
    repair_until_ns: Option<u64>,
}

///// Per-partition chaos state: this partition's slice of the fault plan
/// (each event paired with its seed, derived from the *global* plan
/// index, for deterministic stuck-at strikes) plus the replica health
/// records.
struct PartChaos {
    events: Vec<(u64, FaultEvent)>,
    /// Events consumed out of order by the commit-time crash lookahead;
    /// the pump skips them.
    consumed: Vec<bool>,
    cursor: usize,
    replicas: Vec<ReplicaChaos>,
}

impl PartChaos {
    /// Index (into `events`) of the first unconsumed event at or before
    /// `now`.
    fn next_event_at(&self, now: u64) -> Option<usize> {
        (self.cursor..self.events.len())
            .find(|&i| !self.consumed[i])
            .filter(|&i| self.events[i].1.at_ns <= now)
    }

    /// How many of the first `active` replicas the scheduler may route
    /// to.
    fn routable(&self, active: usize) -> usize {
        self.replicas[..active.min(self.replicas.len())]
            .iter()
            .filter(|r| r.state.routable())
            .count()
    }
}

/// Scheduler-side fault-injection and self-healing state, present only
/// when a [`FaultPlan`] is armed. Taken out of the scheduler
/// (`Option::take`) for the duration of a dispatch so the chaos logic
/// can borrow partitions and ledgers freely.
struct ChaosState {
    health: HealthConfig,
    /// Modeled replica re-programming outage, from
    /// `CostModel::reprogram_cost(health.reprogram_cells)`.
    reprogram_ns: u64,
    reprogram_energy_pj: f64,
    parts: Vec<PartChaos>,
    /// Re-serve attempts per orphaned request — bounded by
    /// `health.max_retries`, keyed `(client, seq)`. Never iterated, so
    /// the hash order cannot leak into results.
    attempts: HashMap<(ClientId, u64), u32>,
}

struct Scheduler {
    clients: Vec<ClientState>,
    parts: Vec<PartitionState>,
    tenants: Vec<TenantStat>,
    /// Per-tenant precision floors ([`TenantClass::precision_floor`]),
    /// indexed by tenant id.
    floors: Vec<ExecPrecision>,
    /// Per-tenant SLOs ([`TenantClass::slo_ns`]), indexed by tenant id,
    /// for the `red_slo_miss_total` accounting at serve sites.
    slos: Vec<Option<u64>>,
    functional: bool,
    tele: Telemetry,
    out: GlobalStats,
    chaos: Option<ChaosState>,
}

// Trace track layout. Request lifecycle events live on the scheduler
// process (pid 1), one thread track per tenant class; each partition is
// its own process (pid 100+p) with tid 0 for autoscale instants, tid
// 1+r for replica batch spans, and a per-(replica, stage) band for the
// analytic execute spans. Partition `p` records into telemetry stream
// `p` — the per-partition emission sequence is deterministic, so the
// merged export is too.
const TRACE_PID_SCHED: u32 = 1;
const TRACE_TID_AUTOSCALE: u32 = 0;
const TRACE_STAGE_TID_BASE: u32 = 1_000;
/// Stage tids reserved per replica (chips here are ≤ 8 stages deep;
/// deeper stages fold into the last slot rather than colliding across
/// replicas).
const TRACE_STAGE_SLOTS: u32 = 32;

fn trace_pid(partition: usize) -> u32 {
    100 + partition as u32
}

fn trace_tid_replica(replica: usize) -> u32 {
    1 + replica as u32
}

fn trace_tid_stage(replica: usize, stage: usize) -> u32 {
    let k = (stage as u32).min(TRACE_STAGE_SLOTS - 1);
    TRACE_STAGE_TID_BASE + replica as u32 * TRACE_STAGE_SLOTS + k
}

/// Async correlation id of one request's lifecycle span: unique per
/// (client, seq) within a session.
fn trace_req_id(meta: &RequestMeta) -> u64 {
    ((meta.client as u64) << 32) | (meta.seq & 0xffff_ffff)
}

impl Scheduler {
    /// Exclusive-ish lower bound on every future arrival: the minimum
    /// over clients of what each could still submit. A finished client
    /// contributes nothing; a closed-loop client with a request in
    /// flight cannot submit until the scheduler itself assigns that
    /// request a completion time (so ∞ is *exact*, not an
    /// approximation); otherwise the watermark is the client's last
    /// arrival or heartbeat (open) or last virtual completion (closed),
    /// both proven lower bounds on its next arrival.
    fn frontier(&self) -> u64 {
        self.clients
            .iter()
            .map(|c| {
                if c.done || (c.mode == ClientMode::Closed && c.in_flight > 0) {
                    u64::MAX
                } else {
                    c.watermark_ns
                }
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    fn all_done(&self) -> bool {
        self.clients.iter().all(|c| c.done)
    }

    /// The virtual instant the trace provably ended, for drain-mode
    /// closes: the latest final watermark among finished clients (a
    /// client disconnects at its last arrival or heartbeat). Zero when
    /// no client has finished — the all-closed-loop drain, where the
    /// former falls back to its work-conserving close.
    fn drain_end(&self) -> u64 {
        self.clients
            .iter()
            .filter(|c| c.done)
            .map(|c| c.watermark_ns)
            .max()
            .unwrap_or(0)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Submit {
                mut meta,
                input,
                responder,
            } => {
                let st = &mut self.clients[meta.client];
                // Enforce the watermark invariant the former's safety
                // argument rests on (no-op for well-behaved handles).
                meta.arrival_ns = meta.arrival_ns.max(st.watermark_ns);
                st.watermark_ns = meta.arrival_ns;
                if st.mode == ClientMode::Closed {
                    st.in_flight += 1;
                }
                self.out.offered += 1;
                self.out.first_arrival_ns = self.out.first_arrival_ns.min(meta.arrival_ns);
                self.tenants[meta.tenant].offered += 1;
                let part = &mut self.parts[meta.network];
                part.offered += 1;
                part.former.push(meta, (input, responder));
            }
            Event::Advance(id, watermark_ns) => {
                let st = &mut self.clients[id];
                st.watermark_ns = st.watermark_ns.max(watermark_ns);
            }
            Event::Done(id) => self.clients[id].done = true,
        }
    }

    fn dispatch(&mut self, p: usize, batch: FormedBatch<Payload>) {
        // Fault-plan runs take the chaos path; without a plan the code
        // below is untouched, keeping committed baselines byte-stable.
        if self.chaos.is_some() {
            return self.dispatch_chaos(p, batch);
        }
        let tracing = self.tele.is_enabled();
        let trigger = batch.trigger.as_str();
        // The batch's execution tier: the brownout controller's current
        // tier, capped by the precision floor of every tenant with a
        // request in the formed batch (the `min` under the
        // `Full < Eco < Brownout` order is the more precise tier). The
        // tier is fixed by batch *membership* before admission, so the
        // service estimates the policy sees are priced at the tier the
        // batch will actually run at.
        let ctl = self.parts[p]
            .brownout
            .as_ref()
            .map_or(ExecPrecision::Full, BrownoutController::tier);
        let tier = batch
            .requests
            .iter()
            .fold(ctl, |t, (meta, _)| t.min(self.floors[meta.tenant]));
        let part = &mut self.parts[p];
        let tfill = part.tier_fill_ns[tier.index()];
        let tsteady = part.tier_steady_ns[tier.index()];
        let hw_t = part.hw_by_tier[tier.index()];
        let ratio = part.tier_ratio[tier.index()];
        // Earliest-free active replica, lowest index on ties —
        // deterministic given the partition's dispatch sequence.
        let r = part.free_at[..part.active]
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .map(|(i, _)| i)
            .expect("a partition always has at least one active replica");
        let start = batch.close_ns.max(part.free_at[r]);
        let mut inputs = Vec::new();
        let mut shed_here = 0u64;
        let mut items = Vec::with_capacity(batch.requests.len());
        for (meta, (input, responder)) in batch.requests {
            let position = items.len();
            let predicted = start + tfill + position as u64 * tsteady;
            let estimate = ServiceEstimate {
                batch_start_ns: start,
                position,
                fill_latency_ns: tfill,
                steady_interval_ns: tsteady,
                predicted_completion_ns: predicted,
            };
            let admitted = part.policy.admit(&meta, &estimate);
            let completion_ns = if admitted { predicted } else { start };
            let timing = RequestTiming {
                arrival_ns: meta.arrival_ns,
                dispatch_ns: start,
                completion_ns,
            };
            let st = &mut self.clients[meta.client];
            if st.mode == ClientMode::Closed {
                st.in_flight -= 1;
                st.watermark_ns = st.watermark_ns.max(completion_ns);
            }
            self.out.last_completion_ns = self.out.last_completion_ns.max(completion_ns);
            let tenant = &mut self.tenants[meta.tenant];
            if tracing {
                self.tele.record(
                    p,
                    TraceEvent::new("req", "request", Phase::AsyncBegin, meta.arrival_ns)
                        .track(TRACE_PID_SCHED, meta.tenant as u32)
                        .with_id(trace_req_id(&meta))
                        .arg("network", ArgValue::U64(meta.network as u64)),
                );
            }
            if admitted {
                self.out.served += 1;
                part.served += 1;
                tenant.served += 1;
                part.metrics.served_by_tenant[meta.tenant].add(1);
                self.out.served_by_tier[tier.index()] += 1;
                part.served_by_tier[tier.index()] += 1;
                part.metrics.served_by_tier[tier.index()].add(1);
                self.out.queue_wait.record(timing.queue_wait_ns());
                self.out.execute.record(timing.execute_ns());
                self.out.total.record(timing.total_ns());
                tenant.queue_wait.record(timing.queue_wait_ns());
                tenant.total.record(timing.total_ns());
                part.total.record(timing.total_ns());
                if self.slos[meta.tenant].is_some_and(|slo| timing.total_ns() > slo) {
                    part.metrics.slo_miss_by_tenant[meta.tenant].add(1);
                }
                if let Some(obs) = part.obs.as_mut() {
                    obs.scraper.record_latency(timing.total_ns());
                }
                if tracing {
                    let id = trace_req_id(&meta);
                    self.tele.record(
                        p,
                        TraceEvent::new("admit", "request", Phase::AsyncInstant, start)
                            .track(TRACE_PID_SCHED, meta.tenant as u32)
                            .with_id(id)
                            .arg("position", ArgValue::U64(position as u64))
                            .arg("replica", ArgValue::U64(r as u64)),
                    );
                    // Per-request hardware charge: one image's exact
                    // counters, so summing the `e` events of every
                    // served request reproduces the aggregate figures.
                    self.tele.record(
                        p,
                        TraceEvent::new("req", "request", Phase::AsyncEnd, completion_ns)
                            .track(TRACE_PID_SCHED, meta.tenant as u32)
                            .with_id(id)
                            .arg("xbar_activations", ArgValue::U64(hw_t.crossbar_activations))
                            .arg("adc_quantizations", ArgValue::U64(hw_t.adc_quantizations))
                            .arg("energy_fj", ArgValue::U64(hw_t.energy_fj)),
                    );
                }
                if self.functional {
                    inputs.push(input.expect("functional servers always carry inputs"));
                }
                items.push(ExecItem {
                    meta,
                    timing,
                    responder,
                });
            } else {
                self.out.shed += 1;
                part.shed += 1;
                tenant.shed += 1;
                shed_here += 1;
                part.metrics.shed_by_tenant[meta.tenant].add(1);
                // Attribute the denial to its tenant so the autoscaler's
                // next ScaleEvent can name the worst offender.
                if let Some(scaler) = part.autoscaler.as_mut() {
                    scaler.observe_shed(meta.tenant, 1);
                }
                if let Some(ctl) = part.brownout.as_mut() {
                    ctl.observe_shed(1);
                }
                self.out.shed_wait.record(timing.queue_wait_ns());
                let reason = part.policy.shed_reason(&meta, &estimate);
                self.out.sheds_by_reason[reason.index()] += 1;
                part.metrics.shed_by_reason[reason.index()].add(1);
                if tracing {
                    let id = trace_req_id(&meta);
                    self.tele.record(
                        p,
                        TraceEvent::new("shed", "request", Phase::AsyncInstant, start)
                            .track(TRACE_PID_SCHED, meta.tenant as u32)
                            .with_id(id)
                            .arg("reason", ArgValue::Str(reason.as_str())),
                    );
                    self.tele.record(
                        p,
                        TraceEvent::new("req", "request", Phase::AsyncEnd, completion_ns)
                            .track(TRACE_PID_SCHED, meta.tenant as u32)
                            .with_id(id)
                            .arg("outcome", ArgValue::Str("shed")),
                    );
                }
                let _ = responder.send(Completion {
                    meta,
                    timing,
                    outcome: Outcome::Shed,
                });
            }
        }
        let b = items.len() as u64;
        let makespan = if b == 0 {
            0 // fully shed: zero chip time, replica stays free
        } else {
            let makespan = tfill + (b - 1) * tsteady;
            part.free_at[r] = start + makespan;
            self.out.modeled_busy_ns += makespan;
            part.modeled_busy_ns += makespan;
            self.out.batches += 1;
            part.batches += 1;
            self.out.batch_sizes.record(b);
            let (rb, ri, rbusy) = &mut part.per_replica[r];
            *rb += 1;
            *ri += b;
            *rbusy += makespan;
            // The partition-level hardware charge: exactly `hw × b` at
            // the batch's tier, the same per-image integers the
            // request-level `e` events carry.
            let hwb = hw_t.scaled(b);
            part.metrics.images.add(b);
            part.metrics.xbar_activations.add(hwb.crossbar_activations);
            part.metrics.bit_phase_sweeps.add(hwb.bit_phase_sweeps);
            part.metrics.plane_row_adds.add(hwb.plane_row_adds);
            part.metrics.adc_quantizations.add(hwb.adc_quantizations);
            part.metrics.energy_fj.add(hwb.energy_fj);
            if tracing {
                let pid = trace_pid(p);
                let mut ev = TraceEvent::new("batch", "exec", Phase::Complete, start)
                    .track(pid, trace_tid_replica(r))
                    .dur(makespan)
                    .arg("size", ArgValue::U64(b))
                    .arg("trigger", ArgValue::Str(trigger))
                    .arg("shed", ArgValue::U64(shed_here))
                    .arg("energy_fj", ArgValue::U64(hwb.energy_fj));
                // The tier arg rides only on brownout-armed sessions so
                // earlier committed traces stay byte-identical.
                if part.brownout.is_some() {
                    ev = ev.arg("tier", ArgValue::Str(tier.name()));
                }
                self.tele.record(p, ev);
                // Analytic per-stage execute spans under the pipelined
                // schedule the makespan charges: stage k first starts at
                // the latency prefix and last finishes one bottleneck
                // interval per extra image later. Stage latencies scale
                // with the tier's live phase ratio, like the makespan.
                let mut prefix = 0.0f64;
                let mut runmax = 0.0f64;
                for (k, &l) in part.stage_lat.iter().enumerate() {
                    let l = l * ratio;
                    runmax = runmax.max(l);
                    let begin = start + prefix.round() as u64;
                    let end = start + (prefix + l + (b - 1) as f64 * runmax).round() as u64;
                    prefix += l;
                    self.tele.record(
                        p,
                        TraceEvent::new("stage", "exec", Phase::Complete, begin)
                            .track(pid, trace_tid_stage(r, k))
                            .dur(end.saturating_sub(begin))
                            .arg("stage", ArgValue::U64(k as u64))
                            .arg("images", ArgValue::U64(b)),
                    );
                }
            }
            if let Err(failed) = part.replica_tx[r].send(ExecBatch {
                inputs,
                items,
                tier,
            }) {
                // The worker is gone (cannot happen short of a panic);
                // answer the batch ourselves so closed-loop clients
                // never hang.
                self.out.send_failures += b;
                for item in failed.0.items {
                    let _ = item.responder.send(Completion {
                        meta: item.meta,
                        timing: item.timing,
                        outcome: Outcome::Failed,
                    });
                }
            }
            makespan
        };
        // Autoscaling: every dispatch is a decision instant on the
        // virtual clock. Batches dispatch eagerly (a closed batch is
        // committed to a replica immediately, starting whenever that
        // replica frees up), so queue pressure lives in the replica
        // `free_at` ledger, not the former. The queue-depth signal is
        // therefore the modeled backlog ahead of the newest dispatch,
        // in units of full-batch makespans: how many max-size batches
        // the least-loaded active replica still has to finish before
        // work closing *now* could start. Every input is a
        // deterministic function of the partition's dispatch sequence,
        // which keeps scale decisions trace-reproducible. Sheds feed
        // the saturation trigger: admission control caps the queue
        // near its lag bound, so a shedding partition signals overload
        // through utilization + shed count, not backlog.
        let effective = part.active;
        self.autoscale_tick(p, batch.close_ns, makespan, effective);
        self.brownout_tick(p, batch.close_ns, effective);
        // Chaos-free runs route to every active replica.
        let routable = self.parts[p].active;
        self.observe_tick(p, batch.close_ns, routable);
    }

    /// The per-dispatch autoscaling decision instant. `effective` is
    /// the replica count the decision sees — the full active pool in
    /// normal runs, the *routable* pool under a fault plan (so
    /// quarantined capacity reads as lost and produces scale-up
    /// pressure). The decision's delta is applied to the provisioned
    /// `active` count.
    fn autoscale_tick(&mut self, p: usize, close_ns: u64, makespan: u64, effective: usize) {
        let part = &mut self.parts[p];
        let Some(scaler) = part.autoscaler.as_mut() else {
            return;
        };
        scaler.observe_busy(makespan);
        if !scaler.due(close_ns) {
            return;
        }
        let horizon = part.free_at[..part.active]
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        let batch_ns =
            (part.fill_ns + (part.former.max_batch() as u64 - 1) * part.steady_ns).max(1);
        let backlog_ns = horizon.saturating_sub(close_ns);
        let queue = (backlog_ns / batch_ns) as usize;
        if let Some(event) = scaler.decide(close_ns, queue, backlog_ns, effective.max(1)) {
            let delta = event.to as i64 - event.from as i64;
            part.active = (part.active as i64 + delta).clamp(1, part.free_at.len() as i64) as usize;
            part.metrics.replicas_active.set(part.active as i64);
            part.scale_events.push(event);
            if self.tele.is_enabled() {
                self.tele.record(
                    p,
                    TraceEvent::new("scale", "autoscale", Phase::Instant, event.at_ns)
                        .track(trace_pid(p), TRACE_TID_AUTOSCALE)
                        .arg("from", ArgValue::U64(event.from as u64))
                        .arg("to", ArgValue::U64(event.to as u64))
                        .arg("queue", ArgValue::U64(event.queue_depth as u64))
                        .arg("utilization", ArgValue::F64(event.utilization))
                        .arg("shed_in_window", ArgValue::U64(event.shed_in_window))
                        .arg(
                            "top_shed_tenant",
                            ArgValue::I64(event.top_shed_tenant.map_or(-1, |t| t as i64)),
                        ),
                );
            }
        }
    }

    /// The per-dispatch brownout decision instant, mirroring
    /// [`Scheduler::autoscale_tick`]: the queue-depth signal is the
    /// modeled backlog ahead of the newest dispatch in **full-precision**
    /// full-batch makespans (a stable unit across tiers — measuring
    /// backlog in the degraded tier's shorter makespans would make the
    /// pressure signal shrink exactly when the fleet degrades, hiding
    /// the overload it is reacting to). `routable` is the replica pool
    /// the dispatch could route to; the gap to the provisioned active
    /// pool is the health plane's lost capacity.
    fn brownout_tick(&mut self, p: usize, close_ns: u64, routable: usize) {
        let part = &mut self.parts[p];
        let provisioned = part.active;
        let Some(ctl) = part.brownout.as_mut() else {
            return;
        };
        if !ctl.due(close_ns) {
            return;
        }
        let horizon = part.free_at[..part.active]
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        let batch_ns =
            (part.fill_ns + (part.former.max_batch() as u64 - 1) * part.steady_ns).max(1);
        let backlog_ns = horizon.saturating_sub(close_ns);
        let queue = (backlog_ns / batch_ns) as usize;
        if let Some(event) = ctl.decide(close_ns, queue, backlog_ns, routable.max(1), provisioned) {
            part.metrics.precision_tier.set(event.to.index() as i64);
            part.brownout_events.push(event);
            if self.tele.is_enabled() {
                self.tele.record(
                    p,
                    TraceEvent::new("brownout", "autoscale", Phase::Instant, event.at_ns)
                        .track(trace_pid(p), TRACE_TID_AUTOSCALE)
                        .arg("from", ArgValue::Str(event.from.name()))
                        .arg("to", ArgValue::Str(event.to.name()))
                        .arg("queue", ArgValue::U64(event.queue_depth as u64))
                        .arg("shed_in_window", ArgValue::U64(event.shed_in_window))
                        .arg("replicas_lost", ArgValue::U64(event.replicas_lost as u64)),
                );
            }
        }
    }

    /// The per-dispatch scrape-pump instant: refresh the sampled
    /// gauges, advance partition `p`'s scraper to `now_ns` (taking one
    /// registry snapshot per crossed window boundary), and run the
    /// alert engine over every window that closed. Every input is a
    /// deterministic function of the partition's dispatch sequence, so
    /// the scrape series and alert timeline replay byte-identically —
    /// the same argument the autoscale and brownout ticks rest on.
    fn observe_tick(&mut self, p: usize, now_ns: u64, routable: usize) {
        let part = &mut self.parts[p];
        if part.obs.is_none() {
            return;
        }
        let horizon = part.free_at[..part.active]
            .iter()
            .copied()
            .min()
            .unwrap_or(0);
        part.metrics
            .backlog_ns
            .set(horizon.saturating_sub(now_ns) as i64);
        part.metrics.replicas_routable.set(routable as i64);
        let obs = part.obs.as_mut().expect("checked non-None above");
        let windows = obs.scraper.pump(now_ns);
        obs.ingest(&windows);
    }

    /// End-of-session scrape flush: close the final (possibly partial)
    /// window at the last virtual completion — after
    /// [`Scheduler::finalize_chaos`], so end-of-plan repairs and fault
    /// counters land in it — run the alert engine over the tail, and
    /// publish every series (with its conservation ledger) for the
    /// JSON exports.
    fn flush_observability(&mut self) {
        let end = self.out.last_completion_ns;
        for p in 0..self.parts.len() {
            let part = &mut self.parts[p];
            let Some(obs) = part.obs.as_mut() else {
                continue;
            };
            let horizon = part.free_at[..part.active]
                .iter()
                .copied()
                .min()
                .unwrap_or(0);
            part.metrics
                .backlog_ns
                .set(horizon.saturating_sub(end) as i64);
            let windows = obs.scraper.finish(end);
            obs.ingest(&windows);
            self.tele.publish_timeseries(obs.scraper.export());
        }
    }

    // ---- Fault-plan (chaos) serving path ---------------------------
    //
    // Mirrors `dispatch` but interleaves the armed `FaultPlan` with the
    // batch stream on the virtual clock: plan events, canary probes,
    // and repair completions are pumped in virtual-time order up to
    // each batch close; a commit-time lookahead then asks whether a
    // planned crash truncates the batch being committed (completions
    // are stamped at dispatch, so the crash must be resolved *now*).
    // Requests orphaned by a crash are re-queued, hedged, or shed with
    // `ShedReason::ReplicaLost` — never silently dropped. Everything is
    // a pure function of (trace, plan, seed): no host time, no iterated
    // hash maps, stable tie-breaks throughout.

    fn dispatch_chaos(&mut self, p: usize, batch: FormedBatch<Payload>) {
        let mut chaos = self
            .chaos
            .take()
            .expect("dispatch_chaos runs only with chaos state armed");
        self.pump_chaos(&mut chaos, p, batch.close_ns, true);
        let trigger = batch.trigger.as_str();
        let makespan = self.commit_chaos(&mut chaos, p, batch.requests, batch.close_ns, trigger);
        let effective = chaos.parts[p].routable(self.parts[p].active);
        self.chaos = Some(chaos);
        self.autoscale_tick(p, batch.close_ns, makespan, effective);
        self.brownout_tick(p, batch.close_ns, effective);
        // Routable capacity after the ticks (autoscaling may have moved
        // `active`), so the scraped gauge matches what the next
        // dispatch could actually route to.
        let routable = self.chaos.as_ref().map_or(self.parts[p].active, |c| {
            c.parts[p].routable(self.parts[p].active)
        });
        self.observe_tick(p, batch.close_ns, routable);
    }

    /// Processes plan events, canary probes (unless `probes` is off —
    /// the end-of-session flush skips them), and repair completions for
    /// partition `p` in virtual-time order up to `now`. Ties process
    /// repairs first, then plan events, then probes, with replica/plan
    /// index as the final tie-break.
    fn pump_chaos(&mut self, chaos: &mut ChaosState, p: usize, now: u64, probes: bool) {
        loop {
            let pc = &chaos.parts[p];
            // (instant, class, index): class 0 repair, 1 event, 2 probe.
            let mut best: Option<(u64, u8, usize)> = None;
            let mut offer = |cand: Option<(u64, u8, usize)>| {
                if let Some((t, c, i)) = cand {
                    if t <= now && best.is_none_or(|b| (t, c, i) < (b.0, b.1, b.2)) {
                        best = Some((t, c, i));
                    }
                }
            };
            offer(
                pc.replicas
                    .iter()
                    .enumerate()
                    .filter_map(|(r, rc)| rc.repair_until_ns.map(|t| (t, 0, r)))
                    .min(),
            );
            offer(pc.next_event_at(now).map(|i| (pc.events[i].1.at_ns, 1, i)));
            if probes {
                offer(
                    pc.replicas
                        .iter()
                        .enumerate()
                        .map(|(r, rc)| (rc.next_probe_ns, 2, r))
                        .min(),
                );
            }
            match best {
                Some((t, 0, r)) => self.complete_repair(chaos, p, r, t),
                Some((_, 1, i)) => self.apply_plan_event(chaos, p, i),
                Some((t, _, r)) => self.probe_replica(chaos, p, r, t),
                None => break,
            }
        }
    }

    /// Applies the plan event at `events[i]` (already known due) to its
    /// partition, emits its `fault` instant, and advances the cursor.
    fn apply_plan_event(&mut self, chaos: &mut ChaosState, p: usize, i: usize) {
        let (event_seed, event) = chaos.parts[p].events[i];
        chaos.parts[p].consumed[i] = true;
        let pc = &mut chaos.parts[p];
        while pc.cursor < pc.events.len() && pc.consumed[pc.cursor] {
            pc.cursor += 1;
        }
        self.count_fault(p, &event, event.replica.min(pc.replicas.len() - 1));
        match event.kind {
            FaultKind::Crash => {
                let r = event.replica.min(chaos.parts[p].replicas.len() - 1);
                self.quarantine_replica(chaos, p, r, event.at_ns, None);
            }
            FaultKind::Stall { ns } => {
                let part = &mut self.parts[p];
                let r = event.replica.min(part.free_at.len() - 1);
                part.free_at[r] = part.free_at[r].max(event.at_ns) + ns;
            }
            FaultKind::Drift { elapsed_s } => {
                let nu = chaos.health.drift_nu;
                for rc in &mut chaos.parts[p].replicas {
                    let aged = DriftModel::after(nu, rc.witness.drift().elapsed_s + elapsed_s);
                    rc.witness.advance_drift(aged);
                }
            }
            FaultKind::Strikes { cells } => {
                let r = event.replica.min(chaos.parts[p].replicas.len() - 1);
                chaos.parts[p].replicas[r].witness.strike(cells, event_seed);
            }
        }
    }

    /// Fault-injection bookkeeping shared by the pump and the crash
    /// lookahead: the session counter, the metrics plane, and the
    /// replica-track `fault` instant.
    fn count_fault(&mut self, p: usize, event: &FaultEvent, r: usize) {
        self.out.faults_injected += 1;
        self.parts[p].metrics.faults_injected.add(1);
        if self.tele.is_enabled() {
            self.tele.record(
                p,
                TraceEvent::new("fault", "fault", Phase::Instant, event.at_ns)
                    .track(trace_pid(p), trace_tid_replica(r))
                    .arg("kind", ArgValue::Str(event.kind.as_str()))
                    .arg("replica", ArgValue::U64(r as u64)),
            );
        }
    }

    /// Pulls replica `r` from routing at instant `t` and schedules its
    /// re-programming: `Quarantined` is passed through instantly (repair
    /// capacity is not modeled), the modeled outage comes from
    /// `CostModel::reprogram_cost`, and `free_at` is pushed to the
    /// repair completion so backlog math sees the outage too.
    fn quarantine_replica(
        &mut self,
        chaos: &mut ChaosState,
        p: usize,
        r: usize,
        t: u64,
        deviation: Option<f64>,
    ) {
        let begin = self.parts[p].free_at[r].max(t);
        let until = begin + chaos.reprogram_ns;
        let rc = &mut chaos.parts[p].replicas[r];
        rc.state = ReplicaState::Quarantined;
        rc.repair_until_ns = Some(until.max(rc.repair_until_ns.unwrap_or(0)));
        rc.state = ReplicaState::Reprogramming;
        self.parts[p].free_at[r] = until;
        self.out.reprograms += 1;
        self.parts[p].metrics.reprograms.add(1);
        if self.tele.is_enabled() {
            let mut quarantine = TraceEvent::new("quarantine", "health", Phase::Instant, t)
                .track(trace_pid(p), trace_tid_replica(r))
                .arg("replica", ArgValue::U64(r as u64));
            if let Some(dev) = deviation {
                quarantine = quarantine.arg("deviation", ArgValue::F64(dev));
            }
            self.tele.record(p, quarantine);
            self.tele.record(
                p,
                TraceEvent::new("reprogram", "health", Phase::Complete, begin)
                    .track(trace_pid(p), trace_tid_replica(r))
                    .dur(chaos.reprogram_ns)
                    .arg("replica", ArgValue::U64(r as u64))
                    .arg("cells", ArgValue::U64(chaos.health.reprogram_cells))
                    .arg("energy_pj", ArgValue::F64(chaos.reprogram_energy_pj)),
            );
        }
    }

    /// Repair completion: fresh witness, back to `Active`.
    fn complete_repair(&mut self, chaos: &mut ChaosState, p: usize, r: usize, _t: u64) {
        let rc = &mut chaos.parts[p].replicas[r];
        rc.witness.reprogram();
        rc.state = ReplicaState::Active;
        rc.repair_until_ns = None;
    }

    /// One canary probe of replica `r` at instant `t`: replay the golden
    /// probe input through the witness and act on the deviation.
    fn probe_replica(&mut self, chaos: &mut ChaosState, p: usize, r: usize, t: u64) {
        let interval = chaos.health.probe_interval_ns.max(1);
        let rc = &mut chaos.parts[p].replicas[r];
        rc.next_probe_ns = t + interval;
        if !rc.state.routable() {
            return; // being repaired; nothing to probe
        }
        let dev = rc.witness.deviation();
        let quarantine = dev >= chaos.health.quarantine_deviation;
        if !quarantine && dev >= chaos.health.warn_deviation && rc.state == ReplicaState::Active {
            rc.state = ReplicaState::Degraded;
        }
        let state = if quarantine {
            ReplicaState::Quarantined
        } else {
            rc.state
        };
        if self.tele.is_enabled() {
            self.tele.record(
                p,
                TraceEvent::new("probe", "health", Phase::Instant, t)
                    .track(trace_pid(p), trace_tid_replica(r))
                    .arg("deviation", ArgValue::F64(dev))
                    .arg("state", ArgValue::Str(state.as_str())),
            );
        }
        if quarantine {
            self.quarantine_replica(chaos, p, r, t, Some(dev));
        }
    }

    /// Commit-time crash lookahead: if an unconsumed planned crash on
    /// replica `r` fires at or before `end`, consume it, count it, and
    /// start the repair. Returns the crash instant.
    fn crash_within(
        &mut self,
        chaos: &mut ChaosState,
        p: usize,
        r: usize,
        end: u64,
    ) -> Option<u64> {
        let pc = &chaos.parts[p];
        let mut hit = None;
        for i in pc.cursor..pc.events.len() {
            if pc.consumed[i] {
                continue;
            }
            let (_, e) = pc.events[i];
            if e.at_ns > end {
                break;
            }
            if e.kind == FaultKind::Crash && e.replica.min(pc.replicas.len() - 1) == r {
                hit = Some(i);
                break;
            }
        }
        let i = hit?;
        let event = chaos.parts[p].events[i].1;
        chaos.parts[p].consumed[i] = true;
        let pc = &mut chaos.parts[p];
        while pc.cursor < pc.events.len() && pc.consumed[pc.cursor] {
            pc.cursor += 1;
        }
        self.count_fault(p, &event, r);
        self.quarantine_replica(chaos, p, r, event.at_ns, None);
        Some(event.at_ns)
    }

    /// The chaos analogue of the per-batch body of `dispatch`: admits,
    /// serves, and sheds exactly like the normal path, plus crash
    /// truncation. Returns the busy time charged (for the autoscaler).
    #[allow(clippy::too_many_lines)]
    fn commit_chaos(
        &mut self,
        chaos: &mut ChaosState,
        p: usize,
        requests: Vec<(RequestMeta, Payload)>,
        close_ns: u64,
        trigger: &'static str,
    ) -> u64 {
        let tracing = self.tele.is_enabled();
        // Batch tier: controller tier capped by every member tenant's
        // precision floor — same rule as the chaos-free path.
        let ctl = self.parts[p]
            .brownout
            .as_ref()
            .map_or(ExecPrecision::Full, BrownoutController::tier);
        let tier = requests
            .iter()
            .fold(ctl, |t, (meta, _)| t.min(self.floors[meta.tenant]));
        let part = &mut self.parts[p];
        // Earliest-free *routable* active replica; when every active
        // replica is down, fall back to the earliest-repaired one so the
        // batch (and the virtual clock) still makes progress.
        let pc = &chaos.parts[p];
        let pick = |routable_only: bool| {
            part.free_at[..part.active]
                .iter()
                .enumerate()
                .filter(|(i, _)| !routable_only || pc.replicas[*i].state.routable())
                .min_by_key(|(i, &t)| (t, *i))
                .map(|(i, _)| i)
        };
        let r = pick(true)
            .or_else(|| pick(false))
            .expect("a partition always has at least one active replica");
        let start = close_ns.max(part.free_at[r]);
        let fill = part.tier_fill_ns[tier.index()];
        let steady = part.tier_steady_ns[tier.index()];
        let hw_t = part.hw_by_tier[tier.index()];
        let ratio = part.tier_ratio[tier.index()];

        // Pass 1 — admission, exactly like the normal path. Sheds are
        // resolved inline; admitted requests are stashed with their
        // stamped completion for crash partitioning.
        struct Admitted {
            meta: RequestMeta,
            input: Option<FeatureMap<i64>>,
            responder: Sender<Completion>,
            predicted: u64,
            position: usize,
        }
        let mut admitted: Vec<Admitted> = Vec::with_capacity(requests.len());
        let mut shed_here = 0u64;
        for (meta, (input, responder)) in requests {
            let position = admitted.len();
            let predicted = start + fill + position as u64 * steady;
            let estimate = ServiceEstimate {
                batch_start_ns: start,
                position,
                fill_latency_ns: fill,
                steady_interval_ns: steady,
                predicted_completion_ns: predicted,
            };
            let ok = part.policy.admit(&meta, &estimate);
            // One lifecycle span per request across all of its
            // dispatches: a re-queued victim is already in the attempts
            // ledger and its span is still open.
            if tracing && !chaos.attempts.contains_key(&(meta.client, meta.seq)) {
                self.tele.record(
                    p,
                    TraceEvent::new("req", "request", Phase::AsyncBegin, meta.arrival_ns)
                        .track(TRACE_PID_SCHED, meta.tenant as u32)
                        .with_id(trace_req_id(&meta))
                        .arg("network", ArgValue::U64(meta.network as u64)),
                );
            }
            if ok {
                admitted.push(Admitted {
                    meta,
                    input,
                    responder,
                    predicted,
                    position,
                });
            } else {
                let timing = RequestTiming {
                    arrival_ns: meta.arrival_ns,
                    dispatch_ns: start,
                    completion_ns: start,
                };
                let st = &mut self.clients[meta.client];
                if st.mode == ClientMode::Closed {
                    st.in_flight -= 1;
                    st.watermark_ns = st.watermark_ns.max(start);
                }
                self.out.last_completion_ns = self.out.last_completion_ns.max(start);
                let tenant = &mut self.tenants[meta.tenant];
                self.out.shed += 1;
                part.shed += 1;
                tenant.shed += 1;
                shed_here += 1;
                part.metrics.shed_by_tenant[meta.tenant].add(1);
                if let Some(scaler) = part.autoscaler.as_mut() {
                    scaler.observe_shed(meta.tenant, 1);
                }
                if let Some(ctl) = part.brownout.as_mut() {
                    ctl.observe_shed(1);
                }
                self.out.shed_wait.record(timing.queue_wait_ns());
                let reason = part.policy.shed_reason(&meta, &estimate);
                self.out.sheds_by_reason[reason.index()] += 1;
                part.metrics.shed_by_reason[reason.index()].add(1);
                if tracing {
                    let id = trace_req_id(&meta);
                    self.tele.record(
                        p,
                        TraceEvent::new("shed", "request", Phase::AsyncInstant, start)
                            .track(TRACE_PID_SCHED, meta.tenant as u32)
                            .with_id(id)
                            .arg("reason", ArgValue::Str(reason.as_str())),
                    );
                    self.tele.record(
                        p,
                        TraceEvent::new("req", "request", Phase::AsyncEnd, start)
                            .track(TRACE_PID_SCHED, meta.tenant as u32)
                            .with_id(id)
                            .arg("outcome", ArgValue::Str("shed")),
                    );
                }
                let _ = responder.send(Completion {
                    meta,
                    timing,
                    outcome: Outcome::Shed,
                });
            }
        }

        // Pass 2 — does a planned crash truncate this batch? Survivors
        // are the admitted requests stamped at or before the crash.
        let b_all = admitted.len() as u64;
        let end = if b_all == 0 {
            start
        } else {
            start + fill + (b_all - 1) * steady
        };
        let crash = if b_all == 0 {
            None
        } else {
            self.crash_within(chaos, p, r, end)
        };
        let mut inputs = Vec::new();
        let mut items = Vec::with_capacity(admitted.len());
        let mut victims = Vec::new();
        for a in admitted {
            if crash.is_some_and(|t| a.predicted > t) {
                victims.push(a);
                continue;
            }
            let timing = RequestTiming {
                arrival_ns: a.meta.arrival_ns,
                dispatch_ns: start,
                completion_ns: a.predicted,
            };
            let st = &mut self.clients[a.meta.client];
            if st.mode == ClientMode::Closed {
                st.in_flight -= 1;
                st.watermark_ns = st.watermark_ns.max(a.predicted);
            }
            self.out.last_completion_ns = self.out.last_completion_ns.max(a.predicted);
            let part = &mut self.parts[p];
            let tenant = &mut self.tenants[a.meta.tenant];
            self.out.served += 1;
            part.served += 1;
            tenant.served += 1;
            part.metrics.served_by_tenant[a.meta.tenant].add(1);
            self.out.served_by_tier[tier.index()] += 1;
            part.served_by_tier[tier.index()] += 1;
            part.metrics.served_by_tier[tier.index()].add(1);
            self.out.queue_wait.record(timing.queue_wait_ns());
            self.out.execute.record(timing.execute_ns());
            self.out.total.record(timing.total_ns());
            tenant.queue_wait.record(timing.queue_wait_ns());
            tenant.total.record(timing.total_ns());
            part.total.record(timing.total_ns());
            if self.slos[a.meta.tenant].is_some_and(|slo| timing.total_ns() > slo) {
                part.metrics.slo_miss_by_tenant[a.meta.tenant].add(1);
            }
            if let Some(obs) = part.obs.as_mut() {
                obs.scraper.record_latency(timing.total_ns());
            }
            if tracing {
                let id = trace_req_id(&a.meta);
                self.tele.record(
                    p,
                    TraceEvent::new("admit", "request", Phase::AsyncInstant, start)
                        .track(TRACE_PID_SCHED, a.meta.tenant as u32)
                        .with_id(id)
                        .arg("position", ArgValue::U64(a.position as u64))
                        .arg("replica", ArgValue::U64(r as u64)),
                );
                self.tele.record(
                    p,
                    TraceEvent::new("req", "request", Phase::AsyncEnd, a.predicted)
                        .track(TRACE_PID_SCHED, a.meta.tenant as u32)
                        .with_id(id)
                        .arg("xbar_activations", ArgValue::U64(hw_t.crossbar_activations))
                        .arg("adc_quantizations", ArgValue::U64(hw_t.adc_quantizations))
                        .arg("energy_fj", ArgValue::U64(hw_t.energy_fj)),
                );
            }
            if self.functional {
                inputs.push(a.input.expect("functional servers always carry inputs"));
            }
            items.push(ExecItem {
                meta: a.meta,
                timing,
                responder: a.responder,
            });
        }

        // Pass 3 — charge and ship the surviving batch. The scheduler's
        // busy charge is `fill + (s-1)·steady` for the s survivors —
        // exactly what the worker re-derives from the survivor-only
        // batch — so `ServerReport::reconciles` holds under chaos.
        // Availability is governed separately: a crashed replica's
        // `free_at` was already pushed to its repair completion.
        let s = items.len() as u64;
        let makespan = if s == 0 {
            0
        } else {
            let makespan = fill + (s - 1) * steady;
            let part = &mut self.parts[p];
            if crash.is_none() {
                part.free_at[r] = start + makespan;
            }
            self.out.modeled_busy_ns += makespan;
            part.modeled_busy_ns += makespan;
            self.out.batches += 1;
            part.batches += 1;
            self.out.batch_sizes.record(s);
            let (rb, ri, rbusy) = &mut part.per_replica[r];
            *rb += 1;
            *ri += s;
            *rbusy += makespan;
            let hwb = hw_t.scaled(s);
            part.metrics.images.add(s);
            part.metrics.xbar_activations.add(hwb.crossbar_activations);
            part.metrics.bit_phase_sweeps.add(hwb.bit_phase_sweeps);
            part.metrics.plane_row_adds.add(hwb.plane_row_adds);
            part.metrics.adc_quantizations.add(hwb.adc_quantizations);
            part.metrics.energy_fj.add(hwb.energy_fj);
            if tracing {
                let pid = trace_pid(p);
                let mut ev = TraceEvent::new("batch", "exec", Phase::Complete, start)
                    .track(pid, trace_tid_replica(r))
                    .dur(makespan)
                    .arg("size", ArgValue::U64(s))
                    .arg("trigger", ArgValue::Str(trigger))
                    .arg("shed", ArgValue::U64(shed_here))
                    .arg("lost", ArgValue::U64(victims.len() as u64))
                    .arg("energy_fj", ArgValue::U64(hwb.energy_fj));
                if part.brownout.is_some() {
                    ev = ev.arg("tier", ArgValue::Str(tier.name()));
                }
                self.tele.record(p, ev);
                let mut prefix = 0.0f64;
                let mut runmax = 0.0f64;
                let stage_lat = part.stage_lat.clone();
                for (k, &l) in stage_lat.iter().enumerate() {
                    let l = l * ratio;
                    runmax = runmax.max(l);
                    let begin = start + prefix.round() as u64;
                    let end = start + (prefix + l + (s - 1) as f64 * runmax).round() as u64;
                    prefix += l;
                    self.tele.record(
                        p,
                        TraceEvent::new("stage", "exec", Phase::Complete, begin)
                            .track(pid, trace_tid_stage(r, k))
                            .dur(end.saturating_sub(begin))
                            .arg("stage", ArgValue::U64(k as u64))
                            .arg("images", ArgValue::U64(s)),
                    );
                }
            }
            let part = &mut self.parts[p];
            if let Err(failed) = part.replica_tx[r].send(ExecBatch {
                inputs,
                items,
                tier,
            }) {
                self.out.send_failures += s;
                for item in failed.0.items {
                    let _ = item.responder.send(Completion {
                        meta: item.meta,
                        timing: item.timing,
                        outcome: Outcome::Failed,
                    });
                }
            }
            makespan
        };

        // Pass 4 — resolve every orphan: retry, hedge, or shed, never
        // lose. The crash instant is the orphan's new "now".
        if let Some(t) = crash {
            for v in victims {
                if tracing {
                    self.tele.record(
                        p,
                        TraceEvent::new("fault", "request", Phase::AsyncInstant, t)
                            .track(TRACE_PID_SCHED, v.meta.tenant as u32)
                            .with_id(trace_req_id(&v.meta))
                            .arg("kind", ArgValue::Str("replica-crash"))
                            .arg("replica", ArgValue::U64(r as u64)),
                    );
                }
                self.resolve_victim(chaos, p, v.meta, v.input, v.responder, t);
            }
        }
        makespan
    }

    /// Re-serves or sheds one request orphaned at instant `now` by its
    /// replica's crash: deadline-free orphans re-queue into the former
    /// (bounded by the retry budget), deadline-bound ones hedge to the
    /// earliest routable sibling when the pipeline fill still fits the
    /// budget, and everything else sheds with
    /// [`ShedReason::ReplicaLost`].
    fn resolve_victim(
        &mut self,
        chaos: &mut ChaosState,
        p: usize,
        meta: RequestMeta,
        input: Option<FeatureMap<i64>>,
        responder: Sender<Completion>,
        now: u64,
    ) {
        let mut now = now;
        loop {
            let attempts = chaos.attempts.entry((meta.client, meta.seq)).or_insert(0);
            if *attempts >= chaos.health.max_retries {
                self.shed_lost(p, meta, &responder, now);
                return;
            }
            *attempts += 1;
            let Some(deadline) = meta.deadline_ns else {
                self.out.retries += 1;
                self.parts[p].metrics.retries.add(1);
                let mut requeued = meta;
                requeued.arrival_ns = now;
                self.parts[p].former.push(requeued, (input, responder));
                return;
            };
            let part = &self.parts[p];
            let pc = &chaos.parts[p];
            let sibling = part.free_at[..part.active]
                .iter()
                .enumerate()
                .filter(|(i, _)| pc.replicas[*i].state.routable())
                .min_by_key(|(i, &t)| (t, *i))
                .map(|(i, _)| i);
            let Some(r2) = sibling else {
                self.shed_lost(p, meta, &responder, now);
                return;
            };
            let hstart = now.max(self.parts[p].free_at[r2]);
            let predicted = hstart + self.parts[p].fill_ns;
            if predicted > deadline {
                self.shed_lost(p, meta, &responder, now);
                return;
            }
            self.out.hedges += 1;
            self.parts[p].metrics.hedges.add(1);
            if let Some(t) = self.crash_within(chaos, p, r2, predicted) {
                if predicted > t {
                    // The hedge replica dies too — go around again.
                    if self.tele.is_enabled() {
                        self.tele.record(
                            p,
                            TraceEvent::new("fault", "request", Phase::AsyncInstant, t)
                                .track(TRACE_PID_SCHED, meta.tenant as u32)
                                .with_id(trace_req_id(&meta))
                                .arg("kind", ArgValue::Str("replica-crash"))
                                .arg("replica", ArgValue::U64(r2 as u64)),
                        );
                    }
                    now = t;
                    continue;
                }
            }
            self.serve_hedge(p, r2, meta, input, responder, hstart, predicted);
            return;
        }
    }

    /// Serves one hedged request as a solo batch on replica `r` —
    /// admission was already granted on the original dispatch, so the
    /// request goes straight to the chip.
    #[allow(clippy::too_many_arguments)]
    fn serve_hedge(
        &mut self,
        p: usize,
        r: usize,
        meta: RequestMeta,
        input: Option<FeatureMap<i64>>,
        responder: Sender<Completion>,
        start: u64,
        completion: u64,
    ) {
        let tracing = self.tele.is_enabled();
        let timing = RequestTiming {
            arrival_ns: meta.arrival_ns,
            dispatch_ns: start,
            completion_ns: completion,
        };
        let st = &mut self.clients[meta.client];
        if st.mode == ClientMode::Closed {
            st.in_flight -= 1;
            st.watermark_ns = st.watermark_ns.max(completion);
        }
        self.out.last_completion_ns = self.out.last_completion_ns.max(completion);
        let part = &mut self.parts[p];
        let tenant = &mut self.tenants[meta.tenant];
        self.out.served += 1;
        part.served += 1;
        tenant.served += 1;
        part.metrics.served_by_tenant[meta.tenant].add(1);
        // Hedges always execute at full precision (deadline rescues).
        self.out.served_by_tier[ExecPrecision::Full.index()] += 1;
        part.served_by_tier[ExecPrecision::Full.index()] += 1;
        part.metrics.served_by_tier[ExecPrecision::Full.index()].add(1);
        self.out.queue_wait.record(timing.queue_wait_ns());
        self.out.execute.record(timing.execute_ns());
        self.out.total.record(timing.total_ns());
        tenant.queue_wait.record(timing.queue_wait_ns());
        tenant.total.record(timing.total_ns());
        part.total.record(timing.total_ns());
        if self.slos[meta.tenant].is_some_and(|slo| timing.total_ns() > slo) {
            part.metrics.slo_miss_by_tenant[meta.tenant].add(1);
        }
        if let Some(obs) = part.obs.as_mut() {
            obs.scraper.record_latency(timing.total_ns());
        }
        let makespan = part.fill_ns;
        part.free_at[r] = part.free_at[r].max(start + makespan);
        self.out.modeled_busy_ns += makespan;
        part.modeled_busy_ns += makespan;
        self.out.batches += 1;
        part.batches += 1;
        self.out.batch_sizes.record(1);
        let (rb, ri, rbusy) = &mut part.per_replica[r];
        *rb += 1;
        *ri += 1;
        *rbusy += makespan;
        let hwb = part.hw.scaled(1);
        part.metrics.images.add(1);
        part.metrics.xbar_activations.add(hwb.crossbar_activations);
        part.metrics.bit_phase_sweeps.add(hwb.bit_phase_sweeps);
        part.metrics.plane_row_adds.add(hwb.plane_row_adds);
        part.metrics.adc_quantizations.add(hwb.adc_quantizations);
        part.metrics.energy_fj.add(hwb.energy_fj);
        if tracing {
            let id = trace_req_id(&meta);
            self.tele.record(
                p,
                TraceEvent::new("admit", "request", Phase::AsyncInstant, start)
                    .track(TRACE_PID_SCHED, meta.tenant as u32)
                    .with_id(id)
                    .arg("position", ArgValue::U64(0))
                    .arg("replica", ArgValue::U64(r as u64))
                    .arg("hedge", ArgValue::U64(1)),
            );
            self.tele.record(
                p,
                TraceEvent::new("req", "request", Phase::AsyncEnd, completion)
                    .track(TRACE_PID_SCHED, meta.tenant as u32)
                    .with_id(id)
                    .arg(
                        "xbar_activations",
                        ArgValue::U64(part.hw.crossbar_activations),
                    )
                    .arg(
                        "adc_quantizations",
                        ArgValue::U64(part.hw.adc_quantizations),
                    )
                    .arg("energy_fj", ArgValue::U64(part.hw.energy_fj)),
            );
            self.tele.record(
                p,
                TraceEvent::new("batch", "exec", Phase::Complete, start)
                    .track(trace_pid(p), trace_tid_replica(r))
                    .dur(makespan)
                    .arg("size", ArgValue::U64(1))
                    .arg("trigger", ArgValue::Str("hedge"))
                    .arg("shed", ArgValue::U64(0))
                    .arg("energy_fj", ArgValue::U64(hwb.energy_fj)),
            );
        }
        let inputs = if self.functional {
            vec![input.expect("functional servers always carry inputs")]
        } else {
            Vec::new()
        };
        let items = vec![ExecItem {
            meta,
            timing,
            responder,
        }];
        let part = &mut self.parts[p];
        // Hedges are deadline-rescues charged the full-precision fill;
        // they execute at full tier regardless of the controller.
        if let Err(failed) = part.replica_tx[r].send(ExecBatch {
            inputs,
            items,
            tier: ExecPrecision::Full,
        }) {
            self.out.send_failures += 1;
            for item in failed.0.items {
                let _ = item.responder.send(Completion {
                    meta: item.meta,
                    timing: item.timing,
                    outcome: Outcome::Failed,
                });
            }
        }
    }

    /// Sheds one request at instant `now` with
    /// [`ShedReason::ReplicaLost`] — the terminal resolution of an
    /// orphan whose retry budget, deadline, or sibling pool ran out.
    fn shed_lost(&mut self, p: usize, meta: RequestMeta, responder: &Sender<Completion>, now: u64) {
        let timing = RequestTiming {
            arrival_ns: meta.arrival_ns,
            dispatch_ns: now,
            completion_ns: now,
        };
        let st = &mut self.clients[meta.client];
        if st.mode == ClientMode::Closed {
            st.in_flight -= 1;
            st.watermark_ns = st.watermark_ns.max(now);
        }
        self.out.last_completion_ns = self.out.last_completion_ns.max(now);
        let part = &mut self.parts[p];
        let tenant = &mut self.tenants[meta.tenant];
        self.out.shed += 1;
        part.shed += 1;
        tenant.shed += 1;
        part.metrics.shed_by_tenant[meta.tenant].add(1);
        if let Some(scaler) = part.autoscaler.as_mut() {
            scaler.observe_shed(meta.tenant, 1);
        }
        if let Some(ctl) = part.brownout.as_mut() {
            ctl.observe_shed(1);
        }
        self.out.shed_wait.record(timing.queue_wait_ns());
        let reason = ShedReason::ReplicaLost;
        self.out.sheds_by_reason[reason.index()] += 1;
        part.metrics.shed_by_reason[reason.index()].add(1);
        if self.tele.is_enabled() {
            let id = trace_req_id(&meta);
            self.tele.record(
                p,
                TraceEvent::new("shed", "request", Phase::AsyncInstant, now)
                    .track(TRACE_PID_SCHED, meta.tenant as u32)
                    .with_id(id)
                    .arg("reason", ArgValue::Str(reason.as_str())),
            );
            self.tele.record(
                p,
                TraceEvent::new("req", "request", Phase::AsyncEnd, now)
                    .track(TRACE_PID_SCHED, meta.tenant as u32)
                    .with_id(id)
                    .arg("outcome", ArgValue::Str("shed")),
            );
        }
        let _ = responder.send(Completion {
            meta,
            timing,
            outcome: Outcome::Shed,
        });
    }

    /// End-of-session chaos flush: apply any plan events and finish any
    /// repairs the request trace never reached (probes stop with the
    /// traffic). Keeps the injected-fault count a function of the plan
    /// alone and closes every `reprogram` span before export.
    fn finalize_chaos(&mut self) {
        let Some(mut chaos) = self.chaos.take() else {
            return;
        };
        for p in 0..self.parts.len() {
            self.pump_chaos(&mut chaos, p, u64::MAX, false);
        }
        self.chaos = Some(chaos);
    }

    fn run(mut self, events: Receiver<Event>) -> Scheduler {
        loop {
            loop {
                let mut progressed = false;
                for p in 0..self.parts.len() {
                    let frontier = self.frontier();
                    let drain_end = self.drain_end();
                    if let Some(batch) = self.parts[p].former.try_close(frontier, drain_end) {
                        self.dispatch(p, batch);
                        progressed = true;
                    }
                }
                if !progressed {
                    break;
                }
            }
            if self.all_done() && self.parts.iter().all(|p| p.former.is_empty()) {
                break;
            }
            match events.recv() {
                Ok(event) => {
                    self.handle(event);
                    while let Ok(event) = events.try_recv() {
                        self.handle(event);
                    }
                }
                // Every sender gone: no more submissions are possible,
                // whatever Done events may have been missed.
                Err(_) => {
                    for c in &mut self.clients {
                        c.done = true;
                    }
                }
            }
        }
        self.finalize_chaos();
        self.flush_observability();
        if self.out.offered == 0 {
            self.out.first_arrival_ns = 0;
        }
        self
    }
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scheduler")
            .field("offered", &self.out.offered)
            .field("served", &self.out.served)
            .field("shed", &self.out.shed)
            .field("partitions", &self.parts.len())
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ReplicaStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaStats")
            .field("batches", &self.batches)
            .field("images", &self.images)
            .finish_non_exhaustive()
    }
}

/// Host-side execution of one replica. Functional mode drains its batch
/// queue through [`red_runtime::Chip::run_batched_with_scratch_at`] at
/// the batch's brownout tier with a persistent per-replica scratch,
/// answers clients directly, and re-derives the scheduler's virtual
/// charge from the *measured* `RuntimeReport` for
/// [`ServerReport::reconciles`] — the measured schedule is
/// value-independent, so a degraded batch scales the measured fill and
/// bottleneck by the same [`red_runtime::Chip::phase_ratio`] the
/// scheduler priced it with. A degraded batch is also re-run at full
/// precision against a second (lazily built) scratch to meter the
/// session's worst *observed* output error against the advertised
/// [`red_runtime::Chip::truncation_error_bound`]. Model-only mode skips
/// execution and charges the tier-scaled analytic schedule per
/// delivered batch — the reconciliation then checks batch conservation
/// (count and sizes) across the scheduler/worker boundary rather than
/// an independent measurement.
fn replica_worker(
    chip: red_runtime::Chip,
    batches: Receiver<ExecBatch>,
    functional: bool,
) -> ReplicaStats {
    let analytic = chip.pipeline_report();
    let mut stats = ReplicaStats::default();
    if !functional {
        let fill = analytic.fill_latency_ns();
        let steady = analytic.steady_interval_ns();
        while let Ok(batch) = batches.recv() {
            // Identical to the scheduler's tier pricing: full-precision
            // analytic latency scaled by the tier's phase ratio, rounded
            // once (ratio 1.0 is a bit-exact multiply).
            let ratio = chip.phase_ratio(batch.tier);
            let f = (fill * ratio).round() as u64;
            let s = (steady * ratio).round() as u64;
            let b = batch.items.len() as u64;
            stats.runtime_modeled_ns += f + (b - 1) * s;
            stats.batches += 1;
            stats.images += b;
            if batch.tier != ExecPrecision::Full {
                stats.error_bound = stats
                    .error_bound
                    .max(chip.truncation_error_bound(batch.tier));
            }
            for item in batch.items {
                let _ = item.responder.send(Completion {
                    meta: item.meta,
                    timing: item.timing,
                    outcome: Outcome::Modeled,
                });
            }
        }
        return stats;
    }
    let mut scratch = chip.make_scratch();
    // The full-precision reference scratch for degraded batches; built
    // on first use so brownout-free sessions pay nothing.
    let mut golden: Option<red_runtime::ChipScratch> = None;
    while let Ok(batch) = batches.recv() {
        match chip.run_batched_with_scratch_at(&batch.inputs, &mut scratch, batch.tier) {
            Ok(run) => {
                let b = batch.inputs.len() as u64;
                // The measured pipelined charge: fill is the measured
                // stage-latency sum; the steady interval is the measured
                // bottleneck stage (the Batched-mode report keeps
                // per-stage latencies even though its own schedule is
                // sequential). Metering is value-independent, so the
                // degraded tier reprices through the phase ratio exactly
                // as the scheduler did.
                let ratio = chip.phase_ratio(batch.tier);
                let fill = (run.report.fill_latency_ns * ratio).round() as u64;
                let bottleneck = (run
                    .report
                    .stages
                    .iter()
                    .map(|s| s.latency_ns)
                    .fold(0.0, f64::max)
                    * ratio)
                    .round() as u64;
                stats.runtime_modeled_ns += fill + (b - 1) * bottleneck;
                if !run.report.reconciles_with(&analytic) {
                    stats.unreconciled += 1;
                }
                stats.host_ns += run.report.wall_ns;
                stats.batches += 1;
                stats.images += b;
                if batch.tier != ExecPrecision::Full {
                    stats.error_bound = stats
                        .error_bound
                        .max(chip.truncation_error_bound(batch.tier));
                    let reference = golden.get_or_insert_with(|| chip.make_scratch());
                    if let Ok(exact) = chip.run_batched_with_scratch(&batch.inputs, reference) {
                        for (deg, full) in run.outputs.iter().zip(&exact.outputs) {
                            for (&d, &x) in deg.as_slice().iter().zip(full.as_slice()) {
                                stats.max_observed_error =
                                    stats.max_observed_error.max((d - x).abs() as f64);
                            }
                        }
                    }
                }
                for (item, output) in batch.items.into_iter().zip(run.outputs) {
                    let _ = item.responder.send(Completion {
                        meta: item.meta,
                        timing: item.timing,
                        outcome: Outcome::Served(output),
                    });
                }
            }
            Err(e) => {
                stats.failed += batch.items.len() as u64;
                if stats.first_error.is_none() {
                    stats.first_error = Some(e.to_string());
                }
                for item in batch.items {
                    let _ = item.responder.send(Completion {
                        meta: item.meta,
                        timing: item.timing,
                        outcome: Outcome::Failed,
                    });
                }
            }
        }
    }
    stats
}

/// A running serving session over a [`ChipFleet`].
///
/// [`Server::start`] spawns the scheduler thread and one worker per
/// provisioned replica and returns a [`ClientHandle`] per requested
/// client. Drop (or [`finish`](ClientHandle::finish)) every handle,
/// then call [`Server::finish`] to drain, join, and collect the
/// [`ServerReport`].
#[derive(Debug)]
pub struct Server {
    events: Sender<Event>,
    scheduler: JoinHandle<Scheduler>,
    workers: Vec<(usize, JoinHandle<ReplicaStats>)>,
    network: String,
    design: String,
    replicas: usize,
    clients: usize,
    max_batch: usize,
    max_wait_ns: u64,
    policy_name: String,
    functional: bool,
    tenant_classes: Vec<TenantClass>,
    partition_names: Vec<String>,
    partition_replicas: Vec<usize>,
    telemetry: Telemetry,
    /// The effective alert policy when scraping is armed (drives the
    /// end-of-session `error-bound` rule in [`Server::try_finish`]).
    alert_policy: Option<AlertPolicy>,
}

impl Server {
    /// Starts serving: one scheduler thread, one worker per provisioned
    /// replica of every partition, one [`ClientHandle`] per entry of
    /// `clients`. Accepts `&[ClientMode]` (every client under tenant 0)
    /// or `&[ClientSpec]` for multi-tenant registration.
    ///
    /// # Errors
    ///
    /// [`ServerError::NoClients`] when `clients` is empty;
    /// [`ServerError::UnknownTenant`] when a spec names a tenant class
    /// the config does not declare.
    pub fn start<S>(
        fleet: &ChipFleet,
        config: &ServerConfig,
        clients: &[S],
    ) -> Result<(Server, Vec<ClientHandle>), ServerError>
    where
        S: Clone + Into<ClientSpec>,
    {
        if clients.is_empty() {
            return Err(ServerError::NoClients);
        }
        let specs: Vec<ClientSpec> = clients.iter().cloned().map(Into::into).collect();
        for spec in &specs {
            if spec.tenant >= config.tenants.len() {
                return Err(ServerError::UnknownTenant {
                    tenant: spec.tenant,
                    tenants: config.tenants.len(),
                });
            }
        }
        let expected_shapes = Arc::new(
            fleet
                .partitions()
                .iter()
                .map(|p| p.chip().input_shape())
                .collect::<Vec<_>>(),
        );

        let tele = config.telemetry.clone();
        if tele.is_enabled() {
            tele.name_process(TRACE_PID_SCHED, "scheduler");
            for (t, class) in config.tenants.iter().enumerate() {
                tele.name_thread(TRACE_PID_SCHED, t as u32, &class.name);
            }
        }

        let (event_tx, event_rx) = channel::<Event>();
        let mut parts = Vec::with_capacity(fleet.partition_count());
        let mut workers = Vec::with_capacity(fleet.replicas());
        for (pi, partition) in fleet.partitions().iter().enumerate() {
            let analytic = partition.chip().pipeline_report();
            let fill_ns = analytic.fill_latency_ns().round() as u64;
            let steady_ns = analytic.steady_interval_ns().round() as u64;
            let stage_lat = partition.chip().stage_latency_profile_ns();
            let hw = partition.chip().hardware_per_image();
            // Per-tier brownout pricing, computed once: analytic
            // latencies scaled by each tier's live-phase ratio (index 0
            // is the full tier — ratio 1.0 is a bit-exact multiply, so
            // a brownout-free session prices identically to older
            // builds) and the tier-repriced hardware-per-image ledger.
            let mut tier_fill_ns = [0u64; 3];
            let mut tier_steady_ns = [0u64; 3];
            let mut tier_ratio = [0f64; 3];
            let mut hw_by_tier = [hw; 3];
            for tier in ExecPrecision::ALL {
                let i = tier.index();
                let ratio = partition.chip().phase_ratio(tier);
                tier_ratio[i] = ratio;
                tier_fill_ns[i] = (analytic.fill_latency_ns() * ratio).round() as u64;
                tier_steady_ns[i] = (analytic.steady_interval_ns() * ratio).round() as u64;
                hw_by_tier[i] = partition.chip().hardware_per_image_at(tier);
            }
            if tele.is_enabled() {
                let pid = trace_pid(pi);
                tele.name_process(pid, &format!("partition{pi}:{}", partition.chip().name()));
                tele.name_thread(pid, TRACE_TID_AUTOSCALE, "autoscale");
                for r in 0..partition.replicas() {
                    tele.name_thread(pid, trace_tid_replica(r), &format!("replica{r}"));
                    for k in 0..stage_lat.len().min(TRACE_STAGE_SLOTS as usize) {
                        tele.name_thread(pid, trace_tid_stage(r, k), &format!("r{r} stage{k}"));
                    }
                }
            }
            let part_label = pi.to_string();
            let part_labels: [(&'static str, &str); 1] = [("partition", &part_label)];
            let metrics = PartitionMetrics {
                served_by_tenant: config
                    .tenants
                    .iter()
                    .map(|c| {
                        tele.counter(
                            "red_requests_served_total",
                            "Requests admitted and served",
                            &[("partition", &part_label), ("tenant", &c.name)],
                        )
                    })
                    .collect(),
                shed_by_tenant: config
                    .tenants
                    .iter()
                    .map(|c| {
                        tele.counter(
                            "red_requests_shed_total",
                            "Requests denied by admission control",
                            &[("partition", &part_label), ("tenant", &c.name)],
                        )
                    })
                    .collect(),
                slo_miss_by_tenant: config
                    .tenants
                    .iter()
                    .map(|c| {
                        tele.counter(
                            "red_slo_miss_total",
                            "Served requests that exceeded their tenant's latency SLO",
                            &[("partition", &part_label), ("tenant", &c.name)],
                        )
                    })
                    .collect(),
                xbar_activations: tele.counter(
                    "red_xbar_activations_total",
                    "Crossbar vector-operation activations issued",
                    &part_labels,
                ),
                bit_phase_sweeps: tele.counter(
                    "red_bit_phase_sweeps_total",
                    "Bit-serial input phases swept across activations",
                    &part_labels,
                ),
                plane_row_adds: tele.counter(
                    "red_plane_row_adds_total",
                    "Non-zero wordline row-current adds",
                    &part_labels,
                ),
                adc_quantizations: tele.counter(
                    "red_adc_quantizations_total",
                    "ADC integrate-and-fire conversions",
                    &part_labels,
                ),
                energy_fj: tele.counter(
                    "red_energy_femtojoules_total",
                    "Modeled execution energy in femtojoules",
                    &part_labels,
                ),
                images: tele.counter("red_images_total", "Images executed", &part_labels),
                replicas_active: tele.gauge(
                    "red_replicas_active",
                    "Currently active serving replicas",
                    &part_labels,
                ),
                shed_by_reason: ShedReason::ALL
                    .iter()
                    .map(|reason| {
                        tele.counter(
                            "red_sheds_total",
                            "Requests shed, by attributed reason",
                            &[("partition", &part_label), ("reason", reason.as_str())],
                        )
                    })
                    .collect(),
                faults_injected: tele.counter(
                    "red_faults_injected_total",
                    "Fault-plan events injected",
                    &part_labels,
                ),
                reprograms: tele.counter(
                    "red_reprograms_total",
                    "Replica crossbar re-programming repairs",
                    &part_labels,
                ),
                retries: tele.counter(
                    "red_retries_total",
                    "Requests re-queued after losing their replica mid-batch",
                    &part_labels,
                ),
                hedges: tele.counter(
                    "red_hedges_total",
                    "Requests hedged to a sibling replica",
                    &part_labels,
                ),
                served_by_tier: ExecPrecision::ALL
                    .iter()
                    .map(|t| {
                        tele.counter(
                            "red_requests_served_by_tier_total",
                            "Requests served, by execution precision tier",
                            &[("partition", &part_label), ("tier", t.name())],
                        )
                    })
                    .collect(),
                precision_tier: tele.gauge(
                    "red_precision_tier",
                    "Current brownout execution tier (0 = full, 2 = brownout)",
                    &part_labels,
                ),
                backlog_ns: tele.gauge(
                    "red_backlog_ns",
                    "Modeled backlog ahead of the newest dispatch, in virtual ns",
                    &part_labels,
                ),
                replicas_routable: tele.gauge(
                    "red_replicas_routable",
                    "Replicas the dispatch may route to (active minus quarantined)",
                    &part_labels,
                ),
            };
            let mut replica_tx = Vec::with_capacity(partition.replicas());
            for _ in 0..partition.replicas() {
                // Capacity 2: classic double buffering — one batch
                // executing, one staged — with backpressure into the
                // scheduler.
                let (tx, rx) = sync_channel::<ExecBatch>(2);
                let replica = partition.replica_chip();
                let functional = config.functional;
                workers.push((
                    pi,
                    std::thread::spawn(move || replica_worker(replica, rx, functional)),
                ));
                replica_tx.push(tx);
            }
            let autoscaler = config
                .autoscale
                .map(|cfg| Autoscaler::new(cfg, pi, partition.replicas(), config.tenants.len()));
            let active = autoscaler
                .as_ref()
                .map_or(partition.replicas(), Autoscaler::initial_active);
            metrics.replicas_active.set(active as i64);
            metrics.precision_tier.set(0);
            metrics.replicas_routable.set(active as i64);
            // The observability plane: a registry scraper over the
            // handles just bound, with the alert engine consuming its
            // window sequence. Series registration order fixes the
            // chart grouping of the exported "C" counter tracks.
            let obs = config.scrape.filter(|_| tele.is_enabled()).map(|scfg| {
                let pid = trace_pid(pi);
                let mut scraper = Scraper::new(scfg, tele.clone(), pi, pi, pid);
                let served_ids = config
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(t, c)| {
                        scraper.counter("served", &c.name, metrics.served_by_tenant[t].clone())
                    })
                    .collect();
                let shed_ids = config
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(t, c)| {
                        scraper.counter("shed", &c.name, metrics.shed_by_tenant[t].clone())
                    })
                    .collect();
                let slo_miss_ids = config
                    .tenants
                    .iter()
                    .enumerate()
                    .map(|(t, c)| {
                        scraper.counter("slo_miss", &c.name, metrics.slo_miss_by_tenant[t].clone())
                    })
                    .collect();
                let mut replica_lost_id = 0;
                for (i, reason) in ShedReason::ALL.iter().enumerate() {
                    let id = scraper.counter(
                        "sheds_by_reason",
                        reason.as_str(),
                        metrics.shed_by_reason[i].clone(),
                    );
                    if i == ShedReason::ReplicaLost.index() {
                        replica_lost_id = id;
                    }
                }
                for tier in ExecPrecision::ALL {
                    scraper.counter(
                        "tier",
                        tier.name(),
                        metrics.served_by_tier[tier.index()].clone(),
                    );
                }
                scraper.counter("faults", "injected", metrics.faults_injected.clone());
                scraper.counter("faults", "reprograms", metrics.reprograms.clone());
                scraper.counter("faults", "retries", metrics.retries.clone());
                scraper.counter("faults", "hedges", metrics.hedges.clone());
                scraper.gauge("capacity", "backlog_ns", metrics.backlog_ns.clone());
                let active_id = scraper.gauge(
                    "capacity",
                    "replicas_active",
                    metrics.replicas_active.clone(),
                );
                let routable_id = scraper.gauge(
                    "capacity",
                    "replicas_routable",
                    metrics.replicas_routable.clone(),
                );
                scraper.quantile("latency", "p50", 0.5);
                scraper.quantile("latency", "p99", 0.99);
                let mut fired: Vec<(&'static str, Option<usize>, Counter)> = Vec::new();
                for (t, c) in config.tenants.iter().enumerate() {
                    for rule in ["fast-burn", "slow-burn"] {
                        fired.push((
                            rule,
                            Some(t),
                            tele.counter(
                                "red_alerts_fired_total",
                                "Alert-rule fire edges",
                                &[
                                    ("partition", &part_label),
                                    ("rule", rule),
                                    ("tenant", &c.name),
                                ],
                            ),
                        ));
                    }
                }
                for rule in ["replica-lost", "quarantine"] {
                    fired.push((
                        rule,
                        None,
                        tele.counter(
                            "red_alerts_fired_total",
                            "Alert-rule fire edges",
                            &[("partition", &part_label), ("rule", rule)],
                        ),
                    ));
                }
                PartitionObs {
                    engine: AlertEngine::new(
                        config.alerts.clone().unwrap_or_default(),
                        config.tenants.len(),
                    ),
                    scraper,
                    tele: tele.clone(),
                    partition: pi,
                    pid,
                    served_ids,
                    shed_ids,
                    slo_miss_ids,
                    replica_lost_id,
                    active_id,
                    routable_id,
                    fired,
                    episodes: Vec::new(),
                }
            });
            parts.push(PartitionState {
                former: BatchFormer::new(config.max_batch, config.max_wait_ns),
                fill_ns,
                steady_ns,
                stage_lat,
                hw,
                tier_fill_ns,
                tier_steady_ns,
                tier_ratio,
                hw_by_tier,
                metrics,
                policy: config.policy.fork(),
                replica_tx,
                free_at: vec![0; partition.replicas()],
                active,
                autoscaler,
                scale_events: Vec::new(),
                brownout: config.brownout.map(|cfg| BrownoutController::new(cfg, pi)),
                brownout_events: Vec::new(),
                served_by_tier: [0; 3],
                offered: 0,
                served: 0,
                shed: 0,
                batches: 0,
                modeled_busy_ns: 0,
                total: LatencyHistogram::new(),
                per_replica: vec![(0, 0, 0); partition.replicas()],
                obs,
            });
        }

        // Arm the chaos layer: split the fault plan per partition
        // (global event indices keep their per-event seeds), seed one
        // canary witness per provisioned replica as a pure function of
        // (plan seed, partition, replica), and price the repair outage
        // from the paper's cost model once up front.
        let chaos = config.fault_plan.as_ref().map(|plan| {
            let health = config.health;
            let repro = CostModel::paper_default().reprogram_cost(health.reprogram_cells);
            let n_parts = fleet.partition_count();
            let chaos_parts = fleet
                .partitions()
                .iter()
                .enumerate()
                .map(|(pi, partition)| {
                    let events: Vec<(u64, FaultEvent)> = plan
                        .events()
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| e.partition.min(n_parts - 1) == pi)
                        .map(|(gi, e)| (plan.event_seed(gi), *e))
                        .collect();
                    let consumed = vec![false; events.len()];
                    let replicas = (0..partition.replicas())
                        .map(|r| ReplicaChaos {
                            state: ReplicaState::Active,
                            witness: Witness::new(
                                plan.seed() ^ ((pi as u64) << 32) ^ (0x5EED << 16) ^ r as u64,
                            ),
                            next_probe_ns: health.probe_interval_ns.max(1),
                            repair_until_ns: None,
                        })
                        .collect();
                    PartChaos {
                        events,
                        consumed,
                        cursor: 0,
                        replicas,
                    }
                })
                .collect();
            ChaosState {
                health,
                reprogram_ns: repro.latency_ns.round() as u64,
                reprogram_energy_pj: repro.energy_pj,
                parts: chaos_parts,
                attempts: HashMap::new(),
            }
        });

        let scheduler_state = Scheduler {
            clients: specs
                .iter()
                .map(|spec| ClientState {
                    mode: spec.mode,
                    done: false,
                    in_flight: 0,
                    watermark_ns: 0,
                })
                .collect(),
            parts,
            tele: tele.clone(),
            tenants: config
                .tenants
                .iter()
                .map(|_| TenantStat {
                    offered: 0,
                    served: 0,
                    shed: 0,
                    queue_wait: LatencyHistogram::new(),
                    total: LatencyHistogram::new(),
                })
                .collect(),
            floors: config.tenants.iter().map(|c| c.precision_floor).collect(),
            slos: config.tenants.iter().map(|c| c.slo_ns).collect(),
            functional: config.functional,
            out: GlobalStats {
                offered: 0,
                served: 0,
                shed: 0,
                send_failures: 0,
                batches: 0,
                queue_wait: LatencyHistogram::new(),
                execute: LatencyHistogram::new(),
                total: LatencyHistogram::new(),
                shed_wait: LatencyHistogram::new(),
                batch_sizes: LatencyHistogram::new(),
                first_arrival_ns: u64::MAX,
                last_completion_ns: 0,
                modeled_busy_ns: 0,
                sheds_by_reason: vec![0; ShedReason::ALL.len()],
                faults_injected: 0,
                reprograms: 0,
                retries: 0,
                hedges: 0,
                served_by_tier: [0; 3],
            },
            chaos,
        };
        let scheduler = std::thread::spawn(move || scheduler_state.run(event_rx));

        let handles = specs
            .iter()
            .enumerate()
            .map(|(id, spec)| {
                let (completion_tx, completions) = channel::<Completion>();
                ClientHandle {
                    id,
                    tenant: spec.tenant,
                    seq: 0,
                    last_arrival_ns: 0,
                    expected_shapes: Arc::clone(&expected_shapes),
                    functional: config.functional,
                    events: event_tx.clone(),
                    completion_tx,
                    completions,
                    done: false,
                }
            })
            .collect();

        let mut designs: Vec<String> = Vec::new();
        for p in fleet.partitions() {
            let label = p.chip().design().label().to_string();
            if !designs.contains(&label) {
                designs.push(label);
            }
        }
        Ok((
            Server {
                events: event_tx,
                scheduler,
                workers,
                network: fleet
                    .partitions()
                    .iter()
                    .map(|p| p.chip().name())
                    .collect::<Vec<_>>()
                    .join("+"),
                design: designs.join("+"),
                replicas: fleet.replicas(),
                clients: specs.len(),
                max_batch: config.max_batch,
                max_wait_ns: config.max_wait_ns,
                policy_name: config.policy.name().to_string(),
                functional: config.functional,
                tenant_classes: config.tenants.clone(),
                partition_names: fleet
                    .partitions()
                    .iter()
                    .map(|p| p.chip().name().to_string())
                    .collect(),
                partition_replicas: fleet.partitions().iter().map(|p| p.replicas()).collect(),
                alert_policy: (config.scrape.is_some() && tele.is_enabled())
                    .then(|| config.alerts.clone().unwrap_or_default()),
                telemetry: tele,
            },
            handles,
        ))
    }

    /// Drains outstanding work, joins every thread, and returns the
    /// session report. Every [`ClientHandle`] must be finished or
    /// dropped first, or this blocks waiting for them.
    ///
    /// # Panics
    ///
    /// Panics with [`ServerError::SchedulerFailed`] when the scheduler
    /// thread died (a panicking custom [`AdmissionPolicy`] surfaces
    /// here) and with [`ServerError::ReplicaFailed`] when a replica
    /// worker died — use [`Server::try_finish`] to handle both cases as
    /// values.
    pub fn finish(self) -> ServerReport {
        match self.try_finish() {
            Ok(report) => report,
            Err(e) => panic!("server shutdown failed: {e}"),
        }
    }

    /// [`Server::finish`], but a dead thread comes back as a value
    /// instead of a panic: [`ServerError::ReplicaFailed`] names the
    /// partition and replica of a dead worker, and
    /// [`ServerError::SchedulerFailed`] carries the scheduler thread's
    /// panic message (the scheduler owns the virtual clock, so there is
    /// no meaningful report without it). Every surviving thread is
    /// still joined first on both paths, so nothing is leaked.
    ///
    /// # Errors
    ///
    /// [`ServerError::SchedulerFailed`] when the scheduler thread
    /// panicked; otherwise [`ServerError::ReplicaFailed`] for the first
    /// (by partition, then replica index) worker thread that panicked
    /// instead of reporting its statistics.
    pub fn try_finish(self) -> Result<ServerReport, ServerError> {
        drop(self.events);
        let mut sched = match self.scheduler.join() {
            Ok(sched) => sched,
            Err(payload) => {
                // The unwinding scheduler dropped its batch senders, so
                // the workers drain and exit; join them before
                // reporting, leaking nothing on the error path.
                for (_, worker) in self.workers {
                    let _ = worker.join();
                }
                let message = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                return Err(ServerError::SchedulerFailed { message });
            }
        };
        // Dropping the batch senders releases the workers: they drain
        // their queues and return.
        let mut alerts: Vec<AlertReport> = Vec::new();
        for part in &mut sched.parts {
            part.replica_tx.clear();
            if let Some(obs) = part.obs.take() {
                alerts.extend(obs.into_reports());
            }
        }
        let mut per_part_stats: Vec<Vec<ReplicaStats>> =
            (0..sched.parts.len()).map(|_| Vec::new()).collect();
        let mut failed_worker: Option<(usize, usize)> = None;
        for (p, worker) in self.workers {
            let replica = per_part_stats[p].len();
            match worker.join() {
                Ok(stats) => per_part_stats[p].push(stats),
                Err(_) => {
                    if failed_worker.is_none() {
                        failed_worker = Some((p, replica));
                    }
                    per_part_stats[p].push(ReplicaStats::default());
                }
            }
        }
        if let Some((partition, replica)) = failed_worker {
            return Err(ServerError::ReplicaFailed { partition, replica });
        }
        let first_arrival_ns = if sched.out.first_arrival_ns == u64::MAX {
            0
        } else {
            sched.out.first_arrival_ns
        };
        let span_ns = sched
            .out
            .last_completion_ns
            .saturating_sub(first_arrival_ns);
        let mut replica_reports = Vec::with_capacity(self.replicas);
        for (pi, stats) in per_part_stats.iter().enumerate() {
            for (ri, s) in stats.iter().enumerate() {
                let (batches, images, busy_ns) = sched.parts[pi].per_replica[ri];
                replica_reports.push(ReplicaReport {
                    partition: pi,
                    replica: ri,
                    batches,
                    images,
                    busy_ns,
                    utilization: if span_ns == 0 {
                        0.0
                    } else {
                        busy_ns as f64 / span_ns as f64
                    },
                    host_ns: s.host_ns,
                });
            }
        }
        let partition_reports = sched
            .parts
            .iter()
            .enumerate()
            .map(|(pi, part)| PartitionReport {
                partition: pi,
                network: self.partition_names[pi].clone(),
                replicas_provisioned: self.partition_replicas[pi],
                replicas_active: part.active,
                offered: part.offered,
                served: part.served,
                shed: part.shed,
                batches: part.batches,
                total: part.total.clone(),
                modeled_busy_ns: part.modeled_busy_ns,
                runtime_modeled_ns: per_part_stats[pi]
                    .iter()
                    .map(|s| s.runtime_modeled_ns)
                    .sum(),
                batches_reconciled: per_part_stats[pi].iter().all(|s| s.unreconciled == 0),
                scale_events: part.scale_events.clone(),
                brownout_events: part.brownout_events.clone(),
                served_by_tier: part.served_by_tier.to_vec(),
            })
            .collect::<Vec<_>>();
        let tenant_reports = self
            .tenant_classes
            .iter()
            .zip(sched.tenants)
            .enumerate()
            .map(|(ti, (class, stat))| {
                // Fold the scheduler's per-tenant ledgers into the
                // metrics plane once at shutdown — the hot path records
                // into the report histograms only, never twice.
                self.telemetry
                    .histogram(
                        "red_request_queue_wait_ns",
                        "Virtual-clock queue wait per served request",
                        &[("tenant", &class.name)],
                    )
                    .merge(&stat.queue_wait);
                self.telemetry
                    .histogram(
                        "red_request_total_ns",
                        "Virtual-clock arrival-to-completion latency per served request",
                        &[("tenant", &class.name)],
                    )
                    .merge(&stat.total);
                TenantReport {
                    tenant: ti,
                    name: class.name.clone(),
                    weight: class.weight,
                    priority: class.priority,
                    slo_ns: class.slo_ns,
                    offered: stat.offered,
                    served: stat.served,
                    shed: stat.shed,
                    queue_wait: stat.queue_wait,
                    total: stat.total,
                }
            })
            .collect();
        let flat_stats: Vec<&ReplicaStats> = per_part_stats.iter().flatten().collect();
        let max_observed_error = flat_stats
            .iter()
            .map(|s| s.max_observed_error)
            .fold(0.0, f64::max);
        let precision_error_bound = flat_stats.iter().map(|s| s.error_bound).fold(0.0, f64::max);
        // The end-of-session `error-bound` rule: the worst observed
        // degradation error has consumed the policy's margin of the
        // advertised worst-case bound. Evaluated here because the
        // observed error exists only after the workers join; it never
        // resolves (there is nothing after session end to calm down).
        if let Some(policy) = &self.alert_policy {
            if policy.error_bound_breached(max_observed_error, precision_error_bound) {
                self.telemetry
                    .counter(
                        "red_alerts_fired_total",
                        "Alert-rule fire edges",
                        &[("rule", "error-bound")],
                    )
                    .add(1);
                alerts.push(AlertReport {
                    partition: 0,
                    rule: "error-bound".to_string(),
                    tenant: None,
                    fired_at_ns: sched.out.last_completion_ns,
                    resolved_at_ns: None,
                    value: max_observed_error / precision_error_bound,
                });
            }
        }
        Ok(ServerReport {
            network: self.network,
            design: self.design,
            replicas: self.replicas,
            clients: self.clients,
            max_batch: self.max_batch,
            max_wait_ns: self.max_wait_ns,
            policy: self.policy_name,
            functional: self.functional,
            offered: sched.out.offered,
            served: sched.out.served,
            shed: sched.out.shed,
            failed: flat_stats.iter().map(|s| s.failed).sum::<u64>() + sched.out.send_failures,
            batches: sched.out.batches,
            queue_wait: sched.out.queue_wait,
            execute: sched.out.execute,
            total: sched.out.total,
            shed_wait: sched.out.shed_wait,
            batch_sizes: sched.out.batch_sizes,
            first_arrival_ns,
            last_completion_ns: sched.out.last_completion_ns,
            modeled_busy_ns: sched.out.modeled_busy_ns,
            runtime_modeled_ns: flat_stats.iter().map(|s| s.runtime_modeled_ns).sum(),
            batches_reconciled: flat_stats.iter().all(|s| s.unreconciled == 0),
            tenant_reports,
            partition_reports,
            replica_reports,
            host_exec_ns: flat_stats.iter().map(|s| s.host_ns).sum(),
            first_error: flat_stats.iter().find_map(|s| s.first_error.clone()),
            sheds_by_reason: ShedReason::ALL
                .iter()
                .zip(&sched.out.sheds_by_reason)
                .map(|(reason, &n)| (reason.as_str().to_string(), n))
                .collect(),
            faults_injected: sched.out.faults_injected,
            reprograms: sched.out.reprograms,
            retries: sched.out.retries,
            hedges: sched.out.hedges,
            served_by_tier: ExecPrecision::ALL
                .iter()
                .map(|t| (t.name().to_string(), sched.out.served_by_tier[t.index()]))
                .collect(),
            max_observed_error,
            precision_error_bound,
            alerts,
        })
    }
}
