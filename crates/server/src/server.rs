//! The online serving engine: MPSC request queue → dynamic micro-batch
//! former → SLO-aware admission → replica workers.
//!
//! # Threads and channels
//!
//! ```text
//! clients ──(unbounded MPSC, Submit/Done)──▶ scheduler thread
//!    ▲                                           │ (bounded, per replica)
//!    │                                           ▼
//!    └──(unbounded, Completion)◀── replica workers (one per fleet chip)
//! ```
//!
//! The **scheduler** owns the virtual clock: it merges per-client request
//! streams in `(arrival, client, seq)` order, closes micro-batches
//! through [`BatchFormer`] (never finalizing a batch a future arrival
//! could still change — see the former's module docs), runs the
//! [`AdmissionPolicy`] at dispatch with the chip's modeled service law,
//! and charges each executed batch the pipelined schedule
//! `fill + (B-1)·steady` on the virtual clock. **Replica workers** do
//! the host-side functional execution (`Chip::run_batched_with_scratch`,
//! bit-exact against the sequential golden path) and deliver outputs
//! directly to clients, so virtual-time bookkeeping never waits on host
//! execution. Shed requests are answered by the scheduler itself and
//! cost zero chip time.
//!
//! Because every latency figure derives from the virtual clock, a
//! serving session's statistics are a deterministic function of the
//! request trace — independent of host thread interleaving — which is
//! what makes the committed `BENCH_loadgen.json` baselines and the CI
//! assertions reproducible.

use crate::former::{BatchFormer, FormedBatch};
use crate::histogram::LatencyHistogram;
use crate::policy::{AdmissionPolicy, Fifo, ServiceEstimate};
use crate::report::{ReplicaReport, ServerReport};
use crate::request::{ClientId, Completion, Outcome, RequestMeta, RequestTiming};
use crate::{ChipFleet, ServerError};
use red_tensor::FeatureMap;
use std::sync::mpsc::{channel, sync_channel, Receiver, Sender, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Scheduler tuning: batch former bounds plus the admission policy.
#[derive(Clone)]
pub struct ServerConfig {
    max_batch: usize,
    max_wait_ns: u64,
    policy: Arc<dyn AdmissionPolicy>,
}

impl ServerConfig {
    /// Defaults: `max_batch` 8, `max_wait` 0 (batch only what arrives
    /// together), [`Fifo`] admission.
    pub fn new() -> Self {
        Self {
            max_batch: 8,
            max_wait_ns: 0,
            policy: Arc::new(Fifo),
        }
    }

    /// Sets the batch-size bound.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn max_batch(mut self, n: usize) -> Self {
        assert!(n > 0, "max_batch must be positive");
        self.max_batch = n;
        self
    }

    /// Sets the forming-window bound, in virtual ns.
    pub fn max_wait_ns(mut self, ns: u64) -> Self {
        self.max_wait_ns = ns;
        self
    }

    /// Sets the admission policy.
    pub fn policy(mut self, policy: impl AdmissionPolicy + 'static) -> Self {
        self.policy = Arc::new(policy);
        self
    }

    /// Sets an already-shared admission policy (e.g. from
    /// [`crate::policy_by_name`]).
    pub fn policy_arc(mut self, policy: Arc<dyn AdmissionPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The configured batch-size bound.
    pub fn max_batch_bound(&self) -> usize {
        self.max_batch
    }

    /// The configured forming-window bound, in ns.
    pub fn max_wait_bound_ns(&self) -> u64 {
        self.max_wait_ns
    }

    /// The configured policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("max_batch", &self.max_batch)
            .field("max_wait_ns", &self.max_wait_ns)
            .field("policy", &self.policy.name())
            .finish()
    }
}

/// How a client interacts with the server — the scheduler needs to know
/// to merge request streams deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// Fire-and-forget: submits whenever its trace says, regardless of
    /// completions (open-loop load).
    Open,
    /// One request outstanding: submits only after receiving the
    /// previous completion, at or after its virtual completion time
    /// (closed-loop load).
    Closed,
}

/// What clients send to the scheduler.
enum Event {
    Submit {
        meta: RequestMeta,
        input: FeatureMap<i64>,
        responder: Sender<Completion>,
    },
    Done(ClientId),
}

/// A client's handle to a running [`Server`]: submit requests, receive
/// [`Completion`]s.
///
/// Dropping the handle (or calling [`ClientHandle::finish`]) tells the
/// server this client will submit no more requests — required for the
/// server to drain and shut down.
///
/// **Liveness contract:** deterministic virtual-time batching means the
/// scheduler will not finalize a batch that a still-active client could
/// preempt with an earlier-timestamped request. An [`ClientMode::Open`]
/// client must therefore keep submitting or [`finish`] before blocking
/// on [`recv`] — a client that silently goes quiet stalls batch forming
/// for everyone. [`ClientMode::Closed`] clients are exempt while a
/// request is in flight (the scheduler knows they cannot submit), which
/// is what makes [`call`](ClientHandle::call) safe.
///
/// [`finish`]: ClientHandle::finish
/// [`recv`]: ClientHandle::recv
#[derive(Debug)]
pub struct ClientHandle {
    id: ClientId,
    seq: u64,
    last_arrival_ns: u64,
    expected_shape: (usize, usize, usize),
    events: Sender<Event>,
    completion_tx: Sender<Completion>,
    completions: Receiver<Completion>,
    done: bool,
}

impl ClientHandle {
    /// This client's id (index into the mode slice given to
    /// [`Server::start`]).
    pub fn id(&self) -> ClientId {
        self.id
    }

    /// Submits a request arriving at virtual time `arrival_ns` with an
    /// optional absolute deadline. Arrivals must be nondecreasing per
    /// client; a too-early stamp is clamped to the client's frontier
    /// (its last arrival here, and additionally its last virtual
    /// completion on the scheduler side for closed-loop clients).
    /// Returns the request's final metadata.
    ///
    /// # Errors
    ///
    /// [`ServerError::InputMismatch`] for a wrong-shaped input;
    /// [`ServerError::Disconnected`] after [`ClientHandle::finish`] or
    /// server shutdown.
    pub fn submit(
        &mut self,
        input: FeatureMap<i64>,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<RequestMeta, ServerError> {
        if self.done {
            return Err(ServerError::Disconnected);
        }
        let actual = (input.height(), input.width(), input.channels());
        if actual != self.expected_shape {
            return Err(ServerError::InputMismatch {
                expected: self.expected_shape,
                actual,
            });
        }
        let arrival = arrival_ns.max(self.last_arrival_ns);
        let meta = RequestMeta {
            client: self.id,
            seq: self.seq,
            arrival_ns: arrival,
            deadline_ns,
        };
        self.events
            .send(Event::Submit {
                meta,
                input,
                responder: self.completion_tx.clone(),
            })
            .map_err(|_| ServerError::Disconnected)?;
        self.seq += 1;
        self.last_arrival_ns = arrival;
        Ok(meta)
    }

    /// Blocks for the next completion addressed to this client.
    ///
    /// # Errors
    ///
    /// [`ServerError::Disconnected`] when the server is gone and no
    /// completion is queued.
    pub fn recv(&self) -> Result<Completion, ServerError> {
        self.completions
            .recv()
            .map_err(|_| ServerError::Disconnected)
    }

    /// Closed-loop convenience: [`submit`](ClientHandle::submit) then
    /// [`recv`](ClientHandle::recv).
    ///
    /// # Errors
    ///
    /// As `submit` and `recv`.
    pub fn call(
        &mut self,
        input: FeatureMap<i64>,
        arrival_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Result<Completion, ServerError> {
        self.submit(input, arrival_ns, deadline_ns)?;
        self.recv()
    }

    /// Declares this client finished (no more submissions). Idempotent;
    /// also called on drop. Completions can still be received afterward.
    pub fn finish(&mut self) {
        if !self.done {
            self.done = true;
            let _ = self.events.send(Event::Done(self.id));
        }
    }
}

impl Drop for ClientHandle {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Scheduler-side client bookkeeping (see the module docs).
struct ClientState {
    mode: ClientMode,
    done: bool,
    in_flight: u64,
    watermark_ns: u64,
}

/// One request riding to a replica worker.
struct ExecItem {
    meta: RequestMeta,
    timing: RequestTiming,
    responder: Sender<Completion>,
}

/// One admitted batch riding to a replica worker (`inputs[i]` belongs to
/// `items[i]`).
struct ExecBatch {
    inputs: Vec<FeatureMap<i64>>,
    items: Vec<ExecItem>,
}

/// What the scheduler thread hands back at shutdown.
struct SchedulerOutcome {
    offered: u64,
    served: u64,
    shed: u64,
    send_failures: u64,
    batches: u64,
    queue_wait: LatencyHistogram,
    execute: LatencyHistogram,
    total: LatencyHistogram,
    shed_wait: LatencyHistogram,
    batch_sizes: LatencyHistogram,
    first_arrival_ns: u64,
    last_completion_ns: u64,
    modeled_busy_ns: u64,
    per_replica: Vec<(u64, u64, u64)>, // (batches, images, busy_ns)
}

/// What one replica worker hands back at shutdown.
#[derive(Default)]
struct ReplicaStats {
    batches: u64,
    images: u64,
    runtime_modeled_ns: u64,
    host_ns: u128,
    unreconciled: u64,
    failed: u64,
    first_error: Option<String>,
}

type Payload = (FeatureMap<i64>, Sender<Completion>);

struct Scheduler {
    former: BatchFormer<Payload>,
    clients: Vec<ClientState>,
    policy: Arc<dyn AdmissionPolicy>,
    fill_ns: u64,
    steady_ns: u64,
    replica_tx: Vec<SyncSender<ExecBatch>>,
    free_at: Vec<u64>,
    out: SchedulerOutcome,
}

impl Scheduler {
    /// Exclusive-ish lower bound on every future arrival: the minimum
    /// over clients of what each could still submit. A finished client
    /// contributes nothing; a closed-loop client with a request in
    /// flight cannot submit until the scheduler itself assigns that
    /// request a completion time (so ∞ is *exact*, not an
    /// approximation); otherwise the watermark is the client's last
    /// arrival (open) or last virtual completion (closed), both proven
    /// lower bounds on its next arrival.
    fn frontier(&self) -> u64 {
        self.clients
            .iter()
            .map(|c| {
                if c.done || (c.mode == ClientMode::Closed && c.in_flight > 0) {
                    u64::MAX
                } else {
                    c.watermark_ns
                }
            })
            .min()
            .unwrap_or(u64::MAX)
    }

    fn all_done(&self) -> bool {
        self.clients.iter().all(|c| c.done)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Submit {
                mut meta,
                input,
                responder,
            } => {
                let st = &mut self.clients[meta.client];
                // Enforce the watermark invariant the former's safety
                // argument rests on (no-op for well-behaved handles).
                meta.arrival_ns = meta.arrival_ns.max(st.watermark_ns);
                st.watermark_ns = meta.arrival_ns;
                if st.mode == ClientMode::Closed {
                    st.in_flight += 1;
                }
                self.out.offered += 1;
                self.out.first_arrival_ns = self.out.first_arrival_ns.min(meta.arrival_ns);
                self.former.push(meta, (input, responder));
            }
            Event::Done(id) => self.clients[id].done = true,
        }
    }

    fn dispatch(&mut self, batch: FormedBatch<Payload>) {
        // Earliest-free replica, lowest index on ties — deterministic.
        let r = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(i, &t)| (t, *i))
            .map(|(i, _)| i)
            .expect("fleet has at least one replica");
        let start = batch.close_ns.max(self.free_at[r]);
        let mut inputs = Vec::with_capacity(batch.requests.len());
        let mut items = Vec::with_capacity(batch.requests.len());
        for (meta, (input, responder)) in batch.requests {
            let position = inputs.len();
            let predicted = start + self.fill_ns + position as u64 * self.steady_ns;
            let estimate = ServiceEstimate {
                batch_start_ns: start,
                position,
                fill_latency_ns: self.fill_ns,
                steady_interval_ns: self.steady_ns,
                predicted_completion_ns: predicted,
            };
            let admitted = self.policy.admit(&meta, &estimate);
            let completion_ns = if admitted { predicted } else { start };
            let timing = RequestTiming {
                arrival_ns: meta.arrival_ns,
                dispatch_ns: start,
                completion_ns,
            };
            let st = &mut self.clients[meta.client];
            if st.mode == ClientMode::Closed {
                st.in_flight -= 1;
                st.watermark_ns = st.watermark_ns.max(completion_ns);
            }
            self.out.last_completion_ns = self.out.last_completion_ns.max(completion_ns);
            if admitted {
                self.out.served += 1;
                self.out.queue_wait.record(timing.queue_wait_ns());
                self.out.execute.record(timing.execute_ns());
                self.out.total.record(timing.total_ns());
                inputs.push(input);
                items.push(ExecItem {
                    meta,
                    timing,
                    responder,
                });
            } else {
                self.out.shed += 1;
                self.out.shed_wait.record(timing.queue_wait_ns());
                let _ = responder.send(Completion {
                    meta,
                    timing,
                    outcome: Outcome::Shed,
                });
            }
        }
        if inputs.is_empty() {
            return; // fully shed: zero chip time, replica stays free
        }
        let b = inputs.len() as u64;
        let makespan = self.fill_ns + (b - 1) * self.steady_ns;
        self.free_at[r] = start + makespan;
        self.out.modeled_busy_ns += makespan;
        self.out.batches += 1;
        self.out.batch_sizes.record(b);
        let (rb, ri, rbusy) = &mut self.out.per_replica[r];
        *rb += 1;
        *ri += b;
        *rbusy += makespan;
        if let Err(failed) = self.replica_tx[r].send(ExecBatch { inputs, items }) {
            // The worker is gone (cannot happen short of a panic); answer
            // the batch ourselves so closed-loop clients never hang.
            self.out.send_failures += b;
            for item in failed.0.items {
                let _ = item.responder.send(Completion {
                    meta: item.meta,
                    timing: item.timing,
                    outcome: Outcome::Failed,
                });
            }
        }
    }

    fn run(mut self, events: Receiver<Event>) -> SchedulerOutcome {
        loop {
            loop {
                let frontier = self.frontier();
                let Some(batch) = self.former.try_close(frontier) else {
                    break;
                };
                self.dispatch(batch);
            }
            if self.all_done() && self.former.is_empty() {
                break;
            }
            match events.recv() {
                Ok(event) => {
                    self.handle(event);
                    while let Ok(event) = events.try_recv() {
                        self.handle(event);
                    }
                }
                // Every sender gone: no more submissions are possible,
                // whatever Done events may have been missed.
                Err(_) => {
                    for c in &mut self.clients {
                        c.done = true;
                    }
                }
            }
        }
        if self.out.offered == 0 {
            self.out.first_arrival_ns = 0;
        }
        self.out
    }
}

/// Host-side functional execution of one replica: drains its batch
/// queue through [`red_runtime::Chip::run_batched_with_scratch`] with a
/// persistent per-replica scratch and answers clients directly. Also
/// re-derives the scheduler's virtual charge from the *measured*
/// `RuntimeReport` for [`ServerReport::reconciles`].
fn replica_worker(chip: red_runtime::Chip, batches: Receiver<ExecBatch>) -> ReplicaStats {
    let analytic = chip.pipeline_report();
    let mut scratch = chip.make_scratch();
    let mut stats = ReplicaStats::default();
    while let Ok(batch) = batches.recv() {
        match chip.run_batched_with_scratch(&batch.inputs, &mut scratch) {
            Ok(run) => {
                let b = batch.inputs.len() as u64;
                // The measured pipelined charge: fill is the measured
                // stage-latency sum; the steady interval is the measured
                // bottleneck stage (the Batched-mode report keeps
                // per-stage latencies even though its own schedule is
                // sequential).
                let fill = run.report.fill_latency_ns.round() as u64;
                let bottleneck = run
                    .report
                    .stages
                    .iter()
                    .map(|s| s.latency_ns)
                    .fold(0.0, f64::max)
                    .round() as u64;
                stats.runtime_modeled_ns += fill + (b - 1) * bottleneck;
                if !run.report.reconciles_with(&analytic) {
                    stats.unreconciled += 1;
                }
                stats.host_ns += run.report.wall_ns;
                stats.batches += 1;
                stats.images += b;
                for (item, output) in batch.items.into_iter().zip(run.outputs) {
                    let _ = item.responder.send(Completion {
                        meta: item.meta,
                        timing: item.timing,
                        outcome: Outcome::Served(output),
                    });
                }
            }
            Err(e) => {
                stats.failed += batch.items.len() as u64;
                if stats.first_error.is_none() {
                    stats.first_error = Some(e.to_string());
                }
                for item in batch.items {
                    let _ = item.responder.send(Completion {
                        meta: item.meta,
                        timing: item.timing,
                        outcome: Outcome::Failed,
                    });
                }
            }
        }
    }
    stats
}

/// A running serving session over a [`ChipFleet`].
///
/// [`Server::start`] spawns the scheduler thread and one worker per
/// replica and returns a [`ClientHandle`] per requested client. Drop (or
/// [`finish`](ClientHandle::finish)) every handle, then call
/// [`Server::finish`] to drain, join, and collect the [`ServerReport`].
#[derive(Debug)]
pub struct Server {
    events: Sender<Event>,
    scheduler: JoinHandle<SchedulerOutcome>,
    workers: Vec<JoinHandle<ReplicaStats>>,
    network: String,
    design: String,
    replicas: usize,
    clients: usize,
    max_batch: usize,
    max_wait_ns: u64,
    policy_name: String,
}

impl std::fmt::Debug for SchedulerOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SchedulerOutcome")
            .field("offered", &self.offered)
            .field("served", &self.served)
            .field("shed", &self.shed)
            .finish_non_exhaustive()
    }
}

impl std::fmt::Debug for ReplicaStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicaStats")
            .field("batches", &self.batches)
            .field("images", &self.images)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Starts serving: one scheduler thread, one worker per fleet
    /// replica, one [`ClientHandle`] per entry of `modes`.
    ///
    /// # Errors
    ///
    /// [`ServerError::NoClients`] when `modes` is empty.
    pub fn start(
        fleet: &ChipFleet,
        config: &ServerConfig,
        modes: &[ClientMode],
    ) -> Result<(Server, Vec<ClientHandle>), ServerError> {
        if modes.is_empty() {
            return Err(ServerError::NoClients);
        }
        let chip = fleet.chip();
        let layer0 = chip.stage(0).expect("compiled chips have stages").layer();
        let expected_shape = (layer0.input_h(), layer0.input_w(), layer0.channels());
        let analytic = chip.pipeline_report();
        let fill_ns = analytic.fill_latency_ns().round() as u64;
        let steady_ns = analytic.steady_interval_ns().round() as u64;

        let (event_tx, event_rx) = channel::<Event>();
        let mut replica_tx = Vec::with_capacity(fleet.replicas());
        let mut workers = Vec::with_capacity(fleet.replicas());
        for _ in 0..fleet.replicas() {
            // Capacity 2: classic double buffering — one batch executing,
            // one staged — with backpressure into the scheduler.
            let (tx, rx) = sync_channel::<ExecBatch>(2);
            let replica = fleet.replica_chip();
            workers.push(std::thread::spawn(move || replica_worker(replica, rx)));
            replica_tx.push(tx);
        }

        let scheduler_state = Scheduler {
            former: BatchFormer::new(config.max_batch, config.max_wait_ns),
            clients: modes
                .iter()
                .map(|&mode| ClientState {
                    mode,
                    done: false,
                    in_flight: 0,
                    watermark_ns: 0,
                })
                .collect(),
            policy: Arc::clone(&config.policy),
            fill_ns,
            steady_ns,
            free_at: vec![0; fleet.replicas()],
            replica_tx,
            out: SchedulerOutcome {
                offered: 0,
                served: 0,
                shed: 0,
                send_failures: 0,
                batches: 0,
                queue_wait: LatencyHistogram::new(),
                execute: LatencyHistogram::new(),
                total: LatencyHistogram::new(),
                shed_wait: LatencyHistogram::new(),
                batch_sizes: LatencyHistogram::new(),
                first_arrival_ns: u64::MAX,
                last_completion_ns: 0,
                modeled_busy_ns: 0,
                per_replica: vec![(0, 0, 0); fleet.replicas()],
            },
        };
        let scheduler = std::thread::spawn(move || scheduler_state.run(event_rx));

        let handles = (0..modes.len())
            .map(|id| {
                let (completion_tx, completions) = channel::<Completion>();
                ClientHandle {
                    id,
                    seq: 0,
                    last_arrival_ns: 0,
                    expected_shape,
                    events: event_tx.clone(),
                    completion_tx,
                    completions,
                    done: false,
                }
            })
            .collect();

        Ok((
            Server {
                events: event_tx,
                scheduler,
                workers,
                network: chip.name().to_string(),
                design: chip.design().label().to_string(),
                replicas: fleet.replicas(),
                clients: modes.len(),
                max_batch: config.max_batch,
                max_wait_ns: config.max_wait_ns,
                policy_name: config.policy.name().to_string(),
            },
            handles,
        ))
    }

    /// Drains outstanding work, joins every thread, and returns the
    /// session report. Every [`ClientHandle`] must be finished or
    /// dropped first, or this blocks waiting for them.
    ///
    /// # Panics
    ///
    /// Propagates panics from the scheduler or worker threads (a
    /// panicking custom [`AdmissionPolicy`] surfaces here).
    pub fn finish(self) -> ServerReport {
        drop(self.events);
        let out = self
            .scheduler
            .join()
            .expect("scheduler thread never panics");
        // The scheduler exiting dropped the batch senders; workers drain
        // their queues and return.
        let stats: Vec<ReplicaStats> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("replica worker never panics"))
            .collect();
        let span_ns = out
            .last_completion_ns
            .saturating_sub(if out.first_arrival_ns == u64::MAX {
                0
            } else {
                out.first_arrival_ns
            });
        let replica_reports = stats
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let (batches, images, busy_ns) = out.per_replica[i];
                ReplicaReport {
                    replica: i,
                    batches,
                    images,
                    busy_ns,
                    utilization: if span_ns == 0 {
                        0.0
                    } else {
                        busy_ns as f64 / span_ns as f64
                    },
                    host_ns: s.host_ns,
                }
            })
            .collect();
        ServerReport {
            network: self.network,
            design: self.design,
            replicas: self.replicas,
            clients: self.clients,
            max_batch: self.max_batch,
            max_wait_ns: self.max_wait_ns,
            policy: self.policy_name,
            offered: out.offered,
            served: out.served,
            shed: out.shed,
            failed: stats.iter().map(|s| s.failed).sum::<u64>() + out.send_failures,
            batches: out.batches,
            queue_wait: out.queue_wait,
            execute: out.execute,
            total: out.total,
            shed_wait: out.shed_wait,
            batch_sizes: out.batch_sizes,
            first_arrival_ns: if out.first_arrival_ns == u64::MAX {
                0
            } else {
                out.first_arrival_ns
            },
            last_completion_ns: out.last_completion_ns,
            modeled_busy_ns: out.modeled_busy_ns,
            runtime_modeled_ns: stats.iter().map(|s| s.runtime_modeled_ns).sum(),
            batches_reconciled: stats.iter().all(|s| s.unreconciled == 0),
            replica_reports,
            host_exec_ns: stats.iter().map(|s| s.host_ns).sum(),
            first_error: stats.iter().find_map(|s| s.first_error.clone()),
        }
    }
}
