//! Replica health: canary probing, state machine, repair costing.
//!
//! Each replica carries a small *witness* crossbar that ages exactly like
//! the replica's real arrays would: drift advances and stuck-at strikes
//! from the fault plan are applied to the witness, and a canary prober
//! periodically replays a compiled golden probe input through it on the
//! virtual clock. The observed deviation from the frozen digital
//! reference drives the replica state machine
//!
//! ```text
//! Active → Degraded → Quarantined → Reprogramming → Active
//! ```
//!
//! with thresholds, probe cadence, retry budget and reprogram sizing all
//! in [`HealthConfig`]. Reprogramming latency and energy come from the
//! modeled `CostModel::reprogram_cost` entry, so repair outages are
//! priced by the same component taxonomy as everything else.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use red_device::DriftModel;
use red_xbar::{CrossbarArray, XbarConfig};

/// Tunables for the canary prober and self-healing loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Virtual interval between canary probes of each replica, in ns.
    pub probe_interval_ns: u64,
    /// Witness deviation (relative to the golden reference's magnitude)
    /// at which a replica is marked [`ReplicaState::Degraded`].
    pub warn_deviation: f64,
    /// Deviation at which a replica is quarantined and re-programmed.
    pub quarantine_deviation: f64,
    /// Times a request orphaned by a replica crash is re-queued before
    /// it is hedged or shed.
    pub max_retries: u32,
    /// Drift exponent used when composing fault-plan drift advances.
    pub drift_nu: f64,
    /// Cells rewritten when a replica re-programs; sized per
    /// `CostModel::reprogram_cost` (write-and-verify, serial).
    pub reprogram_cells: u64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self {
            probe_interval_ns: 100_000,
            warn_deviation: 0.05,
            quarantine_deviation: 0.20,
            max_retries: 2,
            drift_nu: 0.03,
            reprogram_cells: 4096,
        }
    }
}

impl HealthConfig {
    /// Sets the probe cadence.
    pub fn probe_interval_ns(mut self, ns: u64) -> Self {
        self.probe_interval_ns = ns;
        self
    }

    /// Sets the degraded / quarantine deviation thresholds.
    pub fn deviations(mut self, warn: f64, quarantine: f64) -> Self {
        assert!(
            0.0 < warn && warn <= quarantine,
            "need 0 < warn <= quarantine"
        );
        self.warn_deviation = warn;
        self.quarantine_deviation = quarantine;
        self
    }

    /// Sets the per-request retry budget.
    pub fn max_retries(mut self, retries: u32) -> Self {
        self.max_retries = retries;
        self
    }

    /// Sets the reprogram footprint in cells.
    pub fn reprogram_cells(mut self, cells: u64) -> Self {
        self.reprogram_cells = cells;
        self
    }
}

/// Where a replica sits in the self-healing state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplicaState {
    /// Healthy; the scheduler routes to it.
    #[default]
    Active,
    /// The canary deviation crossed the warning threshold: still
    /// serving, flagged for operators.
    Degraded,
    /// Deviation crossed the quarantine threshold or the replica
    /// crashed: pulled from routing, awaiting repair.
    Quarantined,
    /// Being re-programmed (a modeled, finite outage); returns to
    /// [`ReplicaState::Active`] when done.
    Reprogramming,
    /// Permanently dead for the rest of the session (unused by the
    /// built-in plan kinds; reserved for explicit decommissioning).
    Dead,
}

impl ReplicaState {
    /// Stable lowercase label for traces and metrics.
    pub fn as_str(&self) -> &'static str {
        match self {
            ReplicaState::Active => "active",
            ReplicaState::Degraded => "degraded",
            ReplicaState::Quarantined => "quarantined",
            ReplicaState::Reprogramming => "reprogramming",
            ReplicaState::Dead => "dead",
        }
    }

    /// `true` when the scheduler may route new batches here.
    pub fn routable(&self) -> bool {
        matches!(self, ReplicaState::Active | ReplicaState::Degraded)
    }
}

/// The witness crossbar a replica's canary probes run against.
///
/// Small enough to probe cheaply, built from seeded-random weights and a
/// seeded-random probe input, with the golden response frozen from the
/// digital reference at construction (digital weights are unaffected by
/// analog faults, so the reference stays exact across the session).
#[derive(Debug, Clone)]
pub(crate) struct Witness {
    canary: CrossbarArray,
    probe_input: Vec<i64>,
    golden: Vec<i64>,
    seed: u64,
}

/// Witness geometry: big enough that random strikes land with high
/// probability, small enough that probing is ~free.
const WITNESS_ROWS: usize = 32;
const WITNESS_COLS: usize = 16;

impl Witness {
    /// Builds the witness for `(partition, replica)` from the plan seed.
    pub(crate) fn new(seed: u64) -> Self {
        let cfg = XbarConfig::ideal();
        let mut rng = StdRng::seed_from_u64(seed);
        let wb = cfg.weight_bound();
        let ib = cfg.input_bound();
        let weights: Vec<Vec<i64>> = (0..WITNESS_ROWS)
            .map(|_| (0..WITNESS_COLS).map(|_| rng.gen_range(-wb..=wb)).collect())
            .collect();
        let canary = CrossbarArray::program(&cfg, &weights)
            .expect("witness weights are in range by construction");
        let probe_input: Vec<i64> = (0..WITNESS_ROWS).map(|_| rng.gen_range(-ib..=ib)).collect();
        let golden = canary.vmm_exact(&probe_input);
        Self {
            canary,
            probe_input,
            golden,
            seed,
        }
    }

    /// Replays the golden probe and returns the relative deviation:
    /// `max_i |y_i - g_i| / max(1, max_i |g_i|)`.
    pub(crate) fn deviation(&self) -> f64 {
        let got = self.canary.vmm(&self.probe_input);
        let scale = self
            .golden
            .iter()
            .map(|g| g.abs())
            .max()
            .unwrap_or(0)
            .max(1) as f64;
        let worst = got
            .iter()
            .zip(&self.golden)
            .map(|(y, g)| (y - g).abs())
            .max()
            .unwrap_or(0) as f64;
        worst / scale
    }

    /// Ages the witness to the composed drift model.
    pub(crate) fn advance_drift(&mut self, model: DriftModel) {
        self.canary.advance_drift(model);
    }

    /// Lands `cells` stuck-at strikes with the event's derived seed.
    pub(crate) fn strike(&mut self, cells: usize, event_seed: u64) {
        self.canary.apply_faults(cells, event_seed);
    }

    /// Current composed drift model (for composing further advances).
    pub(crate) fn drift(&self) -> DriftModel {
        self.canary.config().drift
    }

    /// Re-programs the witness: fresh conductances, zero strikes, fresh
    /// drift — same seed, so the golden reference is unchanged.
    pub(crate) fn reprogram(&mut self) {
        *self = Witness::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_witness_matches_golden_exactly() {
        let w = Witness::new(11);
        assert_eq!(w.deviation(), 0.0);
    }

    #[test]
    fn drift_raises_deviation_and_reprogram_clears_it() {
        let mut w = Witness::new(11);
        let month = 30.0 * 86_400.0;
        w.advance_drift(DriftModel::after(0.03, month));
        let drifted = w.deviation();
        assert!(drifted > 0.05, "a month at nu=0.03 should warn: {drifted}");
        w.reprogram();
        assert_eq!(w.deviation(), 0.0);
    }

    #[test]
    fn strikes_raise_deviation_deterministically() {
        let mut a = Witness::new(3);
        let mut b = Witness::new(3);
        a.strike(64, 99);
        b.strike(64, 99);
        assert!(a.deviation() > 0.0);
        assert_eq!(a.deviation(), b.deviation());
    }

    #[test]
    fn state_machine_labels_and_routability() {
        assert!(ReplicaState::Active.routable());
        assert!(ReplicaState::Degraded.routable());
        assert!(!ReplicaState::Quarantined.routable());
        assert!(!ReplicaState::Reprogramming.routable());
        assert_eq!(ReplicaState::Reprogramming.as_str(), "reprogramming");
    }

    #[test]
    fn config_builders_validate() {
        let cfg = HealthConfig::default()
            .probe_interval_ns(50_000)
            .deviations(0.01, 0.10)
            .max_retries(3)
            .reprogram_cells(1024);
        assert_eq!(cfg.probe_interval_ns, 50_000);
        assert_eq!(cfg.warn_deviation, 0.01);
        assert_eq!(cfg.max_retries, 3);
        assert_eq!(cfg.reprogram_cells, 1024);
    }
}
