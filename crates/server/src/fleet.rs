//! Chip replication: N serving replicas, one copy of the weights.

use crate::ServerError;
use red_runtime::{Chip, Floorplan};
use serde::Serialize;

/// A fleet of identical chip replicas serving one compiled network.
///
/// Replication is `Arc`-shallow: every replica shares the immutable
/// compiled stages of the source [`Chip`] (programmed crossbars,
/// effective-current planes, gather plans — see
/// [`red_runtime::Stage::shared_compiled`]), and each replica worker
/// builds its own mutable scratch ([`Chip::make_scratch`]). The modeled
/// *hardware* cost of replication is real, though: every replica is a
/// full physical copy of the chip's tile groups, and the fleet reports
/// the aggregate floorplan accordingly.
#[derive(Debug, Clone)]
pub struct ChipFleet {
    chip: Chip,
    replicas: usize,
}

/// Aggregate floorplan of a [`ChipFleet`]: the per-replica plan scaled
/// by the replica count.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetFloorplan {
    /// Number of replicas.
    pub replicas: usize,
    /// One replica's floorplan.
    pub per_replica: Floorplan,
    /// Total fleet area (all replicas), in µm².
    pub total_area_um2: f64,
    /// Total physical macro count across the fleet.
    pub total_macros: usize,
}

impl ChipFleet {
    /// Builds a fleet of `replicas` clones of `chip`.
    ///
    /// # Errors
    ///
    /// [`ServerError::EmptyFleet`] when `replicas` is zero.
    pub fn new(chip: Chip, replicas: usize) -> Result<Self, ServerError> {
        if replicas == 0 {
            return Err(ServerError::EmptyFleet);
        }
        Ok(Self { chip, replicas })
    }

    /// Number of replicas.
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// The shared source chip (replica 0's identity).
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// A replica's chip handle — an `Arc`-shallow clone sharing the
    /// compiled stages.
    pub fn replica_chip(&self) -> Chip {
        self.chip.clone()
    }

    /// The aggregate fleet floorplan.
    pub fn floorplan(&self) -> FleetFloorplan {
        let per_replica = self.chip.floorplan();
        FleetFloorplan {
            replicas: self.replicas,
            total_area_um2: per_replica.total_area_um2() * self.replicas as f64,
            total_macros: per_replica.total_macros() * self.replicas,
            per_replica,
        }
    }

    /// Total fleet area, in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.floorplan().total_area_um2
    }

    /// Modeled peak fleet throughput, in images per second: every
    /// replica emitting one output per bottleneck interval. The serving
    /// scheduler approaches this as `max_batch` grows; `max_batch = 1`
    /// caps each replica at one output per *fill latency* instead.
    pub fn peak_throughput_per_s(&self) -> f64 {
        let analytic = self.chip.pipeline_report();
        self.replicas as f64 * 1e9 / analytic.steady_interval_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_core::prelude::Design;
    use red_runtime::ChipBuilder;
    use red_workloads::networks;

    fn chip() -> Chip {
        let stack = networks::sngan_generator(64).unwrap();
        ChipBuilder::new()
            .design(Design::ZeroPadding)
            .compile_seeded(&stack, 5, 7)
            .unwrap()
    }

    #[test]
    fn fleet_aggregates_area_and_macros() {
        let chip = chip();
        let one = chip.floorplan();
        let fleet = ChipFleet::new(chip, 3).unwrap();
        let plan = fleet.floorplan();
        assert_eq!(plan.replicas, 3);
        assert_eq!(plan.per_replica, one);
        assert!((plan.total_area_um2 - 3.0 * one.total_area_um2()).abs() < 1e-9);
        assert_eq!(plan.total_macros, 3 * one.total_macros());
        assert!((fleet.total_area_um2() - plan.total_area_um2).abs() < 1e-9);
    }

    #[test]
    fn replica_chips_share_compiled_stages() {
        let fleet = ChipFleet::new(chip(), 2).unwrap();
        let a = fleet.replica_chip();
        let b = fleet.replica_chip();
        for (x, y) in a.stages().iter().zip(b.stages()) {
            assert!(std::sync::Arc::ptr_eq(
                x.shared_compiled(),
                y.shared_compiled()
            ));
        }
    }

    #[test]
    fn peak_throughput_scales_with_replicas() {
        let chip = chip();
        let single = ChipFleet::new(chip.clone(), 1)
            .unwrap()
            .peak_throughput_per_s();
        let double = ChipFleet::new(chip, 2).unwrap().peak_throughput_per_s();
        assert!((double / single - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_replicas_is_rejected() {
        assert!(matches!(
            ChipFleet::new(chip(), 0),
            Err(ServerError::EmptyFleet)
        ));
    }
}
