//! Chip replication and partitioning: several resident networks, N
//! serving replicas each, one copy of each network's weights.

use crate::ServerError;
use red_runtime::{Chip, Floorplan};
use serde::Serialize;

/// One resident network's slice of the fleet: a compiled [`Chip`] and
/// the replicas provisioned for it.
///
/// Replication is `Arc`-shallow: every replica shares the immutable
/// compiled stages of the source [`Chip`] (programmed crossbars,
/// effective-current planes, gather plans — see
/// [`red_runtime::Stage::shared_compiled`]), and each replica worker
/// builds its own mutable scratch ([`Chip::make_scratch`]). The modeled
/// *hardware* cost of replication is real, though: every replica is a
/// full physical copy of the chip's tile groups, and the fleet reports
/// the aggregate floorplan accordingly.
#[derive(Debug, Clone)]
pub struct FleetPartition {
    chip: Chip,
    replicas: usize,
}

impl FleetPartition {
    /// The partition's compiled network.
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// Provisioned replicas (the autoscaler's ceiling).
    pub fn replicas(&self) -> usize {
        self.replicas
    }

    /// A replica's chip handle — an `Arc`-shallow clone sharing the
    /// compiled stages.
    pub fn replica_chip(&self) -> Chip {
        self.chip.clone()
    }

    /// Modeled peak partition throughput, in images per second: every
    /// replica emitting one output per bottleneck interval.
    pub fn peak_throughput_per_s(&self) -> f64 {
        let analytic = self.chip.pipeline_report();
        self.replicas as f64 * 1e9 / analytic.steady_interval_ns()
    }
}

/// A fleet of chip replicas hosting one or more resident networks.
///
/// Each **partition** serves one compiled network with its own replica
/// pool; requests route to a partition by the `network` tag on
/// [`ClientHandle::submit_to`](crate::ClientHandle::submit_to). A
/// single-network fleet ([`ChipFleet::new`]) is the one-partition
/// special case.
#[derive(Debug, Clone)]
pub struct ChipFleet {
    partitions: Vec<FleetPartition>,
}

/// One partition's slice of a [`FleetFloorplan`].
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct PartitionFloorplan {
    /// Partition index (the request routing tag).
    pub partition: usize,
    /// Network name the partition serves.
    pub network: String,
    /// Provisioned replicas.
    pub replicas: usize,
    /// One replica's floorplan.
    pub per_replica: Floorplan,
    /// Partition area (all its replicas), in µm².
    pub area_um2: f64,
    /// Physical macro count across the partition's replicas.
    pub macros: usize,
}

/// Aggregate floorplan of a [`ChipFleet`]: every partition's replicas,
/// priced as full physical chips.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FleetFloorplan {
    /// Total replica count across partitions.
    pub replicas: usize,
    /// Per-partition breakdown.
    pub partitions: Vec<PartitionFloorplan>,
    /// Total fleet area (all partitions, all replicas), in µm².
    pub total_area_um2: f64,
    /// Total physical macro count across the fleet.
    pub total_macros: usize,
}

impl ChipFleet {
    /// Builds a single-partition fleet of `replicas` clones of `chip`.
    ///
    /// # Errors
    ///
    /// [`ServerError::EmptyFleet`] when `replicas` is zero.
    pub fn new(chip: Chip, replicas: usize) -> Result<Self, ServerError> {
        Self::multi(vec![(chip, replicas)])
    }

    /// Builds a multi-network fleet: one partition per `(chip,
    /// replicas)` pair, in routing-tag order.
    ///
    /// # Errors
    ///
    /// [`ServerError::EmptyFleet`] when `parts` is empty or any
    /// partition has zero replicas.
    pub fn multi(parts: Vec<(Chip, usize)>) -> Result<Self, ServerError> {
        if parts.is_empty() || parts.iter().any(|(_, r)| *r == 0) {
            return Err(ServerError::EmptyFleet);
        }
        Ok(Self {
            partitions: parts
                .into_iter()
                .map(|(chip, replicas)| FleetPartition { chip, replicas })
                .collect(),
        })
    }

    /// The resident-network partitions, in routing-tag order.
    pub fn partitions(&self) -> &[FleetPartition] {
        &self.partitions
    }

    /// Number of resident networks.
    pub fn partition_count(&self) -> usize {
        self.partitions.len()
    }

    /// Total replicas across partitions.
    pub fn replicas(&self) -> usize {
        self.partitions.iter().map(|p| p.replicas).sum()
    }

    /// The first partition's chip (the whole fleet's, for
    /// single-network fleets).
    pub fn chip(&self) -> &Chip {
        &self.partitions[0].chip
    }

    /// A replica handle of the first partition's chip.
    pub fn replica_chip(&self) -> Chip {
        self.partitions[0].replica_chip()
    }

    /// The aggregate fleet floorplan.
    pub fn floorplan(&self) -> FleetFloorplan {
        let partitions: Vec<PartitionFloorplan> = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let per_replica = p.chip.floorplan();
                PartitionFloorplan {
                    partition: i,
                    network: p.chip.name().to_string(),
                    replicas: p.replicas,
                    area_um2: per_replica.total_area_um2() * p.replicas as f64,
                    macros: per_replica.total_macros() * p.replicas,
                    per_replica,
                }
            })
            .collect();
        FleetFloorplan {
            replicas: self.replicas(),
            total_area_um2: partitions.iter().map(|p| p.area_um2).sum(),
            total_macros: partitions.iter().map(|p| p.macros).sum(),
            partitions,
        }
    }

    /// Total fleet area, in µm².
    pub fn total_area_um2(&self) -> f64 {
        self.floorplan().total_area_um2
    }

    /// Modeled peak fleet throughput, in images per second, summed over
    /// partitions. The serving scheduler approaches this as `max_batch`
    /// grows; `max_batch = 1` caps each replica at one output per *fill
    /// latency* instead.
    pub fn peak_throughput_per_s(&self) -> f64 {
        self.partitions
            .iter()
            .map(|p| p.peak_throughput_per_s())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use red_core::prelude::Design;
    use red_runtime::ChipBuilder;
    use red_workloads::networks;

    fn chip() -> Chip {
        let stack = networks::sngan_generator(64).unwrap();
        ChipBuilder::new()
            .design(Design::ZeroPadding)
            .compile_seeded(&stack, 5, 7)
            .unwrap()
    }

    fn second_chip() -> Chip {
        let stack = networks::dcgan_generator(64).unwrap();
        ChipBuilder::new()
            .design(Design::ZeroPadding)
            .compile_seeded(&stack, 5, 7)
            .unwrap()
    }

    #[test]
    fn fleet_aggregates_area_and_macros() {
        let chip = chip();
        let one = chip.floorplan();
        let fleet = ChipFleet::new(chip, 3).unwrap();
        let plan = fleet.floorplan();
        assert_eq!(plan.replicas, 3);
        assert_eq!(plan.partitions.len(), 1);
        assert_eq!(plan.partitions[0].per_replica, one);
        assert!((plan.total_area_um2 - 3.0 * one.total_area_um2()).abs() < 1e-9);
        assert_eq!(plan.total_macros, 3 * one.total_macros());
        assert!((fleet.total_area_um2() - plan.total_area_um2).abs() < 1e-9);
    }

    #[test]
    fn multi_network_fleet_sums_partitions_honestly() {
        let (a, b) = (chip(), second_chip());
        let (pa, pb) = (a.floorplan(), b.floorplan());
        let fleet = ChipFleet::multi(vec![(a, 2), (b, 3)]).unwrap();
        assert_eq!(fleet.partition_count(), 2);
        assert_eq!(fleet.replicas(), 5);
        let plan = fleet.floorplan();
        assert_eq!(plan.partitions.len(), 2);
        assert_eq!(plan.partitions[0].macros, 2 * pa.total_macros());
        assert_eq!(plan.partitions[1].macros, 3 * pb.total_macros());
        let expect = 2.0 * pa.total_area_um2() + 3.0 * pb.total_area_um2();
        assert!((plan.total_area_um2 - expect).abs() < 1e-6);
        let per_part: f64 = fleet
            .partitions()
            .iter()
            .map(|p| p.peak_throughput_per_s())
            .sum();
        assert!((fleet.peak_throughput_per_s() - per_part).abs() < 1e-9);
    }

    #[test]
    fn replica_chips_share_compiled_stages() {
        let fleet = ChipFleet::new(chip(), 2).unwrap();
        let a = fleet.replica_chip();
        let b = fleet.replica_chip();
        for (x, y) in a.stages().iter().zip(b.stages()) {
            assert!(std::sync::Arc::ptr_eq(
                x.shared_compiled(),
                y.shared_compiled()
            ));
        }
    }

    #[test]
    fn peak_throughput_scales_with_replicas() {
        let chip = chip();
        let single = ChipFleet::new(chip.clone(), 1)
            .unwrap()
            .peak_throughput_per_s();
        let double = ChipFleet::new(chip, 2).unwrap().peak_throughput_per_s();
        assert!((double / single - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_replicas_is_rejected() {
        assert!(matches!(
            ChipFleet::new(chip(), 0),
            Err(ServerError::EmptyFleet)
        ));
        assert!(matches!(
            ChipFleet::multi(vec![(chip(), 2), (second_chip(), 0)]),
            Err(ServerError::EmptyFleet)
        ));
        assert!(matches!(
            ChipFleet::multi(Vec::new()),
            Err(ServerError::EmptyFleet)
        ));
    }
}
