//! Tenant classes: named service tiers sharing one fleet.
//!
//! A multi-tenant server maps every client to a [`TenantClass`] that
//! bundles the knobs the admission layer differentiates on: a
//! **weight** (its share of chip time under [`crate::WeightedFair`]), a
//! **priority tier** (its shedding order under
//! [`crate::StrictPriority`]), and an optional **SLO** (the per-request
//! deadline the load generator stamps and deadline-aware policies
//! enforce). Tenancy is accounting plus admission, not isolation: all
//! tenants share the same replicas, batch former, and virtual clock,
//! which is exactly why tail-latency isolation between them is a
//! scheduling result worth measuring rather than a hardware given.

use red_runtime::ExecPrecision;
use serde::Serialize;

/// Index of a tenant class within
/// [`ServerConfig::tenants`](crate::ServerConfig::tenants).
pub type TenantId = usize;

/// One service tier sharing the fleet.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TenantClass {
    /// Display name echoed in reports (e.g. `"interactive"`).
    pub name: String,
    /// Weighted-fair share of chip time under overload. Must be
    /// strictly positive.
    pub weight: f64,
    /// Strict-priority tier: 0 is the highest (last to be shed).
    pub priority: u32,
    /// Per-request SLO: the load generator stamps
    /// `deadline = arrival + slo_ns`. `None` = best-effort traffic
    /// without deadlines.
    pub slo_ns: Option<u64>,
    /// Deepest execution tier brownout control may serve this tenant
    /// at. [`ExecPrecision::Brownout`] (the default) lets the fleet
    /// controller degrade freely; [`ExecPrecision::Full`] pins the
    /// tenant to bit-exact service — a batch carrying one of its
    /// requests runs at full precision regardless of the controller's
    /// tier.
    pub precision_floor: ExecPrecision,
}

impl Default for TenantClass {
    fn default() -> Self {
        Self {
            name: "default".to_string(),
            weight: 1.0,
            priority: 0,
            slo_ns: None,
            precision_floor: ExecPrecision::Brownout,
        }
    }
}

impl TenantClass {
    /// A tenant class with the given name and defaults elsewhere.
    pub fn named(name: &str) -> Self {
        Self {
            name: name.to_string(),
            ..Self::default()
        }
    }

    /// Sets the weighted-fair share.
    ///
    /// # Panics
    ///
    /// Panics unless `weight` is strictly positive and finite.
    pub fn weight(mut self, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "tenant weight must be positive and finite, got {weight}"
        );
        self.weight = weight;
        self
    }

    /// Sets the strict-priority tier (0 = highest).
    pub fn priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the per-request SLO, in virtual ns.
    pub fn slo_ns(mut self, slo_ns: u64) -> Self {
        self.slo_ns = Some(slo_ns);
        self
    }

    /// Sets the deepest execution tier brownout control may serve this
    /// tenant at (`ExecPrecision::Full` pins bit-exact service).
    pub fn precision_floor(mut self, floor: ExecPrecision) -> Self {
        self.precision_floor = floor;
        self
    }

    /// Parses a CLI tenant spec:
    /// `name[:weight[:priority[:slo_us[:floor]]]]`.
    /// A `slo_us` of 0 means best-effort (no deadline); `floor` is a
    /// tier name (`full`/`eco`/`brownout`, default `brownout`).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on malformed input.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut parts = spec.split(':');
        let name = parts
            .next()
            .filter(|n| !n.is_empty())
            .ok_or_else(|| format!("tenant spec '{spec}': empty name"))?;
        let mut class = TenantClass::named(name);
        if let Some(w) = parts.next() {
            let w: f64 = w
                .parse()
                .map_err(|_| format!("tenant spec '{spec}': bad weight '{w}'"))?;
            if !(w > 0.0 && w.is_finite()) {
                return Err(format!("tenant spec '{spec}': weight must be positive"));
            }
            class.weight = w;
        }
        if let Some(p) = parts.next() {
            class.priority = p
                .parse()
                .map_err(|_| format!("tenant spec '{spec}': bad priority '{p}'"))?;
        }
        if let Some(s) = parts.next() {
            let slo_us: u64 = s
                .parse()
                .map_err(|_| format!("tenant spec '{spec}': bad slo_us '{s}'"))?;
            class.slo_ns = (slo_us > 0).then_some(slo_us * 1_000);
        }
        if let Some(f) = parts.next() {
            class.precision_floor = ExecPrecision::from_name(f)
                .ok_or_else(|| format!("tenant spec '{spec}': bad precision floor '{f}'"))?;
        }
        if let Some(extra) = parts.next() {
            return Err(format!("tenant spec '{spec}': trailing field '{extra}'"));
        }
        Ok(class)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_single_neutral_tier() {
        let t = TenantClass::default();
        assert_eq!(t.name, "default");
        assert_eq!(t.weight, 1.0);
        assert_eq!(t.priority, 0);
        assert_eq!(t.slo_ns, None);
        assert_eq!(t.precision_floor, ExecPrecision::Brownout);
    }

    #[test]
    fn builder_sets_every_field() {
        let t = TenantClass::named("premium")
            .weight(4.0)
            .priority(1)
            .slo_ns(150_000);
        assert_eq!(t.name, "premium");
        assert_eq!(t.weight, 4.0);
        assert_eq!(t.priority, 1);
        assert_eq!(t.slo_ns, Some(150_000));
    }

    #[test]
    fn parse_fills_missing_fields_with_defaults() {
        let t = TenantClass::parse("interactive:4:0:200").unwrap();
        assert_eq!(
            (t.name.as_str(), t.weight, t.priority, t.slo_ns),
            ("interactive", 4.0, 0, Some(200_000))
        );
        let t = TenantClass::parse("batch").unwrap();
        assert_eq!((t.weight, t.priority, t.slo_ns), (1.0, 0, None));
        let t = TenantClass::parse("be:2:3:0").unwrap();
        assert_eq!(t.slo_ns, None, "slo_us 0 means best-effort");
    }

    #[test]
    fn parse_reads_the_precision_floor() {
        let t = TenantClass::parse("interactive:4:0:200:full").unwrap();
        assert_eq!(t.precision_floor, ExecPrecision::Full);
        let t = TenantClass::parse("batch:1:2:0:eco").unwrap();
        assert_eq!(t.precision_floor, ExecPrecision::Eco);
        let t = TenantClass::parse("be:1").unwrap();
        assert_eq!(
            t.precision_floor,
            ExecPrecision::Brownout,
            "omitted floor degrades freely"
        );
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(TenantClass::parse("").is_err());
        assert!(TenantClass::parse("x:-1").is_err());
        assert!(TenantClass::parse("x:1:high").is_err());
        assert!(TenantClass::parse("x:1:0:5:extra").is_err());
        assert!(TenantClass::parse("x:1:0:5:full:more").is_err());
    }

    #[test]
    #[should_panic(expected = "weight")]
    fn zero_weight_panics() {
        let _ = TenantClass::named("x").weight(0.0);
    }
}
