//! Deterministic replica autoscaling on the virtual clock.
//!
//! A partition's scheduler evaluates scaling at batch-dispatch instants
//! — the only points where the virtual clock advances — from three
//! trace-deterministic signals: the **queue depth**, measured as the
//! modeled backlog committed ahead of the newest dispatch in units of
//! full-batch makespans (batches dispatch eagerly onto the replica
//! `free_at` ledger, so that ledger — not the former — is where queue
//! pressure accumulates), the **utilization** of the active replicas
//! over the elapsed decision window (modeled busy time charged by the
//! scheduler itself), and the window's **shed count**. The shed signal
//! matters because an admission policy caps the backlog near its lag
//! bound — under overload the queue never grows past a fraction of a
//! makespan, so queue depth alone would read "healthy" while the
//! policy throws work away; saturated utilization *with* sheds is the
//! unambiguous capacity-bound tell, and triggers a scale-up on its
//! own. All three derive solely from the partition's own dispatch
//! sequence, so decisions are a pure function of the request trace —
//! which is what makes autoscaling unit-testable and keeps
//! `BENCH_loadgen.json` reproducible with autoscaling enabled.
//!
//! Hysteresis: at most one ±1-replica step per `cooldown_ns` of virtual
//! time, with the observation window reset after every evaluation, so a
//! single burst cannot trigger a scale-up *and* the reactive
//! scale-down.

use serde::Serialize;

/// Autoscaler tuning. The active replica count stays within
/// `[min_replicas, provisioned]`, where `provisioned` is the
/// partition's replica count in the [`crate::ChipFleet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Lower bound on (and starting value of) active replicas.
    pub min_replicas: usize,
    /// Scale up when the queue depth — backlog ahead of the newest
    /// dispatch, in full-batch makespans — exceeds
    /// `queue_high · active`.
    pub queue_high: f64,
    /// Scale up when window utilization exceeds this fraction *and*
    /// the window shed at least one request: admission control caps
    /// the queue near its lag bound, so a shedding partition shows
    /// saturation, not backlog.
    pub util_high: f64,
    /// Scale down when window utilization falls below this fraction.
    pub util_low: f64,
    /// Minimum virtual time between decisions, in ns.
    pub cooldown_ns: u64,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        Self {
            min_replicas: 1,
            queue_high: 4.0,
            util_high: 0.9,
            util_low: 0.35,
            cooldown_ns: 500_000,
        }
    }
}

/// One applied scaling decision, on the virtual clock. Beyond the
/// decision inputs (queue depth, utilization), the event records *why*
/// capacity moved: which partition, how much modeled backlog sat ahead
/// of the dispatch, how many requests the window shed, and which tenant
/// shed most — so autoscale causes are inspectable in traces without
/// replaying the run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ScaleEvent {
    /// Virtual instant of the decision, in ns.
    pub at_ns: u64,
    /// The fleet partition that scaled.
    pub partition: usize,
    /// Active replicas before.
    pub from: usize,
    /// Active replicas after.
    pub to: usize,
    /// Queue depth that informed the decision.
    pub queue_depth: usize,
    /// Window utilization that informed the decision.
    pub utilization: f64,
    /// Modeled backlog ahead of the newest dispatch, in ns (the raw
    /// signal `queue_depth` discretizes into full-batch makespans).
    pub backlog_ns: u64,
    /// Requests shed by admission control in the observation window.
    pub shed_in_window: u64,
    /// The tenant that shed the most requests in the window (smallest
    /// index on ties); `None` when nothing was shed.
    pub top_shed_tenant: Option<usize>,
}

/// Per-partition autoscaler state (see the module docs).
#[derive(Debug, Clone)]
pub(crate) struct Autoscaler {
    cfg: AutoscaleConfig,
    partition: usize,
    max_replicas: usize,
    window_start_ns: u64,
    busy_in_window_ns: u64,
    /// Window shed counts per tenant; the decision reads the total, the
    /// event attributes the worst offender.
    shed_by_tenant: Vec<u64>,
}

impl Autoscaler {
    /// An autoscaler for fleet partition `partition`, bounded above by
    /// the partition's provisioned replica count, attributing sheds
    /// across `tenant_count` tenant classes.
    pub(crate) fn new(
        cfg: AutoscaleConfig,
        partition: usize,
        max_replicas: usize,
        tenant_count: usize,
    ) -> Self {
        Self {
            cfg,
            partition,
            max_replicas,
            window_start_ns: 0,
            busy_in_window_ns: 0,
            shed_by_tenant: vec![0; tenant_count.max(1)],
        }
    }

    /// The starting active-replica count: `min_replicas` clamped into
    /// `[1, provisioned]`.
    pub(crate) fn initial_active(&self) -> usize {
        self.cfg.min_replicas.clamp(1, self.max_replicas)
    }

    /// Accounts one dispatched batch's modeled busy time.
    pub(crate) fn observe_busy(&mut self, makespan_ns: u64) {
        self.busy_in_window_ns += makespan_ns;
    }

    /// Accounts `n` admission denials charged to `tenant` (clamped to
    /// the last slot for out-of-range tenants, which cannot happen with
    /// a well-formed class table).
    pub(crate) fn observe_shed(&mut self, tenant: usize, n: u64) {
        let slot = tenant.min(self.shed_by_tenant.len() - 1);
        self.shed_by_tenant[slot] += n;
    }

    /// `true` when the cooldown has elapsed and a decision is due —
    /// callers use this to skip the queue-depth computation otherwise.
    pub(crate) fn due(&self, now_ns: u64) -> bool {
        now_ns.saturating_sub(self.window_start_ns) >= self.cfg.cooldown_ns
    }

    /// Evaluates one decision at virtual instant `now_ns` (no-op before
    /// the cooldown elapses). Returns the event to apply when the
    /// active count changes; the observation window resets either way.
    pub(crate) fn decide(
        &mut self,
        now_ns: u64,
        queue_depth: usize,
        backlog_ns: u64,
        active: usize,
    ) -> Option<ScaleEvent> {
        if !self.due(now_ns) {
            return None;
        }
        let span = now_ns.saturating_sub(self.window_start_ns).max(1);
        let utilization = self.busy_in_window_ns as f64 / (active as f64 * span as f64);
        let shed: u64 = self.shed_by_tenant.iter().sum();
        // Worst offender, smallest index on ties — deterministic.
        let top_shed_tenant = if shed == 0 {
            None
        } else {
            let mut best = 0usize;
            for (t, &n) in self.shed_by_tenant.iter().enumerate() {
                if n > self.shed_by_tenant[best] {
                    best = t;
                }
            }
            Some(best)
        };
        self.window_start_ns = now_ns;
        self.busy_in_window_ns = 0;
        self.shed_by_tenant.fill(0);
        let min = self.cfg.min_replicas.clamp(1, self.max_replicas);
        let pressured = queue_depth as f64 > self.cfg.queue_high * active as f64
            || (utilization > self.cfg.util_high && shed > 0);
        let to = if pressured && active < self.max_replicas {
            active + 1
        } else if utilization < self.cfg.util_low && active > min {
            active - 1
        } else {
            return None;
        };
        Some(ScaleEvent {
            at_ns: now_ns,
            partition: self.partition,
            from: active,
            to,
            queue_depth,
            utilization,
            backlog_ns,
            shed_in_window: shed,
            top_shed_tenant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(
            AutoscaleConfig {
                min_replicas: 1,
                queue_high: 4.0,
                util_high: 0.9,
                util_low: 0.35,
                cooldown_ns: 1_000,
            },
            3,
            4,
            3,
        )
    }

    #[test]
    fn scales_up_on_queue_pressure_one_step_at_a_time() {
        let mut a = scaler();
        a.observe_busy(1_000);
        let e = a.decide(1_000, 10, 12_345, 1).expect("queue 10 > 4·1");
        assert_eq!((e.from, e.to, e.queue_depth), (1, 2, 10));
        assert_eq!(e.partition, 3);
        assert_eq!(e.backlog_ns, 12_345, "raw backlog passes through");
        // Still pressured, but the cooldown gates the next step.
        assert!(a.decide(1_500, 50, 0, 2).is_none(), "within cooldown");
        let e = a.decide(2_000, 50, 0, 2).expect("cooldown elapsed");
        assert_eq!((e.from, e.to), (2, 3));
    }

    #[test]
    fn scales_down_on_low_utilization_but_never_below_min() {
        let mut a = scaler();
        a.observe_busy(100); // 10% of one replica over 1 µs
        let e = a.decide(1_000, 0, 0, 2).expect("util 0.05 < 0.35");
        assert_eq!((e.from, e.to), (2, 1));
        assert!(e.utilization < 0.35);
        // At the floor: no further scale-down however idle.
        assert!(a.decide(2_000, 0, 0, 1).is_none());
    }

    #[test]
    fn scales_up_when_saturated_and_shedding_despite_an_empty_queue() {
        // Admission control caps the backlog near its lag bound, so an
        // overloaded shedding partition shows queue ~0 — saturation
        // plus sheds must still scale it up.
        let mut a = scaler();
        a.observe_busy(1_000); // 100% of one replica over 1 µs
        a.observe_shed(2, 40);
        let e = a.decide(1_000, 0, 0, 1).expect("saturated and shedding");
        assert_eq!((e.from, e.to, e.queue_depth), (1, 2, 0));
        assert_eq!(e.shed_in_window, 40, "window shed total recorded");
        assert_eq!(e.top_shed_tenant, Some(2), "shed attributed to tenant");
        // Saturation alone (no sheds: the fleet is merely busy, not
        // throwing work away) must not over-provision.
        a.observe_busy(2_000);
        assert!(a.decide(2_000, 0, 0, 2).is_none(), "busy but not shedding");
    }

    #[test]
    fn holds_steady_at_healthy_utilization() {
        let mut a = scaler();
        a.observe_busy(1_800); // 90% of two replicas over 1 µs
        assert!(a.decide(1_000, 2, 0, 2).is_none(), "no pressure, no waste");
    }

    #[test]
    fn respects_the_provisioned_ceiling() {
        let mut a = scaler();
        a.observe_busy(4_000); // all four replicas saturated
        assert!(a.decide(1_000, 1_000, 0, 4).is_none(), "already at max 4");
    }

    #[test]
    fn window_resets_after_every_evaluation() {
        let mut a = scaler();
        a.observe_busy(900);
        assert!(a.decide(1_000, 0, 0, 1).is_none(), "util 0.9 holds");
        // The 900 ns of busy time must not leak into the next window:
        // with no new work the fresh window's utilization is exactly 0,
        // so the scale-down fires.
        let e = a.decide(2_000, 0, 0, 2).expect("fresh window is idle");
        assert_eq!((e.from, e.to), (2, 1));
        assert_eq!(e.utilization, 0.0);
    }

    #[test]
    fn initial_active_clamps_into_bounds() {
        let a = Autoscaler::new(
            AutoscaleConfig {
                min_replicas: 0,
                ..AutoscaleConfig::default()
            },
            0,
            4,
            1,
        );
        assert_eq!(a.initial_active(), 1);
        let a = Autoscaler::new(
            AutoscaleConfig {
                min_replicas: 9,
                ..AutoscaleConfig::default()
            },
            0,
            4,
            1,
        );
        assert_eq!(a.initial_active(), 4);
    }

    #[test]
    fn decision_sequence_is_deterministic() {
        let run = || {
            let mut a = scaler();
            let mut active = a.initial_active();
            let mut events = Vec::new();
            for k in 0..50u64 {
                a.observe_busy((k % 7) * 300);
                if let Some(e) = a.decide(k * 400, (k % 11) as usize * 2, k * 50, active) {
                    active = e.to;
                    events.push(e);
                }
            }
            events
        };
        assert_eq!(run(), run());
        assert!(!run().is_empty());
    }
}
