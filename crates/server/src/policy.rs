//! SLO-aware admission: decide, at batch dispatch, which requests are
//! worth executing.
//!
//! The scheduler knows the chip's modeled service law exactly (fill
//! latency for the first output, one bottleneck interval per subsequent
//! output — the same numbers `RuntimeReport` reconciliation pins), so at
//! dispatch it can *predict* every batch member's completion instant on
//! the virtual clock. An [`AdmissionPolicy`] turns that prediction into
//! an execute/shed decision. Shedding a doomed request costs zero chip
//! time and frees its slot for a request that can still meet its SLO —
//! which is why [`DeadlineShed`] keeps served tail latency at or below
//! the SLO under overload while [`Fifo`] lets the queue (and p99) grow
//! without bound.

use crate::request::RequestMeta;
use std::sync::Arc;

/// What the scheduler predicts for one request at batch dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceEstimate {
    /// Virtual instant the batch starts on its replica.
    pub batch_start_ns: u64,
    /// The request's position among the batch's admitted requests
    /// (0-based; outputs emerge in this order).
    pub position: usize,
    /// Modeled fill latency of the replica pipeline, in ns.
    pub fill_latency_ns: u64,
    /// Modeled steady-state output interval (bottleneck stage), in ns.
    pub steady_interval_ns: u64,
    /// Predicted virtual completion:
    /// `batch_start + fill + position · steady`.
    pub predicted_completion_ns: u64,
}

/// A batch-dispatch admission decision rule.
///
/// Implementations must be deterministic functions of their inputs: the
/// scheduler replays decisions on the virtual clock, and reports are
/// expected to be reproducible for a fixed trace. Stateless built-ins
/// ([`Fifo`], [`DeadlineShed`]) satisfy this trivially; custom policies
/// (the trait is public precisely so they can be plugged in) should
/// derive everything from [`RequestMeta`] and [`ServiceEstimate`].
pub trait AdmissionPolicy: Send + Sync {
    /// Short name echoed in reports and CLI output (e.g. `"fifo"`).
    fn name(&self) -> &'static str;

    /// `true` to execute the request, `false` to shed it.
    fn admit(&self, meta: &RequestMeta, estimate: &ServiceEstimate) -> bool;
}

/// Admit everything, in arrival order. Deadlines are ignored; under
/// overload the queue — and every latency percentile — grows without
/// bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn admit(&self, _meta: &RequestMeta, _estimate: &ServiceEstimate) -> bool {
        true
    }
}

/// Shed every request whose predicted completion already misses its
/// deadline at dispatch time; requests without a deadline are always
/// admitted. Served requests therefore *never* finish past their
/// deadline (the prediction is exact on the virtual clock), so under
/// overload the served tail stays at or below the SLO and the shed
/// count — not the latency — absorbs the excess load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineShed;

impl AdmissionPolicy for DeadlineShed {
    fn name(&self) -> &'static str {
        "deadline-shed"
    }

    fn admit(&self, meta: &RequestMeta, estimate: &ServiceEstimate) -> bool {
        meta.deadline_ns
            .is_none_or(|d| estimate.predicted_completion_ns <= d)
    }
}

/// Resolves a policy by CLI name (`"fifo"`, `"deadline-shed"`).
pub fn policy_by_name(name: &str) -> Option<Arc<dyn AdmissionPolicy>> {
    match name {
        "fifo" => Some(Arc::new(Fifo)),
        "deadline-shed" | "deadline_shed" => Some(Arc::new(DeadlineShed)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(deadline_ns: Option<u64>) -> RequestMeta {
        RequestMeta {
            client: 0,
            seq: 0,
            arrival_ns: 100,
            deadline_ns,
        }
    }

    fn estimate(predicted: u64) -> ServiceEstimate {
        ServiceEstimate {
            batch_start_ns: 200,
            position: 1,
            fill_latency_ns: 50,
            steady_interval_ns: 10,
            predicted_completion_ns: predicted,
        }
    }

    #[test]
    fn fifo_admits_everything() {
        assert!(Fifo.admit(&meta(Some(0)), &estimate(u64::MAX)));
        assert_eq!(Fifo.name(), "fifo");
    }

    #[test]
    fn deadline_shed_compares_prediction_to_deadline() {
        let p = DeadlineShed;
        assert!(p.admit(&meta(None), &estimate(u64::MAX)));
        assert!(p.admit(&meta(Some(300)), &estimate(300)));
        assert!(!p.admit(&meta(Some(300)), &estimate(301)));
    }

    #[test]
    fn policies_resolve_by_name() {
        assert_eq!(policy_by_name("fifo").unwrap().name(), "fifo");
        assert_eq!(
            policy_by_name("deadline-shed").unwrap().name(),
            "deadline-shed"
        );
        assert_eq!(
            policy_by_name("deadline_shed").unwrap().name(),
            "deadline-shed"
        );
        assert!(policy_by_name("lifo").is_none());
    }
}
