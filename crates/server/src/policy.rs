//! SLO-aware admission: decide, at batch dispatch, which requests are
//! worth executing.
//!
//! The scheduler knows the chip's modeled service law exactly (fill
//! latency for the first output, one bottleneck interval per subsequent
//! output — the same numbers `RuntimeReport` reconciliation pins), so at
//! dispatch it can *predict* every batch member's completion instant on
//! the virtual clock. An [`AdmissionPolicy`] turns that prediction into
//! an execute/shed decision. Shedding a doomed request costs zero chip
//! time and frees its slot for a request that can still meet its SLO —
//! which is why [`DeadlineShed`] keeps served tail latency at or below
//! the SLO under overload while [`Fifo`] lets the queue (and p99) grow
//! without bound.
//!
//! # Tenant-aware policies and per-partition state
//!
//! [`WeightedFair`] and [`StrictPriority`] differentiate by the
//! request's [`TenantClass`]: under queue pressure they shed the tenant
//! that is over its fair share (respectively, the lowest-priority
//! tiers), which is what pins a latency-sensitive tenant's p99 while a
//! best-effort tenant absorbs the overload. Both are deterministic
//! functions of the *per-partition* decision sequence: the scheduler
//! calls [`AdmissionPolicy::fork`] once per fleet partition so that
//! each partition's admission state evolves only with its own
//! dispatches — partitions dispatch independently, and cross-partition
//! dispatch interleaving is not deterministic, so shared mutable state
//! would break report reproducibility.

use crate::request::RequestMeta;
use crate::tenant::TenantClass;
use std::sync::Arc;

/// What the scheduler predicts for one request at batch dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceEstimate {
    /// Virtual instant the batch starts on its replica.
    pub batch_start_ns: u64,
    /// The request's position among the batch's admitted requests
    /// (0-based; outputs emerge in this order).
    pub position: usize,
    /// Modeled fill latency of the replica pipeline, in ns.
    pub fill_latency_ns: u64,
    /// Modeled steady-state output interval (bottleneck stage), in ns.
    pub steady_interval_ns: u64,
    /// Predicted virtual completion:
    /// `batch_start + fill + position · steady`.
    pub predicted_completion_ns: u64,
}

impl ServiceEstimate {
    /// Queue lag at dispatch: how long the request has already waited
    /// (`batch_start − arrival`). The pressure signal the tenant-aware
    /// policies key on.
    pub fn lag_ns(&self, meta: &RequestMeta) -> u64 {
        self.batch_start_ns.saturating_sub(meta.arrival_ns)
    }

    /// `true` when the predicted completion already misses the
    /// request's deadline — chip time spent on it would be wasted.
    pub fn doomed(&self, meta: &RequestMeta) -> bool {
        meta.deadline_ns
            .is_some_and(|d| self.predicted_completion_ns > d)
    }
}

/// Why an admission policy shed a request — recorded in trace events
/// and per-tenant shed metrics so overload behavior is attributable
/// (was the request doomed anyway, over its fair share, or out of its
/// priority tier's lag budget?).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// Predicted completion already past the request's deadline: chip
    /// time spent on it would be wasted regardless of policy.
    Doomed,
    /// Tenant ahead of its weighted-fair share under queue pressure.
    OverShare,
    /// Queue lag exceeded the tenant's priority-tier budget.
    LagBudget,
    /// Policy-specific rule not covered by the cases above.
    Policy,
    /// The request's replica died mid-batch and the retry budget or
    /// deadline left no way to re-serve it (fault-plan runs only).
    ReplicaLost,
}

impl ShedReason {
    /// Every reason, in the stable order used by per-reason ledgers
    /// ([`ShedReason::index`] indexes into this).
    pub const ALL: [ShedReason; 5] = [
        ShedReason::Doomed,
        ShedReason::OverShare,
        ShedReason::LagBudget,
        ShedReason::Policy,
        ShedReason::ReplicaLost,
    ];

    /// Stable lowercase label for traces and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            ShedReason::Doomed => "doomed",
            ShedReason::OverShare => "over-share",
            ShedReason::LagBudget => "lag-budget",
            ShedReason::Policy => "policy",
            ShedReason::ReplicaLost => "replica-lost",
        }
    }

    /// Position in [`ShedReason::ALL`].
    pub fn index(self) -> usize {
        match self {
            ShedReason::Doomed => 0,
            ShedReason::OverShare => 1,
            ShedReason::LagBudget => 2,
            ShedReason::Policy => 3,
            ShedReason::ReplicaLost => 4,
        }
    }
}

/// A batch-dispatch admission decision rule.
///
/// Implementations must be deterministic functions of their decision
/// sequence: the scheduler replays decisions on the virtual clock, and
/// reports are expected to be reproducible for a fixed trace. Stateless
/// policies ([`Fifo`], [`DeadlineShed`], [`StrictPriority`]) satisfy
/// this trivially; stateful ones ([`WeightedFair`]) get a private state
/// copy per fleet partition via [`AdmissionPolicy::fork`], because only
/// the *per-partition* dispatch order is deterministic.
pub trait AdmissionPolicy: Send + Sync {
    /// Short name echoed in reports and CLI output (e.g. `"fifo"`).
    fn name(&self) -> &'static str;

    /// `true` to execute the request, `false` to shed it. Takes `&mut
    /// self` so policies can account admitted work; the scheduler calls
    /// it exactly once per request, in dispatch order, on the
    /// partition's forked instance.
    fn admit(&mut self, meta: &RequestMeta, estimate: &ServiceEstimate) -> bool;

    /// A fresh instance with the same configuration and *reset* state —
    /// one per fleet partition.
    fn fork(&self) -> Box<dyn AdmissionPolicy>;

    /// Classifies a shed the scheduler just observed (i.e. [`admit`]
    /// returned `false` for this exact `(meta, estimate)`). Pure — must
    /// not touch decision state; the scheduler calls it *after* the
    /// admit and only for sheds. The default distinguishes doomed
    /// requests from everything else; policies with richer rules
    /// override it.
    ///
    /// [`admit`]: AdmissionPolicy::admit
    fn shed_reason(&self, meta: &RequestMeta, estimate: &ServiceEstimate) -> ShedReason {
        if estimate.doomed(meta) {
            ShedReason::Doomed
        } else {
            ShedReason::Policy
        }
    }
}

/// Admit everything, in arrival order. Deadlines are ignored; under
/// overload the queue — and every latency percentile — grows without
/// bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Fifo;

impl AdmissionPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn admit(&mut self, _meta: &RequestMeta, _estimate: &ServiceEstimate) -> bool {
        true
    }

    fn fork(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(Fifo)
    }
}

/// Shed every request whose predicted completion already misses its
/// deadline at dispatch time; requests without a deadline are always
/// admitted. Served requests therefore *never* finish past their
/// deadline (the prediction is exact on the virtual clock), so under
/// overload the served tail stays at or below the SLO and the shed
/// count — not the latency — absorbs the excess load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineShed;

impl AdmissionPolicy for DeadlineShed {
    fn name(&self) -> &'static str {
        "deadline-shed"
    }

    fn admit(&mut self, meta: &RequestMeta, estimate: &ServiceEstimate) -> bool {
        !estimate.doomed(meta)
    }

    fn fork(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(DeadlineShed)
    }
}

/// How many admission decisions a tenant may sit out before it is
/// considered idle (dropped from the active set, and lifted to the
/// current virtual time when it returns so idleness banks no credit).
const WF_ACTIVE_WINDOW: u64 = 256;

/// Weighted-fair shedding: under queue pressure, chip time is
/// apportioned to tenants in proportion to their
/// [`TenantClass::weight`]s, via start-time fairness over normalized
/// virtual service.
///
/// Each tenant carries a **normalized service** counter
/// `norm(t) = admitted work / weight(t)` (work charged at the marginal
/// batch cost, one steady interval per admitted request). The rule,
/// applied per request in dispatch order:
///
/// * a **doomed** request (predicted completion past its deadline) is
///   always shed — same zero-waste argument as [`DeadlineShed`];
/// * a tenant returning from idle (no offer within the last
///   [`WF_ACTIVE_WINDOW`] decisions) is lifted to the minimum active
///   `norm`, so idleness banks no catch-up credit;
/// * while the request's queue lag is within `max_lag_ns` the policy is
///   **work-conserving**: everything (with a meetable deadline) is
///   admitted, so an underloaded fleet never sheds;
/// * under pressure (lag above `max_lag_ns`), tenant `t` admits iff
///   `norm(t) ≤ min_active_norm + cost/weight(t)` — it is not ahead of
///   its share.
///
/// **Work conservation**: the minimum-`norm` active tenant always
/// passes its own test, so pressure never sheds *everything*; a sole
/// tenant is its own minimum and is never shed. **Starvation-freedom**:
/// a shed tenant's `norm` is frozen while every admission raises the
/// others', so the minimum active `norm` catches up and the inequality
/// eventually readmits it. Both invariants are proptested in
/// `tests/server_serving.rs`.
#[derive(Debug, Clone)]
pub struct WeightedFair {
    weights: Vec<f64>,
    max_lag_ns: u64,
    norm: Vec<f64>,
    last_offer: Vec<u64>,
    decisions: u64,
}

impl WeightedFair {
    /// A weighted-fair policy over the given tenant classes, enforcing
    /// shares once queue lag exceeds `max_lag_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty (every request carries a tenant
    /// index that must resolve to a weight).
    pub fn new(classes: &[TenantClass], max_lag_ns: u64) -> Self {
        assert!(
            !classes.is_empty(),
            "weighted-fair needs at least one tenant class"
        );
        Self {
            weights: classes.iter().map(|c| c.weight).collect(),
            max_lag_ns,
            norm: vec![0.0; classes.len()],
            last_offer: vec![u64::MAX; classes.len()],
            decisions: 0,
        }
    }

    /// The lag threshold above which shares are enforced, in ns.
    pub fn max_lag_ns(&self) -> u64 {
        self.max_lag_ns
    }

    /// Minimum normalized service over the *other* tenants that offered
    /// recently; `None` when `t` is the sole active tenant.
    fn min_other_active_norm(&self, t: usize) -> Option<f64> {
        let mut min: Option<f64> = None;
        for u in 0..self.norm.len() {
            if u != t
                && self.last_offer[u] != u64::MAX
                && self.decisions - self.last_offer[u] <= WF_ACTIVE_WINDOW
            {
                min = Some(min.map_or(self.norm[u], |m: f64| m.min(self.norm[u])));
            }
        }
        min
    }
}

impl AdmissionPolicy for WeightedFair {
    fn name(&self) -> &'static str {
        "weighted-fair"
    }

    fn admit(&mut self, meta: &RequestMeta, estimate: &ServiceEstimate) -> bool {
        let t = meta.tenant;
        self.decisions += 1;
        let was_idle = self.last_offer[t] == u64::MAX
            || self.decisions - self.last_offer[t] > WF_ACTIVE_WINDOW;
        self.last_offer[t] = self.decisions;
        if estimate.doomed(meta) {
            return false;
        }
        let min_others = self.min_other_active_norm(t);
        if was_idle {
            if let Some(m) = min_others {
                self.norm[t] = self.norm[t].max(m);
            }
        }
        let min_active = min_others.map_or(self.norm[t], |m| m.min(self.norm[t]));
        let cost_norm = estimate.steady_interval_ns.max(1) as f64 / self.weights[t];
        if estimate.lag_ns(meta) > self.max_lag_ns && self.norm[t] > min_active + cost_norm {
            return false;
        }
        self.norm[t] += cost_norm;
        true
    }

    fn fork(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(WeightedFair::new_from(self))
    }

    fn shed_reason(&self, meta: &RequestMeta, estimate: &ServiceEstimate) -> ShedReason {
        if estimate.doomed(meta) {
            ShedReason::Doomed
        } else {
            // The only non-doomed shed in `admit` is the share test.
            ShedReason::OverShare
        }
    }
}

impl WeightedFair {
    /// A fresh-state copy sharing configuration (weights, lag bound).
    fn new_from(other: &WeightedFair) -> Self {
        Self {
            weights: other.weights.clone(),
            max_lag_ns: other.max_lag_ns,
            norm: vec![0.0; other.weights.len()],
            last_offer: vec![u64::MAX; other.weights.len()],
            decisions: 0,
        }
    }
}

/// Strict-priority shedding: each priority tier gets a geometrically
/// shrinking queue-lag budget (`max_lag_ns >> priority`), so as overload
/// deepens the lowest tiers are shed first and tier 0 is shed last.
/// Doomed requests are always shed. Unlike [`WeightedFair`] this policy
/// *intentionally* starves low tiers under sustained overload — that is
/// the contract of a strict priority class.
#[derive(Debug, Clone)]
pub struct StrictPriority {
    priorities: Vec<u32>,
    max_lag_ns: u64,
}

impl StrictPriority {
    /// A strict-priority policy over the given tenant classes; tier 0
    /// tolerates `max_lag_ns` of queue lag, tier `p` only
    /// `max_lag_ns >> p`.
    ///
    /// # Panics
    ///
    /// Panics if `classes` is empty.
    pub fn new(classes: &[TenantClass], max_lag_ns: u64) -> Self {
        assert!(
            !classes.is_empty(),
            "strict-priority needs at least one tenant class"
        );
        Self {
            priorities: classes.iter().map(|c| c.priority).collect(),
            max_lag_ns,
        }
    }

    /// The lag budget of priority tier `p`, in ns.
    pub fn lag_budget_ns(&self, priority: u32) -> u64 {
        self.max_lag_ns >> priority.min(63)
    }
}

impl AdmissionPolicy for StrictPriority {
    fn name(&self) -> &'static str {
        "priority"
    }

    fn admit(&mut self, meta: &RequestMeta, estimate: &ServiceEstimate) -> bool {
        if estimate.doomed(meta) {
            return false;
        }
        estimate.lag_ns(meta) <= self.lag_budget_ns(self.priorities[meta.tenant])
    }

    fn fork(&self) -> Box<dyn AdmissionPolicy> {
        Box::new(self.clone())
    }

    fn shed_reason(&self, meta: &RequestMeta, estimate: &ServiceEstimate) -> ShedReason {
        if estimate.doomed(meta) {
            ShedReason::Doomed
        } else {
            ShedReason::LagBudget
        }
    }
}

/// Resolves a tenant-agnostic policy by CLI name (`"fifo"`,
/// `"deadline-shed"`). The tenant-aware policies need the class table —
/// use [`policy_for`].
pub fn policy_by_name(name: &str) -> Option<Arc<dyn AdmissionPolicy>> {
    match name {
        "fifo" => Some(Arc::new(Fifo)),
        "deadline-shed" | "deadline_shed" => Some(Arc::new(DeadlineShed)),
        _ => None,
    }
}

/// Resolves any policy by CLI name, supplying the tenant classes and
/// lag threshold the tenant-aware policies (`"weighted-fair"`,
/// `"priority"`) need. Falls back to [`policy_by_name`] for the
/// tenant-agnostic ones.
pub fn policy_for(
    name: &str,
    classes: &[TenantClass],
    max_lag_ns: u64,
) -> Option<Arc<dyn AdmissionPolicy>> {
    match name {
        "weighted-fair" | "weighted_fair" => Some(Arc::new(WeightedFair::new(classes, max_lag_ns))),
        "priority" | "strict-priority" => Some(Arc::new(StrictPriority::new(classes, max_lag_ns))),
        _ => policy_by_name(name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::TenantClass;

    fn meta(tenant: usize, arrival_ns: u64, deadline_ns: Option<u64>) -> RequestMeta {
        RequestMeta {
            client: 0,
            tenant,
            network: 0,
            seq: 0,
            arrival_ns,
            deadline_ns,
        }
    }

    fn estimate(start: u64, predicted: u64) -> ServiceEstimate {
        ServiceEstimate {
            batch_start_ns: start,
            position: 1,
            fill_latency_ns: 50,
            steady_interval_ns: 10,
            predicted_completion_ns: predicted,
        }
    }

    fn classes() -> Vec<TenantClass> {
        vec![
            TenantClass::named("premium").weight(3.0),
            TenantClass::named("be").weight(1.0).priority(2),
        ]
    }

    #[test]
    fn fifo_admits_everything() {
        assert!(Fifo.admit(&meta(0, 100, Some(0)), &estimate(200, u64::MAX)));
        assert_eq!(Fifo.name(), "fifo");
    }

    #[test]
    fn deadline_shed_compares_prediction_to_deadline() {
        let mut p = DeadlineShed;
        assert!(p.admit(&meta(0, 100, None), &estimate(200, u64::MAX)));
        assert!(p.admit(&meta(0, 100, Some(300)), &estimate(200, 300)));
        assert!(!p.admit(&meta(0, 100, Some(300)), &estimate(200, 301)));
    }

    #[test]
    fn weighted_fair_is_work_conserving_within_lag() {
        let mut p = WeightedFair::new(&classes(), 1_000);
        // Lag 900 ≤ 1000: everything with a meetable deadline admits.
        for t in [0, 1, 1, 1, 0] {
            assert!(p.admit(&meta(t, 100, None), &estimate(1_000, 2_000)));
        }
    }

    #[test]
    fn weighted_fair_enforces_shares_under_pressure() {
        let mut p = WeightedFair::new(&classes(), 100);
        // Lag 10_000 ≫ 100: alternate offers; long-run admits ≈ 3:1.
        let mut admitted = [0u32; 2];
        for k in 0..400 {
            let t = k % 2;
            if p.admit(&meta(t, 0, None), &estimate(10_000, 20_000)) {
                admitted[t] += 1;
            }
        }
        let ratio = admitted[0] as f64 / admitted[1] as f64;
        assert!(
            (ratio - 3.0).abs() < 0.2,
            "premium:be admit ratio {ratio} should track weights 3:1 ({admitted:?})"
        );
    }

    #[test]
    fn weighted_fair_never_sheds_a_sole_tenant() {
        let mut p = WeightedFair::new(&classes(), 100);
        // Only best-effort traffic, deep under pressure: with no
        // competitor the tenant is its own active minimum, so shedding
        // it would be pure waste — it must always be admitted.
        for _ in 0..1_000 {
            assert!(p.admit(&meta(1, 0, None), &estimate(10_000, 20_000)));
        }
    }

    #[test]
    fn weighted_fair_lifts_a_returning_tenant_to_virtual_time() {
        let mut p = WeightedFair::new(&classes(), 0);
        let est = estimate(10_000, 20_000);
        // Tenant 0 accumulates service while tenant 1 idles far past
        // the active window.
        for _ in 0..2_000 {
            assert!(p.admit(&meta(0, 0, None), &est));
        }
        // Tenant 1 returns: it is lifted to the current virtual time
        // instead of monopolizing admissions on banked credit, so
        // tenant 0 keeps being admitted alongside it.
        assert!(p.admit(&meta(1, 0, None), &est));
        assert!(
            p.admit(&meta(0, 0, None), &est),
            "no banked-credit monopoly"
        );
    }

    #[test]
    fn weighted_fair_sheds_doomed_requests_regardless_of_share() {
        let mut p = WeightedFair::new(&classes(), u64::MAX);
        assert!(!p.admit(&meta(0, 0, Some(10)), &estimate(0, 11)));
    }

    #[test]
    fn strict_priority_sheds_low_tiers_first() {
        let mut p = StrictPriority::new(&classes(), 1_000);
        assert_eq!(p.lag_budget_ns(0), 1_000);
        assert_eq!(p.lag_budget_ns(2), 250);
        // Lag 500: inside tier 0's budget, outside tier 2's.
        let est = estimate(500, 2_000);
        assert!(p.admit(&meta(0, 0, None), &est));
        assert!(!p.admit(&meta(1, 0, None), &est));
        // Lag 100: everyone admits — work conservation at low load.
        let est = estimate(100, 2_000);
        assert!(p.admit(&meta(0, 0, None), &est));
        assert!(p.admit(&meta(1, 0, None), &est));
    }

    #[test]
    fn fork_resets_weighted_fair_state() {
        let mut p = WeightedFair::new(&classes(), 0);
        let est = estimate(10_000, 20_000);
        for _ in 0..10 {
            p.admit(&meta(0, 0, None), &est);
        }
        let mut forked = p.fork();
        // A fresh fork has no accumulated shares: tenant 1's first
        // offer under pressure is within its (empty) share and admits.
        assert!(forked.admit(&meta(1, 0, None), &est));
        assert_eq!(forked.name(), "weighted-fair");
    }

    #[test]
    fn shed_reasons_classify_by_policy() {
        let cs = classes();
        let doomed_meta = meta(0, 100, Some(300));
        let doomed_est = estimate(200, 301);
        let mut ds = DeadlineShed;
        assert!(!ds.admit(&doomed_meta, &doomed_est));
        assert_eq!(
            ds.shed_reason(&doomed_meta, &doomed_est),
            ShedReason::Doomed
        );
        // A non-doomed weighted-fair shed is a share violation; a
        // non-doomed strict-priority shed is a lag-budget violation.
        let wf = WeightedFair::new(&cs, 100);
        assert_eq!(
            wf.shed_reason(&meta(0, 0, None), &estimate(10_000, 20_000)),
            ShedReason::OverShare
        );
        let sp = StrictPriority::new(&cs, 1_000);
        assert_eq!(
            sp.shed_reason(&meta(1, 0, None), &estimate(500, 2_000)),
            ShedReason::LagBudget
        );
        assert_eq!(ShedReason::Policy.as_str(), "policy");
    }

    #[test]
    fn policies_resolve_by_name() {
        assert_eq!(policy_by_name("fifo").unwrap().name(), "fifo");
        assert_eq!(
            policy_by_name("deadline-shed").unwrap().name(),
            "deadline-shed"
        );
        assert!(policy_by_name("weighted-fair").is_none(), "needs classes");
        let cs = classes();
        assert_eq!(
            policy_for("weighted-fair", &cs, 1_000).unwrap().name(),
            "weighted-fair"
        );
        assert_eq!(
            policy_for("priority", &cs, 1_000).unwrap().name(),
            "priority"
        );
        assert_eq!(policy_for("fifo", &cs, 1_000).unwrap().name(), "fifo");
        assert!(policy_for("lifo", &cs, 1_000).is_none());
    }
}
