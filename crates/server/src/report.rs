//! Aggregate serving statistics and the modeled-time reconciliation.

use crate::autoscale::ScaleEvent;
use crate::brownout::BrownoutEvent;
use red_telemetry::LatencyHistogram;

/// One alert-rule episode on the virtual clock: a fire edge and, when
/// the session saw one, the matching resolve. Episodes are produced by
/// the deterministic `AlertEngine` over the scrape-window sequence, so
/// two replays of the same trace report byte-identical episodes.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertReport {
    /// Partition whose windows the rule evaluated on (session-scope
    /// rules such as `error-bound` report partition 0).
    pub partition: usize,
    /// Rule name (`fast-burn`, `slow-burn`, `replica-lost`,
    /// `quarantine`, `error-bound`).
    pub rule: String,
    /// Tenant scope (burn-rate rules); `None` for partition- or
    /// session-scope rules.
    pub tenant: Option<usize>,
    /// Virtual instant the rule fired.
    pub fired_at_ns: u64,
    /// Virtual instant the rule resolved; `None` when still firing at
    /// session end.
    pub resolved_at_ns: Option<u64>,
    /// Rule value at the fire edge (burn rate, lost-shed count, replica
    /// deficit, or observed-over-bound error ratio).
    pub value: f64,
}

/// Per-replica serving statistics.
#[derive(Debug, Clone)]
pub struct ReplicaReport {
    /// Fleet partition the replica belongs to.
    pub partition: usize,
    /// Replica index within its partition.
    pub replica: usize,
    /// Batches this replica executed.
    pub batches: u64,
    /// Images this replica served.
    pub images: u64,
    /// Modeled busy time on the virtual clock, in ns.
    pub busy_ns: u64,
    /// `busy_ns` over the serving span (0 when the span is empty).
    pub utilization: f64,
    /// Host wall-clock the replica's functional execution took, in ns.
    pub host_ns: u128,
}

/// Per-tenant serving statistics — the isolation evidence: under
/// overload a tenant-aware policy keeps a latency-sensitive tenant's
/// `total` tail pinned while a best-effort tenant's `shed` absorbs the
/// excess.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant index (into `ServerConfig::tenants`).
    pub tenant: usize,
    /// Tenant class name.
    pub name: String,
    /// Weighted-fair share weight.
    pub weight: f64,
    /// Strict-priority tier (0 = highest).
    pub priority: u32,
    /// Per-request SLO, in ns (`None` = best-effort).
    pub slo_ns: Option<u64>,
    /// Requests this tenant's clients submitted.
    pub offered: u64,
    /// Requests executed (admitted).
    pub served: u64,
    /// Requests rejected by the admission policy.
    pub shed: u64,
    /// Queue-wait latency of the tenant's served requests.
    pub queue_wait: LatencyHistogram,
    /// End-to-end latency of the tenant's served requests.
    pub total: LatencyHistogram,
}

/// Per-partition (resident network) serving statistics, each carrying
/// its own ledger cross-check so a multi-network report still
/// `reconciles` partition by partition.
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// Partition index (the request routing tag).
    pub partition: usize,
    /// Network name the partition serves.
    pub network: String,
    /// Replicas provisioned in the fleet.
    pub replicas_provisioned: usize,
    /// Active replicas when the session ended (equals provisioned when
    /// autoscaling is off).
    pub replicas_active: usize,
    /// Requests routed to this partition.
    pub offered: u64,
    /// Requests executed here.
    pub served: u64,
    /// Requests shed at this partition's dispatch.
    pub shed: u64,
    /// Batches this partition executed.
    pub batches: u64,
    /// End-to-end latency of this partition's served requests.
    pub total: LatencyHistogram,
    /// Virtual busy time the scheduler charged this partition.
    pub modeled_busy_ns: u64,
    /// The same quantity re-derived by this partition's workers.
    pub runtime_modeled_ns: u64,
    /// `true` while every batch's measured schedule also reconciled
    /// with the partition chip's analytic `PipelineReport`.
    pub batches_reconciled: bool,
    /// Applied autoscaling decisions, in virtual-clock order.
    pub scale_events: Vec<ScaleEvent>,
    /// Applied brownout tier transitions, in virtual-clock order
    /// (empty without `ServerConfig::brownout`).
    pub brownout_events: Vec<BrownoutEvent>,
    /// Requests served at each execution tier, indexed by
    /// `ExecPrecision::index()` (`[full, eco, brownout]`; everything in
    /// `full` without brownout control).
    pub served_by_tier: Vec<u64>,
}

impl PartitionReport {
    /// Scheduler-vs-workers ledger agreement for this partition (same
    /// tolerance as [`ServerReport::reconciles`]: 1 ppb plus one ns of
    /// rounding skew per batch).
    pub fn reconciles(&self) -> bool {
        let (a, b) = (self.modeled_busy_ns as f64, self.runtime_modeled_ns as f64);
        let tol = 1e-9 * a.max(b) + self.batches as f64;
        self.batches_reconciled && (a - b).abs() <= tol.max(1.0)
    }
}

/// Everything one serving session measured.
///
/// All latency figures are **virtual** (modeled hardware time — see
/// `crate::request`); host time appears only in the `host_*` fields.
///
/// # Reconciliation
///
/// The scheduler charges every dispatched batch the chip's *analytic*
/// pipelined schedule (`fill + (B-1)·steady`, from
/// `red_arch::PipelineReport`) on the virtual clock, before the batch
/// ever executes. Each replica worker independently re-derives the same
/// quantity from the **measured** `red_runtime::RuntimeReport` of its
/// actual execution (per-stage issued cycles priced at cost-model cycle
/// times). [`ServerReport::reconciles`] checks the two ledgers agree —
/// per partition and in aggregate — the serving-layer analogue of
/// `RuntimeReport::reconciles_with(PipelineReport)`, and a genuine
/// cross-check: a scheduler that loses or double-charges a batch, or an
/// engine whose dataflow diverges from its priced geometry, breaks it.
///
/// In model-only mode (`functional == false`) the workers skip
/// execution and charge the analytic schedule per delivered batch, so
/// the cross-check degrades to a batch-conservation check (every batch
/// the scheduler charged was delivered and sized identically) rather
/// than an independent measurement — reports say so via `functional`.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// Network name(s) the fleet serves (`+`-joined across partitions).
    pub network: String,
    /// Design label of the replicas (`+`-joined when partitions mix).
    pub design: String,
    /// Total provisioned replica count.
    pub replicas: usize,
    /// Registered client count.
    pub clients: usize,
    /// Batch-size bound the former ran with.
    pub max_batch: usize,
    /// Forming-window bound, in ns.
    pub max_wait_ns: u64,
    /// Admission policy name.
    pub policy: String,
    /// `false` when the session ran model-only (virtual clock exact,
    /// functional outputs skipped).
    pub functional: bool,

    /// Requests submitted.
    pub offered: u64,
    /// Requests executed (admitted).
    pub served: u64,
    /// Requests rejected by the admission policy.
    pub shed: u64,
    /// Requests whose host execution failed after admission (0 for
    /// shape-validated inputs).
    pub failed: u64,
    /// Executed batches.
    pub batches: u64,

    /// Queue-wait latency of served requests (arrival → dispatch).
    pub queue_wait: LatencyHistogram,
    /// Modeled execution latency of served requests (dispatch → output).
    pub execute: LatencyHistogram,
    /// End-to-end latency of served requests (arrival → output).
    pub total: LatencyHistogram,
    /// Wait absorbed by shed requests before rejection.
    pub shed_wait: LatencyHistogram,
    /// Executed batch sizes (recorded as "latencies" of B ns — exact,
    /// since sizes are far below the histogram's linear range).
    pub batch_sizes: LatencyHistogram,

    /// First virtual arrival, in ns.
    pub first_arrival_ns: u64,
    /// Last virtual completion (served or shed), in ns.
    pub last_completion_ns: u64,
    /// Virtual busy time the scheduler charged, summed over batches.
    pub modeled_busy_ns: u64,
    /// The same quantity re-derived by the replica workers from measured
    /// `RuntimeReport`s.
    pub runtime_modeled_ns: u64,
    /// `true` while every executed batch's measured schedule also
    /// reconciled with the chip's analytic `PipelineReport`.
    pub batches_reconciled: bool,
    /// Per-tenant statistics, in `ServerConfig::tenants` order.
    pub tenant_reports: Vec<TenantReport>,
    /// Per-partition statistics, in routing-tag order.
    pub partition_reports: Vec<PartitionReport>,
    /// Per-replica statistics across partitions.
    pub replica_reports: Vec<ReplicaReport>,
    /// Host wall-clock spent in functional execution across replicas.
    pub host_exec_ns: u128,
    /// First execution error message, if any batch failed.
    pub first_error: Option<String>,

    /// Sheds broken down by reason, one `(label, count)` entry per
    /// `ShedReason::ALL` member (zero entries included, stable order).
    pub sheds_by_reason: Vec<(String, u64)>,
    /// Fault-plan events the scheduler injected.
    pub faults_injected: u64,
    /// Replica reprogram (repair) cycles started.
    pub reprograms: u64,
    /// Requests re-queued after losing their replica mid-batch.
    pub retries: u64,
    /// Requests hedged to a sibling replica to make their deadline.
    pub hedges: u64,

    /// Requests served at each execution tier, one `(label, count)`
    /// entry per `ExecPrecision::ALL` member (zero entries included,
    /// stable order). Everything lands in `full` without brownout
    /// control.
    pub served_by_tier: Vec<(String, u64)>,
    /// Largest output deviation any degraded functional batch actually
    /// produced against its full-precision re-execution (0 for
    /// brownout-free or model-only sessions).
    pub max_observed_error: f64,
    /// Largest worst-case output error bound
    /// (`Chip::truncation_error_bound`) of any tier the session
    /// executed at — `max_observed_error` must stay at or below this.
    pub precision_error_bound: f64,
    /// Alert episodes the session's `AlertEngine` produced, in fire
    /// order per partition (empty without `ServerConfig::scrape`).
    pub alerts: Vec<AlertReport>,
}

impl ServerReport {
    /// The virtual serving span (first arrival to last completion).
    pub fn span_ns(&self) -> u64 {
        self.last_completion_ns
            .saturating_sub(self.first_arrival_ns)
    }

    /// Served throughput over the span, in images per second (virtual).
    pub fn served_per_s(&self) -> f64 {
        if self.span_ns() == 0 {
            0.0
        } else {
            self.served as f64 * 1e9 / self.span_ns() as f64
        }
    }

    /// Offered load over the span, in requests per second (virtual).
    pub fn offered_per_s(&self) -> f64 {
        if self.span_ns() == 0 {
            0.0
        } else {
            self.offered as f64 * 1e9 / self.span_ns() as f64
        }
    }

    /// Mean executed batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.served as f64 / self.batches as f64
        }
    }

    /// Host-side serving throughput, in images per second.
    pub fn host_images_per_s(&self) -> f64 {
        if self.host_exec_ns == 0 {
            0.0
        } else {
            self.served as f64 * 1e9 / self.host_exec_ns as f64
        }
    }

    /// `true` when the scheduler's virtual charge agrees with the
    /// workers' measured re-derivation (1 ppb, plus per-batch rounding)
    /// — in aggregate **and** partition by partition — and every
    /// batch's own `RuntimeReport` reconciled with the analytic
    /// pipeline prediction. See the type docs.
    pub fn reconciles(&self) -> bool {
        let (a, b) = (self.modeled_busy_ns as f64, self.runtime_modeled_ns as f64);
        // Each batch charge is rounded to whole ns on both ledgers; allow
        // one ns of rounding skew per batch on top of the relative band.
        let tol = 1e-9 * a.max(b) + self.batches as f64;
        self.batches_reconciled
            && (a - b).abs() <= tol.max(1.0)
            && self.partition_reports.iter().all(|p| p.reconciles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ServerReport {
        ServerReport {
            network: "net".into(),
            design: "RED".into(),
            replicas: 2,
            clients: 4,
            max_batch: 8,
            max_wait_ns: 1_000,
            policy: "fifo".into(),
            functional: true,
            offered: 100,
            served: 90,
            shed: 10,
            failed: 0,
            batches: 30,
            queue_wait: LatencyHistogram::new(),
            execute: LatencyHistogram::new(),
            total: LatencyHistogram::new(),
            shed_wait: LatencyHistogram::new(),
            batch_sizes: LatencyHistogram::new(),
            first_arrival_ns: 1_000,
            last_completion_ns: 10_001_000,
            modeled_busy_ns: 5_000_000,
            runtime_modeled_ns: 5_000_010,
            batches_reconciled: true,
            tenant_reports: Vec::new(),
            partition_reports: vec![PartitionReport {
                partition: 0,
                network: "net".into(),
                replicas_provisioned: 2,
                replicas_active: 2,
                offered: 100,
                served: 90,
                shed: 10,
                batches: 30,
                total: LatencyHistogram::new(),
                modeled_busy_ns: 5_000_000,
                runtime_modeled_ns: 5_000_010,
                batches_reconciled: true,
                scale_events: Vec::new(),
                brownout_events: Vec::new(),
                served_by_tier: vec![90, 0, 0],
            }],
            replica_reports: Vec::new(),
            host_exec_ns: 2_000_000,
            first_error: None,
            sheds_by_reason: Vec::new(),
            faults_injected: 0,
            reprograms: 0,
            retries: 0,
            hedges: 0,
            served_by_tier: vec![
                ("full".into(), 90),
                ("eco".into(), 0),
                ("brownout".into(), 0),
            ],
            max_observed_error: 0.0,
            precision_error_bound: 0.0,
            alerts: Vec::new(),
        }
    }

    #[test]
    fn rates_and_span_are_consistent() {
        let r = report();
        assert_eq!(r.span_ns(), 10_000_000);
        assert!((r.served_per_s() - 9_000.0).abs() < 1e-6);
        assert!((r.offered_per_s() - 10_000.0).abs() < 1e-6);
        assert!((r.mean_batch() - 3.0).abs() < 1e-12);
        assert!((r.host_images_per_s() - 45_000.0).abs() < 1e-6);
    }

    #[test]
    fn reconciliation_tolerates_rounding_but_not_drift() {
        let mut r = report();
        assert!(r.reconciles(), "30 ns skew within 30-batch rounding band");
        r.runtime_modeled_ns = r.modeled_busy_ns + 1_000;
        assert!(!r.reconciles(), "1 µs drift over 30 batches must fail");
        r.runtime_modeled_ns = r.modeled_busy_ns;
        r.batches_reconciled = false;
        assert!(!r.reconciles());
    }

    #[test]
    fn a_drifting_partition_breaks_reconciliation_even_if_sums_agree() {
        let mut r = report();
        // Add a second partition whose drift cancels the first's in the
        // aggregate — the per-partition check must still catch it.
        let mut p1 = r.partition_reports[0].clone();
        p1.partition = 1;
        p1.modeled_busy_ns = 5_000_000;
        p1.runtime_modeled_ns = 4_900_000;
        let mut p0 = r.partition_reports[0].clone();
        p0.modeled_busy_ns = 5_000_000;
        p0.runtime_modeled_ns = 5_100_000;
        r.partition_reports = vec![p0, p1];
        r.modeled_busy_ns = 10_000_000;
        r.runtime_modeled_ns = 10_000_000;
        assert!(!r.reconciles());
    }
}
