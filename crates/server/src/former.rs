//! The dynamic micro-batch former.
//!
//! Requests wait in a virtual-time priority queue ordered by
//! `(arrival, client, seq)`. A batch **closes** — its composition becomes
//! final — on whichever comes first:
//!
//! * **`max_batch`**: the window already holds `max_batch` requests; the
//!   batch closes at the `max_batch`-th request's arrival instant;
//! * **`max_wait`**: the virtual clock reaches
//!   `oldest pending arrival + max_wait`; the batch closes then with
//!   every request that arrived inside the window.
//!
//! Because arrivals come from concurrently running client threads but
//! batching happens on the *virtual* clock, the former must never close
//! a batch whose composition a not-yet-delivered request could still
//! change. The scheduler therefore passes a **frontier**: a proven lower
//! bound (exclusive) on every future arrival, computed from per-client
//! watermarks (each client's arrivals are nondecreasing, and a
//! closed-loop client cannot submit before its previous completion).
//! [`BatchFormer::try_close`] only finalizes a batch when every slot is
//! below the frontier — which makes batch composition, and every latency
//! percentile downstream, a deterministic function of the request trace
//! no matter how host threads interleave.
//!
//! A frontier of [`u64::MAX`] means "no further arrival can ever come":
//! every client is finished, or is a closed-loop client whose next
//! arrival the scheduler itself controls. The former then **drains**,
//! finalizing whatever is pending — but the close *instant* must stay a
//! pure function of the trace, not of when the scheduler happened to
//! learn the trace was over (the threaded and streaming load drivers
//! deliver the same trace with very different host pacing). Drain-mode
//! closes therefore charge `min(close_by, max(last arrival,
//! drain_end))`, where `drain_end` is the virtual instant the trace
//! provably ended: the latest final watermark among finished clients
//! (a client disconnects at its last arrival or heartbeat). Mid-trace
//! batches that a flood of buffered events pushed into drain mode thus
//! still close at `close_by`, exactly as they would have under
//! window expiry; an all-closed-loop drain (no finished clients,
//! `drain_end = 0`) still closes work-conservingly at the last taken
//! arrival.

use crate::request::RequestMeta;
use std::collections::BTreeMap;

/// Why a batch's composition became final — recorded so traces can
/// distinguish "the chip was fed a full batch" from "the window expired
/// half-empty" (the difference between throughput-bound and
/// latency-bound operating points).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseTrigger {
    /// The batch reached `max_batch` requests.
    Full,
    /// The forming window (`max_wait`) expired.
    Window,
    /// The trace ended and the former drained the remainder.
    Drain,
}

impl CloseTrigger {
    /// Stable lowercase label for traces and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            CloseTrigger::Full => "full",
            CloseTrigger::Window => "window",
            CloseTrigger::Drain => "drain",
        }
    }
}

/// A closed batch: requests in `(arrival, client, seq)` order plus the
/// virtual instant the batch closed (its earliest possible dispatch).
#[derive(Debug)]
pub struct FormedBatch<T> {
    /// Virtual close instant, in ns.
    pub close_ns: u64,
    /// What finalized the batch's composition.
    pub trigger: CloseTrigger,
    /// The batch members, in dispatch order.
    pub requests: Vec<(RequestMeta, T)>,
}

/// The dynamic micro-batch former (see the module docs for the close
/// rules). Generic over the per-request payload `T` so the scheduler can
/// carry inputs and responders while tests drive it with `()`.
#[derive(Debug)]
pub struct BatchFormer<T> {
    max_batch: usize,
    max_wait_ns: u64,
    pending: BTreeMap<(u64, usize, u64), (RequestMeta, T)>,
}

impl<T> BatchFormer<T> {
    /// A former closing batches at `max_batch` requests or `max_wait_ns`
    /// after the oldest pending arrival, whichever comes first.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch` is zero.
    pub fn new(max_batch: usize, max_wait_ns: u64) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        Self {
            max_batch,
            max_wait_ns,
            pending: BTreeMap::new(),
        }
    }

    /// The batch-size bound.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The forming-window bound, in ns.
    pub fn max_wait_ns(&self) -> u64 {
        self.max_wait_ns
    }

    /// Pending (not yet closed) request count.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Pending requests that arrived at or before `t_ns`. When `t_ns`
    /// is below the scheduler's frontier this count is a deterministic
    /// function of the request trace: every arrival ≤ `t_ns` is
    /// provably delivered (in-channel events carry arrivals at or
    /// above their client's watermark, hence at or above the frontier),
    /// so host interleaving cannot change what is counted.
    pub fn pending_at(&self, t_ns: u64) -> usize {
        self.pending.range(..=(t_ns, usize::MAX, u64::MAX)).count()
    }

    /// Queues a request.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate `(arrival, client, seq)` key: silently
    /// replacing the earlier request would drop its payload (and with
    /// it any pending responder), leaving a caller waiting on a
    /// completion that can never come. [`ClientHandle`] never produces
    /// duplicates (`seq` is strictly increasing per client); a custom
    /// driver must not either.
    ///
    /// [`ClientHandle`]: crate::ClientHandle
    pub fn push(&mut self, meta: RequestMeta, payload: T) {
        let key = (meta.arrival_ns, meta.client, meta.seq);
        let prev = self.pending.insert(key, (meta, payload));
        assert!(prev.is_none(), "duplicate request key {key:?}");
    }

    /// Tries to close the next batch given `frontier_ns`, the exclusive
    /// lower bound on every future arrival (`u64::MAX` = no more
    /// arrivals possible), and `drain_end_ns`, the virtual instant the
    /// trace provably ended (the latest finished client's final
    /// watermark; only read in drain mode — see the module docs).
    /// Returns `None` when no batch can be finalized yet — the caller
    /// must learn more about future arrivals first.
    pub fn try_close(&mut self, frontier_ns: u64, drain_end_ns: u64) -> Option<FormedBatch<T>> {
        let (&(head_arrival, _, _), _) = self.pending.iter().next()?;
        let close_by = head_arrival.saturating_add(self.max_wait_ns);
        let draining = frontier_ns == u64::MAX;

        // Count, in order, the requests that could belong to this batch:
        // inside the window and provably un-preemptable (below the
        // frontier — a later arrival sorts after them).
        let mut taken = 0usize;
        let mut last_arrival = head_arrival;
        for &(arrival, _, _) in self.pending.keys() {
            if arrival > close_by || taken == self.max_batch {
                break;
            }
            if !draining && arrival >= frontier_ns {
                // A future request could still arrive before this one;
                // the batch cannot be finalized past this point.
                break;
            }
            taken += 1;
            last_arrival = arrival;
        }
        if taken == 0 {
            return None;
        }

        // Decide whether the prefix is final.
        let full = taken == self.max_batch;
        let window_expired = close_by < frontier_ns; // everything ≤ close_by is known
        if !(full || window_expired || draining) {
            return None;
        }
        let (close_ns, trigger) = if full {
            // Work-conserving close at the last member's arrival.
            (last_arrival, CloseTrigger::Full)
        } else if draining {
            // Trace-deterministic drain instant: when the trace is
            // known to have ended by `close_by` the server stops
            // waiting then; otherwise it waits out the window exactly
            // as the expiry rule would have. With no finished client
            // (`drain_end_ns = 0`, the all-closed-loop case) this is
            // the classic work-conserving close at the last arrival.
            let close = close_by.min(last_arrival.max(drain_end_ns));
            // The *label* must be trace-deterministic too: whether the
            // scheduler learned "trace over" before or after the window
            // expired depends on host pacing, but a drain close landing
            // exactly on `close_by` is the window close by another
            // route — same members, same instant — so report it as one.
            let trigger = if close == close_by {
                CloseTrigger::Window
            } else {
                CloseTrigger::Drain
            };
            (close, trigger)
        } else {
            (close_by, CloseTrigger::Window)
        };

        let keys: Vec<_> = self.pending.keys().take(taken).copied().collect();
        let requests = keys
            .into_iter()
            .map(|k| self.pending.remove(&k).expect("key just enumerated"))
            .collect();
        Some(FormedBatch {
            close_ns,
            trigger,
            requests,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(client: usize, seq: u64, arrival_ns: u64) -> RequestMeta {
        RequestMeta {
            client,
            tenant: 0,
            network: 0,
            seq,
            arrival_ns,
            deadline_ns: None,
        }
    }

    fn arrivals<T>(batch: &FormedBatch<T>) -> Vec<u64> {
        batch.requests.iter().map(|(m, _)| m.arrival_ns).collect()
    }

    #[test]
    fn closes_on_max_batch_at_kth_arrival() {
        let mut f = BatchFormer::new(3, 1_000);
        for (i, t) in [10u64, 20, 30, 40].iter().enumerate() {
            f.push(meta(0, i as u64, *t), ());
        }
        let b = f.try_close(50, 0).expect("full batch closes");
        assert_eq!(arrivals(&b), vec![10, 20, 30]);
        assert_eq!(b.close_ns, 30);
        assert_eq!(b.trigger, CloseTrigger::Full);
        assert_eq!(f.len(), 1);
        // The leftover cannot close: its window runs to 1040 and more
        // arrivals below that are still possible.
        assert!(f.try_close(50, 0).is_none());
    }

    #[test]
    fn closes_on_window_expiry_with_partial_batch() {
        let mut f = BatchFormer::new(8, 100);
        f.push(meta(0, 0, 10), ());
        f.push(meta(1, 0, 60), ());
        f.push(meta(1, 1, 200), ()); // outside the 10+100 window
        assert!(f.try_close(105, 0).is_none(), "window still open at 105");
        let b = f.try_close(111, 0).expect("frontier past close_by");
        assert_eq!(arrivals(&b), vec![10, 60]);
        assert_eq!(b.close_ns, 110);
        assert_eq!(b.trigger, CloseTrigger::Window);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn never_finalizes_past_the_frontier() {
        let mut f = BatchFormer::new(2, 1_000);
        f.push(meta(0, 0, 10), ());
        f.push(meta(0, 1, 500), ());
        // Frontier 400: a request at 300 could still arrive and belongs
        // in slot 2 before the one at 500 — no close.
        assert!(f.try_close(400, 0).is_none());
        // Frontier 501: both slots are final, batch is full.
        let b = f.try_close(501, 0).expect("now final");
        assert_eq!(arrivals(&b), vec![10, 500]);
        assert_eq!(b.close_ns, 500);
    }

    #[test]
    fn drain_mode_closes_work_conservingly() {
        let mut f = BatchFormer::new(8, 1_000_000);
        f.push(meta(0, 0, 10), ());
        f.push(meta(0, 1, 20), ());
        let b = f.try_close(u64::MAX, 0).expect("drain closes");
        assert_eq!(b.close_ns, 20, "no max_wait padding when draining");
        assert_eq!(b.trigger, CloseTrigger::Drain);
        assert!(f.is_empty());
        assert!(f.try_close(u64::MAX, 0).is_none());
    }

    #[test]
    fn orders_by_arrival_then_client_then_seq() {
        let mut f = BatchFormer::new(4, 0);
        f.push(meta(1, 0, 10), ());
        f.push(meta(0, 5, 10), ());
        f.push(meta(0, 6, 10), ());
        let b = f.try_close(11, 0).expect("window of width 0 at t=10");
        let order: Vec<_> = b.requests.iter().map(|(m, _)| (m.client, m.seq)).collect();
        assert_eq!(order, vec![(0, 5), (0, 6), (1, 0)]);
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_panics() {
        let _ = BatchFormer::<()>::new(0, 10);
    }

    #[test]
    fn pending_at_counts_arrivals_up_to_the_instant() {
        let mut f = BatchFormer::new(8, 1_000);
        for (i, t) in [10u64, 20, 30, 500].iter().enumerate() {
            f.push(meta(0, i as u64, *t), ());
        }
        assert_eq!(f.pending_at(9), 0);
        assert_eq!(f.pending_at(10), 1);
        assert_eq!(f.pending_at(30), 3);
        assert_eq!(f.pending_at(u64::MAX), 4);
    }
}
