use crate::CircuitParams;
use red_device::TechnologyParams;

/// Overlap-add and crop unit required by the padding-free design.
///
/// The padding-free mapping produces `KH·KW·M` partial values per cycle
/// that must be accumulated into overlapping output positions and finally
/// cropped (paper Fig. 2, Algorithm 2 steps c–d). On a ReRAM accelerator
/// this needs dedicated registers and adders on the output side — the
/// "modified circuits" / "extra area cost" the paper cites against the
/// padding-free design (§I, §III-A). Zero-padding and RED do not
/// instantiate this unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutputAccumulator {
    channels: usize,
    latency_ns: f64,
    energy_per_value_pj: f64,
    area_um2: f64,
}

impl OutputAccumulator {
    /// Builds the accumulator for `channels` simultaneously produced output
    /// values (= crossbar output columns after ADC).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    pub fn new(tech: &TechnologyParams, params: &CircuitParams, channels: usize) -> Self {
        assert!(channels > 0, "accumulator needs at least one channel");
        let _ = tech;
        Self {
            channels,
            latency_ns: params.t_accum_ns,
            energy_per_value_pj: params.e_accum_per_value_pj,
            area_um2: channels as f64 * params.a_accum_per_channel_um2,
        }
    }

    /// Output channels accumulated per cycle.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Accumulate + crop pipeline latency per cycle, in ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Energy per accumulated value, in pJ.
    pub fn energy_per_value_pj(&self) -> f64 {
        self.energy_per_value_pj
    }

    /// Register + adder area, in µm² (linear in channels — this is what
    /// explodes for the padding-free design on FCN layers, Fig. 9).
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_linear_in_channels() {
        let tech = TechnologyParams::node_65nm();
        let params = CircuitParams::default();
        let a = OutputAccumulator::new(&tech, &params, 100);
        let b = OutputAccumulator::new(&tech, &params, 2500);
        assert!((b.area_um2() / a.area_um2() - 25.0).abs() < 1e-9);
        assert_eq!(a.latency_ns(), b.latency_ns());
        assert_eq!(a.channels(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_panics() {
        let tech = TechnologyParams::node_65nm();
        let params = CircuitParams::default();
        let _ = OutputAccumulator::new(&tech, &params, 0);
    }
}
