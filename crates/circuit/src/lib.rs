//! # red-circuit
//!
//! Analytical periphery circuit models for the RED accelerator
//! reproduction — the role NeuroSim+'s circuit layer plays in the paper
//! (§IV-A).
//!
//! Each periphery component of the paper's Table II breakdown is a struct
//! with three queries: `latency_ns()`, an energy-per-operation method, and
//! `area_um2()`:
//!
//! | Table II entry | Model |
//! |---|---|
//! | Wordline driving (`wd`) | [`WordlineDriver`] |
//! | Bitline driving (`bd`) | [`BitlineDriver`] |
//! | Decoder (`dec`) | [`RowDecoder`] |
//! | Multiplexer (`mux`) | [`ColumnMux`] |
//! | Read circuit / integrate & fire (`rc`) | [`ReadCircuit`] |
//! | Shift adder (`sa`) | [`ShiftAdder`] |
//! | — (padding-free only) | [`OutputAccumulator`] |
//!
//! The scaling *forms* are what matter for reproducing the paper (all its
//! results are normalized): buffered drivers have logarithmic delay and
//! super-linear energy in line length (driver upsizing — the paper's
//! "driving power increases in a quadratic relation with the column
//! number" observation), decoders scale with row count, ADC cost scales
//! with resolution, and the shift-adder pays one stage per extra partial
//! sum merged. The absolute constants live in [`CircuitParams`] and are
//! pinned by the repository-level calibration test
//! (`tests/paper_bands.rs`).
//!
//! # Example
//!
//! ```
//! use red_circuit::{CircuitParams, WordlineDriver};
//! use red_device::TechnologyParams;
//!
//! let tech = TechnologyParams::node_65nm();
//! let params = CircuitParams::default();
//! // A wordline spanning 1024 physical columns (256 weights x 4 cells).
//! let short = WordlineDriver::new(&tech, &params, 1024);
//! let long = WordlineDriver::new(&tech, &params, 25_600);
//! // Longer lines cost super-linearly more energy per activation...
//! assert!(long.energy_per_activation_pj() > 25.0 * short.energy_per_activation_pj());
//! // ...but sub-linearly more latency (buffered, repeatered driver).
//! assert!(long.latency_ns() < 25.0 * short.latency_ns());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod accumulator;
mod adc;
mod decoder;
mod driver;
mod mux;
mod params;
mod shift_adder;

pub use accumulator::OutputAccumulator;
pub use adc::ReadCircuit;
pub use decoder::RowDecoder;
pub use driver::{BitlineDriver, WordlineDriver};
pub use mux::ColumnMux;
pub use params::CircuitParams;
pub use shift_adder::ShiftAdder;
