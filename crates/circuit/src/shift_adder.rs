use crate::CircuitParams;
use red_device::TechnologyParams;

/// Shift adder: combines bit-sliced column results (weight slices), input
/// bit-significance shifts, and — for RED and padding-free — the merge of
/// partial sums from several sources into one output pixel.
///
/// Per cycle the adder performs `(slices - 1) + (input_bits - 1)` local
/// shift-add stages (standard ISAAC-style recombination) plus
/// `ceil(log2(merge_width))` merge levels. Merge levels are weighted by
/// [`CircuitParams::merge_stage_factor`] because the summed values travel
/// between arrays on the shared vertical sum line rather than staying
/// inside one column pitch — this is the term that keeps RED's per-cycle
/// latency slightly above the zero-padding design's and turns the ideal
/// `stride²` speedup into the paper's measured 3.69× (stride 2) and
/// 31.15× (halved, stride 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShiftAdder {
    slices: usize,
    merge_width: usize,
    accumulator_bits: u32,
    latency_ns: f64,
    energy_pj: f64,
    area_um2: f64,
}

impl ShiftAdder {
    /// Builds the shift-adder model for one output channel.
    ///
    /// * `slices` — weight bit-slices (cells per weight) recombined locally;
    /// * `merge_width` — partial sums merged across arrays (1 = no merge).
    ///
    /// # Panics
    ///
    /// Panics if `slices` or `merge_width` is zero.
    pub fn new(
        tech: &TechnologyParams,
        params: &CircuitParams,
        slices: usize,
        merge_width: usize,
    ) -> Self {
        assert!(slices > 0, "at least one weight slice");
        assert!(merge_width > 0, "merge width must be at least 1");
        let _ = tech;
        let local_stages = (slices - 1) as f64 + f64::from(params.input_bits.max(1) - 1);
        let merge_levels = if merge_width > 1 {
            f64::from(CircuitParams::address_bits(merge_width).max(1))
        } else {
            0.0
        };
        let latency_ns = local_stages * params.t_add_stage_ns
            + merge_levels * params.t_add_stage_ns * params.merge_stage_factor;
        // Energy: one add per local stage plus merge_width - 1 merge adds.
        let energy_pj = (local_stages + (merge_width - 1) as f64) * params.e_add_pj;
        // Accumulator width: adc bits + log2 of everything summed in.
        let accumulator_bits = params.adc_bits
            + CircuitParams::address_bits(slices.max(2))
            + CircuitParams::address_bits(merge_width.max(2))
            + params.input_bits;
        let area_um2 = f64::from(accumulator_bits) * params.a_add_per_bit_um2;
        Self {
            slices,
            merge_width,
            accumulator_bits,
            latency_ns,
            energy_pj,
            area_um2,
        }
    }

    /// Weight bit-slices recombined locally.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Partial sums merged across arrays.
    pub fn merge_width(&self) -> usize {
        self.merge_width
    }

    /// Width of the accumulation register in bits.
    pub fn accumulator_bits(&self) -> u32 {
        self.accumulator_bits
    }

    /// Shift-add latency per cycle, in ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Energy per output channel per cycle, in pJ.
    pub fn energy_per_cycle_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Area per output channel, in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, CircuitParams) {
        (TechnologyParams::node_65nm(), CircuitParams::default())
    }

    #[test]
    fn merge_width_one_has_no_merge_latency() {
        let (tech, params) = setup();
        let plain = ShiftAdder::new(&tech, &params, 4, 1);
        let merged = ShiftAdder::new(&tech, &params, 4, 9);
        assert!(merged.latency_ns() > plain.latency_ns());
        let expect_extra = 4.0 * params.t_add_stage_ns * params.merge_stage_factor; // ceil(log2 9) = 4
        assert!((merged.latency_ns() - plain.latency_ns() - expect_extra).abs() < 1e-12);
    }

    #[test]
    fn energy_counts_merge_adds() {
        let (tech, params) = setup();
        let plain = ShiftAdder::new(&tech, &params, 4, 1);
        let merged = ShiftAdder::new(&tech, &params, 4, 5);
        let diff = merged.energy_per_cycle_pj() - plain.energy_per_cycle_pj();
        assert!((diff - 4.0 * params.e_add_pj).abs() < 1e-12);
    }

    #[test]
    fn accumulator_width_grows_with_everything() {
        let (tech, params) = setup();
        let small = ShiftAdder::new(&tech, &params, 1, 1);
        let big = ShiftAdder::new(&tech, &params, 8, 64);
        assert!(big.accumulator_bits() > small.accumulator_bits());
        assert!(big.area_um2() > small.area_um2());
    }

    #[test]
    fn accessors() {
        let (tech, params) = setup();
        let sa = ShiftAdder::new(&tech, &params, 4, 9);
        assert_eq!(sa.slices(), 4);
        assert_eq!(sa.merge_width(), 9);
    }

    #[test]
    #[should_panic(expected = "merge width")]
    fn zero_merge_width_panics() {
        let (tech, params) = setup();
        let _ = ShiftAdder::new(&tech, &params, 4, 0);
    }
}
