use crate::CircuitParams;
use red_device::TechnologyParams;

/// Read circuit: the integrate-and-fire converter of Fig. 1(a) that turns a
/// bitline current into a digital code.
///
/// Integrate-and-fire conversion is bit-serial (it counts fire events), so
/// both conversion time and energy scale with the configured resolution.
/// The channel area is the dominant periphery area contribution, as in
/// ISAAC/NeuroSim-class designs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadCircuit {
    bits: u32,
    latency_ns: f64,
    energy_pj: f64,
    area_um2: f64,
}

impl ReadCircuit {
    /// Builds one read-circuit channel at the configured `adc_bits`.
    pub fn new(tech: &TechnologyParams, params: &CircuitParams) -> Self {
        let bits = params.adc_bits.max(1);
        let _ = tech; // constants are absolute at the 65nm node
        Self {
            bits,
            latency_ns: f64::from(bits) * params.t_adc_per_bit_ns,
            energy_pj: f64::from(bits) * params.e_adc_per_bit_pj,
            area_um2: params.a_adc_um2,
        }
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Conversion latency, in ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Energy per conversion, in pJ.
    pub fn energy_per_conversion_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Channel area, in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_scales_with_bits() {
        let tech = TechnologyParams::node_65nm();
        let params = CircuitParams {
            adc_bits: 4,
            ..CircuitParams::default()
        };
        let lo = ReadCircuit::new(&tech, &params);
        let params = CircuitParams {
            adc_bits: 8,
            ..params
        };
        let hi = ReadCircuit::new(&tech, &params);
        assert!((hi.latency_ns() / lo.latency_ns() - 2.0).abs() < 1e-12);
        assert!(
            (hi.energy_per_conversion_pj() / lo.energy_per_conversion_pj() - 2.0).abs() < 1e-12
        );
        assert_eq!(hi.area_um2(), lo.area_um2());
    }

    #[test]
    fn zero_bits_clamped_to_one() {
        let tech = TechnologyParams::node_65nm();
        let params = CircuitParams {
            adc_bits: 0,
            ..CircuitParams::default()
        };
        let rc = ReadCircuit::new(&tech, &params);
        assert_eq!(rc.bits(), 1);
        assert!(rc.latency_ns() > 0.0);
    }
}
