use crate::CircuitParams;
use red_device::TechnologyParams;

/// Row decoder / input-select network for one crossbar instance.
///
/// Delay grows with the address width (`log2(rows)` predecode stages);
/// switching energy grows with the number of select lines (`rows`), which
/// is the term that makes the zero-padding design's periphery energy
/// exceed RED's in the paper's Fig. 8 analysis ("the input data size of
/// each crossbar is reduced, and thereby decoders consume less energy").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowDecoder {
    rows: usize,
    latency_ns: f64,
    energy_pj: f64,
    area_um2: f64,
}

impl RowDecoder {
    /// Builds the decoder model for an instance with `rows` wordlines.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is zero.
    pub fn new(tech: &TechnologyParams, params: &CircuitParams, rows: usize) -> Self {
        assert!(rows > 0, "decoder needs at least one row");
        let bits = CircuitParams::address_bits(rows).max(1);
        let latency_ns = f64::from(bits) * params.t_decode_per_bit_ns;
        let energy_pj = tech.switch_energy_pj(rows as f64 * params.c_decode_per_row_ff);
        let area_um2 = params.a_decode_fixed_um2 + rows as f64 * params.a_decode_per_row_um2;
        Self {
            rows,
            latency_ns,
            energy_pj,
            area_um2,
        }
    }

    /// Rows decoded by this instance.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Decode latency per cycle, in ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Select-network switching energy per cycle, in pJ.
    pub fn energy_per_cycle_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Decoder area, in µm² (fixed overhead plus per-row cost — splitting
    /// one big array into many small ones multiplies the fixed part, which
    /// is where RED's area overhead comes from).
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, CircuitParams) {
        (TechnologyParams::node_65nm(), CircuitParams::default())
    }

    #[test]
    fn latency_logarithmic_energy_linear() {
        let (tech, params) = setup();
        let small = RowDecoder::new(&tech, &params, 512);
        let big = RowDecoder::new(&tech, &params, 12800);
        // 9 bits vs 14 bits of address.
        assert!((big.latency_ns() / small.latency_ns() - 14.0 / 9.0).abs() < 1e-9);
        assert!((big.energy_per_cycle_pj() / small.energy_per_cycle_pj() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn split_instances_cost_more_fixed_area() {
        let (tech, params) = setup();
        let monolithic = RowDecoder::new(&tech, &params, 12800);
        let split = RowDecoder::new(&tech, &params, 512);
        let split_total = 25.0 * split.area_um2();
        assert!(split_total > monolithic.area_um2());
        let overhead = split_total - monolithic.area_um2();
        assert!((overhead - 24.0 * params.a_decode_fixed_um2).abs() < 1e-9);
    }

    #[test]
    fn one_row_decoder_is_valid() {
        let (tech, params) = setup();
        let d = RowDecoder::new(&tech, &params, 1);
        assert!(d.latency_ns() > 0.0);
        assert_eq!(d.rows(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn zero_rows_panics() {
        let (tech, params) = setup();
        let _ = RowDecoder::new(&tech, &params, 0);
    }
}
