use crate::CircuitParams;
use red_device::TechnologyParams;

/// Wordline driver: the buffer chain that launches one input pulse down a
/// wordline spanning `line_cells` physical columns.
///
/// *Latency* is a logical-effort buffer chain (logarithmic in the line
/// capacitance) plus a small repeatered-wire linear term. *Energy* per
/// activation is the line capacitance switched at `vdd`, multiplied by the
/// driver-upsizing factor `len^exp` — longer lines need proportionally
/// larger (and hungrier) drivers to hold slew, which is the super-linear
/// "driving power" effect the paper leans on to rule out the padding-free
/// mapping (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WordlineDriver {
    line_cells: usize,
    c_line_ff: f64,
    latency_ns: f64,
    energy_pj: f64,
    area_um2: f64,
}

impl WordlineDriver {
    /// Builds the model for a wordline crossing `line_cells` physical
    /// columns.
    ///
    /// # Panics
    ///
    /// Panics if `line_cells` is zero.
    pub fn new(tech: &TechnologyParams, params: &CircuitParams, line_cells: usize) -> Self {
        assert!(line_cells > 0, "wordline must cross at least one cell");
        let c_line_ff = line_cells as f64 * params.c_wordline_per_cell_ff;
        let latency_ns =
            tech.buffer_chain_delay_ns(c_line_ff) + line_cells as f64 * params.t_wire_per_cell_ns;
        // Upsizing factor normalised to the reference line length, so the
        // per-activation energy is `C·V² · (len/ref)^exp` — super-linear in
        // line length (the paper's "quadratic driving power" observation).
        let upsize = (line_cells as f64 / params.wl_energy_ref_cols)
            .max(1.0)
            .powf(params.driver_upsize_exp);
        let energy_pj =
            tech.switch_energy_pj(c_line_ff + tech.buffer_chain_cap_ff(c_line_ff)) * upsize;
        // Driver area grows with the final-stage size, i.e. with the line
        // capacitance it must drive.
        let area_um2 = tech.inv_area_um2 * (1.0 + (c_line_ff / tech.c_gate_min_ff) / 3.0);
        Self {
            line_cells,
            c_line_ff,
            latency_ns,
            energy_pj,
            area_um2,
        }
    }

    /// Physical columns this wordline crosses.
    pub fn line_cells(&self) -> usize {
        self.line_cells
    }

    /// Total line capacitance in fF.
    pub fn c_line_ff(&self) -> f64 {
        self.c_line_ff
    }

    /// Pulse-launch latency in ns (per cycle; pulses within a cycle are
    /// pipelined through the same chain).
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Energy per wordline activation (one non-zero input pulse), in pJ.
    pub fn energy_per_activation_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Driver area per row, in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

/// Bitline driver / precharge path: the column-side analogue of
/// [`WordlineDriver`], spanning `line_cells` physical rows.
///
/// Bitlines in vector-mode reads are precharged once per conversion and
/// then integrate cell currents; the energy is the precharge of the line
/// capacitance (linear — current integration itself is billed to the cell
/// computation and the read circuit).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitlineDriver {
    line_cells: usize,
    c_line_ff: f64,
    latency_ns: f64,
    energy_pj: f64,
    area_um2: f64,
}

impl BitlineDriver {
    /// Builds the model for a bitline crossing `line_cells` physical rows.
    ///
    /// # Panics
    ///
    /// Panics if `line_cells` is zero.
    pub fn new(tech: &TechnologyParams, params: &CircuitParams, line_cells: usize) -> Self {
        assert!(line_cells > 0, "bitline must cross at least one cell");
        let c_line_ff = line_cells as f64 * params.c_bitline_per_cell_ff;
        // Log-only delay: bitlines are precharged, not swung rail-to-rail
        // per pulse, and current settling is billed to the read circuit, so
        // no repeatered linear wire term applies.
        let latency_ns = tech.buffer_chain_delay_ns(c_line_ff);
        // Precharge energy: linear in line cap (no upsizing term — the
        // precharge device does not need wordline-grade slew).
        let energy_pj = tech.switch_energy_pj(c_line_ff);
        let area_um2 = tech.inv_area_um2 * (1.0 + (c_line_ff / tech.c_gate_min_ff) / 6.0);
        Self {
            line_cells,
            c_line_ff,
            latency_ns,
            energy_pj,
            area_um2,
        }
    }

    /// Physical rows this bitline crosses.
    pub fn line_cells(&self) -> usize {
        self.line_cells
    }

    /// Total line capacitance in fF.
    pub fn c_line_ff(&self) -> f64 {
        self.c_line_ff
    }

    /// Precharge/settle latency in ns per cycle.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Energy per column precharge, in pJ.
    pub fn energy_per_precharge_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Precharge-path area per column, in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, CircuitParams) {
        (TechnologyParams::node_65nm(), CircuitParams::default())
    }

    #[test]
    fn wordline_energy_superlinear_latency_sublinear() {
        let (tech, params) = setup();
        let short = WordlineDriver::new(&tech, &params, 256);
        let long = WordlineDriver::new(&tech, &params, 256 * 25);
        let e_ratio = long.energy_per_activation_pj() / short.energy_per_activation_pj();
        let t_ratio = long.latency_ns() / short.latency_ns();
        assert!(
            e_ratio > 25.0,
            "energy ratio {e_ratio} should exceed the 25x length ratio"
        );
        assert!(
            t_ratio < 25.0,
            "latency ratio {t_ratio} must stay well below linear"
        );
    }

    #[test]
    fn wordline_upsize_exp_zero_is_linear() {
        let (tech, mut params) = setup();
        params.driver_upsize_exp = 0.0;
        params.t_wire_per_cell_ns = 0.0;
        let a = WordlineDriver::new(&tech, &params, 100);
        let b = WordlineDriver::new(&tech, &params, 400);
        let ratio = b.energy_per_activation_pj() / a.energy_per_activation_pj();
        assert!((ratio - 4.0).abs() < 0.2, "got {ratio}");
    }

    #[test]
    fn bitline_energy_is_linear_in_rows() {
        let (tech, params) = setup();
        let a = BitlineDriver::new(&tech, &params, 512);
        let b = BitlineDriver::new(&tech, &params, 12800);
        let ratio = b.energy_per_precharge_pj() / a.energy_per_precharge_pj();
        assert!((ratio - 25.0).abs() < 1e-9, "got {ratio}");
    }

    #[test]
    fn accessors_report_geometry() {
        let (tech, params) = setup();
        let d = WordlineDriver::new(&tech, &params, 1024);
        assert_eq!(d.line_cells(), 1024);
        assert!((d.c_line_ff() - 1024.0 * params.c_wordline_per_cell_ff).abs() < 1e-12);
        assert!(d.area_um2() > 0.0);
        let b = BitlineDriver::new(&tech, &params, 64);
        assert_eq!(b.line_cells(), 64);
        assert!(b.area_um2() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_length_wordline_panics() {
        let (tech, params) = setup();
        let _ = WordlineDriver::new(&tech, &params, 0);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_length_bitline_panics() {
        let (tech, params) = setup();
        let _ = BitlineDriver::new(&tech, &params, 0);
    }
}
