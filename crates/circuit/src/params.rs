use serde::{Deserialize, Serialize};

/// Calibration constants for the periphery circuit models.
///
/// The scaling *forms* (logarithmic driver delay, super-linear driver
/// energy, per-row decoder cost, per-conversion ADC cost, per-stage adder
/// cost) are fixed in the component models; this struct holds the
/// coefficients. Defaults are calibrated so that the six Table I layers
/// reproduce every headline ratio of the paper's §IV within its quoted
/// bands — see `tests/paper_bands.rs`, which fails if a change here breaks
/// the reproduction.
///
/// All values are per-operation/per-instance quantities in ns, pJ, fF and
/// µm² at the 65 nm node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitParams {
    // ---- array geometry-coupled loads ----
    /// Wordline load per physical column crossed, in fF (gate of the cell
    /// access transistor plus wire pitch capacitance).
    pub c_wordline_per_cell_ff: f64,
    /// Bitline load per physical row crossed, in fF (drain junction plus
    /// wire pitch capacitance).
    pub c_bitline_per_cell_ff: f64,
    /// Driver-upsizing exponent: energy per line activation scales as
    /// `C_line * V^2 * (len/ref)^exp`. `0` would be the pure-capacitive
    /// lower bound; positive values reflect sizing the driver chain up for
    /// constant slew on longer lines (the paper's "driving power increases
    /// in a quadratic relation with the column number" remark).
    pub driver_upsize_exp: f64,
    /// Reference line length (in cells) at which the upsizing factor is 1.
    pub wl_energy_ref_cols: f64,
    /// Wire flight-time contribution per physical cell crossed, in ns
    /// (repeatered-line linear term on top of the logarithmic buffer
    /// chain).
    pub t_wire_per_cell_ns: f64,

    // ---- row decoder ----
    /// Decode/input-select network switching capacitance per row, in fF.
    /// Following NeuroSim's taxonomy (which the paper inherits), the
    /// "decoder" bucket covers the whole row-side select machinery: address
    /// predecode, the wordline switch matrix, and the per-row input
    /// registers that reload every cycle — which is why it is hundreds of
    /// fF per row and why the paper attributes RED's periphery-energy win
    /// over zero-padding to "decoders".
    pub c_decode_per_row_ff: f64,
    /// Decoder delay per address bit (one predecode stage), in ns.
    pub t_decode_per_bit_ns: f64,
    /// Decoder area per row, in µm².
    pub a_decode_per_row_um2: f64,
    /// Fixed per-instance decoder overhead (predecoders, control), in µm².
    pub a_decode_fixed_um2: f64,

    // ---- column mux ----
    /// Mux ratio: physical columns sharing one read circuit. NeuroSim-style
    /// designs time-multiplex conversions by this factor.
    pub mux_ratio: usize,
    /// Pass-gate area per physical column, in µm².
    pub a_mux_per_col_um2: f64,
    /// Select-network energy per physical column per cycle, in pJ.
    pub e_mux_per_col_pj: f64,
    /// Mux select propagation delay per select level, in ns.
    pub t_mux_per_level_ns: f64,

    // ---- read circuit (integrate & fire ADC) ----
    /// ADC resolution in bits (fixed by design; 8 matches ISAAC-class
    /// accelerators).
    pub adc_bits: u32,
    /// Conversion time per resolved bit, in ns (integrate-and-fire counts
    /// spikes, so conversion is bit-serial).
    pub t_adc_per_bit_ns: f64,
    /// Conversion energy per resolved bit, in pJ.
    pub e_adc_per_bit_pj: f64,
    /// Area of one read-circuit channel, in µm² (the dominant periphery
    /// area term, as in ISAAC/NeuroSim).
    pub a_adc_um2: f64,

    // ---- shift adder ----
    /// Delay of one shift-add stage, in ns.
    pub t_add_stage_ns: f64,
    /// Energy of one add on one channel, in pJ.
    pub e_add_pj: f64,
    /// Shift-adder area per output channel per accumulator bit, in µm².
    pub a_add_per_bit_um2: f64,
    /// Extra merge-stage weight for summing partial results across
    /// sub-crossbars (RED) or overlapping windows (padding-free): the
    /// shared vertical sum line spans several arrays, so each merge level
    /// costs `merge_stage_factor` times a local add stage.
    pub merge_stage_factor: f64,

    // ---- output accumulator (padding-free only) ----
    /// Register + adder area per output channel of the overlap-add/crop
    /// unit, in µm².
    pub a_accum_per_channel_um2: f64,
    /// Energy per accumulated partial value, in pJ.
    pub e_accum_per_value_pj: f64,
    /// Latency of the accumulate + crop stage per cycle, in ns.
    pub t_accum_ns: f64,

    // ---- per-instance overheads ----
    /// Input/output register area per array port (row or physical column),
    /// in µm².
    pub a_reg_per_port_um2: f64,
    /// Array-segmentation overhead as a fraction of cell area, scaled by
    /// `(1 - 1/instances)`: splitting one crossbar into `n` sub-crossbars
    /// inserts driver strips, segment control and sum-up routing
    /// proportional to the array being split. This is the dominant source
    /// of RED's ~21 % area overhead (paper §IV-B3: "the pixel-wise mapping
    /// method augments output-related periphery circuits by splitting the
    /// crossbar apart"), and it is deliberately size-relative so the
    /// overhead is similar across layers, as the paper observes.
    pub a_segmentation_frac: f64,

    // ---- input interface ----
    /// Input activation precision in bits; inputs stream bit-serially
    /// (PipeLayer-style), so one logical cycle issues this many pulses.
    pub input_bits: u32,
    /// Weight precision in bits; combined with the device bits-per-cell it
    /// determines the bit-slice (cells-per-weight) count.
    pub weight_bits: u32,
}

impl CircuitParams {
    /// Physical cells (columns) per logical weight given the device's
    /// bits-per-cell: `ceil(weight_bits / bits_per_cell)`.
    pub fn cells_per_weight(&self, bits_per_cell: u32) -> usize {
        self.weight_bits.div_ceil(bits_per_cell) as usize
    }

    /// Number of address bits a decoder for `rows` rows needs
    /// (`ceil(log2(rows))`, at least 1).
    pub fn address_bits(rows: usize) -> u32 {
        usize::BITS - rows.next_power_of_two().leading_zeros() - 1
    }
}

impl Default for CircuitParams {
    fn default() -> Self {
        Self {
            c_wordline_per_cell_ff: 0.20,
            c_bitline_per_cell_ff: 0.02,
            driver_upsize_exp: 0.55,
            wl_energy_ref_cols: 8.0,
            t_wire_per_cell_ns: 4.0e-4,
            c_decode_per_row_ff: 750.0,
            t_decode_per_bit_ns: 0.06,
            a_decode_per_row_um2: 0.9,
            a_decode_fixed_um2: 60.0,
            mux_ratio: 8,
            a_mux_per_col_um2: 0.1,
            e_mux_per_col_pj: 0.0006,
            t_mux_per_level_ns: 0.05,
            adc_bits: 8,
            t_adc_per_bit_ns: 0.125,
            e_adc_per_bit_pj: 0.0125,
            a_adc_um2: 12.0,
            t_add_stage_ns: 0.05,
            e_add_pj: 0.012,
            a_add_per_bit_um2: 0.1,
            merge_stage_factor: 7.2,
            a_accum_per_channel_um2: 0.1,
            e_accum_per_value_pj: 0.02,
            t_accum_ns: 3.0,
            a_reg_per_port_um2: 0.5,
            a_segmentation_frac: 0.22,
            input_bits: 8,
            weight_bits: 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_per_weight_rounds_up() {
        let p = CircuitParams::default();
        assert_eq!(p.cells_per_weight(2), 4); // 8 bits / 2 bpc
        assert_eq!(p.cells_per_weight(3), 3); // ceil(8/3)
        assert_eq!(p.cells_per_weight(8), 1);
    }

    #[test]
    fn address_bits_is_ceil_log2() {
        assert_eq!(CircuitParams::address_bits(2), 1);
        assert_eq!(CircuitParams::address_bits(512), 9);
        assert_eq!(CircuitParams::address_bits(513), 10);
        assert_eq!(CircuitParams::address_bits(12800), 14);
        assert_eq!(CircuitParams::address_bits(1), 0);
    }

    #[test]
    fn defaults_are_physical() {
        let p = CircuitParams::default();
        assert!(p.mux_ratio >= 1);
        assert!(p.adc_bits >= 1);
        assert!(p.c_wordline_per_cell_ff > 0.0);
        assert!(p.driver_upsize_exp >= 0.0 && p.driver_upsize_exp <= 1.0);
        assert!(p.input_bits >= 1 && p.weight_bits >= 1);
    }
}
