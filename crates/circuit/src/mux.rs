use crate::CircuitParams;
use red_device::TechnologyParams;

/// Column multiplexer: `mux_ratio` physical columns share one read-circuit
/// channel, so each cycle performs `mux_ratio` sequential selections.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnMux {
    columns: usize,
    mux_ratio: usize,
    latency_ns: f64,
    energy_pj: f64,
    area_um2: f64,
}

impl ColumnMux {
    /// Builds the mux model for `columns` physical columns.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is zero (a `mux_ratio` of zero in the params is
    /// clamped to 1).
    pub fn new(tech: &TechnologyParams, params: &CircuitParams, columns: usize) -> Self {
        assert!(columns > 0, "mux needs at least one column");
        let ratio = params.mux_ratio.max(1);
        let levels = CircuitParams::address_bits(ratio).max(1);
        let latency_ns = f64::from(levels) * params.t_mux_per_level_ns;
        let energy_pj = columns as f64 * params.e_mux_per_col_pj;
        let area_um2 = columns as f64 * params.a_mux_per_col_um2;
        let _ = tech; // mux constants are already absolute; tech reserved for scaling variants
        Self {
            columns,
            mux_ratio: ratio,
            latency_ns,
            energy_pj,
            area_um2,
        }
    }

    /// Physical columns behind this mux.
    pub fn columns(&self) -> usize {
        self.columns
    }

    /// Read channels after multiplexing: `ceil(columns / mux_ratio)`.
    pub fn channels(&self) -> usize {
        self.columns.div_ceil(self.mux_ratio)
    }

    /// Select propagation latency per selection, in ns.
    pub fn latency_ns(&self) -> f64 {
        self.latency_ns
    }

    /// Select-network energy per cycle, in pJ.
    pub fn energy_per_cycle_pj(&self) -> f64 {
        self.energy_pj
    }

    /// Pass-gate area, in µm².
    pub fn area_um2(&self) -> f64 {
        self.area_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TechnologyParams, CircuitParams) {
        (TechnologyParams::node_65nm(), CircuitParams::default())
    }

    #[test]
    fn channels_round_up() {
        let (tech, params) = setup();
        let m = ColumnMux::new(&tech, &params, 1025);
        assert_eq!(m.channels(), 129); // ceil(1025/8)
        assert_eq!(m.mux_ratio, 8);
    }

    #[test]
    fn energy_and_area_linear_in_columns() {
        let (tech, params) = setup();
        let a = ColumnMux::new(&tech, &params, 100);
        let b = ColumnMux::new(&tech, &params, 400);
        assert!((b.energy_per_cycle_pj() / a.energy_per_cycle_pj() - 4.0).abs() < 1e-9);
        assert!((b.area_um2() / a.area_um2() - 4.0).abs() < 1e-9);
        assert_eq!(a.latency_ns(), b.latency_ns());
    }

    #[test]
    fn unit_mux_ratio_is_clamped() {
        let (tech, mut params) = setup();
        params.mux_ratio = 0;
        let m = ColumnMux::new(&tech, &params, 16);
        assert_eq!(m.channels(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_columns_panics() {
        let (tech, params) = setup();
        let _ = ColumnMux::new(&tech, &params, 0);
    }
}
