//! Deterministic structured tracer on the virtual clock.
//!
//! Every span/instant is stamped with a **virtual-clock** timestamp
//! (`ts_ns`), so for a fixed request trace the recorded event set is a
//! pure function of the inputs — the same contract `benchdiff` enforces
//! for the aggregate reports, extended down to individual lifecycle
//! events. Host wall-clock never enters a [`TraceEvent`]; anything
//! host-dependent stays out of the tracer entirely (the `host*`
//! segregation rule).
//!
//! Events are recorded into per-stream bounded rings
//! ([`EventRing`](crate::EventRing)). Streams exist because the serving
//! scheduler's *per-partition* decision sequence is deterministic while
//! cross-partition interleaving is not: each partition records into its
//! own stream, and the exporter merges streams with a deterministic
//! sort, so the exported trace is byte-identical across reruns even
//! when worker threads race.
//!
//! [`TraceEvent`] is a fixed-size `Copy` value — `&'static str` names
//! and a bounded inline argument array — so a push is one ring-slot
//! write with no per-event heap allocation.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::metrics::{Counter, Gauge, HistogramHandle, MetricsRegistry};
use crate::perfetto;
use crate::ring::EventRing;

/// Default per-stream ring capacity: large enough to hold every event
/// of a bench-sized run, small enough (~a few MiB per stream) that a
/// million-request streaming run keeps its fixed memory ceiling.
pub const DEFAULT_STREAM_CAPACITY: usize = 16_384;

/// A trace argument value. `Str` is `'static` so recording never
/// allocates; dynamic strings belong in track names, not per-event
/// args.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// Floating-point argument.
    F64(f64),
    /// Static string argument.
    Str(&'static str),
}

/// Chrome trace-event phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `ph:"X"` — a complete span with `ts` and `dur`.
    Complete,
    /// `ph:"b"` — async span begin, matched by `id`.
    AsyncBegin,
    /// `ph:"n"` — async instant inside an `id`-matched span.
    AsyncInstant,
    /// `ph:"e"` — async span end, matched by `id`.
    AsyncEnd,
    /// `ph:"i"` — a thread-scoped instant.
    Instant,
    /// `ph:"C"` — a counter sample; every arg is a numeric series value
    /// plotted on the `(pid, name)` counter track.
    Counter,
}

impl Phase {
    /// Tie-break rank for the deterministic export sort: begins before
    /// the spans they open, ends after. Counter samples sort after
    /// everything else at the same instant so a scrape boundary
    /// reflects the events at or before it.
    fn rank(self) -> u8 {
        match self {
            Phase::AsyncBegin => 0,
            Phase::Complete => 1,
            Phase::Instant => 2,
            Phase::AsyncInstant => 3,
            Phase::AsyncEnd => 4,
            Phase::Counter => 5,
        }
    }
}

/// Maximum inline arguments per event.
pub const MAX_ARGS: usize = 6;

/// One recorded trace event: fixed-size, heap-free, virtual-clock
/// stamped.
#[derive(Debug, Clone, Copy)]
pub struct TraceEvent {
    /// Event name (Perfetto slice title).
    pub name: &'static str,
    /// Event category.
    pub cat: &'static str,
    /// Chrome trace-event phase.
    pub ph: Phase,
    /// Virtual-clock timestamp in nanoseconds.
    pub ts_ns: u64,
    /// Span duration in nanoseconds (`Complete` only, else 0).
    pub dur_ns: u64,
    /// Track process id (see the track layout in `red-server`).
    pub pid: u32,
    /// Track thread id.
    pub tid: u32,
    /// Async correlation id (`AsyncBegin`/`AsyncInstant`/`AsyncEnd`).
    pub id: u64,
    /// Inline key/value arguments.
    pub args: [Option<(&'static str, ArgValue)>; MAX_ARGS],
}

impl TraceEvent {
    /// A new event with no arguments; fill in `args` via [`Self::arg`].
    pub fn new(name: &'static str, cat: &'static str, ph: Phase, ts_ns: u64) -> Self {
        Self {
            name,
            cat,
            ph,
            ts_ns,
            dur_ns: 0,
            pid: 0,
            tid: 0,
            id: 0,
            args: [None; MAX_ARGS],
        }
    }

    /// Sets the track (pid, tid).
    #[must_use]
    pub fn track(mut self, pid: u32, tid: u32) -> Self {
        self.pid = pid;
        self.tid = tid;
        self
    }

    /// Sets the span duration (meaningful for `Complete` events).
    #[must_use]
    pub fn dur(mut self, dur_ns: u64) -> Self {
        self.dur_ns = dur_ns;
        self
    }

    /// Sets the async correlation id.
    #[must_use]
    pub fn with_id(mut self, id: u64) -> Self {
        self.id = id;
        self
    }

    /// Appends an argument; silently ignored past [`MAX_ARGS`] (the
    /// fixed footprint wins over completeness in the flight recorder).
    #[must_use]
    pub fn arg(mut self, key: &'static str, value: ArgValue) -> Self {
        if let Some(slot) = self.args.iter_mut().find(|s| s.is_none()) {
            *slot = Some((key, value));
        }
        self
    }

    /// The deterministic export sort key. Events identical under this
    /// key are byte-identical in the export, so any stable order of
    /// ties yields the same output.
    pub(crate) fn sort_key(&self) -> impl Ord {
        (
            self.ts_ns,
            self.pid,
            self.tid,
            self.ph.rank(),
            self.id,
            self.name,
            self.dur_ns,
        )
    }
}

/// Human-readable names for trace tracks, registered once at startup by
/// whoever owns the pid/tid layout (single-threaded, so deterministic).
#[derive(Debug, Default)]
pub(crate) struct TrackLabels {
    pub(crate) processes: BTreeMap<u32, String>,
    pub(crate) threads: BTreeMap<(u32, u32), String>,
}

/// Shared tracer + metrics state behind an enabled [`Telemetry`].
#[derive(Debug)]
struct TelemetryInner {
    streams: Mutex<Vec<EventRing<TraceEvent>>>,
    stream_capacity: usize,
    labels: Mutex<TrackLabels>,
    metrics: MetricsRegistry,
    /// Scraped time-series published at end of run (one entry per
    /// series), kept sorted by `(partition, chart, key)` so JSON
    /// exports are deterministic regardless of publish order.
    timeseries: Mutex<Vec<crate::scrape::SeriesSnapshot>>,
}

/// Handle to the observability plane. `Telemetry::disabled()` (the
/// default) carries no state: every record call is a branch on a `None`
/// and returns — the zero-cost-when-disabled contract. Clones share
/// the same underlying recorder.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl Telemetry {
    /// A disabled handle: records nothing, binds no-op metric handles.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle with the default per-stream ring capacity.
    pub fn enabled() -> Self {
        Self::with_stream_capacity(DEFAULT_STREAM_CAPACITY)
    }

    /// An enabled handle whose per-stream flight-recorder rings hold
    /// `capacity` events each.
    pub fn with_stream_capacity(capacity: usize) -> Self {
        Self {
            inner: Some(Arc::new(TelemetryInner {
                streams: Mutex::new(Vec::new()),
                stream_capacity: capacity.max(1),
                labels: Mutex::new(TrackLabels::default()),
                metrics: MetricsRegistry::new(),
                timeseries: Mutex::new(Vec::new()),
            })),
        }
    }

    /// `true` when this handle actually records.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records `event` into stream `stream`. Streams are created on
    /// first use; use one stream per deterministic emission sequence
    /// (e.g. one per partition) so ring overflow is deterministic too.
    pub fn record(&self, stream: usize, event: TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let mut streams = inner.streams.lock().expect("telemetry streams poisoned");
        while streams.len() <= stream {
            streams.push(EventRing::new(inner.stream_capacity));
        }
        streams[stream].push(event);
    }

    /// Names the Perfetto process track `pid`.
    pub fn name_process(&self, pid: u32, name: &str) {
        let Some(inner) = &self.inner else { return };
        let mut labels = inner.labels.lock().expect("telemetry labels poisoned");
        labels.processes.insert(pid, name.to_string());
    }

    /// Names the Perfetto thread track `(pid, tid)`.
    pub fn name_thread(&self, pid: u32, tid: u32, name: &str) {
        let Some(inner) = &self.inner else { return };
        let mut labels = inner.labels.lock().expect("telemetry labels poisoned");
        labels.threads.insert((pid, tid), name.to_string());
    }

    /// Total events currently retained across all streams.
    pub fn event_count(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => {
                let streams = inner.streams.lock().expect("telemetry streams poisoned");
                streams.iter().map(EventRing::len).sum()
            }
        }
    }

    /// Exact total of events evicted by ring overflow across all
    /// streams.
    pub fn overflow_total(&self) -> u64 {
        match &self.inner {
            None => 0,
            Some(inner) => {
                let streams = inner.streams.lock().expect("telemetry streams poisoned");
                streams.iter().map(EventRing::overflow).sum()
            }
        }
    }

    /// Deterministically merged snapshot of all retained events: the
    /// per-stream sequences are concatenated and sorted by the export
    /// key, so the result is independent of stream creation order and
    /// cross-stream race outcomes.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let streams = inner.streams.lock().expect("telemetry streams poisoned");
        let mut events: Vec<TraceEvent> = streams.iter().flat_map(|s| s.iter().copied()).collect();
        events.sort_by_key(TraceEvent::sort_key);
        events
    }

    /// Renders the retained events as Chrome trace-event JSON (see
    /// [`crate::perfetto`]). Deterministic: byte-identical across
    /// reruns of the same virtual-clock event sequence.
    pub fn export_chrome_trace(&self) -> String {
        let events = self.snapshot();
        let overflow = self.overflow_total();
        match &self.inner {
            None => perfetto::render(&events, &TrackLabels::default(), overflow),
            Some(inner) => {
                let labels = inner.labels.lock().expect("telemetry labels poisoned");
                perfetto::render(&events, &labels, overflow)
            }
        }
    }

    /// Renders the metrics registry in Prometheus text exposition
    /// format. Deterministic for deterministic metric values.
    ///
    /// Per-stream flight-recorder overflow is synced into
    /// `red_trace_overflow_total{stream}` first, so truncated captures
    /// show up as a real (alertable) metric rather than only an
    /// `otherData` annotation in the trace document.
    pub fn export_prometheus(&self) -> String {
        match &self.inner {
            None => String::new(),
            Some(inner) => {
                {
                    let streams = inner.streams.lock().expect("telemetry streams poisoned");
                    for (i, s) in streams.iter().enumerate() {
                        let overflow = s.overflow();
                        if overflow > 0 {
                            let cell = inner.metrics.counter(
                                "red_trace_overflow_total",
                                "Trace events evicted by flight-recorder ring overflow",
                                &[("stream", &i.to_string())],
                            );
                            // Counters only move forward; publish the
                            // delta since the last export.
                            let published = cell.get();
                            if overflow > published {
                                cell.add(overflow - published);
                            }
                        }
                    }
                }
                inner.metrics.render()
            }
        }
    }

    /// Publishes scraped time-series (one [`SeriesSnapshot`] per
    /// series) for later export; typically called once per partition
    /// at end of run. No-op on a disabled handle.
    pub fn publish_timeseries(&self, series: Vec<crate::scrape::SeriesSnapshot>) {
        let Some(inner) = &self.inner else { return };
        let mut all = inner
            .timeseries
            .lock()
            .expect("telemetry timeseries poisoned");
        all.extend(series);
        all.sort_by(|a, b| (a.partition, &a.chart, &a.key).cmp(&(b.partition, &b.chart, &b.key)));
    }

    /// The published time-series, sorted by `(partition, chart, key)`.
    pub fn timeseries_snapshot(&self) -> Vec<crate::scrape::SeriesSnapshot> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => inner
                .timeseries
                .lock()
                .expect("telemetry timeseries poisoned")
                .clone(),
        }
    }

    /// Binds a monotonically increasing counter. Disabled handles
    /// return a no-op counter; repeated binds of the same name+labels
    /// share one cell.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        match &self.inner {
            None => Counter::noop(),
            Some(inner) => inner.metrics.counter(name, help, labels),
        }
    }

    /// Binds a gauge (set-to-latest semantics).
    pub fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        match &self.inner {
            None => Gauge::noop(),
            Some(inner) => inner.metrics.gauge(name, help, labels),
        }
    }

    /// Binds a latency histogram (exported as quantile summaries).
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> HistogramHandle {
        match &self.inner {
            None => HistogramHandle::noop(),
            Some(inner) => inner.metrics.histogram(name, help, labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.record(0, TraceEvent::new("x", "c", Phase::Instant, 5));
        t.name_process(1, "p");
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.snapshot().len(), 0);
        assert_eq!(t.export_prometheus(), "");
        let c = t.counter("a_total", "h", &[]);
        c.add(3); // must not panic
    }

    #[test]
    fn snapshot_merges_streams_deterministically() {
        // Record the same events with streams created in different
        // orders; snapshots must match event-for-event.
        let build = |order: &[usize]| {
            let t = Telemetry::with_stream_capacity(8);
            for &s in order {
                let ev =
                    TraceEvent::new("e", "c", Phase::Instant, 10 + s as u64).track(s as u32, 0);
                t.record(s, ev);
            }
            t.snapshot()
                .iter()
                .map(|e| (e.ts_ns, e.pid))
                .collect::<Vec<_>>()
        };
        assert_eq!(build(&[0, 1, 2]), build(&[2, 1, 0]));
    }

    #[test]
    fn ring_overflow_is_counted_per_stream() {
        let t = Telemetry::with_stream_capacity(2);
        for i in 0..5u64 {
            t.record(0, TraceEvent::new("e", "c", Phase::Instant, i));
        }
        assert_eq!(t.event_count(), 2);
        assert_eq!(t.overflow_total(), 3);
        // The retained window is the newest events.
        let ts: Vec<u64> = t.snapshot().iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![3, 4]);
    }

    #[test]
    fn args_past_capacity_are_dropped_silently() {
        let mut ev = TraceEvent::new("e", "c", Phase::Instant, 0);
        for i in 0..(MAX_ARGS + 3) {
            ev = ev.arg("k", ArgValue::U64(i as u64));
        }
        assert_eq!(ev.args.iter().filter(|a| a.is_some()).count(), MAX_ARGS);
    }
}
