//! Observability plane for the RED reproduction.
//!
//! Everything the serving and runtime layers know about themselves
//! flows through this crate, on the same determinism contract the
//! benchmark gate already enforces: **modeled, virtual-clock data is a
//! pure function of the request trace; host measurements are
//! segregated** (the `process` module) and never enter an exported
//! artifact.
//!
//! Three planes:
//!
//! - **Tracer** ([`Telemetry`], [`TraceEvent`]): per-request lifecycle
//!   and per-stage pipeline spans recorded into bounded per-stream
//!   flight-recorder rings ([`EventRing`]) — O(1) per event, fixed
//!   footprint, exact overflow accounting.
//! - **Exporter** (`perfetto`): hand-rolled Chrome trace-event JSON,
//!   byte-identical across reruns, opens in `ui.perfetto.dev`.
//! - **Metrics** ([`Counter`], [`Gauge`], [`HistogramHandle`],
//!   [`LatencyHistogram`]): tenant/partition/stage-labeled registry
//!   with deterministic Prometheus text exposition.
//!
//! On top of the metrics plane sit the windowed time-series
//! [`Scraper`] (registry snapshots on the virtual clock, exported as
//! Chrome-trace `"C"` counter tracks and JSON series) and the
//! [`AlertEngine`] (multi-window SLO burn-rate rules whose
//! fire/resolve decisions are pure functions of the scrape sequence).
//!
//! The [`Telemetry`] handle is zero-cost when disabled: a disabled
//! handle holds no allocation and every record call returns after one
//! branch, so instrumented code paths pay nothing in the default
//! configuration (the million-request CI smoke runs with tracing *on*
//! to prove the enabled path stays within the memory ceiling).

mod alert;
mod histogram;
mod metrics;
mod perfetto;
mod process;
mod ring;
mod scrape;
mod trace;

pub use alert::{AlertEngine, AlertPolicy, AlertState, AlertTransition, AlertWindow, TenantWindow};
pub use histogram::LatencyHistogram;
pub use metrics::{Counter, Gauge, HistogramHandle};
pub use process::peak_rss_kb;
pub use ring::EventRing;
pub use scrape::{intern, ScrapeConfig, Scraper, SeriesSnapshot, WindowSnapshot};
pub use trace::{ArgValue, Phase, Telemetry, TraceEvent, DEFAULT_STREAM_CAPACITY, MAX_ARGS};
