//! Chrome trace-event / Perfetto JSON exporter.
//!
//! Hand-rolled writer (mirroring the hand-rolled `minijson` reader in
//! `red-bench` — the build environment has no registry access) for the
//! [Chrome trace-event format], which `ui.perfetto.dev` and
//! `chrome://tracing` both open directly.
//!
//! Determinism is part of the format contract here: events are rendered
//! pre-sorted by [`TraceEvent::sort_key`], metadata events come from
//! ordered maps, timestamps are converted ns → µs with exact integer
//! math (`{}.{:03}`), and no host-derived value is ever written. Two
//! exports of the same virtual-clock event sequence are byte-identical.
//!
//! [Chrome trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::trace::{ArgValue, Phase, TraceEvent, TrackLabels};

/// Escapes a string for inclusion in a JSON string literal.
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Writes a nanosecond count as microseconds with exactly three decimal
/// places — integer math only, so formatting is deterministic.
fn write_us(out: &mut String, ns: u64) {
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

fn write_arg_value(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(x) => {
            // JSON has no NaN/Inf; clamp defensively (never expected).
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        ArgValue::Str(s) => {
            out.push('"');
            escape_into(out, s);
            out.push('"');
        }
    }
}

/// One metadata event (`ph:"M"`) naming a process or thread track.
fn write_metadata(out: &mut String, name: &str, pid: u32, tid: Option<u32>, label: &str) {
    out.push_str("{\"name\":\"");
    out.push_str(name);
    let _ = write!(out, "\",\"ph\":\"M\",\"pid\":{pid}");
    if let Some(tid) = tid {
        let _ = write!(out, ",\"tid\":{tid}");
    }
    out.push_str(",\"args\":{\"name\":\"");
    escape_into(out, label);
    out.push_str("\"}}");
}

fn write_event(out: &mut String, ev: &TraceEvent) {
    out.push_str("{\"name\":\"");
    escape_into(out, ev.name);
    out.push_str("\",\"cat\":\"");
    escape_into(out, ev.cat);
    out.push_str("\",\"ph\":\"");
    let ph = match ev.ph {
        Phase::Complete => "X",
        Phase::AsyncBegin => "b",
        Phase::AsyncInstant => "n",
        Phase::AsyncEnd => "e",
        Phase::Instant => "i",
        Phase::Counter => "C",
    };
    out.push_str(ph);
    out.push_str("\",\"ts\":");
    write_us(out, ev.ts_ns);
    if ev.ph == Phase::Complete {
        out.push_str(",\"dur\":");
        write_us(out, ev.dur_ns);
    }
    let _ = write!(out, ",\"pid\":{},\"tid\":{}", ev.pid, ev.tid);
    match ev.ph {
        Phase::AsyncBegin | Phase::AsyncInstant | Phase::AsyncEnd => {
            let _ = write!(out, ",\"id\":\"0x{:x}\"", ev.id);
        }
        Phase::Instant => out.push_str(",\"s\":\"t\""),
        Phase::Complete | Phase::Counter => {}
    }
    out.push_str(",\"args\":{");
    let mut first = true;
    for (key, value) in ev.args.iter().flatten() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('"');
        escape_into(out, key);
        out.push_str("\":");
        write_arg_value(out, value);
    }
    out.push_str("}}");
}

/// Renders `events` (already sorted by the deterministic export key)
/// plus track-name metadata as a Chrome trace-event JSON document.
///
/// `overflow` is the count of events the flight-recorder rings evicted;
/// when non-zero the document declares it under `otherData`, so readers
/// (and `tracecheck`) know the window is a truncated suffix in which
/// async ends may legitimately precede their retained begins. A
/// non-truncated export carries no `otherData` and stays byte-stable.
pub(crate) fn render(events: &[TraceEvent], labels: &TrackLabels, overflow: u64) -> String {
    // ~160 bytes/event is a comfortable over-estimate; avoids rehashing
    // growth for large traces.
    let mut out = String::with_capacity(64 + events.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ns\",");
    if overflow > 0 {
        let _ = write!(out, "\"otherData\":{{\"overflowEvents\":{overflow}}},");
    }
    out.push_str("\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push('\n');
    };
    for (pid, label) in &labels.processes {
        sep(&mut out);
        write_metadata(&mut out, "process_name", *pid, None, label);
    }
    for ((pid, tid), label) in &labels.threads {
        sep(&mut out);
        write_metadata(&mut out, "thread_name", *pid, Some(*tid), label);
    }
    for ev in events {
        sep(&mut out);
        write_event(&mut out, ev);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Telemetry;

    #[test]
    fn renders_valid_shapes_for_every_phase() {
        let t = Telemetry::with_stream_capacity(16);
        t.name_process(1, "sched \"q\"");
        t.name_thread(1, 2, "tenant");
        t.record(
            0,
            TraceEvent::new("exec", "server", Phase::Complete, 1_500)
                .track(1, 2)
                .dur(2_500)
                .arg("batch", ArgValue::U64(4))
                .arg("trigger", ArgValue::Str("full")),
        );
        t.record(
            0,
            TraceEvent::new("req", "server", Phase::AsyncBegin, 1_000)
                .track(1, 2)
                .with_id(0x1f),
        );
        t.record(
            0,
            TraceEvent::new("scale", "server", Phase::Instant, 9_001).track(1, 2),
        );
        let json = t.export_chrome_trace();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        // Escaped process label, µs conversion, async id, instant scope.
        assert!(json.contains("\"args\":{\"name\":\"sched \\\"q\\\"\"}"));
        assert!(json.contains("\"ts\":1.500,\"dur\":2.500"));
        assert!(json.contains("\"id\":\"0x1f\""));
        assert!(json.contains("\"s\":\"t\""));
        assert!(json.contains("\"trigger\":\"full\""));
    }

    #[test]
    fn counter_events_render_as_phase_c_with_numeric_args() {
        let t = Telemetry::with_stream_capacity(8);
        t.record(
            0,
            TraceEvent::new("served", "scrape", Phase::Counter, 2_000)
                .track(100, 0)
                .arg("interactive", ArgValue::U64(31))
                .arg("batch", ArgValue::U64(7)),
        );
        let json = t.export_chrome_trace();
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"interactive\":31,\"batch\":7}"));
        // No dur/id/s fields on a counter sample.
        assert!(!json.contains("\"dur\""));
        assert!(!json.contains("\"id\""));
        assert!(!json.contains("\"s\":\"t\""));
    }

    #[test]
    fn export_is_byte_identical_across_reruns() {
        let build = || {
            let t = Telemetry::with_stream_capacity(8);
            t.name_process(7, "part0");
            for i in 0..12u64 {
                t.record(
                    (i % 3) as usize,
                    TraceEvent::new("e", "c", Phase::Complete, i * 10)
                        .track(7, (i % 2) as u32)
                        .dur(5)
                        .arg("i", ArgValue::U64(i)),
                );
            }
            t.export_chrome_trace()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn truncated_exports_declare_their_overflow() {
        let t = Telemetry::with_stream_capacity(4);
        for i in 0..10u64 {
            t.record(
                0,
                TraceEvent::new("e", "c", Phase::Complete, i)
                    .track(1, 0)
                    .dur(1),
            );
        }
        let json = t.export_chrome_trace();
        assert_eq!(t.overflow_total(), 6);
        assert!(json.contains("\"otherData\":{\"overflowEvents\":6}"));
        // A non-truncated export stays byte-stable: no otherData at all.
        let small = Telemetry::with_stream_capacity(4);
        small.record(
            0,
            TraceEvent::new("e", "c", Phase::Complete, 0)
                .track(1, 0)
                .dur(1),
        );
        assert!(!small.export_chrome_trace().contains("otherData"));
    }

    #[test]
    fn microsecond_formatting_is_exact() {
        let mut s = String::new();
        write_us(&mut s, 0);
        s.push(' ');
        write_us(&mut s, 999);
        s.push(' ');
        write_us(&mut s, 1_234_567);
        assert_eq!(s, "0.000 0.999 1234.567");
    }
}
