//! Deterministic multi-window SLO burn-rate alerting.
//!
//! The [`AlertEngine`] consumes the scrape-window sequence produced by
//! the [`Scraper`](crate::Scraper) and decides, per window, which
//! alert rules fire or resolve. Decisions are **pure functions of the
//! window sequence** — no host clock, no randomness — so two replays
//! of the same request trace produce byte-identical alert timelines,
//! exactly like the traces and metrics they are computed from.
//!
//! Rules follow SRE error-budget practice: each tenant's SLO defines
//! an error budget `1 − target`, the *burn rate* of a trailing span of
//! windows is `(bad / total) / (1 − target)`, and two rules watch it —
//! a **fast-burn** rule (short span, high threshold; pages on sudden
//! overload) and a **slow-burn** rule (long span, low threshold;
//! catches sustained erosion). Two level-triggered partition rules
//! ride along: `replica-lost` (sheds attributed to a crashed replica)
//! and `quarantine` (routable replicas below active). Every rule
//! resolves hysteretically: only after [`AlertPolicy::resolve_windows`]
//! consecutive calm windows.

use std::collections::VecDeque;

/// Thresholds for the burn-rate and level rules.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertPolicy {
    /// Availability target an error budget is defined against
    /// (e.g. `0.999` → 0.1% budget).
    pub slo_target: f64,
    /// Trailing windows in the fast-burn span.
    pub fast_windows: usize,
    /// Burn-rate threshold of the fast rule.
    pub fast_burn: f64,
    /// Trailing windows in the slow-burn span.
    pub slow_windows: usize,
    /// Burn-rate threshold of the slow rule.
    pub slow_burn: f64,
    /// Consecutive calm windows required before an active alert
    /// resolves.
    pub resolve_windows: usize,
    /// `error-bound` rule margin: fires when `max_observed_error >=
    /// margin * precision_error_bound` at end of session.
    pub error_bound_margin: f64,
}

impl Default for AlertPolicy {
    fn default() -> Self {
        Self {
            slo_target: 0.999,
            fast_windows: 3,
            fast_burn: 14.0,
            slow_windows: 12,
            slow_burn: 2.0,
            resolve_windows: 3,
            error_bound_margin: 0.5,
        }
    }
}

impl AlertPolicy {
    /// End-of-session check backing the `error-bound` rule: the
    /// observed degradation error has consumed at least
    /// [`Self::error_bound_margin`] of the advertised bound.
    pub fn error_bound_breached(&self, observed: f64, bound: f64) -> bool {
        bound > 0.0 && observed >= self.error_bound_margin * bound
    }
}

/// Per-tenant deltas of one scrape window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantWindow {
    /// Requests served in the window.
    pub served: u64,
    /// Requests shed in the window.
    pub shed: u64,
    /// Served requests that missed the tenant SLO in the window.
    pub slo_miss: u64,
}

/// One scrape window as the engine sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlertWindow {
    /// Window boundary on the virtual clock.
    pub t_ns: u64,
    /// Per-tenant deltas, indexed by tenant id.
    pub tenants: Vec<TenantWindow>,
    /// Sheds attributed to a lost replica in the window.
    pub replica_lost: u64,
    /// Active replicas at the boundary.
    pub active: i64,
    /// Routable (non-quarantined) replicas at the boundary.
    pub routable: i64,
}

/// Fire/resolve edge of one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertState {
    /// The rule's condition held and the alert was not active.
    Fired,
    /// The alert was active and the condition stayed calm for the
    /// policy's resolve span.
    Resolved,
}

impl AlertState {
    /// `fire` / `resolve` — the spelling used in trace args and
    /// reports.
    pub fn as_str(self) -> &'static str {
        match self {
            AlertState::Fired => "fire",
            AlertState::Resolved => "resolve",
        }
    }
}

/// One state transition of one rule, stamped on the virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertTransition {
    /// Rule name (`fast-burn`, `slow-burn`, `replica-lost`,
    /// `quarantine`, `error-bound`).
    pub rule: &'static str,
    /// Tenant scope (burn rules); `None` for partition-scope rules.
    pub tenant: Option<usize>,
    /// Window boundary the transition happened at.
    pub t_ns: u64,
    /// Fired or resolved.
    pub state: AlertState,
    /// Rule value at the transition (burn rate, lost sheds, replica
    /// deficit).
    pub value: f64,
}

/// Hysteretic fire/resolve state shared by every rule.
#[derive(Debug)]
struct EdgeState {
    active: bool,
    calm: usize,
}

impl EdgeState {
    fn new() -> Self {
        Self {
            active: false,
            calm: 0,
        }
    }

    /// Steps the edge detector one window; returns the transition
    /// edge, if any.
    fn step(&mut self, hot: bool, resolve_windows: usize) -> Option<AlertState> {
        if hot {
            let fired = !self.active;
            self.active = true;
            self.calm = 0;
            fired.then_some(AlertState::Fired)
        } else if self.active {
            self.calm += 1;
            if self.calm >= resolve_windows.max(1) {
                self.active = false;
                self.calm = 0;
                return Some(AlertState::Resolved);
            }
            None
        } else {
            None
        }
    }
}

/// Trailing `(bad, total)` span for one burn rule of one tenant.
#[derive(Debug)]
struct BurnState {
    span: VecDeque<(u64, u64)>,
    horizon: usize,
    threshold: f64,
    edge: EdgeState,
}

impl BurnState {
    fn new(horizon: usize, threshold: f64) -> Self {
        Self {
            span: VecDeque::new(),
            horizon: horizon.max(1),
            threshold,
            edge: EdgeState::new(),
        }
    }

    /// Burn rate over the trailing span after appending this window.
    fn observe(&mut self, bad: u64, total: u64, budget: f64) -> (bool, f64) {
        self.span.push_back((bad, total));
        while self.span.len() > self.horizon {
            self.span.pop_front();
        }
        let (b, t) = self
            .span
            .iter()
            .fold((0u64, 0u64), |(b, t), (wb, wt)| (b + wb, t + wt));
        if t == 0 {
            return (false, 0.0);
        }
        let burn = (b as f64 / t as f64) / budget;
        (burn >= self.threshold, burn)
    }
}

/// Deterministic alert evaluator for one partition. See module docs.
#[derive(Debug)]
pub struct AlertEngine {
    policy: AlertPolicy,
    fast: Vec<BurnState>,
    slow: Vec<BurnState>,
    replica_lost: EdgeState,
    quarantine: EdgeState,
}

impl AlertEngine {
    /// An engine watching `tenants` tenant classes under `policy`.
    pub fn new(policy: AlertPolicy, tenants: usize) -> Self {
        let fast = (0..tenants)
            .map(|_| BurnState::new(policy.fast_windows, policy.fast_burn))
            .collect();
        let slow = (0..tenants)
            .map(|_| BurnState::new(policy.slow_windows, policy.slow_burn))
            .collect();
        Self {
            policy,
            fast,
            slow,
            replica_lost: EdgeState::new(),
            quarantine: EdgeState::new(),
        }
    }

    /// The policy this engine evaluates.
    pub fn policy(&self) -> &AlertPolicy {
        &self.policy
    }

    /// Evaluates one scrape window; returns every fire/resolve edge,
    /// in deterministic rule order (fast-burn then slow-burn per
    /// tenant, then replica-lost, then quarantine).
    pub fn observe(&mut self, w: &AlertWindow) -> Vec<AlertTransition> {
        let mut out = Vec::new();
        let budget = (1.0 - self.policy.slo_target).max(1e-9);
        let resolve = self.policy.resolve_windows;
        for (tenant, tw) in w.tenants.iter().enumerate() {
            let bad = tw.shed + tw.slo_miss;
            let total = tw.served + tw.shed;
            for (rule, states) in [("fast-burn", &mut self.fast), ("slow-burn", &mut self.slow)] {
                if let Some(state) = states.get_mut(tenant) {
                    let (hot, burn) = state.observe(bad, total, budget);
                    if let Some(edge) = state.edge.step(hot, resolve) {
                        out.push(AlertTransition {
                            rule,
                            tenant: Some(tenant),
                            t_ns: w.t_ns,
                            state: edge,
                            value: burn,
                        });
                    }
                }
            }
        }
        if let Some(edge) = self.replica_lost.step(w.replica_lost > 0, resolve) {
            out.push(AlertTransition {
                rule: "replica-lost",
                tenant: None,
                t_ns: w.t_ns,
                state: edge,
                value: w.replica_lost as f64,
            });
        }
        if let Some(edge) = self.quarantine.step(w.routable < w.active, resolve) {
            out.push(AlertTransition {
                rule: "quarantine",
                tenant: None,
                t_ns: w.t_ns,
                state: edge,
                value: (w.active - w.routable).max(0) as f64,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(t_ns: u64, served: u64, shed: u64) -> AlertWindow {
        AlertWindow {
            t_ns,
            tenants: vec![TenantWindow {
                served,
                shed,
                slo_miss: 0,
            }],
            replica_lost: 0,
            active: 2,
            routable: 2,
        }
    }

    #[test]
    fn fast_burn_fires_on_overload_and_resolves_hysteretically() {
        let mut e = AlertEngine::new(AlertPolicy::default(), 1);
        // Calm traffic: nothing fires.
        for i in 0..5 {
            assert!(e.observe(&window(i * 100, 100, 0)).is_empty());
        }
        // 10% shed rate = burn 100 with a 0.1% budget: fires once.
        let fired = e.observe(&window(600, 90, 10));
        assert!(fired
            .iter()
            .any(|t| t.rule == "fast-burn" && t.state == AlertState::Fired));
        // Still hot: no duplicate fire.
        assert!(e.observe(&window(700, 90, 10)).is_empty());
        // The trailing span must drain AND the calm streak must reach
        // resolve_windows before the rule resolves.
        let mut resolved = Vec::new();
        for i in 0..8 {
            resolved.extend(e.observe(&window(800 + i * 100, 100, 0)));
        }
        let fast: Vec<_> = resolved.iter().filter(|t| t.rule == "fast-burn").collect();
        assert_eq!(fast.len(), 1);
        assert_eq!(fast[0].state, AlertState::Resolved);
    }

    #[test]
    fn replica_lost_and_quarantine_are_level_rules() {
        let mut e = AlertEngine::new(AlertPolicy::default(), 1);
        let mut w = window(100, 100, 0);
        w.replica_lost = 3;
        w.routable = 1;
        let fired = e.observe(&w);
        assert!(fired
            .iter()
            .any(|t| t.rule == "replica-lost" && t.state == AlertState::Fired));
        assert!(fired
            .iter()
            .any(|t| t.rule == "quarantine" && t.state == AlertState::Fired && t.value == 1.0));
        // Repaired: both resolve after resolve_windows calm windows.
        let mut resolved = Vec::new();
        for i in 0..4 {
            resolved.extend(e.observe(&window(200 + i * 100, 100, 0)));
        }
        assert!(resolved
            .iter()
            .any(|t| t.rule == "replica-lost" && t.state == AlertState::Resolved));
        assert!(resolved
            .iter()
            .any(|t| t.rule == "quarantine" && t.state == AlertState::Resolved));
    }

    #[test]
    fn decisions_replay_byte_identically() {
        let run = || {
            let mut e = AlertEngine::new(AlertPolicy::default(), 2);
            let mut log = Vec::new();
            for i in 0..50u64 {
                let shed = if (20..25).contains(&i) { 30 } else { 0 };
                let w = AlertWindow {
                    t_ns: i * 1_000,
                    tenants: vec![
                        TenantWindow {
                            served: 100 - shed,
                            shed,
                            slo_miss: i % 7 / 6,
                        },
                        TenantWindow {
                            served: 40,
                            shed: 0,
                            slo_miss: 0,
                        },
                    ],
                    replica_lost: u64::from(i == 21),
                    active: 2,
                    routable: if (21..26).contains(&i) { 1 } else { 2 },
                };
                log.extend(e.observe(&w));
            }
            format!("{log:?}")
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("Fired"));
        assert!(a.contains("Resolved"));
    }

    #[test]
    fn error_bound_margin_check() {
        let p = AlertPolicy::default();
        assert!(!p.error_bound_breached(0.1, 0.0));
        assert!(!p.error_bound_breached(0.2, 1.0));
        assert!(p.error_bound_breached(0.5, 1.0));
        assert!(p.error_bound_breached(0.9, 1.0));
    }
}
