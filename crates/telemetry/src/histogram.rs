//! HDR-style log-bucketed latency histogram.
//!
//! Serving latencies span seven orders of magnitude (sub-µs execute
//! times to multi-ms overload queues), so fixed-width buckets either
//! blur the tail or explode in count. The classic answer is
//! High-Dynamic-Range bucketing: exact buckets below 2^[`SUB_BITS`], then
//! one sub-bucketed decade per power of two, giving a bounded relative
//! error of `1/2^SUB_BITS` (~3%) everywhere with a fixed 15 KiB
//! footprint. Quantiles are clamped to the exact recorded maximum, so
//! "p99 ≤ SLO" assertions never fail on bucket-edge rounding when every
//! recorded sample meets the SLO.

/// Significant bits kept per power-of-two decade (5 → 32 sub-buckets,
/// ≤ 3.2% relative quantile error).
const SUB_BITS: u32 = 5;
/// Sub-buckets per decade.
const SUB: usize = 1 << SUB_BITS;
/// Bucket count: `SUB` exact low buckets plus 59 sub-bucketed decades.
const BUCKETS: usize = SUB + (63 - SUB_BITS as usize) * SUB;

/// Log-bucketed histogram of non-negative durations in nanoseconds.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: exact below [`SUB`], then the top
/// [`SUB_BITS`] bits after the leading one select the sub-bucket.
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros();
        let sub = ((v >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + (exp - SUB_BITS) as usize * SUB + sub
    }
}

/// The largest value a bucket holds (the quantile estimate it reports).
fn bucket_upper(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let exp = SUB_BITS + ((idx - SUB) / SUB) as u32;
        let sub = ((idx - SUB) % SUB) as u128;
        // u128 intermediate: the topmost bucket's upper edge is u64::MAX,
        // which overflows before the trailing `- 1` in 64 bits.
        ((1u128 << exp) + (sub + 1) * (1u128 << (exp - SUB_BITS)) - 1) as u64
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, ns: u64) {
        self.buckets[bucket_index(ns)] += 1;
        self.count += 1;
        self.sum_ns += u128::from(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The histogram's fixed bucket count — its entire heap footprint is
    /// `bucket_count() · 8` bytes, independent of how many samples have
    /// been recorded (the O(1)-memory claim the streaming load generator
    /// rests on; asserted by proptest in `tests/server_serving.rs`).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value (0 when empty).
    pub fn min_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_ns
        }
    }

    /// Largest recorded value (0 when empty).
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Exact sum of the recorded values (0 when empty). Exposed for
    /// Prometheus summary exposition (`_sum`), where the mean's float
    /// rounding would break deterministic text output.
    pub fn sum_ns(&self) -> u128 {
        self.sum_ns
    }

    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) of the recorded values: the
    /// upper edge of the bucket holding the ⌈q·count⌉-th smallest
    /// sample, clamped to the exact recorded maximum. Returns 0 when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper(idx).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (p50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_u64_range() {
        // Every probe value maps to a bucket whose bounds contain it,
        // and bucket indices are monotone in the value.
        let mut last_idx = 0usize;
        for exp in 0..63 {
            for off in [0u64, 1, 3] {
                let v = (1u64 << exp).saturating_add(off * (1 << exp) / 7);
                let idx = bucket_index(v);
                assert!(v <= bucket_upper(idx), "{v} above bucket {idx} upper");
                assert!(idx >= last_idx, "index regressed at {v}");
                assert!(idx < BUCKETS);
                last_idx = idx;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_upper(bucket_index(u64::MAX - 1)), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = LatencyHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.min_ns(), 0);
        assert_eq!(h.max_ns(), 31);
        assert_eq!(h.mean_ns(), 15.5);
    }

    #[test]
    fn quantiles_have_bounded_relative_error() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 1_000); // 1 µs .. 10 ms
        }
        for (q, exact) in [(0.5, 5_000_000u64), (0.99, 9_900_000), (0.999, 9_990_000)] {
            let est = h.quantile(q);
            let rel = (est as f64 - exact as f64).abs() / exact as f64;
            assert!(rel <= 1.0 / 32.0 + 1e-9, "q{q}: {est} vs {exact} ({rel})");
        }
    }

    #[test]
    fn quantile_never_exceeds_recorded_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_003); // lands mid-bucket
        for q in [0.5, 0.99, 0.999, 1.0] {
            assert_eq!(h.quantile(q), 1_000_003);
        }
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut c = LatencyHistogram::new();
        for i in 0..1000u64 {
            let v = i * 37 % 100_000;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), c.count());
        assert_eq!(a.p50(), c.p50());
        assert_eq!(a.p999(), c.p999());
        assert_eq!(a.max_ns(), c.max_ns());
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean_ns(), 0.0);
        assert_eq!(h.min_ns(), 0);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }
}
