//! Bounded flight-recorder ring buffer.
//!
//! Trace capture must not let a million-request run grow memory without
//! bound, so every event stream is a fixed-capacity ring: pushes are
//! O(1), the footprint is `capacity · size_of::<T>()` forever, and when
//! the ring wraps the *oldest* event is dropped and an exact overflow
//! counter is incremented. The exporter can therefore always report how
//! many events were lost, and the retained window is deterministic for a
//! deterministic event sequence (the last `capacity` events, exactly).

/// Fixed-capacity ring that drops the oldest element on overflow and
/// counts every drop.
#[derive(Debug, Clone)]
pub struct EventRing<T> {
    buf: Vec<T>,
    cap: usize,
    /// Index of the oldest retained element once the ring has wrapped.
    head: usize,
    /// Exact number of elements dropped to make room.
    overflow: u64,
}

impl<T> EventRing<T> {
    /// An empty ring holding at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-capacity flight recorder
    /// records nothing and is always a configuration bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventRing capacity must be positive");
        Self {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            overflow: 0,
        }
    }

    /// Appends `item`, evicting the oldest element if the ring is full.
    /// Returns the evicted element (if any) so callers that need exact
    /// conservation — e.g. the time-series scraper summing dropped
    /// window deltas — can fold it into a running total.
    pub fn push(&mut self, item: T) -> Option<T> {
        if self.buf.len() < self.cap {
            self.buf.push(item);
            None
        } else {
            let evicted = std::mem::replace(&mut self.buf[self.head], item);
            self.head = (self.head + 1) % self.cap;
            self.overflow += 1;
            Some(evicted)
        }
    }

    /// Number of retained elements (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum number of retained elements.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Exact count of elements evicted to make room for newer ones.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterates the retained elements oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf[self.head..]
            .iter()
            .chain(self.buf[..self.head].iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_without_dropping_up_to_capacity() {
        let mut r = EventRing::new(4);
        assert!(r.is_empty());
        for i in 0..4u32 {
            r.push(i);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overflow(), 0);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn overflow_drops_oldest_and_counts_exactly() {
        let mut r = EventRing::new(3);
        for i in 0..10u32 {
            r.push(i);
        }
        // 10 pushes into capacity 3: exactly 7 evictions, newest 3 kept
        // in arrival order.
        assert_eq!(r.overflow(), 7);
        assert_eq!(r.len(), 3);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![7, 8, 9]);
    }

    #[test]
    fn wraparound_keeps_order_at_every_step() {
        let mut r = EventRing::new(5);
        for i in 0..100u64 {
            r.push(i);
            let got: Vec<u64> = r.iter().copied().collect();
            let lo = (i + 1).saturating_sub(5);
            let want: Vec<u64> = (lo..=i).collect();
            assert_eq!(got, want, "after push {i}");
            assert_eq!(r.overflow(), (i + 1).saturating_sub(5));
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = EventRing::<u8>::new(0);
    }

    #[test]
    fn push_returns_exactly_the_evicted_element() {
        let mut r = EventRing::new(2);
        assert_eq!(r.push(10u32), None);
        assert_eq!(r.push(11), None);
        assert_eq!(r.push(12), Some(10));
        assert_eq!(r.push(13), Some(11));
        // Conservation: retained + evicted == everything ever pushed.
        let retained: u32 = r.iter().sum();
        assert_eq!(retained + 10 + 11, 10 + 11 + 12 + 13);
    }
}
