//! Process self-statistics.
//!
//! Promoted out of the loadgen binary so every entry point (`loadgen`,
//! `serve`, the CI streaming smoke) reports memory the same way. These
//! are **host** measurements — they never enter traces, metrics
//! snapshots, or any other deterministic artifact; they are printed to
//! stdout only, exactly like the `host*` fields in the JSON reports.

/// Peak resident set size of this process in kB (Linux `VmHWM`), or
/// `None` where `/proc` is unavailable. Printed at exit so the CI
/// million-request smoke can bound the streaming driver's memory
/// without external tooling.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        // /proc exists in every environment this repo targets; a
        // running process has touched at least one page.
        let kb = peak_rss_kb().expect("VmHWM readable");
        assert!(kb > 0);
    }
}
