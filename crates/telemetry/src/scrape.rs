//! Windowed time-series scraper on the virtual clock.
//!
//! A [`Scraper`] snapshots a set of registered metric handles at a
//! fixed virtual-clock interval. It is *pumped* by whoever owns the
//! deterministic clock (the serving scheduler's batch-close loop), so
//! scrape instants are a pure function of the request trace — the same
//! contract the tracer and metrics plane already obey — and the
//! resulting series are byte-identical across replays.
//!
//! Each registered series keeps a bounded ring of `(t_ns, value)`
//! samples (counter *window deltas*, gauge levels, or windowed latency
//! quantiles) plus exact eviction accounting: for a counter series,
//! `evicted_sum + Σ retained deltas == total` always, so conservation
//! against the end-of-run registry totals stays auditable even when
//! the ring wraps. Every scrape also emits Chrome-trace `"C"` counter
//! events so the series render as counter tracks interleaved with the
//! request spans in `ui.perfetto.dev`.

use std::collections::BTreeSet;
use std::sync::Mutex;

use crate::histogram::LatencyHistogram;
use crate::metrics::{Counter, Gauge};
use crate::ring::EventRing;
use crate::trace::{ArgValue, Phase, Telemetry, TraceEvent, MAX_ARGS};

/// Interns `s` into a process-lifetime string pool so dynamic names
/// (tenant classes, chart chunk suffixes) can ride in `&'static str`
/// slots of [`TraceEvent`]. The pool only ever holds the small, fixed
/// vocabulary of chart/series names, so the leak is bounded.
pub fn intern(s: &str) -> &'static str {
    static POOL: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
    let mut pool = POOL.lock().expect("intern pool poisoned");
    if let Some(hit) = pool.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    pool.insert(leaked);
    leaked
}

/// Scrape cadence and per-series retention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScrapeConfig {
    /// Virtual-clock width of one scrape window in nanoseconds.
    pub interval_ns: u64,
    /// Bounded ring capacity per series (oldest samples evicted, with
    /// exact eviction-sum accounting).
    pub ring_capacity: usize,
}

impl Default for ScrapeConfig {
    fn default() -> Self {
        Self {
            interval_ns: 500_000,
            ring_capacity: 4096,
        }
    }
}

#[derive(Debug)]
enum SeriesKind {
    /// Window deltas of a monotone counter.
    Counter { handle: Counter, last: u64 },
    /// Level of a gauge at each scrape instant.
    Gauge { handle: Gauge },
    /// Quantile of the scraper's windowed latency histogram (reset
    /// each window).
    Quantile { q: f64 },
}

impl SeriesKind {
    fn name(&self) -> &'static str {
        match self {
            SeriesKind::Counter { .. } => "counter",
            SeriesKind::Gauge { .. } => "gauge",
            SeriesKind::Quantile { .. } => "quantile",
        }
    }
}

#[derive(Debug)]
struct SeriesState {
    chart: &'static str,
    key: &'static str,
    kind: SeriesKind,
    samples: EventRing<(u64, i64)>,
    /// Exact sum of evicted sample values (conservation across
    /// ring wrap).
    evicted_sum: i64,
    /// Counter: cumulative sum of all window deltas. Gauge/quantile:
    /// the latest sampled value.
    total: i64,
}

/// One series, exported: identity, retained samples, and the exact
/// conservation ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Owning partition (scraper identity).
    pub partition: usize,
    /// Chart this series plots on (e.g. `served`).
    pub chart: String,
    /// Series key within the chart (e.g. a tenant name).
    pub key: String,
    /// `counter`, `gauge`, or `quantile`.
    pub kind: &'static str,
    /// Counter: Σ of every window delta ever taken. Gauge/quantile:
    /// last sampled value.
    pub total: i64,
    /// Samples evicted from the bounded ring.
    pub evicted: u64,
    /// Exact Σ of evicted sample values, so
    /// `evicted_sum + Σ samples == total` for counter series.
    pub evicted_sum: i64,
    /// Retained `(t_ns, value)` samples, oldest first.
    pub samples: Vec<(u64, i64)>,
}

/// One scrape window: the boundary instant and every registered
/// series' value at it, in registration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowSnapshot {
    /// Virtual-clock boundary this window closed at.
    pub t_ns: u64,
    /// Per-series values (counter deltas / gauge levels / window
    /// quantiles), indexed by the id returned at registration.
    pub values: Vec<i64>,
}

/// Deterministic registry scraper; see the module docs.
#[derive(Debug)]
pub struct Scraper {
    tele: Telemetry,
    stream: usize,
    pid: u32,
    partition: usize,
    interval_ns: u64,
    ring_capacity: usize,
    next_ns: u64,
    last_sample_ns: Option<u64>,
    series: Vec<SeriesState>,
    window_hist: LatencyHistogram,
}

impl Scraper {
    /// A scraper for `partition`, recording `"C"` events into trace
    /// stream `stream` on process track `pid`.
    pub fn new(
        cfg: ScrapeConfig,
        tele: Telemetry,
        partition: usize,
        stream: usize,
        pid: u32,
    ) -> Self {
        Self {
            tele,
            stream,
            pid,
            partition,
            interval_ns: cfg.interval_ns.max(1),
            ring_capacity: cfg.ring_capacity.max(1),
            next_ns: cfg.interval_ns.max(1),
            last_sample_ns: None,
            series: Vec::new(),
            window_hist: LatencyHistogram::new(),
        }
    }

    fn register(&mut self, chart: &str, key: &str, kind: SeriesKind) -> usize {
        self.series.push(SeriesState {
            chart: intern(chart),
            key: intern(key),
            kind,
            samples: EventRing::new(self.ring_capacity),
            evicted_sum: 0,
            total: 0,
        });
        self.series.len() - 1
    }

    /// Registers a counter-delta series; returns its index into
    /// [`WindowSnapshot::values`]. Deltas are relative to the
    /// counter's value *now* (normally zero at server construction).
    pub fn counter(&mut self, chart: &str, key: &str, handle: Counter) -> usize {
        let last = handle.get();
        self.register(chart, key, SeriesKind::Counter { handle, last })
    }

    /// Registers a gauge-level series.
    pub fn gauge(&mut self, chart: &str, key: &str, handle: Gauge) -> usize {
        self.register(chart, key, SeriesKind::Gauge { handle })
    }

    /// Registers a windowed latency-quantile series fed by
    /// [`Self::record_latency`].
    pub fn quantile(&mut self, chart: &str, key: &str, q: f64) -> usize {
        self.register(chart, key, SeriesKind::Quantile { q })
    }

    /// Feeds one latency sample into the current window's histogram.
    pub fn record_latency(&mut self, ns: u64) {
        self.window_hist.record(ns);
    }

    /// Number of registered series.
    pub fn series_count(&self) -> usize {
        self.series.len()
    }

    /// Advances the scrape clock to `now_ns`, taking one sample per
    /// crossed window boundary (several when the clock jumps; later
    /// boundaries then carry zero deltas). Returns the closed windows
    /// oldest-first — the alert engine's input sequence.
    pub fn pump(&mut self, now_ns: u64) -> Vec<WindowSnapshot> {
        let mut out = Vec::new();
        while self.next_ns <= now_ns {
            let t = self.next_ns;
            self.next_ns += self.interval_ns;
            out.push(self.sample(t));
        }
        out
    }

    /// Closes the final (possibly partial) window at `end_ns` after
    /// pumping any whole boundaries before it.
    pub fn finish(&mut self, end_ns: u64) -> Vec<WindowSnapshot> {
        let mut out = self.pump(end_ns);
        if self.last_sample_ns != Some(end_ns) {
            out.push(self.sample(end_ns));
        }
        out
    }

    fn sample(&mut self, t_ns: u64) -> WindowSnapshot {
        let mut values = Vec::with_capacity(self.series.len());
        for s in &mut self.series {
            let v = match &mut s.kind {
                SeriesKind::Counter { handle, last } => {
                    let cur = handle.get();
                    let delta = cur.saturating_sub(*last) as i64;
                    *last = cur;
                    s.total += delta;
                    delta
                }
                SeriesKind::Gauge { handle } => {
                    let v = handle.get();
                    s.total = v;
                    v
                }
                SeriesKind::Quantile { q } => {
                    let v = self.window_hist.quantile(*q) as i64;
                    s.total = v;
                    v
                }
            };
            if let Some((_, evicted)) = s.samples.push((t_ns, v)) {
                s.evicted_sum += evicted;
            }
            values.push(v);
        }
        self.window_hist = LatencyHistogram::new();
        self.last_sample_ns = Some(t_ns);
        self.emit_counter_events(t_ns, &values);
        WindowSnapshot { t_ns, values }
    }

    /// One `"C"` event per chart per scrape (chunked to [`MAX_ARGS`]
    /// series per event; overflow chunks are named `chart#2`, ...).
    fn emit_counter_events(&self, t_ns: u64, values: &[i64]) {
        if !self.tele.is_enabled() {
            return;
        }
        let mut i = 0;
        while i < self.series.len() {
            let chart = self.series[i].chart;
            let mut j = i;
            while j < self.series.len() && self.series[j].chart == chart {
                j += 1;
            }
            let mut chunk_start = i;
            let mut chunk_idx = 0usize;
            while chunk_start < j {
                let chunk_end = (chunk_start + MAX_ARGS).min(j);
                let name = if chunk_idx == 0 {
                    chart
                } else {
                    intern(&format!("{chart}#{}", chunk_idx + 1))
                };
                let mut ev =
                    TraceEvent::new(name, "scrape", Phase::Counter, t_ns).track(self.pid, 0);
                for (s, v) in self.series[chunk_start..chunk_end]
                    .iter()
                    .zip(&values[chunk_start..chunk_end])
                {
                    ev = ev.arg(s.key, ArgValue::I64(*v));
                }
                self.tele.record(self.stream, ev);
                chunk_start = chunk_end;
                chunk_idx += 1;
            }
            i = j;
        }
    }

    /// Exports every series with its conservation ledger, for the
    /// `timeseries` block of the JSON reports.
    pub fn export(&self) -> Vec<SeriesSnapshot> {
        self.series
            .iter()
            .map(|s| SeriesSnapshot {
                partition: self.partition,
                chart: s.chart.to_string(),
                key: s.key.to_string(),
                kind: s.kind.name(),
                total: s.total,
                evicted: s.samples.overflow(),
                evicted_sum: s.evicted_sum,
                samples: s.samples.iter().copied().collect(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scraper_with(tele: &Telemetry, interval_ns: u64, cap: usize) -> Scraper {
        Scraper::new(
            ScrapeConfig {
                interval_ns,
                ring_capacity: cap,
            },
            tele.clone(),
            0,
            0,
            100,
        )
    }

    #[test]
    fn counter_deltas_conserve_the_registry_total() {
        let tele = Telemetry::enabled();
        let c = tele.counter("served_total", "h", &[]);
        let mut s = scraper_with(&tele, 100, 4);
        let idx = s.counter("served", "all", c.clone());
        // Irregular increments across many windows; ring wraps.
        let mut expected = 0u64;
        for (i, n) in [3u64, 0, 7, 1, 0, 0, 11, 2, 5, 1].iter().enumerate() {
            c.add(*n);
            expected += *n;
            s.pump((i as u64 + 1) * 100);
        }
        let snap = &s.export()[idx];
        let retained: i64 = snap.samples.iter().map(|(_, v)| v).sum();
        assert_eq!(snap.evicted_sum + retained, snap.total);
        assert_eq!(snap.total as u64, expected);
        assert_eq!(snap.total as u64, c.get());
        assert!(snap.evicted > 0, "ring must have wrapped in this test");
    }

    #[test]
    fn boundaries_are_deterministic_and_gap_windows_carry_zero_deltas() {
        let tele = Telemetry::enabled();
        let c = tele.counter("x_total", "h", &[]);
        let mut s = scraper_with(&tele, 50, 64);
        s.counter("x", "all", c.clone());
        c.add(9);
        // One pump far past several boundaries: first window gets the
        // whole delta, later ones are zero.
        let windows = s.pump(175);
        assert_eq!(
            windows.iter().map(|w| w.t_ns).collect::<Vec<_>>(),
            vec![50, 100, 150]
        );
        assert_eq!(
            windows.iter().map(|w| w.values[0]).collect::<Vec<_>>(),
            vec![9, 0, 0]
        );
        let tail = s.finish(180);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].t_ns, 180);
    }

    #[test]
    fn windowed_quantiles_reset_each_window() {
        let tele = Telemetry::enabled();
        let mut s = scraper_with(&tele, 100, 64);
        let idx = s.quantile("latency", "p50", 0.5);
        s.record_latency(40);
        s.record_latency(60);
        let w1 = s.pump(100);
        assert!(w1[0].values[idx] > 0);
        let w2 = s.pump(200);
        assert_eq!(w2[0].values[idx], 0, "window histogram must reset");
    }

    #[test]
    fn charts_chunk_into_max_args_counter_events() {
        let tele = Telemetry::enabled();
        let mut s = scraper_with(&tele, 100, 8);
        for i in 0..(MAX_ARGS + 2) {
            let c = tele.counter("many_total", "h", &[("k", &i.to_string())]);
            s.counter("many", &format!("k{i}"), c);
        }
        s.pump(100);
        let events = tele.snapshot();
        let counters: Vec<_> = events.iter().filter(|e| e.ph == Phase::Counter).collect();
        assert_eq!(counters.len(), 2);
        assert_eq!(counters[0].name, "many");
        assert_eq!(counters[1].name, "many#2");
        assert_eq!(
            counters[0].args.iter().filter(|a| a.is_some()).count(),
            MAX_ARGS
        );
        assert_eq!(counters[1].args.iter().filter(|a| a.is_some()).count(), 2);
    }

    #[test]
    fn intern_returns_stable_pointers() {
        let a = intern("tenant-interactive");
        let b = intern("tenant-interactive");
        assert!(std::ptr::eq(a, b));
    }
}
