//! Counter/gauge/histogram metrics plane with Prometheus text
//! exposition.
//!
//! Metrics are bound once into cheap pre-bound handles ([`Counter`],
//! [`Gauge`], [`HistogramHandle`]) so the hot path touches a single
//! atomic (or one uncontended mutex for histograms — the serving
//! scheduler records from one thread). The registry keys families and
//! series in `BTreeMap`s and canonicalises label order, so the rendered
//! exposition is deterministic for deterministic metric values: the
//! `.prom` snapshot is regression-diffable exactly like the JSON
//! reports.
//!
//! Exposition follows the Prometheus text format: `# HELP`/`# TYPE`
//! headers, one sample per line, histograms exported as summaries
//! (`quantile` label plus `_sum`/`_count`) since the serving plane's
//! [`LatencyHistogram`] already answers quantile queries directly.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::LatencyHistogram;

/// Pre-bound monotonically increasing counter. No-op when unbound
/// (disabled telemetry).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A counter that ignores increments.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 when unbound).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Pre-bound gauge with set-to-latest semantics. No-op when unbound.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicI64>>,
}

impl Gauge {
    /// A gauge that ignores sets.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.cell {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 when unbound).
    pub fn get(&self) -> i64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Pre-bound latency histogram. No-op when unbound.
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle {
    cell: Option<Arc<Mutex<LatencyHistogram>>>,
}

impl HistogramHandle {
    /// A histogram that ignores samples.
    pub fn noop() -> Self {
        Self::default()
    }

    /// Records one duration in nanoseconds.
    pub fn record(&self, ns: u64) {
        if let Some(cell) = &self.cell {
            cell.lock().expect("metrics histogram poisoned").record(ns);
        }
    }

    /// Folds an already-populated histogram into this series (used to
    /// mirror the scheduler's own per-tenant histograms at snapshot
    /// time without double-recording on the hot path).
    pub fn merge(&self, other: &LatencyHistogram) {
        if let Some(cell) = &self.cell {
            cell.lock()
                .expect("metrics histogram poisoned")
                .merge(other);
        }
    }
}

#[derive(Debug)]
enum Series {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<Mutex<LatencyHistogram>>),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Summary,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Summary => "summary",
        }
    }
}

#[derive(Debug)]
struct Family {
    kind: Kind,
    help: &'static str,
    /// Series keyed by canonical rendered label text (sorted pairs).
    series: BTreeMap<String, Series>,
}

/// Deterministic metrics registry: families and series render in
/// lexicographic order regardless of bind order.
#[derive(Debug)]
pub(crate) struct MetricsRegistry {
    families: Mutex<BTreeMap<&'static str, Family>>,
}

/// Renders label pairs as canonical Prometheus label text (no braces),
/// pairs sorted by key so bind-order never leaks into the exposition.
fn label_text(labels: &[(&'static str, &str)]) -> String {
    let mut pairs: Vec<_> = labels.to_vec();
    pairs.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    pub(crate) fn new() -> Self {
        Self {
            families: Mutex::new(BTreeMap::new()),
        }
    }

    fn bind<F: FnOnce() -> Series>(
        &self,
        name: &'static str,
        kind: Kind,
        help: &'static str,
        labels: &[(&'static str, &str)],
        make: F,
    ) -> Series {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            kind,
            help,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name} re-registered with a different type"
        );
        family
            .series
            .entry(label_text(labels))
            .or_insert_with(make)
            .clone_series()
    }

    pub(crate) fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Counter {
        let series = self.bind(name, Kind::Counter, help, labels, || {
            Series::Counter(Arc::new(AtomicU64::new(0)))
        });
        match series {
            Series::Counter(cell) => Counter { cell: Some(cell) },
            _ => unreachable!("bind enforces kind"),
        }
    }

    pub(crate) fn gauge(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> Gauge {
        let series = self.bind(name, Kind::Gauge, help, labels, || {
            Series::Gauge(Arc::new(AtomicI64::new(0)))
        });
        match series {
            Series::Gauge(cell) => Gauge { cell: Some(cell) },
            _ => unreachable!("bind enforces kind"),
        }
    }

    pub(crate) fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&'static str, &str)],
    ) -> HistogramHandle {
        let series = self.bind(name, Kind::Summary, help, labels, || {
            Series::Histogram(Arc::new(Mutex::new(LatencyHistogram::new())))
        });
        match series {
            Series::Histogram(cell) => HistogramHandle { cell: Some(cell) },
            _ => unreachable!("bind enforces kind"),
        }
    }

    /// Renders every family in Prometheus text exposition format.
    pub(crate) fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, family) in families.iter() {
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(cell) => {
                        let v = cell.load(Ordering::Relaxed);
                        writeln_sample(&mut out, name, labels, &[], &v.to_string());
                    }
                    Series::Gauge(cell) => {
                        let v = cell.load(Ordering::Relaxed);
                        writeln_sample(&mut out, name, labels, &[], &v.to_string());
                    }
                    Series::Histogram(cell) => {
                        let h = cell.lock().expect("metrics histogram poisoned");
                        for (q, tag) in [
                            (0.5, "0.5"),
                            (0.95, "0.95"),
                            (0.99, "0.99"),
                            (0.999, "0.999"),
                        ] {
                            let v = h.quantile(q);
                            writeln_sample(
                                &mut out,
                                name,
                                labels,
                                &[("quantile", tag)],
                                &v.to_string(),
                            );
                        }
                        let sum = format!("{}", h.sum_ns());
                        writeln_sample(&mut out, &format!("{name}_sum"), labels, &[], &sum);
                        writeln_sample(
                            &mut out,
                            &format!("{name}_count"),
                            labels,
                            &[],
                            &h.count().to_string(),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Writes one exposition sample line, splicing `extra` label pairs
/// (e.g. `quantile`) after the series labels.
fn writeln_sample(out: &mut String, name: &str, labels: &str, extra: &[(&str, &str)], value: &str) {
    out.push_str(name);
    if !labels.is_empty() || !extra.is_empty() {
        out.push('{');
        out.push_str(labels);
        for (i, (k, v)) in extra.iter().enumerate() {
            if !labels.is_empty() || i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{k}=\"{v}\"");
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

impl Series {
    /// Clones the shared cell out of a registry slot.
    fn clone_series(&self) -> Series {
        match self {
            Series::Counter(c) => Series::Counter(Arc::clone(c)),
            Series::Gauge(g) => Series::Gauge(Arc::clone(g)),
            Series::Histogram(h) => Series::Histogram(Arc::clone(h)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prometheus_exposition_golden() {
        let reg = MetricsRegistry::new();
        // Bind out of lexicographic order on purpose: the exposition
        // must still come out sorted (families and series alike).
        let shed = reg.counter(
            "red_requests_shed_total",
            "Requests shed by admission control",
            &[("tenant", "interactive"), ("partition", "0")],
        );
        shed.add(42);
        let served = reg.counter(
            "red_requests_served_total",
            "Requests completed",
            &[("tenant", "interactive"), ("partition", "0")],
        );
        served.add(1000);
        let replicas = reg.gauge(
            "red_replicas_active",
            "Active replicas",
            &[("partition", "0")],
        );
        replicas.set(3);
        let lat = reg.histogram(
            "red_request_latency_ns",
            "End-to-end request latency",
            &[("tenant", "interactive")],
        );
        for v in [10u64, 20, 30] {
            lat.record(v);
        }
        let golden = "\
# HELP red_replicas_active Active replicas
# TYPE red_replicas_active gauge
red_replicas_active{partition=\"0\"} 3
# HELP red_request_latency_ns End-to-end request latency
# TYPE red_request_latency_ns summary
red_request_latency_ns{tenant=\"interactive\",quantile=\"0.5\"} 20
red_request_latency_ns{tenant=\"interactive\",quantile=\"0.95\"} 30
red_request_latency_ns{tenant=\"interactive\",quantile=\"0.99\"} 30
red_request_latency_ns{tenant=\"interactive\",quantile=\"0.999\"} 30
red_request_latency_ns_sum{tenant=\"interactive\"} 60
red_request_latency_ns_count{tenant=\"interactive\"} 3
# HELP red_requests_served_total Requests completed
# TYPE red_requests_served_total counter
red_requests_served_total{partition=\"0\",tenant=\"interactive\"} 1000
# HELP red_requests_shed_total Requests shed by admission control
# TYPE red_requests_shed_total counter
red_requests_shed_total{partition=\"0\",tenant=\"interactive\"} 42
";
        assert_eq!(reg.render(), golden);
    }

    #[test]
    fn hostile_label_values_are_escaped_per_exposition_format() {
        let reg = MetricsRegistry::new();
        // A tenant name wielding every character the Prometheus text
        // format requires escaping in label values: backslash, double
        // quote, and newline.
        let hostile = "evil\\tenant\"\nname";
        let c = reg.counter(
            "red_requests_served_total",
            "Requests completed",
            &[("tenant", hostile)],
        );
        c.add(7);
        let out = reg.render();
        assert!(
            out.contains(r#"red_requests_served_total{tenant="evil\\tenant\"\nname"} 7"#),
            "got: {out}"
        );
        // No raw newline may survive inside the label value: every
        // sample line must still be one line.
        assert!(out.lines().any(|l| l.ends_with(" 7")));
        assert_eq!(out.matches('\u{a}').count(), out.lines().count());
    }

    #[test]
    fn rebinding_shares_the_same_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c_total", "h", &[("t", "x")]);
        let b = reg.counter("c_total", "h", &[("t", "x")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);
    }

    #[test]
    fn label_order_does_not_change_identity() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c_total", "h", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("c_total", "h", &[("b", "2"), ("a", "1")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("m", "h", &[]);
        let _ = reg.gauge("m", "h", &[]);
    }

    #[test]
    fn noop_handles_ignore_everything() {
        let c = Counter::noop();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(-5);
        assert_eq!(g.get(), 0);
        let h = HistogramHandle::noop();
        h.record(100);
    }
}
