//! Criterion benches: simulator images/sec of the pipelined chip runtime
//! vs sequential execution of the same stack, so future PRs can track
//! scheduler overhead (channel hops, thread wake-ups, feature-map clones)
//! separately from engine throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;

const BATCH: usize = 8;

fn serving_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_serve");
    let stack = networks::dcgan_generator(64).expect("stack builds"); // 16 base channels
    let inputs: Vec<_> = (0..BATCH)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 40 + i as u64))
        .collect();
    for design in Design::paper_lineup() {
        let chip = ChipBuilder::new()
            .design(design)
            .compile_seeded(&stack, 5, 4)
            .expect("chip compiles");
        group.bench_with_input(
            BenchmarkId::new("pipelined_b8", design.label()),
            &chip,
            |b, chip| b.iter(|| chip.run_pipelined(&inputs).expect("runs")),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_b8", design.label()),
            &chip,
            |b, chip| b.iter(|| chip.run_sequential(&inputs).expect("runs")),
        );
    }
    group.finish();
}

fn chip_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_compile");
    let stack = networks::sngan_generator(64).expect("stack builds");
    for design in Design::paper_lineup() {
        let builder = ChipBuilder::new().design(design);
        group.bench_function(design.label(), |b| {
            b.iter(|| builder.compile_seeded(&stack, 5, 4).expect("compiles"))
        });
    }
    group.finish();
}

criterion_group!(benches, serving_throughput, chip_compile);
criterion_main!(benches);
