//! Criterion benches: simulator images/sec of the pipelined chip runtime
//! vs sequential execution of the same stack, so future PRs can track
//! scheduler overhead (channel hops, thread wake-ups, feature-map clones)
//! separately from engine throughput.
//!
//! The `pipelined_b8_w1` vs `pipelined_b8_auto` pair isolates the
//! intra-stage data-parallelism win: same chip, same batch, one worker
//! per stage vs the derived pool. `layer_batch` tracks the plan/scratch
//! executor (`CompiledLayer::run_batch`) against per-image `run` calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;

const BATCH: usize = 8;

fn serving_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_serve");
    let stack = networks::dcgan_generator(64).expect("stack builds"); // 16 base channels
    let inputs: Vec<_> = (0..BATCH)
        .map(|i| synth::input_dense(&stack.layers[0], 64, 40 + i as u64))
        .collect();
    for design in Design::paper_lineup() {
        let single = ChipBuilder::new()
            .design(design)
            .workers(1)
            .compile_seeded(&stack, 5, 4)
            .expect("chip compiles");
        let auto = ChipBuilder::new()
            .design(design)
            .compile_seeded(&stack, 5, 4)
            .expect("chip compiles");
        group.bench_with_input(
            BenchmarkId::new("pipelined_b8_w1", design.label()),
            &single,
            |b, chip| b.iter(|| chip.run_pipelined(&inputs).expect("runs")),
        );
        group.bench_with_input(
            BenchmarkId::new("pipelined_b8_auto", design.label()),
            &auto,
            |b, chip| b.iter(|| chip.run_pipelined(&inputs).expect("runs")),
        );
        group.bench_with_input(
            BenchmarkId::new("sequential_b8", design.label()),
            &auto,
            |b, chip| b.iter(|| chip.run_sequential(&inputs).expect("runs")),
        );
    }
    group.finish();
}

fn layer_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("layer_batch");
    // Scale 8 keeps the weight matrices big enough (e.g. zero-padding's
    // 1024 x 32) that the cache-blocked batch path has traffic to save.
    let layer = Benchmark::GanDeconv3.scaled_layer(8);
    let kernel = synth::kernel(&layer, 5, 4);
    let inputs: Vec<_> = (0..BATCH)
        .map(|i| synth::input_dense(&layer, 64, 70 + i as u64))
        .collect();
    for design in Design::paper_lineup() {
        let compiled = Accelerator::builder()
            .design(design)
            .build()
            .compile(&layer, &kernel)
            .expect("layer compiles");
        group.bench_with_input(
            BenchmarkId::new("run_batch_b8", design.label()),
            &compiled,
            |b, l| b.iter(|| l.run_batch(&inputs).expect("runs")),
        );
        group.bench_with_input(
            BenchmarkId::new("run_per_image_b8", design.label()),
            &compiled,
            |b, l| {
                b.iter(|| {
                    inputs
                        .iter()
                        .map(|i| l.run(i).expect("runs"))
                        .collect::<Vec<_>>()
                })
            },
        );
    }
    group.finish();
}

fn chip_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime_compile");
    let stack = networks::sngan_generator(64).expect("stack builds");
    for design in Design::paper_lineup() {
        let builder = ChipBuilder::new().design(design);
        group.bench_function(design.label(), |b| {
            b.iter(|| builder.compile_seeded(&stack, 5, 4).expect("compiles"))
        });
    }
    group.finish();
}

criterion_group!(benches, serving_throughput, layer_batch, chip_compile);
criterion_main!(benches);
