//! Criterion benches: the non-ideal analog VMM pipeline — the seed
//! per-phase-recompute reference vs the planned path over the
//! programming-time effective-current plane, and per-input vs phase-major
//! batched execution, at an array size below and one above the batching
//! threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use red_core::prelude::*;
use red_core::xbar::{CrossbarArray, VmmScratch};

fn make_weights(rows: usize, cols: usize) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| ((r * 37 + c * 13) % 255) as i64 - 127)
                .collect()
        })
        .collect()
}

fn make_inputs(n: usize, rows: usize) -> Vec<i64> {
    (0..n * rows)
        .map(|i| ((i * 7) % 255) as i64 - 127)
        .collect()
}

/// The full non-ideal stack (variation + saturating ADC + IR drop +
/// faults + drift) — the heaviest per-cell arithmetic the reference path
/// pays per phase, and exactly what the plane precomputation removes.
fn noisy_cfg() -> XbarConfig {
    XbarConfig::preset("full").expect("known preset")
}

/// Seed per-phase-recompute pipeline vs the planned plane path, one
/// input at a time. `(512, 64)` is a 2 MiB plane; `(64, 32)` fits in L2.
fn analog_single(c: &mut Criterion) {
    let mut group = c.benchmark_group("analog");
    for (rows, cols) in [(64usize, 32usize), (512, 64)] {
        let a = CrossbarArray::program(&noisy_cfg(), &make_weights(rows, cols)).expect("programs");
        let input = make_inputs(1, rows);
        let label = format!("{rows}x{cols}");
        group.bench_with_input(BenchmarkId::new("reference", &label), &a, |b, a| {
            b.iter(|| a.vmm_analog_reference(&input))
        });
        let mut scratch = VmmScratch::new();
        let mut out = vec![0i64; cols];
        group.bench_with_input(BenchmarkId::new("planned", &label), &a, |b, a| {
            b.iter(|| a.vmm_analog_into(&input, &mut scratch, &mut out))
        });
    }
    group.finish();
}

/// Per-input loop vs the phase-major row-blocked batch over a batch of 8,
/// below (128 KiB / 2 MiB planes) and above (8 MiB) the
/// `analog_batching_pays` threshold. Below it `vmm_analog_batch` itself
/// takes the per-input loop, so the pair also measures what the gate is
/// protecting: blocking only pays once the plane overflows the
/// last-level cache.
fn analog_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("analog_batch");
    let n = 8usize;
    for (rows, cols) in [(64usize, 32usize), (512, 64), (2048, 64)] {
        let a = CrossbarArray::program(&noisy_cfg(), &make_weights(rows, cols)).expect("programs");
        let inputs = make_inputs(n, rows);
        let label = format!("{rows}x{cols}");
        let mut scratch = VmmScratch::new();
        let mut out = vec![0i64; n * cols];
        group.bench_with_input(BenchmarkId::new("per_input", &label), &a, |b, a| {
            b.iter(|| {
                for (input, o) in inputs.chunks_exact(rows).zip(out.chunks_exact_mut(cols)) {
                    a.vmm_analog_into(input, &mut scratch, o);
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("batched", &label), &a, |b, a| {
            b.iter(|| a.vmm_analog_batch(&inputs, n, &mut scratch, &mut out))
        });
    }
    group.finish();
}

criterion_group!(benches, analog_single, analog_batch);
criterion_main!(benches);
