//! Criterion benches: crossbar-level primitives — exact vs analog VMM
//! paths, programming, and the SCT mapping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use red_core::prelude::*;
use red_core::xbar::CrossbarArray;

fn make_weights(rows: usize, cols: usize) -> Vec<Vec<i64>> {
    (0..rows)
        .map(|r| {
            (0..cols)
                .map(|c| ((r * 37 + c * 13) % 255) as i64 - 127)
                .collect()
        })
        .collect()
}

fn vmm_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("vmm");
    for rows in [64usize, 256] {
        let weights = make_weights(rows, 32);
        let input: Vec<i64> = (0..rows).map(|i| ((i * 7) % 255) as i64 - 127).collect();
        let ideal = CrossbarArray::program(&XbarConfig::ideal(), &weights).expect("programs");
        group.bench_with_input(BenchmarkId::new("exact", rows), &ideal, |b, a| {
            b.iter(|| a.vmm_exact(&input))
        });
        group.bench_with_input(BenchmarkId::new("analog_ideal", rows), &ideal, |b, a| {
            b.iter(|| a.vmm_analog(&input))
        });
        let noisy_cfg = XbarConfig::noisy(0.05, 0.001, 0.001, 42);
        let noisy = CrossbarArray::program(&noisy_cfg, &weights).expect("programs");
        group.bench_with_input(BenchmarkId::new("analog_noisy", rows), &noisy, |b, a| {
            b.iter(|| a.vmm(&input))
        });
    }
    group.finish();
}

fn programming(c: &mut Criterion) {
    let mut group = c.benchmark_group("program");
    for rows in [64usize, 512] {
        let weights = make_weights(rows, 64);
        group.bench_with_input(BenchmarkId::new("ideal", rows), &weights, |b, w| {
            b.iter(|| CrossbarArray::program(&XbarConfig::ideal(), w).expect("programs"))
        });
    }
    group.finish();
}

fn sct_mapping(c: &mut Criterion) {
    use red_core::xbar::{SctLayout, SubCrossbarTensor};
    let mut group = c.benchmark_group("sct_map");
    let kernel = red_core::tensor::Kernel::<i64>::from_fn(5, 5, 64, 32, |i, j, cc, mm| {
        ((i * 53 + j * 19 + cc * 7 + mm) % 255) as i64 - 127
    });
    for (name, layout) in [("full", SctLayout::Full), ("halved", SctLayout::Halved)] {
        group.bench_function(name, |b| {
            b.iter(|| SubCrossbarTensor::map(&XbarConfig::ideal(), &kernel, layout).expect("maps"))
        });
    }
    group.finish();
}

criterion_group!(benches, vmm_paths, programming, sct_mapping);
criterion_main!(benches);
