//! Criterion benches for the serving subsystem: batch-former throughput
//! (pure scheduler-side work, no chips) and end-to-end served images/sec
//! through a one-replica fleet as `max_batch` grows — the host-side cost
//! of the micro-batching serving loop, tracked separately from engine
//! throughput (`benches/engines.rs`) and offline runtime throughput
//! (`benches/runtime.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use red_server::{
    drive, BatchFormer, ChipFleet, LoadMode, LoadgenConfig, RequestMeta, ServerConfig,
};

/// Forms batches from a 4-client synthetic arrival trace: the pure
/// virtual-clock scheduling cost per request (push + close + drain).
fn batch_former(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_former");
    const REQUESTS: usize = 4_096;
    for max_batch in [1usize, 16] {
        group.bench_with_input(
            BenchmarkId::new("form_drain_4k", max_batch),
            &max_batch,
            |b, &max_batch| {
                b.iter(|| {
                    let mut former = BatchFormer::new(max_batch, 1_000);
                    let mut formed = 0usize;
                    for i in 0..REQUESTS {
                        former.push(
                            RequestMeta {
                                tenant: 0,
                                network: 0,
                                client: i % 4,
                                seq: (i / 4) as u64,
                                arrival_ns: (i as u64) * 250,
                                deadline_ns: None,
                            },
                            (),
                        );
                        // Frontier trails the newest arrival, as the
                        // scheduler's per-client watermarks would.
                        while let Some(batch) = former.try_close((i as u64) * 250, 0) {
                            formed += batch.requests.len();
                        }
                    }
                    while let Some(batch) = former.try_close(u64::MAX, u64::MAX) {
                        formed += batch.requests.len();
                    }
                    assert_eq!(formed, REQUESTS);
                    formed
                })
            },
        );
    }
    group.finish();
}

/// End-to-end served images/sec on one replica vs `max_batch`: open-loop
/// overload (offered far above capacity) so the former always has work,
/// measuring the whole submit → batch → execute → complete loop.
fn end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("server_e2e");
    let stack = networks::dcgan_generator(64).expect("stack builds");
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 4)
        .expect("chip compiles");
    let fleet = ChipFleet::new(chip, 1).expect("one replica");
    let inputs = networks::request_stream(&stack, 8, 64, 40);
    for max_batch in [1usize, 4, 16] {
        let config = ServerConfig::new().max_batch(max_batch).max_wait_ns(5_000);
        let load = LoadgenConfig {
            mode: LoadMode::Open { rps: 10_000_000.0 },
            clients: 4,
            requests: 64,
            horizon_ns: None,
            slo_ns: None,
            seed: 7,
            stream: false,
        };
        group.bench_with_input(
            BenchmarkId::new("open_loop_b64", max_batch),
            &max_batch,
            |b, _| {
                b.iter(|| {
                    let report = drive(&fleet, &config, &load, std::slice::from_ref(&inputs))
                        .expect("load runs");
                    assert_eq!(report.served, 64);
                    report.served
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, batch_former, end_to_end);
criterion_main!(benches);
