//! Criterion benches: the analytic paths behind each paper figure — cost
//! model evaluation over Table I, redundancy sweeps, and full comparisons.

use criterion::{criterion_group, criterion_main, Criterion};
use red_core::prelude::*;
use red_core::Comparison;

fn cost_model_eval(c: &mut Criterion) {
    let model = CostModel::paper_default();
    let mut group = c.benchmark_group("cost_model");
    for b in [Benchmark::GanDeconv1, Benchmark::FcnDeconv2] {
        let layer = b.layer();
        group.bench_function(format!("red_{}", b.name()), |bch| {
            bch.iter(|| {
                model
                    .evaluate(Design::red(RedLayoutPolicy::Auto), &layer)
                    .expect("evaluates")
            })
        });
    }
    group.finish();
}

fn fig7_all_benchmarks(c: &mut Criterion) {
    let model = CostModel::paper_default();
    c.bench_function("fig7_full_sweep", |b| {
        b.iter(|| {
            Benchmark::all()
                .iter()
                .map(|bm| Comparison::evaluate(&model, &bm.layer()).expect("evaluates"))
                .collect::<Vec<_>>()
                .len()
        })
    });
}

fn fig4_sweep(c: &mut Criterion) {
    c.bench_function("fig4_redundancy_sweep", |b| {
        b.iter(|| {
            red_core::tensor::redundancy::sweep_strides(16, 16, 16, 0, &[1, 2, 4, 8, 16, 32])
                .expect("sweeps")
        })
    });
}

criterion_group!(benches, cost_model_eval, fig7_all_benchmarks, fig4_sweep);
criterion_main!(benches);
