//! Criterion benches: functional-engine throughput on channel-scaled
//! Table I layers. These measure the *simulator*, guarding against
//! regressions in the engine dataflows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use red_core::prelude::*;

fn engine_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_run");
    let layer = Benchmark::GanDeconv3.scaled_layer(32); // 4x4x16 -> 8x8x8
    let kernel = synth::kernel(&layer, 127, 1);
    let input = synth::input_dense(&layer, 127, 2);

    for design in Design::paper_lineup() {
        let acc = Accelerator::builder().design(design).build();
        let compiled = acc.compile(&layer, &kernel).expect("compiles");
        group.bench_with_input(
            BenchmarkId::new("gan_deconv3_c16", design.label()),
            &compiled,
            |b, compiled| b.iter(|| compiled.run(&input).expect("runs")),
        );
    }
    group.finish();
}

fn red_layout_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("red_layouts");
    // 16x16 kernel stride 8 at reduced extent: the Eq. 2 operating point.
    let layer = LayerShape::new(6, 6, 8, 8, 16, 16, 8, 0).expect("valid layer");
    let kernel = synth::kernel(&layer, 127, 3);
    let input = synth::input_dense(&layer, 127, 4);
    for (name, policy) in [
        ("full_256sc", RedLayoutPolicy::AlwaysFull),
        ("halved_128sc", RedLayoutPolicy::AlwaysHalved),
    ] {
        let acc = Accelerator::builder().design(Design::red(policy)).build();
        let compiled = acc.compile(&layer, &kernel).expect("compiles");
        group.bench_function(name, |b| b.iter(|| compiled.run(&input).expect("runs")));
    }
    group.finish();
}

fn compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    let layer = Benchmark::GanDeconv3.scaled_layer(16); // 4x4x32 -> 8x8x16
    let kernel = synth::kernel(&layer, 127, 5);
    for design in Design::paper_lineup() {
        let acc = Accelerator::builder().design(design).build();
        group.bench_function(design.label(), |b| {
            b.iter(|| acc.compile(&layer, &kernel).expect("compiles"))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    engine_throughput,
    red_layout_throughput,
    compile_time
);
criterion_main!(benches);
