//! Criterion benches: ablation configurations — noisy devices, saturating
//! ADCs and precision variants of the functional pipeline — measuring what
//! realism costs in simulation throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use red_core::prelude::*;

fn noisy_vs_ideal(c: &mut Criterion) {
    let layer = Benchmark::GanDeconv3.scaled_layer(64);
    let kernel = synth::kernel(&layer, 127, 1);
    let input = synth::input_dense(&layer, 127, 2);
    let mut group = c.benchmark_group("device_models");
    let configs = [
        ("ideal", XbarConfig::ideal()),
        ("variation", XbarConfig::noisy(0.05, 0.0, 0.0, 3)),
        ("var_faults_sat", XbarConfig::noisy(0.05, 0.01, 0.001, 4)),
    ];
    for (name, cfg) in configs {
        let acc = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::Auto))
            .xbar_config(cfg)
            .build();
        let compiled = acc.compile(&layer, &kernel).expect("compiles");
        group.bench_function(name, |b| b.iter(|| compiled.run(&input).expect("runs")));
    }
    group.finish();
}

fn weight_scheme_cost(c: &mut Criterion) {
    let layer = Benchmark::GanDeconv3.scaled_layer(64);
    let kernel = synth::kernel(&layer, 127, 5);
    let input = synth::input_dense(&layer, 127, 6);
    let mut group = c.benchmark_group("weight_scheme");
    for (name, scheme) in [
        ("differential", WeightScheme::Differential),
        ("offset_binary", WeightScheme::OffsetBinary),
    ] {
        let cfg = XbarConfig {
            scheme,
            // Force the analog path so the encoding actually matters.
            adc: AdcModel::Saturating { bits: 16 },
            ..XbarConfig::ideal()
        };
        let acc = Accelerator::builder()
            .design(Design::red(RedLayoutPolicy::Auto))
            .xbar_config(cfg)
            .build();
        let compiled = acc.compile(&layer, &kernel).expect("compiles");
        group.bench_function(name, |b| b.iter(|| compiled.run(&input).expect("runs")));
    }
    group.finish();
}

criterion_group!(benches, noisy_vs_ideal, weight_scheme_cost);
criterion_main!(benches);
