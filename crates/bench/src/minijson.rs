//! A minimal recursive-descent JSON parser for the bench harness.
//!
//! The workspace's `serde_json` slot is an offline placeholder, so the
//! bench binaries *emit* JSON by hand ([`crate::json_escape`]) and the
//! CI bench-gate (`benchdiff`) *reads* it back through this module. It
//! parses the full JSON grammar the emitters produce — objects (key
//! order preserved), arrays, strings with the standard escapes, finite
//! numbers, booleans, null — and rejects trailing garbage. It is not a
//! general-purpose JSON library: numbers are `f64` (exact for the u64
//! counters the baselines carry up to 2⁵³, far beyond any request
//! budget here) and `\uXXXX` surrogate pairs outside the BMP are
//! accepted pairwise but not validated exhaustively.

/// A parsed JSON value. Object members keep document order, so a diff
/// walks baselines in the order the emitter wrote them.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on other variants or a
    /// missing key.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A short tag for error messages ("object", "array", …).
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "bool",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input or
/// trailing non-whitespace.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected {:?} at byte {} (found {:?})",
            ch as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_keyword(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_keyword(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected {word:?} at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("numeric bytes are ASCII");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("malformed number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("truncated \\u escape at byte {}", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?} at byte {}", *pos))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "bad escape {:?} at byte {}",
                            other.map(|&b| b as char),
                            *pos
                        ))
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let ch_start = *pos;
                *pos += 1;
                while *pos < bytes.len() && bytes[*pos] & 0b1100_0000 == 0b1000_0000 {
                    *pos += 1;
                }
                out.push_str(
                    std::str::from_utf8(&bytes[ch_start..*pos])
                        .map_err(|_| format!("invalid UTF-8 at byte {ch_start}"))?,
                );
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("false").unwrap(), JsonValue::Bool(false));
        assert_eq!(parse("-12.5e2").unwrap(), JsonValue::Num(-1250.0));
        assert_eq!(parse("0").unwrap(), JsonValue::Num(0.0));
        assert_eq!(
            parse("\"a\\\"b\\n\\u0041\"").unwrap(),
            JsonValue::Str("a\"b\nA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures_in_order() {
        let doc = parse(r#"{"b": [1, {"x": null}], "a": "z", "e": {}}"#).unwrap();
        let JsonValue::Obj(members) = &doc else {
            panic!("expected object")
        };
        let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["b", "a", "e"], "document order preserved");
        assert_eq!(doc.get("a").unwrap().as_str(), Some("z"));
        let arr = doc.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_num(), Some(1.0));
        assert_eq!(arr[1].get("x"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err(), "trailing garbage");
        assert!(parse("\"open").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn roundtrips_an_emitted_bench_document() {
        // The shape the loadgen emitter produces.
        let doc = "{\n  \"bench\": \"loadgen\",\n  \"version\": 2,\n  \
                   \"rows\": [\n    {\"policy\":\"weighted-fair\",\"p99_us\":12.375},\n    \
                   {\"policy\":\"fifo\",\"p99_us\":1031.0}\n  ]\n}\n";
        let v = parse(doc).unwrap();
        assert_eq!(v.get("bench").unwrap().as_str(), Some("loadgen"));
        let rows = v.get("rows").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1].get("p99_us").unwrap().as_num(), Some(1031.0));
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(
            parse("\"µm² → done\"").unwrap().as_str(),
            Some("µm² → done")
        );
    }
}
