//! Regenerates the paper's Table I: the benchmark deconvolution layers.

use red_bench::render_table;
use red_core::prelude::*;

fn main() {
    println!("TABLE I — BENCHMARKS USED IN THIS WORK\n");
    let rows: Vec<Vec<String>> = Benchmark::all()
        .iter()
        .map(|b| {
            let l = b.layer();
            let o = l.output_geometry();
            vec![
                b.name().to_string(),
                b.network().to_string(),
                b.dataset().to_string(),
                format!("({}, {}, {})", l.input_h(), l.input_w(), l.channels()),
                format!("({}, {}, {})", o.height, o.width, l.filters()),
                format!(
                    "({}, {}, {}, {})",
                    l.spec().kernel_h(),
                    l.spec().kernel_w(),
                    l.channels(),
                    l.filters()
                ),
                l.spec().stride().to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "Layer Name",
                "Network Model",
                "Dataset",
                "Input (IH,IW,C)",
                "Output (OH,OW,M)",
                "Kernel (KH,KW,C,M)",
                "Stride"
            ],
            &rows
        )
    );
    println!("\n(paper Table I reproduced exactly; geometry validated by red-workloads tests)");
}
