//! Regenerates the paper's Fig. 7: (a) speedup of the three designs
//! normalized to zero-padding, (b) per-design execution-time breakdown
//! into array (wd + bd) and periphery (dec + mux + rc + sa) portions
//! (Eq. 3).

use red_bench::{all_comparisons, maybe_write_csv, render_table};
use red_core::Comparison;

fn main() {
    let comps = all_comparisons();

    println!("FIG. 7(a) — SPEEDUP (normalized to zero-padding)\n");
    let rows: Vec<Vec<String>> = comps
        .iter()
        .map(|(b, c)| {
            let zp = c.zero_padding();
            vec![
                b.name().to_string(),
                "1.00x".to_string(),
                format!("{:.2}x", c.padding_free().speedup_vs(zp)),
                format!("{:.2}x", c.red().speedup_vs(zp)),
            ]
        })
        .collect();
    let headers = ["benchmark", "zero-padding", "padding-free", "RED"];
    print!("{}", render_table(&headers, &rows));
    maybe_write_csv("fig7a_speedup", &headers, &rows);

    println!("\nFIG. 7(b) — EXECUTION TIME BREAKDOWN (% of each design's own total)\n");
    let mut rows = Vec::new();
    for (b, c) in &comps {
        for r in c.reports() {
            let total = r.total_latency_ns();
            rows.push(vec![
                b.name().to_string(),
                r.design.label().to_string(),
                format!("{:.1}%", 100.0 * r.array_latency_ns() / total),
                format!("{:.1}%", 100.0 * r.periphery_latency_ns() / total),
                format!("{:.3e}", total),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &["benchmark", "design", "array", "periphery", "total (ns)"],
            &rows
        )
    );

    println!("\nper-component latency shares (GAN_Deconv1):");
    let (_, c) = &comps[0];
    for r in c.reports() {
        let parts: Vec<String> = Comparison::latency_breakdown_pct(r)
            .into_iter()
            .map(|(comp, pct)| format!("{}={pct:.1}%", comp.abbr()))
            .collect();
        println!("  {:13} {}", r.design.label(), parts.join("  "));
    }

    let zp_pf: Vec<f64> = comps
        .iter()
        .filter(|(b, _)| b.is_gan())
        .map(|(_, c)| c.zero_padding().total_latency_ns() / c.padding_free().total_latency_ns())
        .collect();
    println!(
        "\nzero-padding vs padding-free on GANs: {:.2}x - {:.2}x slower (paper: 1.55x - 2.62x)",
        zp_pf.iter().copied().fold(f64::INFINITY, f64::min),
        zp_pf.iter().copied().fold(0.0, f64::max)
    );
}
