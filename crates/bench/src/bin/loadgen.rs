//! `loadgen` — closed-loop / open-loop load generation against a
//! `red-server` chip fleet: multi-tenant Poisson (or closed-loop)
//! request traffic through the dynamic micro-batching scheduler,
//! printing offered vs served rates, shed counts, and virtual-clock
//! latency percentiles, with per-tenant and per-partition breakdowns in
//! the JSON output.
//!
//! ```text
//! cargo run --release -p red-bench --bin loadgen -- \
//!     --rps 200 --clients 4 --max-batch 8 --duration-ms 250 --replicas 2 --json out.json
//! cargo run --release -p red-bench --bin loadgen -- \
//!     --rps 30000,90000,180000 --max-batch 1,16 --policy fifo,deadline-shed \
//!     --slo-us 120 --replicas 2 --requests 300 --json BENCH_loadgen.json
//! cargo run --release -p red-bench --bin loadgen -- --closed --clients 8 --requests 200
//! cargo run --release -p red-bench --bin loadgen -- \
//!     --mix --model-only --stream --requests 1000000 --clients 12 --replicas 2 \
//!     --tenants interactive:4:0:200,standard:2:1:800,batch:1:2:0 \
//!     --policy weighted-fair,priority --rps 400000 --autoscale 1
//! ```
//!
//! Rates and every latency figure are **virtual** (modeled hardware
//! time): arrivals are stamped on a virtual clock, batches are charged
//! the chip's modeled pipeline schedule, and host speed only affects how
//! long the simulation takes — so a fixed `--seed` reproduces the same
//! numbers anywhere. For orientation, the scale-8 DCGAN chip sustains
//! roughly 10⁵ modeled images/s per replica at large `max_batch`
//! (`1/steady-interval`), and only ~7·10⁴/s at `max_batch 1` (`1/fill`);
//! sweep `--rps` around those to see admission policies separate.
//!
//! `--rps`, `--max-batch` and `--policy` accept comma-separated lists
//! (the row set is their cross product). `--closed` switches every
//! client to closed-loop driving (ignores `--rps`). `--noisy <preset>`
//! serves on the named non-ideal crossbar configuration. `--mix` hosts
//! the whole serving lineup (DCGAN + SNGAN + FCN-8s) as partitions of
//! one fleet, with clients routing round-robin across the resident
//! networks. `--tenants name:weight:priority:slo_us,...` declares
//! tenant classes (clients are assigned round-robin); `weighted-fair`
//! and `priority` admission differentiate by class once queue lag
//! exceeds `--max-lag-us`. `--model-only` skips functional execution
//! (virtual statistics unchanged) and `--stream` switches the open loop
//! to the O(1)-memory single-threaded driver — together they sustain
//! `--requests 1000000` in seconds of host time and flat memory.
//! `--autoscale N` enables per-partition replica autoscaling with floor
//! N. `--brownout` arms precision-degrading overload control: under
//! pressure each partition steps its execution tier full → eco →
//! brownout, serving bounded-error outputs instead of shedding;
//! `--precision-floor full|eco|brownout` caps how deep every tenant
//! class may be degraded (per-tenant floors ride the 5th `--tenants`
//! field), and rows report `served_by_tier`, `tier_transitions`, and
//! the observed-vs-advertised output error. Every run asserts the
//! server report reconciles (`ServerReport::reconciles`), that no
//! request failed, and that the observed brownout error stays within
//! the advertised bound.
//!
//! `--fault-plan crash:AT_US:PART:REPLICA,stall:AT_US:PART:REPLICA:DUR_US,\
//! drift:AT_US:PART:ELAPSED_S,strike:AT_US:PART:REPLICA:CELLS` arms the
//! deterministic chaos layer: the listed events fire on the virtual
//! clock, the canary prober quarantines and re-programs unhealthy
//! replicas, and requests orphaned by a crash are retried, hedged, or
//! shed with an attributed `replica-lost` reason — the run then asserts
//! that every offered request was served or shed (none lost). Identical
//! (trace, plan, seed) triples reproduce byte-identical outputs.
//!
//! `--scrape-us F` arms the time-series scraper and the burn-rate alert
//! engine on the first sweep row: the metrics registry is snapshotted
//! every `F` virtual microseconds at batch-close boundaries, multi-window
//! SLO burn-rate / shed / quarantine alert rules are evaluated over the
//! scrape sequence, counter charts land in the Chrome trace as `"C"`
//! events, the JSON document gains a top-level `timeseries` block and
//! per-row `alerts` episodes, and `red-bench --bin analyze` turns the
//! captured artifacts into a root-cause timeline. Scrapes ride the same
//! virtual clock as everything else, so the alert fire/resolve sequence
//! replays byte-identically with the trace.
//!
//! `--trace out.json` captures the first sweep row's full request
//! lifecycle as a Chrome trace-event / Perfetto timeline (open at
//! `ui.perfetto.dev`), and `--metrics out.prom` exports the per-tenant /
//! per-partition metrics plane in Prometheus text format. Both are
//! deterministic functions of the virtual-clock schedule: the same seed
//! produces byte-identical files on any host.

use red_bench::{json_escape, maybe_write_csv, parse_flag, parse_list_flag, render_table};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use red_server::{
    drive, policy_for, AutoscaleConfig, BrownoutConfig, ChipFleet, ExecPrecision, FaultPlan,
    LoadMode, LoadgenConfig, ScrapeConfig, ServerConfig, ServerReport, TenantClass,
};
use red_telemetry::{peak_rss_kb, SeriesSnapshot, Telemetry};
use std::process::ExitCode;

/// One load-generation measurement, numeric for the JSON emitter.
struct LoadRow {
    network: String,
    design: String,
    xbar: String,
    policy: String,
    mode: String,
    rps: f64,
    max_batch: usize,
    offered: u64,
    served: u64,
    shed: u64,
    failed: u64,
    batches: u64,
    mean_batch: f64,
    span_us: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    p999_us: f64,
    queue_p50_us: f64,
    queue_p99_us: f64,
    execute_p50_us: f64,
    served_per_s: f64,
    offered_per_s: f64,
    peak_per_s: f64,
    utilization: f64,
    reconciled: bool,
    tenants_json: String,
    partitions_json: String,
    host_ms: f64,
    host_images_per_s: f64,
    sheds_by_reason_json: String,
    faults_injected: u64,
    reprograms: u64,
    retries: u64,
    hedges: u64,
    served_by_tier_json: String,
    tier_transitions: u64,
    max_observed_error: f64,
    precision_error_bound: f64,
    alerts_json: String,
}

/// Renders the burn-rate alert episodes of `report` as a JSON array
/// (server order: per partition, fire-ordered; `resolved_at_us` is
/// `null` while an episode is still firing at session end).
fn alerts_json(report: &ServerReport) -> String {
    let objects: Vec<String> = report
        .alerts
        .iter()
        .map(|a| {
            format!(
                "{{\"partition\":{},\"rule\":\"{}\",\"tenant\":{},\
                 \"fired_at_us\":{:.3},\"resolved_at_us\":{},\"value\":{:.4}}}",
                a.partition,
                json_escape(&a.rule),
                a.tenant.map_or("null".to_string(), |t| t.to_string()),
                a.fired_at_ns as f64 / 1e3,
                a.resolved_at_ns
                    .map_or("null".to_string(), |t| format!("{:.3}", t as f64 / 1e3)),
                a.value,
            )
        })
        .collect();
    format!("[{}]", objects.join(","))
}

/// Renders the scraped time-series block as a JSON array: one object
/// per series with its bounded ring of `[t_ns, delta-or-level]`
/// samples and the conservation ledger (`evicted_sum + Σ samples ==
/// total` for counters).
fn timeseries_json(series: &[SeriesSnapshot]) -> String {
    let objects: Vec<String> = series
        .iter()
        .map(|s| {
            let samples: Vec<String> = s
                .samples
                .iter()
                .map(|(t, v)| format!("[{t},{v}]"))
                .collect();
            format!(
                "{{\"partition\":{},\"chart\":\"{}\",\"key\":\"{}\",\"kind\":\"{}\",\
                 \"total\":{},\"evicted\":{},\"evicted_sum\":{},\"samples\":[{}]}}",
                s.partition,
                json_escape(&s.chart),
                json_escape(&s.key),
                s.kind,
                s.total,
                s.evicted,
                s.evicted_sum,
                samples.join(","),
            )
        })
        .collect();
    format!("[{}]", objects.join(","))
}

/// Renders the served-per-execution-tier breakdown of `report` as a
/// JSON object (stable key order — `ExecPrecision::ALL` order from the
/// server).
fn served_by_tier_json(report: &ServerReport) -> String {
    let fields: Vec<String> = report
        .served_by_tier
        .iter()
        .map(|(tier, n)| format!("\"{}\":{}", json_escape(tier), n))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders the attributed shed breakdown of `report` as a JSON object
/// (stable key order — the reasons come pre-ordered from the server).
fn sheds_by_reason_json(report: &ServerReport) -> String {
    let fields: Vec<String> = report
        .sheds_by_reason
        .iter()
        .map(|(reason, n)| format!("\"{}\":{}", json_escape(reason), n))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Renders the per-tenant breakdown of `report` as a JSON array.
fn tenants_json(report: &ServerReport) -> String {
    let objects: Vec<String> = report
        .tenant_reports
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\":{},\"name\":\"{}\",\"weight\":{},\"priority\":{},\
                 \"slo_us\":{:.3},\"offered\":{},\"served\":{},\"shed\":{},\
                 \"p50_us\":{:.3},\"p99_us\":{:.3},\"queue_p99_us\":{:.3}}}",
                t.tenant,
                json_escape(&t.name),
                t.weight,
                t.priority,
                t.slo_ns.unwrap_or(0) as f64 / 1e3,
                t.offered,
                t.served,
                t.shed,
                t.total.p50() as f64 / 1e3,
                t.total.p99() as f64 / 1e3,
                t.queue_wait.p99() as f64 / 1e3,
            )
        })
        .collect();
    format!("[{}]", objects.join(","))
}

/// Renders the per-partition breakdown of `report` as a JSON array.
fn partitions_json(report: &ServerReport) -> String {
    let objects: Vec<String> = report
        .partition_reports
        .iter()
        .map(|p| {
            let ups = p.scale_events.iter().filter(|e| e.to > e.from).count();
            format!(
                "{{\"partition\":{},\"network\":\"{}\",\"replicas\":{},\
                 \"active_final\":{},\"offered\":{},\"served\":{},\"shed\":{},\
                 \"batches\":{},\"p99_us\":{:.3},\
                 \"scale_ups\":{},\"scale_downs\":{}}}",
                p.partition,
                json_escape(&p.network),
                p.replicas_provisioned,
                p.replicas_active,
                p.offered,
                p.served,
                p.shed,
                p.batches,
                p.total.p99() as f64 / 1e3,
                ups,
                p.scale_events.len() - ups,
            )
        })
        .collect();
    format!("[{}]", objects.join(","))
}

impl LoadRow {
    fn table_cells(&self) -> Vec<String> {
        vec![
            self.network.clone(),
            self.design.clone(),
            self.xbar.clone(),
            self.policy.clone(),
            self.mode.clone(),
            if self.mode == "closed" {
                "-".into()
            } else {
                format!("{:.0}", self.rps)
            },
            self.max_batch.to_string(),
            self.offered.to_string(),
            self.served.to_string(),
            self.shed.to_string(),
            format!("{:.1}", self.mean_batch),
            format!("{:.1}", self.p50_us),
            format!("{:.1}", self.p99_us),
            format!("{:.0}", self.served_per_s),
            format!("{:.2}", self.utilization),
            format!("{:.1}", self.span_us / 1e3),
            format!("{:.1}", self.host_ms),
        ]
    }

    fn json_object(&self) -> String {
        format!(
            "{{\"network\":\"{}\",\"design\":\"{}\",\"xbar\":\"{}\",\"policy\":\"{}\",\
             \"mode\":\"{}\",\"rps\":{:.3},\"max_batch\":{},\
             \"offered\":{},\"served\":{},\"shed\":{},\"failed\":{},\"batches\":{},\
             \"mean_batch\":{:.4},\"span_us\":{:.3},\
             \"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\
             \"queue_p50_us\":{:.3},\"queue_p99_us\":{:.3},\"execute_p50_us\":{:.3},\
             \"served_per_s\":{:.3},\"offered_per_s\":{:.3},\"peak_per_s\":{:.3},\
             \"utilization\":{:.4},\"reconciled\":{},\
             \"tenants\":{},\"partitions\":{},\
             \"host_ms\":{:.3},\"host_images_per_s\":{:.2},\
             \"sheds_by_reason\":{},\"faults_injected\":{},\
             \"reprograms\":{},\"retries\":{},\"hedges\":{},\
             \"served_by_tier\":{},\"tier_transitions\":{},\
             \"max_observed_error\":{:.3},\"precision_error_bound\":{:.3},\
             \"alerts\":{}}}",
            json_escape(&self.network),
            json_escape(&self.design),
            json_escape(&self.xbar),
            json_escape(&self.policy),
            json_escape(&self.mode),
            self.rps,
            self.max_batch,
            self.offered,
            self.served,
            self.shed,
            self.failed,
            self.batches,
            self.mean_batch,
            self.span_us,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.p999_us,
            self.queue_p50_us,
            self.queue_p99_us,
            self.execute_p50_us,
            self.served_per_s,
            self.offered_per_s,
            self.peak_per_s,
            self.utilization,
            self.reconciled,
            self.tenants_json,
            self.partitions_json,
            self.host_ms,
            self.host_images_per_s,
            self.sheds_by_reason_json,
            self.faults_injected,
            self.reprograms,
            self.retries,
            self.hedges,
            self.served_by_tier_json,
            self.tier_transitions,
            self.max_observed_error,
            self.precision_error_bound,
            self.alerts_json,
        )
    }
}

/// Schema version of the `--json` document. v2: per-row `span_us`
/// replaces the (always-zero) header `duration_ms` as the run-length
/// record, rows gain `tenants` and `partitions` breakdowns, the header
/// gains the tenant/autoscale/streaming configuration. v3: rows gain
/// the `sheds_by_reason` breakdown and the chaos counters
/// (`faults_injected`, `reprograms`, `retries`, `hedges`), the header
/// gains the `fault_plan` echo. v4: rows gain the brownout accounting
/// (`served_by_tier`, `tier_transitions`, `max_observed_error`,
/// `precision_error_bound`), the header echoes `brownout` and
/// `precision_floor`. v5: rows gain the burn-rate `alerts` episodes,
/// the document gains the top-level `timeseries` block of scraped
/// counter/gauge/quantile windows, and the header echoes `scrape_us` —
/// all *optional* additions at each step, so a v5 document replays
/// cleanly against v2/v3/v4 baselines (`benchdiff` ignores fresh-only
/// fields and accepts fresh `version` >= baseline).
const JSON_SCHEMA_VERSION: u32 = 5;

/// Header-level configuration echoed into the JSON document.
struct JsonHeader<'a> {
    scale: usize,
    seed: u64,
    clients: usize,
    replicas: usize,
    max_wait_us: f64,
    slo_us: f64,
    max_lag_us: f64,
    horizon_ms: f64,
    requests: usize,
    stream: bool,
    model_only: bool,
    mix: bool,
    autoscale_min: usize,
    autoscale_cooldown_us: f64,
    brownout: bool,
    precision_floor: &'a str,
    tenants: &'a [TenantClass],
    fault_plan: &'a str,
    scrape_us: f64,
}

fn write_json(
    path: &str,
    h: &JsonHeader<'_>,
    rows: &[LoadRow],
    timeseries: &[SeriesSnapshot],
) -> std::io::Result<()> {
    let tenant_objs: Vec<String> = h
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"name\":\"{}\",\"weight\":{},\"priority\":{},\"slo_us\":{:.3},\
                 \"floor\":\"{}\"}}",
                json_escape(&t.name),
                t.weight,
                t.priority,
                t.slo_ns.unwrap_or(0) as f64 / 1e3,
                t.precision_floor.name(),
            )
        })
        .collect();
    let objects: Vec<String> = rows.iter().map(LoadRow::json_object).collect();
    let doc = format!(
        "{{\n  \"bench\": \"loadgen\",\n  \"version\": {JSON_SCHEMA_VERSION},\n  \
         \"scale\": {},\n  \"seed\": {},\n  \"clients\": {},\n  \
         \"replicas\": {},\n  \"max_wait_us\": {},\n  \
         \"slo_us\": {},\n  \"max_lag_us\": {},\n  \"horizon_ms\": {},\n  \
         \"requests\": {},\n  \"stream\": {},\n  \"model_only\": {},\n  \
         \"mix\": {},\n  \"autoscale_min\": {},\n  \"autoscale_cooldown_us\": {},\n  \
         \"brownout\": {},\n  \"precision_floor\": \"{}\",\n  \
         \"tenants\": [{}],\n  \"fault_plan\": \"{}\",\n  \"scrape_us\": {},\n  \
         \"timeseries\": {},\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        h.scale,
        h.seed,
        h.clients,
        h.replicas,
        h.max_wait_us,
        h.slo_us,
        h.max_lag_us,
        h.horizon_ms,
        h.requests,
        h.stream,
        h.model_only,
        h.mix,
        h.autoscale_min,
        h.autoscale_cooldown_us,
        h.brownout,
        json_escape(h.precision_floor),
        tenant_objs.join(", "),
        json_escape(h.fault_plan),
        h.scrape_us,
        timeseries_json(timeseries),
        objects.join(",\n    ")
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--rps F[,F..]] [--clients N] [--max-batch N[,N..]] \
         [--max-wait-us F] [--slo-us F] \
         [--policy fifo|deadline-shed|weighted-fair|priority[,..]] \
         [--tenants name:weight:priority:slo_us[,..]] [--max-lag-us F] \
         [--replicas N] [--noisy variation|adc|ir-drop|full] [--closed] \
         [--mix] [--stream] [--model-only] \
         [--autoscale MIN] [--autoscale-cooldown-us F] \
         [--brownout] [--brownout-cooldown-us F] [--precision-floor full|eco|brownout] \
         [--duration-ms F] [--requests N] [--scale N] [--seed N] \
         [--network dcgan|sngan|fcn|all] [--design zero-padding|padding-free|red|all] \
         [--fault-plan crash:AT_US:P:R,stall:AT_US:P:R:DUR_US,drift:AT_US:P:SECS,\
strike:AT_US:P:R:CELLS] \
         [--scrape-us F] \
         [--csv <dir>] [--json <path>] [--trace <path>] [--metrics <path>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (
        Some(rps_list),
        Some(clients),
        Some(batch_list),
        Some(max_wait_us),
        Some(slo_us),
        Some(max_lag_us),
        Some(policy_list),
        Some(replicas),
        Some(duration_ms),
        Some(requests),
        Some(scale),
        Some(seed),
        Some(network_sel),
        Some(design_sel),
        Some(tenant_specs),
        Some(autoscale_cooldown_us),
    ) = (
        parse_list_flag::<f64>(&args, "--rps", &[20_000.0]),
        parse_flag::<usize>(&args, "--clients", 4),
        parse_list_flag::<usize>(&args, "--max-batch", &[8]),
        parse_flag::<f64>(&args, "--max-wait-us", 50.0),
        parse_flag::<f64>(&args, "--slo-us", 0.0),
        parse_flag::<f64>(&args, "--max-lag-us", 200.0),
        parse_list_flag::<String>(&args, "--policy", &["fifo".to_string()]),
        parse_flag::<usize>(&args, "--replicas", 1),
        parse_flag::<f64>(&args, "--duration-ms", 0.0),
        parse_flag::<usize>(&args, "--requests", 400),
        parse_flag::<usize>(&args, "--scale", 8),
        parse_flag::<u64>(&args, "--seed", 42),
        parse_flag::<String>(&args, "--network", "dcgan".to_string()),
        parse_flag::<String>(&args, "--design", "red".to_string()),
        parse_list_flag::<String>(&args, "--tenants", &[]),
        parse_flag::<f64>(&args, "--autoscale-cooldown-us", 500.0),
    )
    else {
        return usage();
    };
    let Some(scrape_us) = parse_flag::<f64>(&args, "--scrape-us", 0.0) else {
        return usage();
    };
    let closed = args.iter().any(|a| a == "--closed");
    let mix = args.iter().any(|a| a == "--mix");
    let stream = args.iter().any(|a| a == "--stream");
    let model_only = args.iter().any(|a| a == "--model-only");
    let brownout = args.iter().any(|a| a == "--brownout");
    let Some(brownout_cooldown_us) = parse_flag::<f64>(&args, "--brownout-cooldown-us", 500.0)
    else {
        return usage();
    };
    // `--precision-floor TIER` caps brownout degradation for EVERY
    // tenant class at once; per-tenant `name:w:p:slo:floor` specs set
    // finer-grained floors.
    let precision_floor = match args.iter().position(|a| a == "--precision-floor") {
        None => None,
        Some(i) => match args
            .get(i + 1)
            .and_then(|name| ExecPrecision::from_name(name))
        {
            Some(tier) => Some(tier),
            None => {
                eprintln!("--precision-floor requires full, eco, or brownout");
                return ExitCode::from(2);
            }
        },
    };
    let autoscale_min = match args.iter().position(|a| a == "--autoscale") {
        None => 0usize,
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("--autoscale requires a positive replica floor");
                return ExitCode::from(2);
            }
        },
    };
    if clients == 0 || replicas == 0 || requests == 0 || scale == 0 || batch_list.is_empty() {
        eprintln!("--clients, --replicas, --requests, --scale and --max-batch must be positive");
        return ExitCode::from(2);
    }
    if !closed && rps_list.iter().any(|&r| r <= 0.0) {
        eprintln!("--rps rates must be positive");
        return ExitCode::from(2);
    }
    let mut tenants: Vec<TenantClass> = if tenant_specs.is_empty() {
        vec![TenantClass::default()]
    } else {
        match tenant_specs.iter().map(|s| TenantClass::parse(s)).collect() {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bad --tenants spec: {e}");
                return ExitCode::from(2);
            }
        }
    };
    if let Some(floor) = precision_floor {
        for t in &mut tenants {
            // The meet: a blanket floor tightens every class but never
            // loosens one a spec already pinned shallower.
            t.precision_floor = t.precision_floor.min(floor);
        }
    }
    let noisy = match args.iter().position(|a| a == "--noisy") {
        None => None,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(name) if !name.starts_with("--") => match XbarConfig::preset(name) {
                Some(cfg) => Some((name.to_string(), cfg)),
                None => {
                    eprintln!(
                        "unknown --noisy preset {name:?} \
                         (expected variation, adc, ir-drop, or full)"
                    );
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("--noisy requires a preset name argument");
                return ExitCode::from(2);
            }
        },
    };
    let path_flag = |name: &str| -> Result<Option<String>, ()> {
        match args.iter().position(|a| a == name) {
            None => Ok(None),
            Some(i) => match args.get(i + 1) {
                Some(path) if !path.starts_with("--") => Ok(Some(path.clone())),
                _ => Err(()),
            },
        }
    };
    let Ok(json_path) = path_flag("--json") else {
        eprintln!("--json requires a path argument");
        return ExitCode::from(2);
    };
    // `--trace`/`--metrics` attach a telemetry plane to the FIRST row of
    // the sweep (one deterministic serving session) and export it as
    // Chrome trace-event JSON / Prometheus text at exit.
    let Ok(trace_path) = path_flag("--trace") else {
        eprintln!("--trace requires a path argument");
        return ExitCode::from(2);
    };
    let Ok(metrics_path) = path_flag("--metrics") else {
        eprintln!("--metrics requires a path argument");
        return ExitCode::from(2);
    };
    let Ok(fault_spec) = path_flag("--fault-plan") else {
        eprintln!("--fault-plan requires an event-list argument");
        return ExitCode::from(2);
    };
    let fault_plan = match &fault_spec {
        None => None,
        Some(spec) => match FaultPlan::parse(spec, seed) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("bad --fault-plan: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let max_lag_ns = (max_lag_us * 1e3).round().max(0.0) as u64;
    let policies: Vec<_> = match policy_list
        .iter()
        .map(|name| policy_for(name, &tenants, max_lag_ns).map(|p| (name.clone(), p)))
        .collect::<Option<Vec<_>>>()
    {
        Some(p) => p,
        None => {
            eprintln!(
                "unknown --policy (expected fifo, deadline-shed, weighted-fair, or priority)"
            );
            return ExitCode::from(2);
        }
    };
    let (xbar_label, xbar_cfg) =
        noisy.unwrap_or_else(|| ("ideal".to_string(), XbarConfig::ideal()));

    let lineup = networks::serving_lineup(scale).expect("serving stacks build");
    let selected: Vec<_> = if mix {
        lineup
    } else {
        match network_sel.as_str() {
            "all" => lineup,
            "dcgan" => vec![lineup.into_iter().next().expect("lineup has 3 stacks")],
            "sngan" => vec![lineup.into_iter().nth(1).expect("lineup has 3 stacks")],
            "fcn" => vec![lineup.into_iter().nth(2).expect("lineup has 3 stacks")],
            other => {
                eprintln!("unknown --network {other:?} (expected dcgan, sngan, fcn, or all)");
                return ExitCode::from(2);
            }
        }
    };
    // `--mix` hosts every selected stack in ONE fleet (one partition
    // each); otherwise each stack gets its own single-partition fleet.
    let fleet_groups: Vec<Vec<_>> = if mix {
        vec![selected]
    } else {
        selected.into_iter().map(|s| vec![s]).collect()
    };
    let designs: Vec<Design> = match design_sel.as_str() {
        "all" => Design::paper_lineup().to_vec(),
        "zero-padding" | "zp" => vec![Design::ZeroPadding],
        "padding-free" | "pf" => vec![Design::PaddingFree],
        "red" => vec![Design::red(RedLayoutPolicy::Auto)],
        other => {
            eprintln!(
                "unknown --design {other:?} \
                 (expected zero-padding, padding-free, red, or all)"
            );
            return ExitCode::from(2);
        }
    };

    let max_wait_ns = (max_wait_us * 1e3).round().max(0.0) as u64;
    let slo_ns = if slo_us > 0.0 {
        Some((slo_us * 1e3).round() as u64)
    } else {
        None
    };
    let horizon_ns = if duration_ms > 0.0 {
        Some((duration_ms * 1e6).round() as u64)
    } else {
        None
    };
    let mode_label = if closed { "closed" } else { "open" };

    println!("== red-server loadgen: online serving under load ==");
    println!(
        "{mode_label}-loop{}{}{}, {clients} clients, {replicas} replica(s)/partition, \
         {} tenant class(es), scale {scale}, xbar {xbar_label}, max-wait {max_wait_us} us, \
         slo {slo_us} us, seed {seed}",
        if stream { " (streaming)" } else { "" },
        if model_only { " (model-only)" } else { "" },
        if autoscale_min > 0 {
            " (autoscaled)"
        } else {
            ""
        },
        tenants.len(),
    );
    if brownout {
        println!(
            "(brownout overload control armed, cooldown {brownout_cooldown_us} us{})",
            match precision_floor {
                Some(f) => format!(", blanket precision floor {f}"),
                None => String::new(),
            }
        );
    }

    let rates: Vec<f64> = if closed { vec![0.0] } else { rps_list };
    let want_telemetry = trace_path.is_some() || metrics_path.is_some() || scrape_us > 0.0;
    let mut telemetry_out: Option<Telemetry> = None;
    let mut rows: Vec<LoadRow> = Vec::new();
    let mut alert_episodes = 0u64;
    for stacks in &fleet_groups {
        // Model-only servers never execute the payloads; skip
        // materializing per-partition input streams entirely.
        let traffic: Vec<Vec<_>> = if model_only {
            Vec::new()
        } else {
            stacks
                .iter()
                .map(|stack| networks::request_stream(stack, 8, 64, seed ^ 0xBEEF))
                .collect()
        };
        for design in &designs {
            let fleet = ChipFleet::multi(
                stacks
                    .iter()
                    .map(|stack| {
                        let chip = ChipBuilder::new()
                            .design(*design)
                            .xbar_config(xbar_cfg)
                            .compile_seeded(stack, 5, 77)
                            .expect("stack compiles onto the chip");
                        (chip, replicas)
                    })
                    .collect(),
            )
            .expect("replicas is positive");
            let peak_per_s = fleet.peak_throughput_per_s();
            let total_replicas = fleet.replicas();
            for (policy_name, policy) in &policies {
                for &max_batch in &batch_list {
                    for &rps in &rates {
                        let mut server_cfg = ServerConfig::new()
                            .max_batch(max_batch)
                            .max_wait_ns(max_wait_ns)
                            .policy_arc(std::sync::Arc::clone(policy))
                            .tenants(tenants.clone());
                        if model_only {
                            server_cfg = server_cfg.model_only();
                        }
                        if let Some(plan) = &fault_plan {
                            server_cfg = server_cfg.fault_plan(plan.clone());
                        }
                        if autoscale_min > 0 {
                            server_cfg = server_cfg.autoscale(AutoscaleConfig {
                                min_replicas: autoscale_min,
                                cooldown_ns: (autoscale_cooldown_us * 1e3).round() as u64,
                                ..AutoscaleConfig::default()
                            });
                        }
                        if brownout {
                            server_cfg = server_cfg.brownout(BrownoutConfig {
                                cooldown_ns: (brownout_cooldown_us * 1e3).round() as u64,
                                ..BrownoutConfig::default()
                            });
                        }
                        // Trace/metrics/scrape capture attaches to the
                        // first row of the sweep only: one serving
                        // session, one deterministic timeline.
                        if want_telemetry && telemetry_out.is_none() {
                            let tele = Telemetry::enabled();
                            telemetry_out = Some(tele.clone());
                            server_cfg = server_cfg.telemetry(tele);
                            if scrape_us > 0.0 {
                                server_cfg = server_cfg.scrape(ScrapeConfig {
                                    interval_ns: (scrape_us * 1e3).round().max(1.0) as u64,
                                    ..ScrapeConfig::default()
                                });
                            }
                        }
                        let load = LoadgenConfig {
                            mode: if closed {
                                LoadMode::Closed
                            } else {
                                LoadMode::Open { rps }
                            },
                            clients,
                            requests,
                            horizon_ns,
                            slo_ns,
                            seed,
                            stream,
                        };
                        let report = drive(&fleet, &server_cfg, &load, &traffic)
                            .expect("load generation runs");
                        alert_episodes += report.alerts.len() as u64;
                        assert!(
                            report.reconciles(),
                            "{} on {} ({xbar_label}): the scheduler's virtual charge \
                             diverged from the replicas' accounting",
                            report.network,
                            design.label(),
                        );
                        assert_eq!(
                            report.failed,
                            0,
                            "{} on {}: no validated request may fail",
                            report.network,
                            design.label(),
                        );
                        if fault_plan.is_some() {
                            // The no-lost-request invariant: chaos may
                            // retry, hedge, or shed, but every offered
                            // request resolves exactly once.
                            assert_eq!(
                                report.offered,
                                report.served + report.shed,
                                "{} on {}: requests lost under the fault plan",
                                report.network,
                                design.label(),
                            );
                        }
                        // Bounded-error accounting: what degradation
                        // actually cost never exceeds what the crossbar
                        // layer advertised.
                        assert!(
                            report.max_observed_error <= report.precision_error_bound,
                            "{} on {}: observed brownout error {} exceeds the \
                             advertised bound {}",
                            report.network,
                            design.label(),
                            report.max_observed_error,
                            report.precision_error_bound,
                        );
                        rows.push(LoadRow {
                            network: report.network.clone(),
                            design: design.label().to_string(),
                            xbar: xbar_label.clone(),
                            policy: policy_name.clone(),
                            mode: mode_label.to_string(),
                            rps,
                            max_batch,
                            offered: report.offered,
                            served: report.served,
                            shed: report.shed,
                            failed: report.failed,
                            batches: report.batches,
                            mean_batch: report.mean_batch(),
                            span_us: report.span_ns() as f64 / 1e3,
                            p50_us: report.total.p50() as f64 / 1e3,
                            p95_us: report.total.p95() as f64 / 1e3,
                            p99_us: report.total.p99() as f64 / 1e3,
                            p999_us: report.total.p999() as f64 / 1e3,
                            queue_p50_us: report.queue_wait.p50() as f64 / 1e3,
                            queue_p99_us: report.queue_wait.p99() as f64 / 1e3,
                            execute_p50_us: report.execute.p50() as f64 / 1e3,
                            served_per_s: report.served_per_s(),
                            offered_per_s: report.offered_per_s(),
                            peak_per_s,
                            utilization: if report.span_ns() == 0 {
                                0.0
                            } else {
                                report.modeled_busy_ns as f64
                                    / (total_replicas as f64 * report.span_ns() as f64)
                            },
                            reconciled: report.reconciles(),
                            tenants_json: tenants_json(&report),
                            partitions_json: partitions_json(&report),
                            host_ms: report.host_exec_ns as f64 / 1e6,
                            host_images_per_s: report.host_images_per_s(),
                            sheds_by_reason_json: sheds_by_reason_json(&report),
                            faults_injected: report.faults_injected,
                            reprograms: report.reprograms,
                            retries: report.retries,
                            hedges: report.hedges,
                            served_by_tier_json: served_by_tier_json(&report),
                            tier_transitions: report
                                .partition_reports
                                .iter()
                                .map(|p| p.brownout_events.len() as u64)
                                .sum(),
                            max_observed_error: report.max_observed_error,
                            precision_error_bound: report.precision_error_bound,
                            alerts_json: alerts_json(&report),
                        });
                    }
                }
            }
        }
    }

    let headers = [
        "network",
        "design",
        "xbar",
        "policy",
        "mode",
        "rps",
        "batch<=",
        "offered",
        "served",
        "shed",
        "avg B",
        "p50 (us)",
        "p99 (us)",
        "img/s",
        "util",
        "span (ms)",
        "host (ms)",
    ];
    let cells: Vec<Vec<String>> = rows.iter().map(LoadRow::table_cells).collect();
    print!("{}", render_table(&headers, &cells));
    maybe_write_csv("loadgen", &headers, &cells);
    if let Some(plan) = &fault_plan {
        let sum = |f: fn(&LoadRow) -> u64| rows.iter().map(f).sum::<u64>();
        println!(
            "(chaos: {} planned event(s)/row; across rows {} fault(s) injected, \
             {} reprogram(s), {} retrie(s), {} hedge(s); zero requests lost)",
            plan.len(),
            sum(|r| r.faults_injected),
            sum(|r| r.reprograms),
            sum(|r| r.retries),
            sum(|r| r.hedges),
        );
    }
    if brownout {
        let transitions = rows.iter().map(|r| r.tier_transitions).sum::<u64>();
        let max_err = rows
            .iter()
            .map(|r| r.max_observed_error)
            .fold(0.0, f64::max);
        let bound = rows
            .iter()
            .map(|r| r.precision_error_bound)
            .fold(0.0, f64::max);
        println!(
            "(brownout: {transitions} tier transition(s) across rows; \
             max observed output error {max_err:.1} within advertised bound {bound:.1})"
        );
    }
    if scrape_us > 0.0 {
        println!(
            "(scrape: {scrape_us} us cadence on the first row; \
             {alert_episodes} alert episode(s) across rows)"
        );
    }
    if let Some(path) = &json_path {
        let header = JsonHeader {
            scale,
            seed,
            clients,
            replicas,
            max_wait_us,
            slo_us,
            max_lag_us,
            horizon_ms: duration_ms,
            requests,
            stream,
            model_only,
            mix,
            autoscale_min,
            autoscale_cooldown_us,
            brownout,
            precision_floor: precision_floor.map_or("", ExecPrecision::name),
            tenants: &tenants,
            fault_plan: fault_spec.as_deref().unwrap_or(""),
            scrape_us,
        };
        let timeseries = telemetry_out
            .as_ref()
            .map(Telemetry::timeseries_snapshot)
            .unwrap_or_default();
        match write_json(path, &header, &rows, &timeseries) {
            Ok(()) => println!("(wrote {path})"),
            Err(e) => {
                eprintln!("json write failed for {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(tele) = &telemetry_out {
        if let Some(path) = &trace_path {
            match std::fs::write(path, tele.export_chrome_trace()) {
                Ok(()) => println!("(wrote {path})"),
                Err(e) => {
                    eprintln!("trace write failed for {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if let Some(path) = &metrics_path {
            match std::fs::write(path, tele.export_prometheus()) {
                Ok(()) => println!("(wrote {path})"),
                Err(e) => {
                    eprintln!("metrics write failed for {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    println!(
        "\nAll figures are virtual (modeled hardware) time; every row's scheduler\n\
         charge reconciled with the replicas' accounting. Larger micro-batches\n\
         amortize the pipeline fill across outputs (img/s -> the fleet's\n\
         bottleneck rate). Under overload, deadline-shed converts queueing into\n\
         shed count, weighted-fair shares capacity by tenant weight, and priority\n\
         pins tier 0's tail at the lower tiers' expense."
    );
    if let Some(kb) = peak_rss_kb() {
        println!("(peak RSS {kb} kB)");
    }
    ExitCode::SUCCESS
}
