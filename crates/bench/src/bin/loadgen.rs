//! `loadgen` — closed-loop / open-loop load generation against a
//! `red-server` chip fleet: Poisson (or closed-loop) request traffic
//! through the dynamic micro-batching scheduler, printing offered vs
//! served rates, shed counts, and virtual-clock latency percentiles.
//!
//! ```text
//! cargo run --release -p red-bench --bin loadgen -- \
//!     --rps 200 --clients 4 --max-batch 8 --duration-ms 250 --replicas 2 --json out.json
//! cargo run --release -p red-bench --bin loadgen -- \
//!     --rps 30000,90000,180000 --max-batch 1,16 --policy fifo,deadline-shed \
//!     --slo-us 120 --replicas 2 --requests 300 --json BENCH_loadgen.json
//! cargo run --release -p red-bench --bin loadgen -- --closed --clients 8 --requests 200
//! ```
//!
//! Rates and every latency figure are **virtual** (modeled hardware
//! time): arrivals are stamped on a virtual clock, batches are charged
//! the chip's modeled pipeline schedule, and host speed only affects how
//! long the simulation takes — so a fixed `--seed` reproduces the same
//! numbers anywhere. For orientation, the scale-8 DCGAN chip sustains
//! roughly 10⁵ modeled images/s per replica at large `max_batch`
//! (`1/steady-interval`), and only ~7·10⁴/s at `max_batch 1` (`1/fill`);
//! sweep `--rps` around those to see admission policies separate.
//!
//! `--rps`, `--max-batch` and `--policy` accept comma-separated lists
//! (the row set is their cross product). `--closed` switches every
//! client to closed-loop driving (ignores `--rps`). `--noisy <preset>`
//! serves on the named non-ideal crossbar configuration instead of the
//! ideal one. Every run asserts the server report reconciles
//! (`ServerReport::reconciles`) and that no request failed.

use red_bench::{json_escape, maybe_write_csv, parse_flag, parse_list_flag, render_table};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use red_server::{drive, policy_by_name, ChipFleet, LoadMode, LoadgenConfig, ServerConfig};
use std::process::ExitCode;

/// One load-generation measurement, numeric for the JSON emitter.
struct LoadRow {
    network: String,
    design: String,
    xbar: String,
    policy: String,
    mode: String,
    rps: f64,
    max_batch: usize,
    offered: u64,
    served: u64,
    shed: u64,
    failed: u64,
    batches: u64,
    mean_batch: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    p999_us: f64,
    queue_p50_us: f64,
    queue_p99_us: f64,
    execute_p50_us: f64,
    served_per_s: f64,
    offered_per_s: f64,
    peak_per_s: f64,
    utilization: f64,
    reconciled: bool,
    host_ms: f64,
    host_images_per_s: f64,
}

impl LoadRow {
    fn table_cells(&self) -> Vec<String> {
        vec![
            self.network.clone(),
            self.design.clone(),
            self.xbar.clone(),
            self.policy.clone(),
            self.mode.clone(),
            if self.mode == "closed" {
                "-".into()
            } else {
                format!("{:.0}", self.rps)
            },
            self.max_batch.to_string(),
            self.offered.to_string(),
            self.served.to_string(),
            self.shed.to_string(),
            format!("{:.1}", self.mean_batch),
            format!("{:.1}", self.p50_us),
            format!("{:.1}", self.p99_us),
            format!("{:.0}", self.served_per_s),
            format!("{:.2}", self.utilization),
            format!("{:.1}", self.host_ms),
        ]
    }

    fn json_object(&self) -> String {
        format!(
            "{{\"network\":\"{}\",\"design\":\"{}\",\"xbar\":\"{}\",\"policy\":\"{}\",\
             \"mode\":\"{}\",\"rps\":{:.3},\"max_batch\":{},\
             \"offered\":{},\"served\":{},\"shed\":{},\"failed\":{},\"batches\":{},\
             \"mean_batch\":{:.4},\
             \"p50_us\":{:.3},\"p95_us\":{:.3},\"p99_us\":{:.3},\"p999_us\":{:.3},\
             \"queue_p50_us\":{:.3},\"queue_p99_us\":{:.3},\"execute_p50_us\":{:.3},\
             \"served_per_s\":{:.3},\"offered_per_s\":{:.3},\"peak_per_s\":{:.3},\
             \"utilization\":{:.4},\"reconciled\":{},\
             \"host_ms\":{:.3},\"host_images_per_s\":{:.2}}}",
            json_escape(&self.network),
            json_escape(&self.design),
            json_escape(&self.xbar),
            json_escape(&self.policy),
            json_escape(&self.mode),
            self.rps,
            self.max_batch,
            self.offered,
            self.served,
            self.shed,
            self.failed,
            self.batches,
            self.mean_batch,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.p999_us,
            self.queue_p50_us,
            self.queue_p99_us,
            self.execute_p50_us,
            self.served_per_s,
            self.offered_per_s,
            self.peak_per_s,
            self.utilization,
            self.reconciled,
            self.host_ms,
            self.host_images_per_s,
        )
    }
}

/// Schema version of the `--json` document.
const JSON_SCHEMA_VERSION: u32 = 1;

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    scale: usize,
    seed: u64,
    clients: usize,
    replicas: usize,
    max_wait_us: f64,
    slo_us: f64,
    duration_ms: f64,
    requests: usize,
    rows: &[LoadRow],
) -> std::io::Result<()> {
    let objects: Vec<String> = rows.iter().map(LoadRow::json_object).collect();
    let doc = format!(
        "{{\n  \"bench\": \"loadgen\",\n  \"version\": {JSON_SCHEMA_VERSION},\n  \
         \"scale\": {scale},\n  \"seed\": {seed},\n  \"clients\": {clients},\n  \
         \"replicas\": {replicas},\n  \"max_wait_us\": {max_wait_us},\n  \
         \"slo_us\": {slo_us},\n  \"duration_ms\": {duration_ms},\n  \
         \"requests\": {requests},\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        objects.join(",\n    ")
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc)
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: loadgen [--rps F[,F..]] [--clients N] [--max-batch N[,N..]] \
         [--max-wait-us F] [--slo-us F] [--policy fifo|deadline-shed[,..]] \
         [--replicas N] [--noisy variation|adc|ir-drop|full] [--closed] \
         [--duration-ms F] [--requests N] [--scale N] [--seed N] \
         [--network dcgan|sngan|fcn|all] [--design zero-padding|padding-free|red|all] \
         [--csv <dir>] [--json <path>]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (
        Some(rps_list),
        Some(clients),
        Some(batch_list),
        Some(max_wait_us),
        Some(slo_us),
        Some(policy_list),
        Some(replicas),
        Some(duration_ms),
        Some(requests),
        Some(scale),
        Some(seed),
        Some(network_sel),
        Some(design_sel),
    ) = (
        parse_list_flag::<f64>(&args, "--rps", &[20_000.0]),
        parse_flag::<usize>(&args, "--clients", 4),
        parse_list_flag::<usize>(&args, "--max-batch", &[8]),
        parse_flag::<f64>(&args, "--max-wait-us", 50.0),
        parse_flag::<f64>(&args, "--slo-us", 0.0),
        parse_list_flag::<String>(&args, "--policy", &["fifo".to_string()]),
        parse_flag::<usize>(&args, "--replicas", 1),
        parse_flag::<f64>(&args, "--duration-ms", 0.0),
        parse_flag::<usize>(&args, "--requests", 400),
        parse_flag::<usize>(&args, "--scale", 8),
        parse_flag::<u64>(&args, "--seed", 42),
        parse_flag::<String>(&args, "--network", "dcgan".to_string()),
        parse_flag::<String>(&args, "--design", "red".to_string()),
    )
    else {
        return usage();
    };
    let closed = args.iter().any(|a| a == "--closed");
    if clients == 0 || replicas == 0 || requests == 0 || scale == 0 || batch_list.is_empty() {
        eprintln!("--clients, --replicas, --requests, --scale and --max-batch must be positive");
        return ExitCode::from(2);
    }
    if !closed && rps_list.iter().any(|&r| r <= 0.0) {
        eprintln!("--rps rates must be positive");
        return ExitCode::from(2);
    }
    let noisy = match args.iter().position(|a| a == "--noisy") {
        None => None,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(name) if !name.starts_with("--") => match XbarConfig::preset(name) {
                Some(cfg) => Some((name.to_string(), cfg)),
                None => {
                    eprintln!(
                        "unknown --noisy preset {name:?} \
                         (expected variation, adc, ir-drop, or full)"
                    );
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("--noisy requires a preset name argument");
                return ExitCode::from(2);
            }
        },
    };
    let json_path = match args.iter().position(|a| a == "--json") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Some(path.clone()),
            _ => {
                eprintln!("--json requires a path argument");
                return ExitCode::from(2);
            }
        },
    };
    let policies: Vec<_> = match policy_list
        .iter()
        .map(|name| policy_by_name(name).map(|p| (name.clone(), p)))
        .collect::<Option<Vec<_>>>()
    {
        Some(p) => p,
        None => {
            eprintln!("unknown --policy (expected fifo or deadline-shed)");
            return ExitCode::from(2);
        }
    };
    let (xbar_label, xbar_cfg) =
        noisy.unwrap_or_else(|| ("ideal".to_string(), XbarConfig::ideal()));

    let lineup = networks::serving_lineup(scale).expect("serving stacks build");
    let stacks: Vec<_> = match network_sel.as_str() {
        "all" => lineup,
        "dcgan" => vec![lineup.into_iter().next().expect("lineup has 3 stacks")],
        "sngan" => vec![lineup.into_iter().nth(1).expect("lineup has 3 stacks")],
        "fcn" => vec![lineup.into_iter().nth(2).expect("lineup has 3 stacks")],
        other => {
            eprintln!("unknown --network {other:?} (expected dcgan, sngan, fcn, or all)");
            return ExitCode::from(2);
        }
    };
    let designs: Vec<Design> = match design_sel.as_str() {
        "all" => Design::paper_lineup().to_vec(),
        "zero-padding" | "zp" => vec![Design::ZeroPadding],
        "padding-free" | "pf" => vec![Design::PaddingFree],
        "red" => vec![Design::red(RedLayoutPolicy::Auto)],
        other => {
            eprintln!(
                "unknown --design {other:?} \
                 (expected zero-padding, padding-free, red, or all)"
            );
            return ExitCode::from(2);
        }
    };

    let max_wait_ns = (max_wait_us * 1e3).round().max(0.0) as u64;
    let slo_ns = if slo_us > 0.0 {
        Some((slo_us * 1e3).round() as u64)
    } else {
        None
    };
    let horizon_ns = if duration_ms > 0.0 {
        Some((duration_ms * 1e6).round() as u64)
    } else {
        None
    };
    let mode_label = if closed { "closed" } else { "open" };

    println!("== red-server loadgen: online serving under load ==");
    println!(
        "{mode_label}-loop, {clients} clients, {replicas} replica(s), scale {scale}, \
         xbar {xbar_label}, max-wait {max_wait_us} us, slo {slo_us} us, seed {seed}"
    );

    let rates: Vec<f64> = if closed { vec![0.0] } else { rps_list };
    let mut rows: Vec<LoadRow> = Vec::new();
    for stack in &stacks {
        let inputs = networks::request_stream(stack, 8, 64, seed ^ 0xBEEF);
        for design in &designs {
            let chip = ChipBuilder::new()
                .design(*design)
                .xbar_config(xbar_cfg)
                .compile_seeded(stack, 5, 77)
                .expect("stack compiles onto the chip");
            let fleet = ChipFleet::new(chip, replicas).expect("replicas is positive");
            let peak_per_s = fleet.peak_throughput_per_s();
            for (policy_name, policy) in &policies {
                for &max_batch in &batch_list {
                    for &rps in &rates {
                        let server_cfg = ServerConfig::new()
                            .max_batch(max_batch)
                            .max_wait_ns(max_wait_ns)
                            .policy_arc(std::sync::Arc::clone(policy));
                        let load = LoadgenConfig {
                            mode: if closed {
                                LoadMode::Closed
                            } else {
                                LoadMode::Open { rps }
                            },
                            clients,
                            requests,
                            horizon_ns,
                            slo_ns,
                            seed,
                        };
                        let report = drive(&fleet, &server_cfg, &load, &inputs)
                            .expect("load generation runs");
                        assert!(
                            report.reconciles(),
                            "{} on {} ({xbar_label}): the scheduler's virtual charge \
                             diverged from the replicas' measured runtime reports",
                            stack.name,
                            design.label(),
                        );
                        assert_eq!(
                            report.failed,
                            0,
                            "{} on {}: no validated request may fail",
                            stack.name,
                            design.label(),
                        );
                        rows.push(LoadRow {
                            network: stack.name.to_string(),
                            design: design.label().to_string(),
                            xbar: xbar_label.clone(),
                            policy: policy_name.clone(),
                            mode: mode_label.to_string(),
                            rps,
                            max_batch,
                            offered: report.offered,
                            served: report.served,
                            shed: report.shed,
                            failed: report.failed,
                            batches: report.batches,
                            mean_batch: report.mean_batch(),
                            p50_us: report.total.p50() as f64 / 1e3,
                            p95_us: report.total.p95() as f64 / 1e3,
                            p99_us: report.total.p99() as f64 / 1e3,
                            p999_us: report.total.p999() as f64 / 1e3,
                            queue_p50_us: report.queue_wait.p50() as f64 / 1e3,
                            queue_p99_us: report.queue_wait.p99() as f64 / 1e3,
                            execute_p50_us: report.execute.p50() as f64 / 1e3,
                            served_per_s: report.served_per_s(),
                            offered_per_s: report.offered_per_s(),
                            peak_per_s,
                            utilization: if report.span_ns() == 0 {
                                0.0
                            } else {
                                report.modeled_busy_ns as f64
                                    / (replicas as f64 * report.span_ns() as f64)
                            },
                            reconciled: report.reconciles(),
                            host_ms: report.host_exec_ns as f64 / 1e6,
                            host_images_per_s: report.host_images_per_s(),
                        });
                    }
                }
            }
        }
    }

    let headers = [
        "network",
        "design",
        "xbar",
        "policy",
        "mode",
        "rps",
        "batch<=",
        "offered",
        "served",
        "shed",
        "avg B",
        "p50 (us)",
        "p99 (us)",
        "img/s",
        "util",
        "host (ms)",
    ];
    let cells: Vec<Vec<String>> = rows.iter().map(LoadRow::table_cells).collect();
    print!("{}", render_table(&headers, &cells));
    maybe_write_csv("loadgen", &headers, &cells);
    if let Some(path) = &json_path {
        match write_json(
            path,
            scale,
            seed,
            clients,
            replicas,
            max_wait_us,
            slo_us,
            duration_ms,
            requests,
            &rows,
        ) {
            Ok(()) => println!("(wrote {path})"),
            Err(e) => {
                eprintln!("json write failed for {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "\nAll figures are virtual (modeled hardware) time; every row's scheduler\n\
         charge reconciled with the replicas' measured runtime reports. Larger\n\
         micro-batches amortize the pipeline fill across outputs (img/s -> the\n\
         fleet's bottleneck rate), and deadline-shed converts overload into shed\n\
         count instead of tail latency."
    );
    ExitCode::SUCCESS
}
