//! `redsim` — command-line front end for the RED accelerator simulator.
//!
//! ```text
//! redsim list                               # the Table I benchmarks
//! redsim estimate GAN_Deconv3 --design red  # one design's bill
//! redsim estimate custom 8 512 256 5 2 2 1  # IH C M K stride pad [outpad]
//! redsim compare FCN_Deconv2                # all three designs
//! redsim compare GAN_Deconv1 --macros 512   # ... with physical tiling
//! redsim run GAN_Deconv3 --scale 64         # functional run + stats
//! redsim pipeline dcgan                     # pipelined network totals
//! ```

use red_bench::render_table;
use red_core::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  redsim list\n  redsim estimate <benchmark|custom IH C M K S P [OP]> [--design zp|pf|red] [--macros 512|128]\n  redsim compare <benchmark> [--macros 512|128]\n  redsim run <benchmark> [--scale N] [--design zp|pf|red]\n  redsim pipeline <dcgan|sngan|fcn>"
    );
    ExitCode::from(2)
}

fn parse_design(s: &str) -> Option<Design> {
    match s {
        "zp" | "zero-padding" => Some(Design::ZeroPadding),
        "pf" | "padding-free" => Some(Design::PaddingFree),
        "red" => Some(Design::red(RedLayoutPolicy::Auto)),
        _ => None,
    }
}

fn parse_macros(s: &str) -> Option<MacroSpec> {
    match s {
        "512" => Some(MacroSpec::m512()),
        "128" => Some(MacroSpec::m128()),
        _ => None,
    }
}

fn find_benchmark(name: &str) -> Option<Benchmark> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
}

/// Parses either a benchmark name or `custom IH C M K S P [OP]`,
/// returning the layer and how many positional args it consumed.
fn parse_layer(args: &[String]) -> Option<(LayerShape, usize)> {
    let first = args.first()?;
    if first == "custom" {
        let nums: Vec<usize> = args[1..]
            .iter()
            .take_while(|a| !a.starts_with("--"))
            .filter_map(|a| a.parse().ok())
            .collect();
        if nums.len() < 6 {
            return None;
        }
        let op = nums.get(6).copied().unwrap_or(0);
        let spec = DeconvSpec::with_output_padding(nums[3], nums[3], nums[4], nums[5], op).ok()?;
        let layer = LayerShape::with_spec(nums[0], nums[0], nums[1], nums[2], spec).ok()?;
        Some((layer, 1 + nums.len()))
    } else {
        find_benchmark(first).map(|b| (b.layer(), 1))
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn print_report(r: &CostReport) {
    println!(
        "design {} | cycles {} | latency {:.3} us | energy {:.3} uJ | area {:.4} mm2",
        r.design.label(),
        r.geometry.cycles,
        r.total_latency_ns() / 1e3,
        r.total_energy_pj() / 1e6,
        r.total_area_um2() / 1e6
    );
    let rows: Vec<Vec<String>> = Component::ALL
        .iter()
        .filter(|c| r.latency_ns(**c) > 0.0 || r.energy_pj(**c) > 0.0 || r.area_um2(**c) > 0.0)
        .map(|c| {
            vec![
                c.abbr().to_string(),
                if c.is_array() { "array" } else { "periphery" }.to_string(),
                format!("{:.2}", r.latency_ns(*c) / 1e3),
                format!("{:.3}", r.energy_pj(*c) / 1e6),
                format!("{:.4}", r.area_um2(*c) / 1e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["part", "group", "latency (us)", "energy (uJ)", "area (mm2)"],
            &rows
        )
    );
}

fn cmd_list() -> ExitCode {
    let rows: Vec<Vec<String>> = Benchmark::all()
        .iter()
        .map(|b| {
            let l = b.layer();
            vec![
                b.name().to_string(),
                b.network().to_string(),
                format!(
                    "{}x{}x{} -> {}x{}x{}",
                    l.input_h(),
                    l.input_w(),
                    l.channels(),
                    l.output_geometry().height,
                    l.output_geometry().width,
                    l.filters()
                ),
                format!(
                    "{}x{}/s{}",
                    l.spec().kernel_h(),
                    l.spec().kernel_w(),
                    l.spec().stride()
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["benchmark", "network", "shape", "kernel"], &rows)
    );
    ExitCode::SUCCESS
}

fn cmd_estimate(args: &[String]) -> ExitCode {
    let Some((layer, _)) = parse_layer(args) else {
        return usage();
    };
    let design = flag_value(args, "--design")
        .and_then(|s| parse_design(&s))
        .unwrap_or(Design::red(RedLayoutPolicy::Auto));
    let model = CostModel::paper_default();
    let report = match flag_value(args, "--macros").and_then(|s| parse_macros(&s)) {
        Some(mac) => model.evaluate_tiled(design, &layer, mac),
        None => model.evaluate(design, &layer),
    };
    match report {
        Ok(r) => {
            print_report(&r);
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let Some((layer, _)) = parse_layer(args) else {
        return usage();
    };
    let model = CostModel::paper_default();
    let mac = flag_value(args, "--macros").and_then(|s| parse_macros(&s));
    let reports: Vec<CostReport> = Design::paper_lineup()
        .iter()
        .map(|&d| match mac {
            Some(m) => model.evaluate_tiled(d, &layer, m).expect("evaluates"),
            None => model.evaluate(d, &layer).expect("evaluates"),
        })
        .collect();
    let zp = &reports[0];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.design.label().to_string(),
                format!("{:.2}x", r.speedup_vs(zp)),
                format!("{:.3}x", r.total_energy_pj() / zp.total_energy_pj()),
                format!("{:+.1}%", r.area_overhead_vs(zp) * 100.0),
                format!("{}", r.geometry.cycles),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["design", "speedup", "energy", "area", "cycles"], &rows)
    );
    ExitCode::SUCCESS
}

fn cmd_run(args: &[String]) -> ExitCode {
    let Some(bench) = args.first().and_then(|s| find_benchmark(s)) else {
        return usage();
    };
    let scale: usize = flag_value(args, "--scale")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let design = flag_value(args, "--design")
        .and_then(|s| parse_design(&s))
        .unwrap_or(Design::red(RedLayoutPolicy::Auto));
    let layer = bench.scaled_layer(scale);
    let kernel = synth::kernel(&layer, 127, 1);
    let input = synth::input_dense(&layer, 127, 2);
    let acc = Accelerator::builder().design(design).build();
    let compiled = match acc.compile(&layer, &kernel) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match compiled.run(&input) {
        Ok(exec) => {
            let golden = red_core::tensor::deconv::deconv_direct(&input, &kernel, layer.spec())
                .expect("golden deconvolution");
            println!(
                "{bench} (C/M scaled /{scale}) on {}: cycles={} vector-ops={} \
                 nonzero-activations={} zero-slots={:.1}% bit-exact={}",
                design.label(),
                exec.stats.cycles,
                exec.stats.vector_ops,
                exec.stats.nonzero_row_activations,
                exec.stats.zero_slot_fraction() * 100.0,
                exec.output == golden
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("run error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_pipeline(args: &[String]) -> ExitCode {
    use red_core::workloads::networks;
    let stack = match args.first().map(String::as_str) {
        Some("dcgan") => networks::dcgan_generator(1),
        Some("sngan") => networks::sngan_generator(1),
        Some("fcn") => networks::fcn8s_upsampling(16),
        _ => return usage(),
    };
    let stack = match stack {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = CostModel::paper_default();
    println!("{} — {} stages", stack.name, stack.layers.len());
    let zp =
        PipelineReport::evaluate(&model, Design::ZeroPadding, &stack.layers).expect("evaluates");
    let rows: Vec<Vec<String>> = Design::paper_lineup()
        .iter()
        .map(|&d| {
            let p = PipelineReport::evaluate(&model, d, &stack.layers).expect("evaluates");
            vec![
                d.label().to_string(),
                format!("{:.2}", p.fill_latency_ns() / 1e3),
                format!("{:.2}", p.steady_interval_ns() / 1e3),
                format!("{:.2}x", p.speedup_vs(&zp)),
                format!("{:.1}", p.energy_per_input_pj() / 1e6),
                format!("{:.3}", p.total_area_um2() / 1e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "design",
                "fill (us)",
                "interval (us)",
                "speedup",
                "uJ/input",
                "area (mm2)"
            ],
            &rows
        )
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => cmd_list(),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("pipeline") => cmd_pipeline(&args[1..]),
        _ => usage(),
    }
}
