//! Checks every §IV headline claim of the paper against this
//! reproduction's measurements and prints a verdict table.

use red_bench::{headline_checks, render_table};

fn main() {
    println!("HEADLINE CLAIMS (paper SIV) vs THIS REPRODUCTION\n");
    let rows: Vec<Vec<String>> = headline_checks()
        .into_iter()
        .map(|c| {
            vec![
                c.source.to_string(),
                c.paper,
                c.measured,
                if c.in_band {
                    "in band".into()
                } else {
                    "DEVIATES".into()
                },
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["source", "paper claim", "measured", "verdict"], &rows)
    );
    println!("\n(bands are the reproduction tolerances asserted by tests/paper_bands.rs)");
}
