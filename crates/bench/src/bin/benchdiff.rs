//! `benchdiff` — the CI bench-gate's comparator: diffs a freshly
//! regenerated bench JSON document against the committed baseline and
//! exits nonzero on **modeled-metric drift**.
//!
//! ```text
//! cargo run --release -p red-bench --bin benchdiff -- BENCH_loadgen.json fresh.json
//! ```
//!
//! The repo's bench baselines (`BENCH_loadgen.json`, `BENCH_serve.json`)
//! carry two kinds of numbers. **Modeled metrics** — virtual-clock
//! latencies, admission counts, batch statistics, modeled throughput —
//! are deterministic functions of the committed configuration, so a
//! regenerated document must match the baseline *exactly*; any
//! difference means the model changed and the baseline (or the change)
//! needs review. **Host metrics** — wall-clock milliseconds, host
//! images/s — measure the machine the bench ran on and differ on every
//! run, so they are reported informationally and never fail the gate.
//!
//! A field is a host metric iff its key starts with `host` (e.g.
//! `host_ms`, `host_images_per_s`); everything else is modeled. Two
//! schema-evolution allowances keep old baselines replayable by newer
//! generators: fields present only in the *fresh* document are ignored
//! (optional additions), and the `version` field may move forward.
//! Fields the baseline pins must still match exactly. Exit codes:
//! 0 = no modeled drift, 1 = drift (each divergence printed),
//! 2 = usage or parse error.

use red_bench::minijson::{parse, JsonValue};
use std::process::ExitCode;

/// `true` for keys whose values measure the host machine, not the
/// model.
fn is_host_key(key: &str) -> bool {
    key.starts_with("host")
}

/// `true` where a fresh-document value may legitimately differ from the
/// baseline: the schema `version` may only move forward (newer
/// generators replay older baselines), and fields present only in the
/// fresh document are *optional additions* from a newer schema — a
/// baseline regenerated with the committed config still matches on
/// every shared field, which is what the gate protects.
fn version_advanced(key: &str, base: &JsonValue, fresh: &JsonValue) -> bool {
    if key != "version" {
        return false;
    }
    match (base, fresh) {
        (JsonValue::Num(b), JsonValue::Num(f)) => f >= b,
        _ => false,
    }
}

/// Recursively compares `base` and `fresh`, appending a line per
/// modeled divergence and counting host-metric differences separately.
fn diff(
    path: &str,
    base: &JsonValue,
    fresh: &JsonValue,
    drift: &mut Vec<String>,
    host_diffs: &mut usize,
) {
    match (base, fresh) {
        (JsonValue::Obj(b), JsonValue::Obj(_)) => {
            for (key, bv) in b {
                let child = format!("{path}.{key}");
                match fresh.get(key) {
                    None => drift.push(format!("{child}: missing from fresh document")),
                    Some(fv) if is_host_key(key) => {
                        if bv != fv {
                            *host_diffs += 1;
                        }
                    }
                    Some(fv) if version_advanced(key, bv, fv) => {}
                    Some(fv) => diff(&child, bv, fv, drift, host_diffs),
                }
            }
            // Fresh-only keys are optional schema additions (a newer
            // generator replaying an older baseline), never drift: every
            // field the baseline pins was compared above.
        }
        (JsonValue::Arr(b), JsonValue::Arr(f)) => {
            if b.len() != f.len() {
                drift.push(format!(
                    "{path}: array length {} vs {} in fresh",
                    b.len(),
                    f.len()
                ));
            }
            for (i, (bv, fv)) in b.iter().zip(f).enumerate() {
                diff(&format!("{path}[{i}]"), bv, fv, drift, host_diffs);
            }
        }
        // Modeled numbers must match bit-for-bit: both documents were
        // printed by the same formatter from deterministic
        // virtual-clock arithmetic, so even the last decimal is
        // reproducible.
        _ => {
            if base != fresh {
                drift.push(format!(
                    "{path}: baseline {} vs fresh {}",
                    render(base),
                    render(fresh)
                ));
            }
        }
    }
}

/// A compact single-line rendering for diff messages.
fn render(v: &JsonValue) -> String {
    match v {
        JsonValue::Null => "null".to_string(),
        JsonValue::Bool(b) => b.to_string(),
        JsonValue::Num(n) => format!("{n}"),
        JsonValue::Str(s) => format!("{s:?}"),
        other => format!("<{}>", other.kind()),
    }
}

fn load(path: &str) -> Result<JsonValue, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [baseline_path, fresh_path] = args.as_slice() else {
        eprintln!("usage: benchdiff <baseline.json> <fresh.json>");
        return ExitCode::from(2);
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (b, f) => {
            for err in [b.err(), f.err()].into_iter().flatten() {
                eprintln!("benchdiff: {err}");
            }
            return ExitCode::from(2);
        }
    };
    let mut drift = Vec::new();
    let mut host_diffs = 0usize;
    diff("$", &baseline, &fresh, &mut drift, &mut host_diffs);
    println!(
        "benchdiff: {} vs {} — {} modeled divergence(s), {} host-metric difference(s) (informational)",
        baseline_path,
        fresh_path,
        drift.len(),
        host_diffs
    );
    if drift.is_empty() {
        println!("benchdiff: modeled metrics reproduce the baseline exactly");
        ExitCode::SUCCESS
    } else {
        for line in &drift {
            println!("  DRIFT {line}");
        }
        println!(
            "benchdiff: modeled metrics drifted — either the change is unintended, or the \
             baseline needs regenerating with the committed config"
        );
        ExitCode::FAILURE
    }
}
