//! Regenerates the paper's Fig. 8: (a) energy saving normalized to
//! zero-padding, (b) per-design energy breakdown into array (c + wd + bd)
//! and periphery (dec + mux + rc + sa) portions (Eq. 4).

use red_bench::{all_comparisons, maybe_write_csv, render_table};
use red_core::prelude::*;

fn main() {
    let comps = all_comparisons();

    println!("FIG. 8(a) — ENERGY (normalized to zero-padding; saving = 1 - value)\n");
    let rows: Vec<Vec<String>> = comps
        .iter()
        .map(|(b, c)| {
            let zp_e = c.zero_padding().total_energy_pj();
            vec![
                b.name().to_string(),
                "1.000x".to_string(),
                format!("{:.3}x", c.padding_free().total_energy_pj() / zp_e),
                format!("{:.3}x", c.red().total_energy_pj() / zp_e),
                format!("{:.1}%", c.red().energy_saving_vs(c.zero_padding()) * 100.0),
            ]
        })
        .collect();
    let headers = [
        "benchmark",
        "zero-padding",
        "padding-free",
        "RED",
        "RED saving",
    ];
    print!("{}", render_table(&headers, &rows));
    maybe_write_csv("fig8a_energy", &headers, &rows);

    println!("\nFIG. 8(b) — ENERGY BREAKDOWN (% of each design's own total)\n");
    let mut rows = Vec::new();
    for (b, c) in &comps {
        for r in c.reports() {
            let total = r.total_energy_pj();
            rows.push(vec![
                b.name().to_string(),
                r.design.label().to_string(),
                format!("{:.1}%", 100.0 * r.array_energy_pj() / total),
                format!("{:.1}%", 100.0 * r.periphery_energy_pj() / total),
                format!("{:.3e}", total),
            ]);
        }
    }
    print!(
        "{}",
        render_table(
            &["benchmark", "design", "array", "periphery", "total (pJ)"],
            &rows
        )
    );

    println!("\nper-component energy shares (GAN_Deconv1):");
    let (_, c) = &comps[0];
    for r in c.reports() {
        let total = r.total_energy_pj();
        let parts: Vec<String> = Component::ALL
            .iter()
            .filter_map(|&comp| {
                let v = r.energy_pj(comp);
                (v > 0.0).then(|| format!("{}={:.1}%", comp.abbr(), 100.0 * v / total))
            })
            .collect();
        println!("  {:13} {}", r.design.label(), parts.join("  "));
    }

    let pf_arr: Vec<f64> = comps
        .iter()
        .filter(|(b, _)| b.is_gan())
        .map(|(_, c)| c.padding_free().array_energy_pj() / c.zero_padding().array_energy_pj())
        .collect();
    println!(
        "\npadding-free array energy on GANs: {:.2}x - {:.2}x the zero-padding design's \
         (paper: 4.48x - 7.53x)",
        pf_arr.iter().copied().fold(f64::INFINITY, f64::min),
        pf_arr.iter().copied().fold(0.0, f64::max)
    );
}
