//! Ablations over RED's two techniques and the model's key assumptions:
//!
//! 1. **pixel-wise mapping without zero-skipping** — keep the sub-crossbar
//!    split but stream one output pixel per cycle, as the paper's §III-B
//!    motivates zero-skipping;
//! 2. **Eq. 2 halving** on each benchmark — area saved vs cycles paid;
//! 3. **driver-upsizing exponent** — how the padding-free array-energy
//!    penalty (Fig. 8's 4.48–7.53×) depends on the wordline driving law;
//! 4. **weight/input precision** — bit-slice count vs cost;
//! 5. **physical macro tiling** — the paper's logical-array model vs
//!    bounded 512×512 / 128×128 macros: do the orderings survive?
//! 6. **pipelined stacks** — whole-generator throughput per design.

use red_bench::render_table;
use red_core::prelude::*;

fn main() {
    let model = CostModel::paper_default();

    // ---- 1. zero-skipping ablation.
    println!("ABLATION 1 — pixel-wise mapping WITHOUT zero-skipping\n");
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let layer = b.layer();
        let zp = model.evaluate(Design::ZeroPadding, &layer).unwrap();
        let red = model
            .evaluate(Design::red(RedLayoutPolicy::Auto), &layer)
            .unwrap();
        // Mapping-only: same sub-crossbar geometry, but one output pixel
        // per cycle (no mode-parallel batching), zeros still streamed.
        let mut mapping_only = red.geometry;
        mapping_only.cycles = zp.geometry.cycles;
        mapping_only.total_row_slots = zp.geometry.total_row_slots;
        let mapping_only = model.price(mapping_only);
        rows.push(vec![
            b.name().to_string(),
            format!("{:.2}x", mapping_only.speedup_vs(&zp)),
            format!("{:.2}x", red.speedup_vs(&zp)),
            format!("{:.2}x", red.speedup_vs(&zp) / mapping_only.speedup_vs(&zp)),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["benchmark", "mapping only", "mapping + skip", "skip gain"],
            &rows
        )
    );
    println!("(zero-skipping supplies essentially the whole speedup — the mapping\n alone only restructures the array, as §III-B argues)\n");

    // ---- 2. Eq. 2 halving everywhere.
    println!("ABLATION 2 — full vs halved SCT (Eq. 2) on every benchmark\n");
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let layer = b.layer();
        let zp = model.evaluate(Design::ZeroPadding, &layer).unwrap();
        let full = model
            .evaluate(Design::red(RedLayoutPolicy::AlwaysFull), &layer)
            .unwrap();
        let halved = model
            .evaluate(Design::red(RedLayoutPolicy::AlwaysHalved), &layer)
            .unwrap();
        rows.push(vec![
            b.name().to_string(),
            format!(
                "{:.2}x / {:+.1}%",
                full.speedup_vs(&zp),
                full.area_overhead_vs(&zp) * 100.0
            ),
            format!(
                "{:.2}x / {:+.1}%",
                halved.speedup_vs(&zp),
                halved.area_overhead_vs(&zp) * 100.0
            ),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["benchmark", "full: speedup/area", "halved: speedup/area"],
            &rows
        )
    );
    println!("(the paper picks halved only for the 256-tap FCN kernel)\n");

    // ---- 3. Driver-upsizing exponent sweep.
    println!("ABLATION 3 — wordline driver energy law vs padding-free array penalty\n");
    let layer = Benchmark::GanDeconv1.layer();
    let mut rows = Vec::new();
    for exp in [0.0, 0.25, 0.55, 0.75, 1.0] {
        let params = CircuitParams {
            driver_upsize_exp: exp,
            ..CircuitParams::default()
        };
        let m = CostModel::new(TechnologyParams::node_65nm(), params, CellConfig::default());
        let zp = m.evaluate(Design::ZeroPadding, &layer).unwrap();
        let pf = m.evaluate(Design::PaddingFree, &layer).unwrap();
        rows.push(vec![
            format!("{exp:.2}"),
            format!("{:.2}x", pf.array_energy_pj() / zp.array_energy_pj()),
            format!("{:.2}x", pf.total_energy_pj() / zp.total_energy_pj()),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["upsize exp", "PF/ZP array energy", "PF/ZP total energy"],
            &rows
        )
    );
    println!("(exp=0 is the pure-capacitive bound; the calibrated 0.55 lands the\n paper's 4.48x-7.53x band; 1.0 is the literal quadratic-power reading)\n");

    // ---- 4. Precision sweep.
    println!("ABLATION 4 — weight precision vs RED cost (GAN_Deconv3)\n");
    let layer = Benchmark::GanDeconv3.layer();
    let mut rows = Vec::new();
    for bits in [4u32, 8, 16] {
        let params = CircuitParams {
            weight_bits: bits,
            input_bits: bits,
            ..CircuitParams::default()
        };
        let m = CostModel::new(TechnologyParams::node_65nm(), params, CellConfig::default());
        let r = m
            .evaluate(Design::red(RedLayoutPolicy::Auto), &layer)
            .unwrap();
        rows.push(vec![
            format!("{bits}"),
            format!("{}", m.cells_per_weight()),
            format!("{:.2}", r.total_latency_ns() / 1e3),
            format!("{:.2}", r.total_energy_pj() / 1e6),
            format!("{:.3}", r.total_area_um2() / 1e6),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "bits",
                "cells/weight",
                "latency (us)",
                "energy (uJ)",
                "area (mm2)"
            ],
            &rows
        )
    );

    // ---- 5. Physical tiling.
    println!("\nABLATION 5 — logical arrays vs bounded physical macros (GAN_Deconv3)\n");
    let layer = Benchmark::GanDeconv3.layer();
    let mut rows = Vec::new();
    for (name, mac) in [
        ("logical (paper mode)", None),
        ("512x512 macros", Some(MacroSpec::m512())),
        ("128x128 macros", Some(MacroSpec::m128())),
    ] {
        let eval = |d: Design| match mac {
            None => model.evaluate(d, &layer).unwrap(),
            Some(m) => model.evaluate_tiled(d, &layer, m).unwrap(),
        };
        let zp = eval(Design::ZeroPadding);
        let red = eval(Design::red(RedLayoutPolicy::Auto));
        rows.push(vec![
            name.to_string(),
            format!("{:.2}x", red.speedup_vs(&zp)),
            format!("{:.1}%", red.energy_saving_vs(&zp) * 100.0),
            format!("{:.3}", zp.total_area_um2() / 1e6),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["array model", "RED speedup", "RED saving", "ZP area (mm2)"],
            &rows
        )
    );
    println!("(absolute costs move under tiling; the paper's orderings do not)\n");

    // ---- 6. Pipelined stacks.
    println!("ABLATION 6 — pipelined DCGAN generator (4 stages)\n");
    let stack = red_core::workloads::networks::dcgan_generator(1).unwrap();
    let mut rows = Vec::new();
    let zp_pipe = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack.layers).unwrap();
    for design in Design::paper_lineup() {
        let p = PipelineReport::evaluate(&model, design, &stack.layers).unwrap();
        rows.push(vec![
            design.label().to_string(),
            format!("{:.2}", p.fill_latency_ns() / 1e3),
            format!("{:.2}", p.steady_interval_ns() / 1e3),
            format!("{}", p.bottleneck()),
            format!("{:.2}x", p.speedup_vs(&zp_pipe)),
            format!("{:.1}", p.energy_per_input_pj() / 1e6),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "design",
                "fill (us)",
                "interval (us)",
                "bottleneck",
                "speedup",
                "energy/input (uJ)"
            ],
            &rows
        )
    );
    println!("(PipeLayer/ReGAN-style inter-layer pipelining; RED compresses the\n bottleneck stage by ~stride^2, so throughput scales with the single-layer speedup)");

    // ---- 7. Buffer traffic.
    println!("\nABLATION 7 — feature-map buffer traffic (words moved per layer)\n");
    let mut rows = Vec::new();
    for b in Benchmark::all() {
        let layer = b.layer();
        let cells: Vec<String> = Design::paper_lineup()
            .iter()
            .map(|&d| {
                let t = model.traffic(d, &layer).unwrap();
                format!("{:.2e}", t.total_words() as f64)
            })
            .collect();
        let pf = model.traffic(Design::PaddingFree, &layer).unwrap();
        rows.push(vec![
            b.name().to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            format!("{:.2e}", pf.partial_traffic as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "zero-padding",
                "padding-free",
                "RED",
                "PF spill"
            ],
            &rows
        )
    );
    println!("(RED matches zero-padding's useful traffic with no partial-sum spill;\n padding-free trades input re-reads for overlap-add buffer traffic)");
}
