//! Regenerates the paper's Fig. 4: zero-redundancy ratio of the
//! zero-padding deconvolution vs stride, for the SNGAN-shaped 4×4 input
//! (kernel 4, padding 1) and the FCN-shaped 16×16 input (kernel 16,
//! padding 0).
//!
//! Paper anchors: 86.8 % at stride 2 and 99.8 % at stride 32 (SNGAN curve).

use red_bench::{maybe_write_csv, render_table};
use red_core::tensor::redundancy::sweep_strides;

fn main() {
    let strides = [1usize, 2, 4, 8, 16, 32];
    let sngan = sweep_strides(4, 4, 4, 1, &strides).expect("SNGAN sweep");
    let fcn = sweep_strides(16, 16, 16, 0, &strides).expect("FCN sweep");

    println!("FIG. 4 — ZERO REDUNDANCY RATIO vs STRIDE\n");
    let rows: Vec<Vec<String>> = strides
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                s.to_string(),
                format!("{:.1}%", sngan[i].map_zero_fraction * 100.0),
                format!("{:.1}%", sngan[i].mac_zero_fraction * 100.0),
                format!("{:.1}%", fcn[i].map_zero_fraction * 100.0),
                format!("{:.1}%", fcn[i].mac_zero_fraction * 100.0),
            ]
        })
        .collect();
    let headers = [
        "stride",
        "SNGAN 4x4 (map)",
        "SNGAN 4x4 (per-MAC)",
        "FCN 16x16 (map)",
        "FCN 16x16 (per-MAC)",
    ];
    print!("{}", render_table(&headers, &rows));
    maybe_write_csv("fig4", &headers, &rows);
    println!(
        "\npaper anchors: 86.8% @ stride 2 -> measured {:.1}%;  99.8% @ stride 32 -> measured {:.1}%",
        sngan[1].map_zero_fraction * 100.0,
        sngan[5].map_zero_fraction * 100.0
    );
    println!("(map = zero fraction of the padded input map, the paper's metric;");
    println!(" per-MAC = fraction of window-tap multiplies with a zero operand)");
}
