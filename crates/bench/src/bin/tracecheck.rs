//! `tracecheck` — structural validator for exported Chrome trace-event
//! / Perfetto JSON timelines (`loadgen --trace`, `serve --trace`).
//!
//! ```text
//! cargo run --release -p red-bench --bin tracecheck -- trace.json
//! ```
//!
//! Round-trips the file through the bench harness's own JSON parser and
//! then checks the trace-event contract the exporter promises:
//!
//! * top level is an object with `displayTimeUnit` and a `traceEvents`
//!   array;
//! * every event is an object with a string `name` and a known phase
//!   `ph` (`M`, `X`, `b`, `n`, `e`, `i`, `C`), a numeric `pid`, and —
//!   for non-metadata events — a numeric non-negative `ts`;
//! * `X` complete spans carry a non-negative `dur`;
//! * `C` counter samples carry an `args` object with at least one
//!   member, every member numeric and finite (the chart's series
//!   values), and timestamps monotone non-decreasing per
//!   `(pid, name)` counter track;
//! * async `b`/`e` events pair up exactly (per `(pid, cat, id)` key —
//!   the format pairs async events by category + id, so the `admit` /
//!   `shed` instants land inside their request's `req` span — balanced
//!   and never closing an unopened span). When the document declares
//!   flight-recorder truncation (`otherData.overflowEvents > 0`, written
//!   by the exporter when its bounded rings evicted events), orphaned
//!   ends/instants whose begins fell off the window are tolerated and
//!   counted; in a complete trace they are defects;
//! * timestamps are monotone non-decreasing in document order, which is
//!   what the exporter's deterministic merge-sort guarantees.
//!
//! Exits 0 and prints a one-line summary on success; prints the defect
//! and exits 1 on any violation. The CI bench-gate runs this over the
//! trace captured during the loadgen replay, so a malformed or
//! non-deterministically ordered export fails the gate rather than
//! silently producing a timeline Perfetto cannot load.

use red_bench::minijson::{parse, JsonValue};
use std::collections::HashMap;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("tracecheck: {msg}");
    ExitCode::FAILURE
}

/// Async event ids may be numbers or strings (the exporter writes
/// `"0x..."` hex strings, the format's idiomatic spelling).
fn event_id(ev: &JsonValue) -> Option<String> {
    match ev.get("id")? {
        JsonValue::Num(n) => Some(format!("{n}")),
        JsonValue::Str(s) => Some(s.clone()),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("usage: tracecheck <trace.json>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
    };
    if doc.get("displayTimeUnit").and_then(JsonValue::as_str) != Some("ns") {
        return fail("displayTimeUnit missing or not \"ns\"");
    }
    let Some(events) = doc.get("traceEvents").and_then(JsonValue::as_arr) else {
        return fail("traceEvents missing or not an array");
    };
    let overflow = doc
        .get("otherData")
        .and_then(|d| d.get("overflowEvents"))
        .and_then(JsonValue::as_num)
        .unwrap_or(0.0);
    let truncated = overflow > 0.0;

    // Open async spans per (pid, cat, id); counts survive nesting.
    let mut open_async: HashMap<(u64, String, String), u64> = HashMap::new();
    // Last timestamp per (pid, name) counter track.
    let mut counter_ts: HashMap<(u64, String), f64> = HashMap::new();
    let mut orphans = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    let mut metadata = 0usize;
    let mut spans = 0usize;
    let mut instants = 0usize;
    let mut async_events = 0usize;
    let mut counters = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ctx = |msg: String| format!("event {i}: {msg}");
        let Some(name) = ev.get("name").and_then(JsonValue::as_str) else {
            return fail(&ctx("missing string name".to_string()));
        };
        let Some(ph) = ev.get("ph").and_then(JsonValue::as_str) else {
            return fail(&ctx(format!("{name:?}: missing string ph")));
        };
        let Some(pid) = ev.get("pid").and_then(JsonValue::as_num) else {
            return fail(&ctx(format!("{name:?}: missing numeric pid")));
        };
        if ph == "M" {
            metadata += 1;
            continue;
        }
        let Some(ts) = ev.get("ts").and_then(JsonValue::as_num) else {
            return fail(&ctx(format!("{name:?}: missing numeric ts")));
        };
        if ts.is_nan() || ts < 0.0 {
            return fail(&ctx(format!("{name:?}: negative or NaN ts {ts}")));
        }
        if ts < last_ts {
            return fail(&ctx(format!(
                "{name:?}: ts {ts} regresses below {last_ts} — the export \
                 is not the deterministic merge-sort order"
            )));
        }
        last_ts = ts;
        match ph {
            "X" => {
                spans += 1;
                match ev.get("dur").and_then(JsonValue::as_num) {
                    Some(dur) if dur >= 0.0 => {}
                    _ => return fail(&ctx(format!("{name:?}: X span without non-negative dur"))),
                }
            }
            "i" => instants += 1,
            "C" => {
                counters += 1;
                let Some(JsonValue::Obj(members)) = ev.get("args") else {
                    return fail(&ctx(format!("{name:?}: C counter without an args object")));
                };
                if members.is_empty() {
                    return fail(&ctx(format!("{name:?}: C counter with no series values")));
                }
                for (key, value) in members {
                    match value.as_num() {
                        Some(v) if v.is_finite() => {}
                        _ => {
                            return fail(&ctx(format!(
                                "{name:?}: C counter series {key:?} is not a \
                                 finite number"
                            )))
                        }
                    }
                }
                let track = (pid as u64, name.to_string());
                if let Some(&prev) = counter_ts.get(&track) {
                    if ts < prev {
                        return fail(&ctx(format!(
                            "{name:?}: C counter ts {ts} regresses below {prev} \
                             on its (pid, name) track"
                        )));
                    }
                }
                counter_ts.insert(track, ts);
            }
            "b" | "n" | "e" => {
                async_events += 1;
                let Some(id) = event_id(ev) else {
                    return fail(&ctx(format!("{name:?}: async event without id")));
                };
                let cat = ev.get("cat").and_then(JsonValue::as_str).unwrap_or("");
                let key = (pid as u64, cat.to_string(), id.clone());
                match ph {
                    "b" => *open_async.entry(key).or_insert(0) += 1,
                    "e" => match open_async.get_mut(&key) {
                        Some(n) if *n > 0 => *n -= 1,
                        _ if truncated => orphans += 1,
                        _ => {
                            return fail(&ctx(format!(
                                "{name:?}: async end (id {id}) without a \
                                 matching begin"
                            )))
                        }
                    },
                    _ => {
                        // Instants inside an async span need an open begin.
                        if open_async.get(&key).copied().unwrap_or(0) == 0 {
                            if truncated {
                                orphans += 1;
                            } else {
                                return fail(&ctx(format!(
                                    "{name:?}: async instant (id {id}) outside \
                                     any open span"
                                )));
                            }
                        }
                    }
                }
            }
            other => return fail(&ctx(format!("{name:?}: unknown phase {other:?}"))),
        }
    }
    let unclosed: u64 = open_async.values().sum();
    if unclosed > 0 {
        return fail(&format!("{unclosed} async span(s) never ended"));
    }
    let trunc_note = if truncated {
        format!(
            "; flight-recorder truncated ({overflow} evicted, {orphans} \
             orphaned in-window)"
        )
    } else {
        String::new()
    };
    println!(
        "tracecheck: {path} OK — {} events ({metadata} metadata, {spans} spans, \
         {instants} instants, {async_events} async, {counters} counters{trunc_note})",
        events.len()
    );
    ExitCode::SUCCESS
}
