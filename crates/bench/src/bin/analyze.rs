//! `analyze` — post-hoc root-cause analyzer for a captured serving
//! session: ingests the Chrome trace written by `loadgen --trace` (and
//! optionally the `--json` document of the same run) and prints the
//! session's operational timeline with every burn-rate alert firing
//! attributed to the nearest preceding fault / autoscale / brownout /
//! quarantine event, per-phase (pre-fault / degraded / recovered)
//! latency and throughput breakdowns, and per-tenant queue-vs-execute
//! attribution.
//!
//! ```text
//! cargo run --release -p red-bench --bin loadgen -- \
//!     --mix --model-only --stream --requests 100000 --scrape-us 2000 \
//!     --fault-plan crash:800:0:1 --trace trace.json --json out.json
//! cargo run --release -p red-bench --bin analyze -- trace.json out.json
//! ```
//!
//! With the loadgen JSON the analyzer additionally re-checks the
//! scraped time-series conservation ledger (for every counter series,
//! retained window deltas plus the eviction ledger must reproduce the
//! end-of-run registry total exactly) and echoes the alert episodes the
//! server reported. Exits 0 on success, 1 on any defect — the CI
//! bench-gate runs it over the chaos-smoke capture, so a scrape
//! pipeline that drops a window or an alert that stops attributing to
//! its planned fault fails the gate.

use red_bench::analyze::{analyze_trace, check_loadgen, render};
use red_bench::minijson::parse;
use std::process::ExitCode;

fn fail(msg: &str) -> ExitCode {
    eprintln!("analyze: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, json_path) = match args.as_slice() {
        [trace] => (trace, None),
        [trace, json] => (trace, Some(json)),
        _ => {
            eprintln!("usage: analyze <trace.json> [<loadgen.json>]");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(trace_path) {
        Ok(text) => text,
        Err(e) => return fail(&format!("cannot read {trace_path}: {e}")),
    };
    let doc = match parse(&text) {
        Ok(doc) => doc,
        Err(e) => return fail(&format!("{trace_path} is not valid JSON: {e}")),
    };
    let analysis = match analyze_trace(&doc) {
        Ok(a) => a,
        Err(e) => return fail(&format!("{trace_path}: {e}")),
    };
    print!("{}", render(&analysis));
    if let Some(path) = json_path {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        let doc = match parse(&text) {
            Ok(doc) => doc,
            Err(e) => return fail(&format!("{path} is not valid JSON: {e}")),
        };
        match check_loadgen(&doc) {
            Ok(summary) => {
                println!("\n-- loadgen json --");
                print!("{summary}");
            }
            Err(e) => return fail(&format!("{path}: {e}")),
        }
    }
    ExitCode::SUCCESS
}
