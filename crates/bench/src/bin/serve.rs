//! `serve` — batched, pipelined end-to-end inference through the
//! `red-runtime` chip: compiles the DCGAN / SNGAN / FCN-8s stacks onto
//! per-layer tile groups for all three designs and pushes a configurable
//! batch through each, printing the serving throughput table.
//!
//! ```text
//! cargo run --release -p red-bench --bin serve -- --batch 4 --scale 8
//! cargo run --release -p red-bench --bin serve -- --batch 16 --scale 8 --verify
//! cargo run --release -p red-bench --bin serve -- --batch 4 --scale 8 --csv results
//! cargo run --release -p red-bench --bin serve -- --batch 8 --scale 8 \
//!     --noisy full --json BENCH_serve.json
//! ```
//!
//! `--scale N` divides every stack's channels by `N` (1 = full size; the
//! functional simulation of full-size stacks is slow — the analytic
//! figures come from the `PipelineReport` machinery either way).
//! `--verify` additionally runs the sequential golden path and asserts
//! the pipelined **and** stage-major batched outputs are bit-exact
//! against it.
//! `--workers N` pins the per-stage host worker pool (default: derived
//! from the machine's available parallelism).
//! `--noisy <preset>` adds a second pass over the lineup with the named
//! non-ideal crossbar configuration (`variation`, `adc`, `ir-drop`,
//! `full` — see `XbarConfig::preset`), so the table and the JSON cover
//! the analog simulation path next to the exact one. Noisy serving runs
//! the full Fig. 1(a) pipeline — bit-serial phases over the
//! programming-time effective-current plane — per VMM.
//! `--json <path>` additionally emits the table machine-readably — the
//! file committed as `BENCH_serve.json` is the perf-trajectory baseline,
//! regenerated with the command shown in README's Performance section.
//! `--trace <path>` records every chip run's per-stage virtual-clock
//! schedule as a Chrome trace-event / Perfetto timeline (one trace
//! process per table row; open at `ui.perfetto.dev`).
//!
//! Every run asserts that the measured schedule — each stage's actually
//! issued cycles, priced at its cost-model cycle time — reconciles with
//! the analytical pipeline prediction (fill = stage sum, steady-state
//! interval = bottleneck stage), so a run that drops, duplicates or
//! misroutes images, or an engine whose dataflow diverges from its priced
//! geometry, fails the CI smoke instead of printing wrong numbers.

use red_bench::{json_escape, maybe_write_csv, parse_flag, render_table};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use red_telemetry::{peak_rss_kb, Telemetry};
use std::process::ExitCode;

/// One serving measurement, kept numeric for the JSON emitter.
struct ServeRow {
    network: String,
    design: String,
    xbar: String,
    exec_mode: String,
    workers_per_stage: usize,
    stages: usize,
    macros: usize,
    area_mm2: f64,
    fill_us: f64,
    interval_us: f64,
    images_per_s: f64,
    speedup_vs_zero_padding: f64,
    energy_per_image_uj: f64,
    host_ms: f64,
    host_images_per_s: f64,
}

impl ServeRow {
    fn table_cells(&self) -> Vec<String> {
        vec![
            self.network.clone(),
            self.design.clone(),
            self.xbar.clone(),
            self.stages.to_string(),
            self.macros.to_string(),
            format!("{:.3}", self.area_mm2),
            format!("{:.2}", self.fill_us),
            format!("{:.2}", self.interval_us),
            format!("{:.0}", self.images_per_s),
            format!("{:.2}x", self.speedup_vs_zero_padding),
            format!("{:.3}", self.energy_per_image_uj),
            format!("{:.1}", self.host_ms),
        ]
    }

    fn json_object(&self) -> String {
        format!(
            "{{\"network\":\"{}\",\"design\":\"{}\",\"xbar\":\"{}\",\"exec_mode\":\"{}\",\
             \"workers_per_stage\":{},\
             \"stages\":{},\"macros\":{},\
             \"area_mm2\":{:.6},\"fill_us\":{:.6},\"interval_us\":{:.6},\
             \"images_per_s\":{:.3},\"speedup_vs_zero_padding\":{:.4},\
             \"energy_per_image_uj\":{:.6},\"host_ms\":{:.3},\"host_images_per_s\":{:.2}}}",
            json_escape(&self.network),
            json_escape(&self.design),
            json_escape(&self.xbar),
            json_escape(&self.exec_mode),
            self.workers_per_stage,
            self.stages,
            self.macros,
            self.area_mm2,
            self.fill_us,
            self.interval_us,
            self.images_per_s,
            self.speedup_vs_zero_padding,
            self.energy_per_image_uj,
            self.host_ms,
            self.host_images_per_s,
        )
    }
}

/// Schema version of the `--json` document: 2 added the explicit
/// `version` key plus per-row `exec_mode` (noisy rows previously shared
/// the row schema by convention only).
const JSON_SCHEMA_VERSION: u32 = 2;

fn write_json(path: &str, batch: usize, scale: usize, rows: &[ServeRow]) -> std::io::Result<()> {
    let objects: Vec<String> = rows.iter().map(ServeRow::json_object).collect();
    let doc = format!(
        "{{\n  \"bench\": \"serve\",\n  \"version\": {JSON_SCHEMA_VERSION},\n  \
         \"batch\": {batch},\n  \"scale\": {scale},\n  \
         \"rows\": [\n    {}\n  ]\n}}\n",
        objects.join(",\n    ")
    );
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, doc)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(batch), Some(scale), Some(workers)) = (
        parse_flag::<usize>(&args, "--batch", 8),
        parse_flag::<usize>(&args, "--scale", 8),
        parse_flag::<usize>(&args, "--workers", 0),
    ) else {
        eprintln!(
            "usage: serve [--batch N] [--scale N] [--workers N] [--verify] \
             [--noisy variation|adc|ir-drop|full] [--csv <dir>] [--json <path>] \
             [--trace <path>]"
        );
        return ExitCode::from(2);
    };
    if batch == 0 || scale == 0 {
        eprintln!("--batch and --scale must be positive");
        return ExitCode::from(2);
    }
    let verify = args.iter().any(|a| a == "--verify");
    let noisy = match args.iter().position(|a| a == "--noisy") {
        None => None,
        Some(i) => match args.get(i + 1).map(String::as_str) {
            Some(name) if !name.starts_with("--") => match XbarConfig::preset(name) {
                Some(cfg) => Some((name.to_string(), cfg)),
                None => {
                    eprintln!(
                        "unknown --noisy preset {name:?} \
                         (expected variation, adc, ir-drop, or full)"
                    );
                    return ExitCode::from(2);
                }
            },
            _ => {
                eprintln!("--noisy requires a preset name argument");
                return ExitCode::from(2);
            }
        },
    };
    let json_path = match args.iter().position(|a| a == "--json") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Some(path.clone()),
            _ => {
                eprintln!("--json requires a path argument");
                return ExitCode::from(2);
            }
        },
    };
    let trace_path = match args.iter().position(|a| a == "--trace") {
        None => None,
        Some(i) => match args.get(i + 1) {
            Some(path) if !path.starts_with("--") => Some(path.clone()),
            _ => {
                eprintln!("--trace requires a path argument");
                return ExitCode::from(2);
            }
        },
    };
    let telemetry = if trace_path.is_some() {
        Telemetry::enabled()
    } else {
        Telemetry::disabled()
    };

    println!("== red-runtime serve: batched pipelined inference ==");
    println!(
        "batch {batch}, channel scale {scale}, double-buffered stages{}{}",
        match &noisy {
            Some((name, _)) => format!(", noisy pass: {name} preset"),
            None => String::new(),
        },
        if verify {
            ", verifying against sequential golden path"
        } else {
            ""
        }
    );

    let mut passes = vec![("ideal".to_string(), XbarConfig::ideal())];
    if let Some((name, cfg)) = noisy {
        passes.push((name, cfg));
    }

    let stacks = networks::serving_lineup(scale).expect("serving stacks build");
    let headers = [
        "network",
        "design",
        "xbar",
        "stages",
        "macros",
        "area (mm2)",
        "fill (us)",
        "interval (us)",
        "img/s",
        "speedup",
        "energy/img (uJ)",
        "host (ms)",
    ];
    let mut rows: Vec<ServeRow> = Vec::new();
    for (xbar_label, xbar_cfg) in &passes {
        for stack in &stacks {
            let inputs: Vec<_> = (0..batch)
                .map(|i| synth::input_dense(&stack.layers[0], 64, 9000 + i as u64))
                .collect();
            let mut zp_interval = 0.0;
            for design in Design::paper_lineup() {
                let mut builder = ChipBuilder::new().design(design).xbar_config(*xbar_cfg);
                if workers > 0 {
                    builder = builder.workers(workers);
                }
                let mut chip = builder
                    .compile_seeded(stack, 5, 77)
                    .expect("stack compiles onto the chip");
                if telemetry.is_enabled() {
                    // One trace "process" per table row: the pid encodes
                    // (pass, network, design) so every chip's stage
                    // timeline lands on its own Perfetto track group.
                    let pid = 100 + rows.len() as u32;
                    chip.set_telemetry(telemetry.clone(), pid);
                    telemetry.name_process(
                        pid,
                        &format!("{} / {} ({xbar_label})", stack.name, design.label()),
                    );
                }
                let run = chip
                    .run_pipelined(&inputs)
                    .expect("batch streams through the pipeline");
                let report = &run.report;
                let analytic = chip.pipeline_report();
                assert!(
                    report.reconciles_with(&analytic),
                    "{} on {} ({xbar_label}): measured schedule (fill {:.3} us, \
                     interval {:.3} us) diverged from the analytic prediction \
                     (fill {:.3} us, bottleneck {:.3} us)",
                    stack.name,
                    design.label(),
                    report.fill_latency_ns / 1e3,
                    report.steady_interval_ns / 1e3,
                    analytic.fill_latency_ns() / 1e3,
                    analytic.steady_interval_ns() / 1e3,
                );
                if verify {
                    let golden = chip
                        .run_sequential(&inputs)
                        .expect("sequential golden path runs");
                    assert_eq!(
                        golden.outputs,
                        run.outputs,
                        "{} on {} ({xbar_label}): pipelined outputs must be bit-exact \
                         vs sequential",
                        stack.name,
                        design.label()
                    );
                    // The stage-major batched executor — the path that
                    // engages the batched (phase-major analog / blocked
                    // exact) VMMs — must compute the same function.
                    let batched = chip
                        .run_batched(&inputs)
                        .expect("stage-major batched path runs");
                    assert_eq!(
                        golden.outputs,
                        batched.outputs,
                        "{} on {} ({xbar_label}): batched outputs must be bit-exact \
                         vs sequential",
                        stack.name,
                        design.label()
                    );
                }
                if design == Design::ZeroPadding {
                    zp_interval = report.steady_interval_ns;
                }
                let plan = chip.floorplan();
                rows.push(ServeRow {
                    network: stack.name.to_string(),
                    design: design.label().to_string(),
                    xbar: xbar_label.clone(),
                    exec_mode: "pipelined".to_string(),
                    workers_per_stage: chip.workers_per_stage(),
                    stages: chip.depth(),
                    macros: plan.total_macros(),
                    area_mm2: plan.total_area_um2() / 1e6,
                    fill_us: report.fill_latency_ns / 1e3,
                    interval_us: report.steady_interval_ns / 1e3,
                    images_per_s: report.throughput_per_s(),
                    speedup_vs_zero_padding: zp_interval / report.steady_interval_ns,
                    energy_per_image_uj: report.energy_per_image_pj / 1e6,
                    host_ms: report.wall_ns as f64 / 1e6,
                    host_images_per_s: report.host_images_per_s(),
                });
            }
        }
    }
    let cells: Vec<Vec<String>> = rows.iter().map(ServeRow::table_cells).collect();
    print!("{}", render_table(&headers, &cells));
    maybe_write_csv("serve", &headers, &cells);
    if let Some(path) = &json_path {
        match write_json(path, batch, scale, &rows) {
            Ok(()) => println!("(wrote {path})"),
            Err(e) => {
                eprintln!("json write failed for {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &trace_path {
        match std::fs::write(path, telemetry.export_chrome_trace()) {
            Ok(()) => println!("(wrote {path})"),
            Err(e) => {
                eprintln!("trace write failed for {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "\nIntervals are the measured steady-state output spacing; each row is\n\
         asserted to match the analytic bottleneck stage. RED compresses every\n\
         stage by ~stride^2, so it compresses the pipeline bottleneck — and the\n\
         served images/sec — by the same factor{}",
        if verify {
            "; all pipelined and batched\noutputs verified bit-exact against sequential execution."
        } else {
            "."
        }
    );
    if let Some(kb) = peak_rss_kb() {
        println!("(peak RSS {kb} kB)");
    }
    ExitCode::SUCCESS
}
