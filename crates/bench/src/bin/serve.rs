//! `serve` — batched, pipelined end-to-end inference through the
//! `red-runtime` chip: compiles the DCGAN / SNGAN / FCN-8s stacks onto
//! per-layer tile groups for all three designs and pushes a configurable
//! batch through each, printing the serving throughput table.
//!
//! ```text
//! cargo run --release -p red-bench --bin serve -- --batch 4 --scale 8
//! cargo run --release -p red-bench --bin serve -- --batch 16 --scale 8 --verify
//! cargo run --release -p red-bench --bin serve -- --batch 4 --scale 8 --csv results
//! ```
//!
//! `--scale N` divides every stack's channels by `N` (1 = full size; the
//! functional simulation of full-size stacks is slow — the analytic
//! figures come from the `PipelineReport` machinery either way).
//! `--verify` additionally runs the sequential golden path and asserts
//! the pipelined outputs are bit-exact against it.
//!
//! Every run asserts that the measured schedule — each stage's actually
//! issued cycles, priced at its cost-model cycle time — reconciles with
//! the analytical pipeline prediction (fill = stage sum, steady-state
//! interval = bottleneck stage), so a run that drops, duplicates or
//! misroutes images, or an engine whose dataflow diverges from its priced
//! geometry, fails the CI smoke instead of printing wrong numbers.

use red_bench::{maybe_write_csv, render_table};
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use std::process::ExitCode;

/// Parses `--flag N`: the default when absent, `None` (a usage error)
/// when the flag is present without a parsable value.
fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Option<T> {
    match args.iter().position(|a| a == flag) {
        None => Some(default),
        Some(i) => args.get(i + 1)?.parse().ok(),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(batch), Some(scale)) = (
        parse_flag::<usize>(&args, "--batch", 8),
        parse_flag::<usize>(&args, "--scale", 8),
    ) else {
        eprintln!("usage: serve [--batch N] [--scale N] [--verify] [--csv <dir>]");
        return ExitCode::from(2);
    };
    if batch == 0 || scale == 0 {
        eprintln!("--batch and --scale must be positive");
        return ExitCode::from(2);
    }
    let verify = args.iter().any(|a| a == "--verify");

    println!("== red-runtime serve: batched pipelined inference ==");
    println!(
        "batch {batch}, channel scale {scale}, double-buffered stages{}",
        if verify {
            ", verifying against sequential golden path"
        } else {
            ""
        }
    );

    let stacks = networks::serving_lineup(scale).expect("serving stacks build");
    let headers = [
        "network",
        "design",
        "stages",
        "macros",
        "area (mm2)",
        "fill (us)",
        "interval (us)",
        "img/s",
        "speedup",
        "energy/img (uJ)",
        "host (ms)",
    ];
    let mut rows = Vec::new();
    for stack in &stacks {
        let inputs: Vec<_> = (0..batch)
            .map(|i| synth::input_dense(&stack.layers[0], 64, 9000 + i as u64))
            .collect();
        let mut zp_interval = 0.0;
        for design in Design::paper_lineup() {
            let chip = ChipBuilder::new()
                .design(design)
                .compile_seeded(stack, 5, 77)
                .expect("stack compiles onto the chip");
            let run = chip
                .run_pipelined(&inputs)
                .expect("batch streams through the pipeline");
            let report = &run.report;
            let analytic = chip.pipeline_report();
            assert!(
                report.reconciles_with(&analytic),
                "{} on {}: measured schedule (fill {:.3} us, interval {:.3} us) \
                 diverged from the analytic prediction (fill {:.3} us, bottleneck {:.3} us)",
                stack.name,
                design.label(),
                report.fill_latency_ns / 1e3,
                report.steady_interval_ns / 1e3,
                analytic.fill_latency_ns() / 1e3,
                analytic.steady_interval_ns() / 1e3,
            );
            if verify {
                let golden = chip
                    .run_sequential(&inputs)
                    .expect("sequential golden path runs");
                assert_eq!(
                    golden.outputs,
                    run.outputs,
                    "{} on {}: pipelined outputs must be bit-exact vs sequential",
                    stack.name,
                    design.label()
                );
            }
            if design == Design::ZeroPadding {
                zp_interval = report.steady_interval_ns;
            }
            let plan = chip.floorplan();
            rows.push(vec![
                stack.name.to_string(),
                design.label().to_string(),
                chip.depth().to_string(),
                plan.total_macros().to_string(),
                format!("{:.3}", plan.total_area_um2() / 1e6),
                format!("{:.2}", report.fill_latency_ns / 1e3),
                format!("{:.2}", report.steady_interval_ns / 1e3),
                format!("{:.0}", report.throughput_per_s()),
                format!("{:.2}x", zp_interval / report.steady_interval_ns),
                format!("{:.3}", report.energy_per_image_pj / 1e6),
                format!("{:.1}", report.wall_ns as f64 / 1e6),
            ]);
        }
    }
    print!("{}", render_table(&headers, &rows));
    maybe_write_csv("serve", &headers, &rows);
    println!(
        "\nIntervals are the measured steady-state output spacing; each row is\n\
         asserted to match the analytic bottleneck stage. RED compresses every\n\
         stage by ~stride^2, so it compresses the pipeline bottleneck — and the\n\
         served images/sec — by the same factor{}",
        if verify {
            "; all pipelined outputs verified\nbit-exact against sequential execution."
        } else {
            "."
        }
    );
    ExitCode::SUCCESS
}
