//! Regenerates `EXPERIMENTS.md`: the paper-vs-measured record for every
//! table and figure in the paper's evaluation.
//!
//! ```sh
//! cargo run -p red-bench --bin experiments   # writes ./EXPERIMENTS.md
//! ```

use red_bench::{all_comparisons, headline_checks, render_table};
use red_core::tensor::redundancy::sweep_strides;
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut md = String::new();
    let comps = all_comparisons();

    writeln!(md, "# EXPERIMENTS — paper vs measured\n")?;
    writeln!(
        md,
        "Reproduction of every table and figure in *RED: A ReRAM-based Deconvolution\n\
         Accelerator* (DATE 2019) with this repository's simulator stack. All values\n\
         regenerate with `cargo run -p red-bench --bin experiments` (per-figure\n\
         binaries: `table1`, `fig4`, `fig7`, `fig8`, `fig9`, `headline`, `ablation`).\n\
         The substrate is our NeuroSim-style analytical model (see DESIGN.md §3-§4),\n\
         so the reproduction target is the *shape* of each result — orderings and\n\
         approximate ratios — not absolute ns/pJ/µm².\n"
    )?;

    // ---- headline summary.
    writeln!(md, "## Headline claims (§IV)\n")?;
    let rows: Vec<Vec<String>> = headline_checks()
        .into_iter()
        .map(|c| {
            vec![
                c.source.to_string(),
                c.paper,
                c.measured,
                if c.in_band {
                    "in band".into()
                } else {
                    "deviates (documented)".into()
                },
            ]
        })
        .collect();
    writeln!(
        md,
        "{}",
        render_table(&["source", "paper", "measured", "verdict"], &rows)
    )?;

    // ---- Table I.
    writeln!(md, "## Table I — benchmarks\n")?;
    writeln!(
        md,
        "Reproduced exactly (six layers; geometry pinned by `red-workloads` tests).\n\
         The 5×5/stride-2 layers require `padding=2, output_padding=1` (PyTorch\n\
         convention) to reach the published output sizes; 4×4 layers use padding 1;\n\
         FCN layers use padding 0.\n"
    )?;

    // ---- Fig. 4.
    writeln!(md, "## Fig. 4 — zero redundancy vs stride\n")?;
    let strides = [1usize, 2, 4, 8, 16, 32];
    let sngan = sweep_strides(4, 4, 4, 1, &strides)?;
    let fcn = sweep_strides(16, 16, 16, 0, &strides)?;
    let rows: Vec<Vec<String>> = strides
        .iter()
        .enumerate()
        .map(|(i, s)| {
            vec![
                s.to_string(),
                format!("{:.1}%", sngan[i].map_zero_fraction * 100.0),
                format!("{:.1}%", fcn[i].map_zero_fraction * 100.0),
            ]
        })
        .collect();
    writeln!(
        md,
        "{}",
        render_table(&["stride", "SNGAN 4x4", "FCN 16x16"], &rows)
    )?;
    writeln!(
        md,
        "Paper anchors hit exactly: **86.8 %** at stride 2 (measured {:.1} %) and\n\
         **99.8 %** at stride 32 (measured {:.2} %), with the metric identified as\n\
         the zero fraction of the padded input map at the network's native\n\
         kernel/padding.\n",
        sngan[1].map_zero_fraction * 100.0,
        sngan[5].map_zero_fraction * 100.0
    )?;

    // ---- Fig. 7.
    writeln!(md, "## Fig. 7 — latency\n")?;
    let rows: Vec<Vec<String>> = comps
        .iter()
        .map(|(b, c)| {
            let zp = c.zero_padding();
            vec![
                b.name().to_string(),
                format!("{:.2}x", c.padding_free().speedup_vs(zp)),
                format!("{:.2}x", c.red().speedup_vs(zp)),
                format!(
                    "{:.0}%/{:.0}%",
                    100.0 * zp.array_latency_ns() / zp.total_latency_ns(),
                    100.0 * zp.periphery_latency_ns() / zp.total_latency_ns()
                ),
                format!(
                    "{:.0}%/{:.0}%",
                    100.0 * c.red().array_latency_ns() / c.red().total_latency_ns(),
                    100.0 * c.red().periphery_latency_ns() / c.red().total_latency_ns()
                ),
            ]
        })
        .collect();
    writeln!(
        md,
        "{}",
        render_table(
            &[
                "benchmark",
                "PF speedup",
                "RED speedup",
                "ZP arr/pp",
                "RED arr/pp"
            ],
            &rows
        )
    )?;
    let (smin, smax) = comps
        .iter()
        .fold((f64::INFINITY, 0.0f64), |(lo, hi), (_, c)| {
            let s = c.red().speedup_vs(c.zero_padding());
            (lo.min(s), hi.max(s))
        });
    writeln!(
        md,
        "Paper: RED speedup **3.69×–31.15×**; measured **{smin:.2}×–{smax:.2}×**, minimum\n\
         on the 5×5 stride-2 GAN layers, maximum on the halved-SCT FCN_Deconv2,\n\
         matching the paper's distribution. Zero-padding runs 1.55×–2.62× slower\n\
         than padding-free on GANs in the paper; measured {:.2}×–{:.2}×.\n",
        comps
            .iter()
            .filter(|(b, _)| b.is_gan())
            .map(|(_, c)| c.zero_padding().total_latency_ns() / c.padding_free().total_latency_ns())
            .fold(f64::INFINITY, f64::min),
        comps
            .iter()
            .filter(|(b, _)| b.is_gan())
            .map(|(_, c)| c.zero_padding().total_latency_ns() / c.padding_free().total_latency_ns())
            .fold(0.0, f64::max)
    )?;

    // ---- Fig. 8.
    writeln!(md, "## Fig. 8 — energy\n")?;
    let rows: Vec<Vec<String>> = comps
        .iter()
        .map(|(b, c)| {
            let zp_e = c.zero_padding().total_energy_pj();
            vec![
                b.name().to_string(),
                format!("{:.3}x", c.padding_free().total_energy_pj() / zp_e),
                format!("{:.3}x", c.red().total_energy_pj() / zp_e),
                format!("{:.1}%", c.red().energy_saving_vs(c.zero_padding()) * 100.0),
                format!(
                    "{:.2}x",
                    c.padding_free().array_energy_pj() / c.zero_padding().array_energy_pj()
                ),
            ]
        })
        .collect();
    writeln!(
        md,
        "{}",
        render_table(
            &[
                "benchmark",
                "PF energy",
                "RED energy",
                "RED saving",
                "PF/ZP array"
            ],
            &rows
        )
    )?;
    writeln!(
        md,
        "Paper: RED saves **8 %–88.36 %** vs zero-padding; measured {:.1} %–{:.1} %.\n\
         Padding-free array energy **4.48×–7.53×** the others on GANs; measured in\n\
         band (table above). Zero-padding and RED show near-identical array energy\n\
         on GANs (identical non-zero work and wordline geometry); on FCNs RED's\n\
         array energy is *lower* than zero-padding's because the stride²-inflated\n\
         cycle count burns extra bitline precharge — a modelling deviation from the\n\
         paper's blanket \"similar\" wording, in RED's favour.\n",
        comps
            .iter()
            .map(|(_, c)| c.red().energy_saving_vs(c.zero_padding()) * 100.0)
            .fold(f64::INFINITY, f64::min),
        comps
            .iter()
            .map(|(_, c)| c.red().energy_saving_vs(c.zero_padding()) * 100.0)
            .fold(0.0, f64::max)
    )?;

    // ---- Fig. 9.
    writeln!(md, "## Fig. 9 — area\n")?;
    let rows: Vec<Vec<String>> = comps
        .iter()
        .map(|(b, c)| {
            vec![
                b.name().to_string(),
                format!(
                    "{:+.1}%",
                    c.padding_free().area_overhead_vs(c.zero_padding()) * 100.0
                ),
                format!(
                    "{:+.1}%",
                    c.red().area_overhead_vs(c.zero_padding()) * 100.0
                ),
            ]
        })
        .collect();
    writeln!(
        md,
        "{}",
        render_table(&["benchmark", "padding-free", "RED"], &rows)
    )?;
    writeln!(
        md,
        "Paper: identical cell area across designs (holds exactly here);\n\
         padding-free **+9.79 %** on GANs / **+116.57 %** on FCN_Deconv2 (measured\n\
         above: GANs ≈ +6 %, FCN_Deconv2 ≈ +135 % — same shape, constants shared\n\
         with the FCN band); RED **+21.41 %** (measured ≈ +20 % on GANs).\n\n\
         **Documented deviation:** on the FCN layers our RED area overhead\n\
         (≈ +77–84 %) exceeds the paper's flat ~21 % claim: with only 21 channels\n\
         per sub-crossbar, per-instance periphery cannot amortize. The paper's\n\
         figure axis (0–120 %) and its \"similar area overhead\" wording do not\n\
         resolve FCN RED's exact bar; our model keeps the two robust orderings it\n\
         does state — RED ≪ padding-free on FCNs, RED slightly above zero-padding\n\
         everywhere.\n"
    )?;

    // ---- extensions.
    writeln!(md, "## Extensions beyond the paper (DESIGN.md §5b)\n")?;
    {
        use red_core::prelude::*;
        let model = CostModel::paper_default();
        // Pipelined DCGAN generator.
        let stack = red_core::workloads::networks::dcgan_generator(1)?;
        let zp = PipelineReport::evaluate(&model, Design::ZeroPadding, &stack.layers)?;
        let red =
            PipelineReport::evaluate(&model, Design::red(RedLayoutPolicy::Auto), &stack.layers)?;
        writeln!(
            md,
            "* **Pipelined DCGAN generator** (4 stages, PipeLayer-style): steady-state\n\
              interval {:.1} µs (zero-padding) vs {:.1} µs (RED) — **{:.2}×** sustained\n\
              throughput gain, {:.0} µJ vs {:.0} µJ per generated image.",
            zp.steady_interval_ns() / 1e3,
            red.steady_interval_ns() / 1e3,
            red.speedup_vs(&zp),
            zp.energy_per_input_pj() / 1e6,
            red.energy_per_input_pj() / 1e6
        )?;
        // Tiling robustness.
        let layer = Benchmark::GanDeconv3.layer();
        let zp_t = model.evaluate_tiled(Design::ZeroPadding, &layer, MacroSpec::m512())?;
        let red_t = model.evaluate_tiled(
            Design::red(RedLayoutPolicy::Auto),
            &layer,
            MacroSpec::m512(),
        )?;
        writeln!(
            md,
            "* **Physical 512×512 macro tiling** (vs the paper's logical arrays):\n\
              GAN_Deconv3 RED speedup {:.2}× and energy saving {:.1} % — the paper's\n\
              orderings survive the realistic array model.",
            red_t.speedup_vs(&zp_t),
            red_t.energy_saving_vs(&zp_t) * 100.0
        )?;
        // Programming cost.
        let prog = model.programming_cost(Design::red(RedLayoutPolicy::Auto), &layer)?;
        writeln!(
            md,
            "* **Programming cost**: loading GAN_Deconv3's weights once costs\n\
              {:.1} µJ across {} cells — identical for all three designs (same\n\
              resident weights), amortized over every subsequent inference.",
            prog.energy_pj / 1e6,
            prog.cells
        )?;
        writeln!(
            md,
            "* **Device realism** (`cargo run --example noise_resilience`): accuracy\n\
              degrades monotonically under conductance variation, stuck-at faults,\n\
              retention drift and ADC saturation; under wire IR drop RED is markedly\n\
              *more* robust than the monolithic zero-padding mapping (~24 dB SQNR\n\
              advantage at 10 Ω/cell) because its sub-crossbar lines are KH·KW×\n\
              shorter — an emergent benefit the paper does not claim.\n"
        )?;
    }

    // ---- online serving recipe.
    writeln!(md, "## Online serving (beyond the paper)\n")?;
    writeln!(
        md,
        "`red-server` puts a dynamic micro-batching scheduler with SLO-aware,\n\
         tenant-aware admission between live request traffic and a replicated\n\
         multi-network fleet; all latency figures are virtual (modeled\n\
         hardware) time, so a fixed seed reproduces them anywhere. The\n\
         committed `BENCH_loadgen.json` baseline drives **one million\n\
         requests per policy row** through the DCGAN + SNGAN + FCN lineup\n\
         (`--mix`) with three tenant classes (weights 4:2:1, the interactive\n\
         class on a 200 us SLO), the O(1)-memory streaming driver\n\
         (`--stream`, ~30 MB peak RSS), model-only execution (identical\n\
         virtual statistics, no functional crossbars) and deterministic\n\
         replica autoscaling from a floor of 1. Regenerate it with:\n\n\
         ```sh\n\
         cargo run --release -p red-bench --bin loadgen -- \\\n\
         \x20   --mix --model-only --stream --requests 1000000 \\\n\
         \x20   --clients 12 --replicas 2 \\\n\
         \x20   --tenants interactive:4:0:200,standard:2:1:800,batch:1:2:0 \\\n\
         \x20   --policy weighted-fair,priority --max-lag-us 50 \\\n\
         \x20   --rps 600000 --autoscale 1 --seed 7 \\\n\
         \x20   --json BENCH_loadgen.json\n\
         ```\n\n\
         At 600 krps offered (~1.6x the slowest partition's local capacity)\n\
         `weighted-fair` serves the interactive tenant with **zero shed** and\n\
         a 106.5 us p99 — far inside its 200 us SLO — while the best-effort\n\
         tenants absorb ~6.2% shed each; `priority` pins tier 0 harder\n\
         (79.9 us p99) by starving the lower tiers (30.9% / 60.2% shed).\n\
         Headlines baked into `tests/server_serving.rs`: at equal offered\n\
         overload, `max_batch 16` sustains strictly more images/sec than\n\
         `max_batch 1`; `deadline-shed` holds served p99 at or below the SLO\n\
         while `fifo` lets the tail grow without bound; weighted-fair\n\
         work-conservation and starvation-freedom are proptested; the\n\
         streaming and threaded drivers match bit-for-bit; and autoscale\n\
         decision sequences replay identically. Served outputs stay bit-exact\n\
         against `Chip::run_sequential` on every design, ideal and\n\
         `full`-noisy, per network in multi-network fleets. CI's `bench-gate`\n\
         job replays the command above (and the `BENCH_serve.json` one) and\n\
         `benchdiff`s the fresh JSON against the committed baselines —\n\
         modeled metrics must match exactly; `host*` fields never gate.\n"
    )?;

    // ---- functional verification.
    writeln!(
        md,
        "## Functional verification (not in the paper's tables)\n"
    )?;
    writeln!(
        md,
        "* All three engine dataflows are **bit-exact** against the textbook\n\
          transposed convolution on every Table I geometry (channel-scaled) and on\n\
          ~100 randomized geometries per property (see `tests/`).\n\
        * Measured cycles / row activations equal the closed-form geometry the\n\
          cost model prices, for every design × benchmark pair.\n\
        * The analog pipeline (bit-serial inputs, conductance quantization,\n\
          integrate-and-fire conversion, shift-add recombination) is bit-exact\n\
          with the digital reference under ideal devices, and degrades\n\
          monotonically under conductance variation / stuck-at faults / ADC\n\
          saturation (`tests/fault_injection.rs`).\n"
    )?;

    std::fs::write("EXPERIMENTS.md", &md)?;
    println!("wrote EXPERIMENTS.md ({} bytes)", md.len());
    Ok(())
}
