//! Regenerates the paper's Fig. 9: area breakdown of the three designs,
//! normalized to the zero-padding design, for GAN_Deconv1 and FCN_Deconv2
//! (the two layers the paper plots) plus a summary over all benchmarks.

use red_bench::{all_comparisons, maybe_write_csv, render_table};
use red_core::prelude::*;

fn main() {
    let comps = all_comparisons();

    println!("FIG. 9 — AREA BREAKDOWN (normalized to zero-padding total = 100%)\n");
    for name in ["GAN_Deconv1", "FCN_Deconv2"] {
        let (b, c) = comps
            .iter()
            .find(|(b, _)| b.name() == name)
            .expect("benchmark present");
        let zp_total = c.zero_padding().total_area_um2();
        println!("{}:", b.name());
        let rows: Vec<Vec<String>> = c
            .reports()
            .iter()
            .map(|r| {
                vec![
                    r.design.label().to_string(),
                    format!("{:.1}%", 100.0 * r.array_area_um2() / zp_total),
                    format!("{:.1}%", 100.0 * r.periphery_area_um2() / zp_total),
                    format!("{:.1}%", 100.0 * r.total_area_um2() / zp_total),
                    format!("{:.3}", r.total_area_um2() / 1e6),
                ]
            })
            .collect();
        print!(
            "{}",
            render_table(
                &["design", "array", "periphery", "total", "abs (mm2)"],
                &rows
            )
        );
        println!();
    }

    println!("area overhead vs zero-padding, all benchmarks:\n");
    let rows: Vec<Vec<String>> = comps
        .iter()
        .map(|(b, c)| {
            vec![
                b.name().to_string(),
                format!(
                    "{:+.1}%",
                    c.padding_free().area_overhead_vs(c.zero_padding()) * 100.0
                ),
                format!(
                    "{:+.1}%",
                    c.red().area_overhead_vs(c.zero_padding()) * 100.0
                ),
            ]
        })
        .collect();
    let headers = ["benchmark", "padding-free", "RED"];
    print!("{}", render_table(&headers, &rows));
    maybe_write_csv("fig9_area_overhead", &headers, &rows);

    println!("\nper-component area (GAN_Deconv1, RED):");
    let (_, c) = &comps[0];
    let r = c.red();
    let total = r.total_area_um2();
    for comp in Component::ALL {
        let v = r.area_um2(comp);
        if v > 0.0 {
            println!(
                "  {:4} {:>10.0} um2  ({:.1}%)",
                comp.abbr(),
                v,
                100.0 * v / total
            );
        }
    }
    println!(
        "\npaper: padding-free +9.79% (GANs) / +116.57% (FCN_Deconv2); RED +21.41%.\n\
         Our FCN RED overhead exceeds the paper's flat claim because 21-channel\n\
         sub-crossbars cannot amortize per-instance periphery (see EXPERIMENTS.md)."
    );
}
