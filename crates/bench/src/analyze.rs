//! Post-hoc session analyzer: turns a captured Chrome trace (and
//! optionally the loadgen `--json` document) into a **root-cause
//! timeline** for a serving session.
//!
//! The trace is the ground truth: every request lifecycle, operational
//! event (fault injection, autoscale step, brownout tier change,
//! quarantine, re-programming outage), scraped counter sample, and
//! burn-rate alert transition is an event on the deterministic virtual
//! clock. This module re-reads that timeline through
//! [`crate::minijson`] and derives:
//!
//! * **alert attribution** — every alert firing annotated with the
//!   nearest preceding operational event (same partition preferred), so
//!   "fast-burn fired" reads as "fast-burn fired 312 µs after
//!   fault(crash) on partition 0";
//! * **phase breakdowns** — request latency and throughput split into
//!   pre-fault / degraded / recovered phases (the degraded window runs
//!   from the first injected fault to the end of the last re-programming
//!   repair), or a single steady phase for fault-free sessions;
//! * **tenant attribution** — per-tenant served/shed counts with mean
//!   queue-wait vs execute time, separating "slow because it waited"
//!   from "slow because the chip was busy".
//!
//! The loadgen JSON document adds the scraped `timeseries` block; the
//! analyzer re-checks the conservation ledger (for every counter
//! series, `evicted_sum + Σ window deltas == total`) and echoes the
//! per-row alert episodes, so a scrape pipeline that drops a window
//! fails the CI gate rather than producing a subtly wrong dashboard.

use crate::minijson::JsonValue;

/// One burn-rate alert transition lifted from the trace.
#[derive(Debug, Clone)]
pub struct AlertEvent {
    /// Rule name (`fast-burn`, `slow-burn`, `replica-lost`, ...).
    pub rule: String,
    /// `true` for a fire edge, `false` for a resolve.
    pub fire: bool,
    /// Virtual-clock instant of the transition.
    pub t_ns: u64,
    /// Tenant index, or -1 for partition-level rules.
    pub tenant: i64,
    /// The rule's measured value at the transition (burn rate, sheds, ...).
    pub value: f64,
    /// Partition the alert fired on.
    pub partition: i64,
    /// Index into [`Analysis::ops`] of the attributed cause, if any.
    pub cause: Option<usize>,
}

/// One operational event (fault / scale / brownout / health) from the
/// trace — the candidate root causes alerts attribute to.
#[derive(Debug, Clone)]
pub struct OpsEvent {
    /// Event class, e.g. `fault(crash)`, `brownout`, `reprogram`.
    pub kind: String,
    /// Start instant.
    pub t_ns: u64,
    /// End instant (`t_ns` for instants, span end for repairs).
    pub end_ns: u64,
    /// Partition the event happened on (-1 if not partition-scoped).
    pub partition: i64,
}

/// Per-tenant queue-vs-execute attribution.
#[derive(Debug, Clone)]
pub struct TenantStat {
    /// Tenant index (the scheduler thread id on the trace).
    pub tenant: u32,
    /// Tenant class name from the trace's thread-name metadata.
    pub name: String,
    /// Requests served.
    pub served: u64,
    /// Requests shed.
    pub shed: u64,
    /// Mean admission queue wait (arrival → admit) in µs, served only.
    pub queue_mean_us: f64,
    /// Mean post-admission time (admit → completion) in µs, served only.
    pub execute_mean_us: f64,
}

/// Latency/throughput breakdown of one session phase.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// `pre-fault`, `degraded`, `recovered`, or `steady`.
    pub name: &'static str,
    /// Phase window start (virtual ns).
    pub start_ns: u64,
    /// Phase window end (virtual ns).
    pub end_ns: u64,
    /// Requests completing in the window that were served.
    pub served: u64,
    /// Requests completing in the window that were shed.
    pub shed: u64,
    /// Served-latency p50 in µs (0 when nothing served).
    pub p50_us: f64,
    /// Served-latency p99 in µs (0 when nothing served).
    pub p99_us: f64,
    /// Served completions per virtual second.
    pub served_per_s: f64,
}

/// The derived session analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Alert transitions in timeline order, causes attributed.
    pub alerts: Vec<AlertEvent>,
    /// Operational events in timeline order.
    pub ops: Vec<OpsEvent>,
    /// Per-tenant attribution, indexed by tenant id.
    pub tenants: Vec<TenantStat>,
    /// Phase breakdowns in chronological order.
    pub phases: Vec<PhaseStat>,
    /// Scraped `"C"` counter samples seen in the trace.
    pub counter_samples: usize,
    /// Events the exporter's bounded rings evicted before export; when
    /// positive the trace is a flight-recorder tail and the timeline /
    /// phase figures cover only the retained window.
    pub overflow_events: u64,
}

/// A request lifecycle under reconstruction.
#[derive(Default, Clone)]
struct ReqState {
    tenant: u32,
    arrival_ns: u64,
    admit_ns: Option<u64>,
}

fn num(ev: &JsonValue, key: &str) -> Option<f64> {
    ev.get(key).and_then(JsonValue::as_num)
}

fn percentile_us(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_ns.len() as f64 * p).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e3
}

fn phase_stat(
    name: &'static str,
    start_ns: u64,
    end_ns: u64,
    done: &[(u64, u64, bool)],
) -> PhaseStat {
    // done: (completion_ns, latency_ns, served) for completions in window.
    let mut lat: Vec<u64> = done
        .iter()
        .filter(|(t, _, served)| *served && *t >= start_ns && *t < end_ns)
        .map(|(_, l, _)| *l)
        .collect();
    lat.sort_unstable();
    let shed = done
        .iter()
        .filter(|(t, _, served)| !*served && *t >= start_ns && *t < end_ns)
        .count() as u64;
    let span_s = (end_ns.saturating_sub(start_ns)) as f64 / 1e9;
    PhaseStat {
        name,
        start_ns,
        end_ns,
        served: lat.len() as u64,
        shed,
        p50_us: percentile_us(&lat, 0.50),
        p99_us: percentile_us(&lat, 0.99),
        served_per_s: if span_s > 0.0 {
            lat.len() as f64 / span_s
        } else {
            0.0
        },
    }
}

/// Derives the session [`Analysis`] from a parsed Chrome-trace
/// document.
///
/// # Errors
///
/// A message naming the structural defect when the document is not an
/// exporter-shaped trace.
pub fn analyze_trace(doc: &JsonValue) -> Result<Analysis, String> {
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("traceEvents missing or not an array")?;
    let overflow_events = doc
        .get("otherData")
        .and_then(|d| d.get("overflowEvents"))
        .and_then(JsonValue::as_num)
        .unwrap_or(0.0) as u64;

    let mut alerts: Vec<AlertEvent> = Vec::new();
    let mut ops: Vec<OpsEvent> = Vec::new();
    let mut open: std::collections::HashMap<String, ReqState> = std::collections::HashMap::new();
    // (completion_ns, latency_ns, served) per resolved request.
    let mut done: Vec<(u64, u64, bool)> = Vec::new();
    // tenant -> (served, shed, queue_ns_sum, exec_ns_sum)
    let mut tenants: Vec<(u64, u64, u64, u64)> = Vec::new();
    let mut tenant_names: Vec<String> = Vec::new();
    let mut counter_samples = 0usize;
    let mut last_ts = 0u64;

    for ev in events {
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("");
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let cat = ev.get("cat").and_then(JsonValue::as_str).unwrap_or("");
        let pid = num(ev, "pid").unwrap_or(-1.0) as i64;
        let tid = num(ev, "tid").unwrap_or(0.0) as i64;
        if ph == "M" {
            // Tenant class names ride the scheduler process's
            // thread-name metadata (pid 1, tid = tenant index).
            if name == "thread_name" && pid == 1 && tid >= 0 {
                if let Some(label) = ev.get("args").and_then(|a| a.get("name")) {
                    let t = tid as usize;
                    if tenant_names.len() <= t {
                        tenant_names.resize(t + 1, String::new());
                    }
                    tenant_names[t] = label.as_str().unwrap_or("").to_string();
                }
            }
            continue;
        }
        // Chrome-trace `ts`/`dur` are microseconds (the exporter writes
        // three decimal places, so ns precision survives the round-trip).
        let ts = (num(ev, "ts").ok_or_else(|| format!("event {name:?} without numeric ts"))? * 1e3)
            .round() as u64;
        last_ts = last_ts.max(ts);
        // The partition index is encoded in the trace layout: partition
        // p's events land on pid 100 + p.
        let partition = if pid >= 100 { pid - 100 } else { -1 };
        match (cat, ph) {
            ("alert", "i") => {
                let args = ev.get("args");
                let state = args
                    .and_then(|a| a.get("state"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("fire");
                alerts.push(AlertEvent {
                    rule: name.to_string(),
                    fire: state == "fire",
                    t_ns: ts,
                    tenant: args
                        .and_then(|a| a.get("tenant"))
                        .and_then(JsonValue::as_num)
                        .unwrap_or(-1.0) as i64,
                    value: args
                        .and_then(|a| a.get("value"))
                        .and_then(JsonValue::as_num)
                        .unwrap_or(0.0),
                    partition,
                    cause: None,
                });
            }
            ("fault", "i") => {
                let kind = ev
                    .get("args")
                    .and_then(|a| a.get("kind"))
                    .and_then(JsonValue::as_str)
                    .unwrap_or("?");
                ops.push(OpsEvent {
                    kind: format!("fault({kind})"),
                    t_ns: ts,
                    end_ns: ts,
                    partition,
                });
            }
            ("autoscale", "i") => {
                // name: "scale" (replica step) or "brownout" (tier step).
                ops.push(OpsEvent {
                    kind: name.to_string(),
                    t_ns: ts,
                    end_ns: ts,
                    partition,
                });
            }
            ("health", "i") if name == "quarantine" => {
                ops.push(OpsEvent {
                    kind: "quarantine".to_string(),
                    t_ns: ts,
                    end_ns: ts,
                    partition,
                });
            }
            ("health", "X") => {
                let dur = (num(ev, "dur").unwrap_or(0.0) * 1e3).round() as u64;
                ops.push(OpsEvent {
                    kind: "reprogram".to_string(),
                    t_ns: ts,
                    end_ns: ts + dur,
                    partition,
                });
            }
            ("scrape", "C") => counter_samples += 1,
            ("request", "b") if name == "req" => {
                let id = ev
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or("request begin without id")?;
                open.insert(
                    id.to_string(),
                    ReqState {
                        tenant: tid.max(0) as u32,
                        arrival_ns: ts,
                        admit_ns: None,
                    },
                );
            }
            ("request", "n") if name == "admit" => {
                if let Some(id) = ev.get("id").and_then(JsonValue::as_str) {
                    if let Some(req) = open.get_mut(id) {
                        // Retried/hedged requests re-admit; the last
                        // admission is the one that completed.
                        req.admit_ns = Some(ts);
                    }
                }
            }
            ("request", "e") if name == "req" => {
                let id = ev
                    .get("id")
                    .and_then(JsonValue::as_str)
                    .ok_or("request end without id")?;
                if let Some(req) = open.remove(id) {
                    let served = ev
                        .get("args")
                        .and_then(|a| a.get("outcome"))
                        .and_then(JsonValue::as_str)
                        != Some("shed");
                    let t = req.tenant as usize;
                    if tenants.len() <= t {
                        tenants.resize(t + 1, (0, 0, 0, 0));
                    }
                    let latency = ts.saturating_sub(req.arrival_ns);
                    if served {
                        tenants[t].0 += 1;
                        let admit = req.admit_ns.unwrap_or(ts);
                        tenants[t].2 += admit.saturating_sub(req.arrival_ns);
                        tenants[t].3 += ts.saturating_sub(admit);
                    } else {
                        tenants[t].1 += 1;
                    }
                    done.push((ts, latency, served));
                }
            }
            _ => {}
        }
    }

    ops.sort_by_key(|o| o.t_ns);
    alerts.sort_by_key(|a| a.t_ns);

    // Attribute every alert firing to the nearest preceding ops event,
    // preferring one on the same partition.
    for alert in &mut alerts {
        let mut best: Option<usize> = None;
        for (i, op) in ops.iter().enumerate() {
            if op.t_ns > alert.t_ns {
                break;
            }
            // Later events are nearer; only let a cross-partition event
            // displace a same-partition one, never the other way round.
            let same = op.partition == alert.partition;
            let best_same = best.is_some_and(|b| ops[b].partition == alert.partition);
            if same || !best_same {
                best = Some(i);
            }
        }
        alert.cause = best;
    }

    // Phase windows: the degraded phase opens at the first injected
    // fault and closes when the last re-programming repair lands.
    let first_fault = ops
        .iter()
        .filter(|o| o.kind.starts_with("fault("))
        .map(|o| o.t_ns)
        .min();
    // Phase windows are half-open; one past the last timestamp keeps
    // completions at the final instant inside the last phase.
    let session_end = last_ts.saturating_add(1);
    let phases = match first_fault {
        None => vec![phase_stat("steady", 0, session_end, &done)],
        Some(f) => {
            let recovery = ops
                .iter()
                .filter(|o| o.kind == "reprogram")
                .map(|o| o.end_ns)
                .max()
                .unwrap_or(f)
                .clamp(f, session_end);
            vec![
                phase_stat("pre-fault", 0, f, &done),
                phase_stat("degraded", f, recovery, &done),
                phase_stat("recovered", recovery, session_end, &done),
            ]
        }
    };

    let tenants = tenants
        .iter()
        .enumerate()
        .map(|(t, &(served, shed, queue_ns, exec_ns))| TenantStat {
            tenant: t as u32,
            name: tenant_names.get(t).cloned().unwrap_or_default(),
            served,
            shed,
            queue_mean_us: if served > 0 {
                queue_ns as f64 / served as f64 / 1e3
            } else {
                0.0
            },
            execute_mean_us: if served > 0 {
                exec_ns as f64 / served as f64 / 1e3
            } else {
                0.0
            },
        })
        .collect();

    Ok(Analysis {
        alerts,
        ops,
        tenants,
        phases,
        counter_samples,
        overflow_events,
    })
}

/// Renders the analysis as the human-readable root-cause report the
/// `analyze` binary prints.
pub fn render(a: &Analysis) -> String {
    let mut out = String::new();
    out.push_str("== analyze: root-cause timeline ==\n");
    out.push_str(&format!(
        "{} operational event(s), {} alert transition(s), {} scraped counter sample(s)\n",
        a.ops.len(),
        a.alerts.len(),
        a.counter_samples,
    ));
    if a.overflow_events > 0 {
        out.push_str(&format!(
            "NOTE: flight-recorder truncated ({} event(s) evicted) — the \
             timeline and phase figures cover only the retained tail; the \
             loadgen JSON's alerts/timeseries blocks are complete\n",
            a.overflow_events,
        ));
    }
    out.push('\n');

    out.push_str("-- timeline --\n");
    let mut oi = 0usize;
    for alert in &a.alerts {
        while oi < a.ops.len() && a.ops[oi].t_ns <= alert.t_ns {
            let op = &a.ops[oi];
            out.push_str(&format!(
                "  {:>12.1} us  ops    {} (partition {})\n",
                op.t_ns as f64 / 1e3,
                op.kind,
                op.partition,
            ));
            oi += 1;
        }
        let cause = match alert.cause {
            Some(i) => {
                let op = &a.ops[i];
                format!(
                    " — {:.1} us after {} (partition {})",
                    alert.t_ns.saturating_sub(op.t_ns) as f64 / 1e3,
                    op.kind,
                    op.partition,
                )
            }
            None => " — no preceding operational event".to_string(),
        };
        let tenant = if alert.tenant >= 0 {
            format!(" tenant {}", alert.tenant)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  {:>12.1} us  ALERT  {} {}{} value {:.2}{}\n",
            alert.t_ns as f64 / 1e3,
            alert.rule,
            if alert.fire { "FIRE" } else { "resolve" },
            tenant,
            alert.value,
            if alert.fire { cause.as_str() } else { "" },
        ));
    }
    for op in &a.ops[oi..] {
        out.push_str(&format!(
            "  {:>12.1} us  ops    {} (partition {})\n",
            op.t_ns as f64 / 1e3,
            op.kind,
            op.partition,
        ));
    }

    out.push_str("\n-- phases --\n");
    for p in &a.phases {
        out.push_str(&format!(
            "  {:<10} [{:>10.1}, {:>10.1}) us: served {:>6}, shed {:>5}, \
             p50 {:>8.1} us, p99 {:>8.1} us, {:>9.0} served/s\n",
            p.name,
            p.start_ns as f64 / 1e3,
            p.end_ns as f64 / 1e3,
            p.served,
            p.shed,
            p.p50_us,
            p.p99_us,
            p.served_per_s,
        ));
    }

    out.push_str("\n-- tenants (queue vs execute) --\n");
    for t in &a.tenants {
        out.push_str(&format!(
            "  tenant {} {:<12} served {:>6}, shed {:>5}, \
             mean queue {:>8.1} us, mean execute {:>8.1} us\n",
            t.tenant, t.name, t.served, t.shed, t.queue_mean_us, t.execute_mean_us,
        ));
    }
    out
}

/// Re-checks the scraped `timeseries` conservation ledger of a loadgen
/// `--json` document and summarizes its alert episodes.
///
/// Returns the rendered summary on success.
///
/// # Errors
///
/// A message naming the offending series when a counter's retained
/// window deltas plus its eviction ledger fail to reproduce the
/// end-of-run total, or when the document is not a loadgen export.
pub fn check_loadgen(doc: &JsonValue) -> Result<String, String> {
    let mut out = String::new();
    let series = doc
        .get("timeseries")
        .and_then(JsonValue::as_arr)
        .ok_or("loadgen document has no timeseries block (need --scrape-us and schema v5)")?;
    let mut counters = 0usize;
    for s in series {
        let kind = s.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        if kind != "counter" {
            continue;
        }
        counters += 1;
        let chart = s.get("chart").and_then(JsonValue::as_str).unwrap_or("?");
        let key = s.get("key").and_then(JsonValue::as_str).unwrap_or("?");
        let total = s.get("total").and_then(JsonValue::as_num).unwrap_or(0.0);
        let evicted_sum = s
            .get("evicted_sum")
            .and_then(JsonValue::as_num)
            .unwrap_or(0.0);
        let retained: f64 = s
            .get("samples")
            .and_then(JsonValue::as_arr)
            .map(|samples| {
                samples
                    .iter()
                    .filter_map(|pair| pair.as_arr()?.get(1)?.as_num())
                    .sum()
            })
            .unwrap_or(0.0);
        if evicted_sum + retained != total {
            return Err(format!(
                "conservation violated for series {chart}/{key}: \
                 evicted_sum {evicted_sum} + Σ windows {retained} != total {total}"
            ));
        }
    }
    out.push_str(&format!(
        "timeseries: {} series ({counters} counters) — window deltas \
         reconcile with end-of-run totals\n",
        series.len()
    ));
    let rows = doc
        .get("rows")
        .and_then(JsonValue::as_arr)
        .ok_or("loadgen document has no rows")?;
    for (i, row) in rows.iter().enumerate() {
        let Some(alerts) = row.get("alerts").and_then(JsonValue::as_arr) else {
            continue;
        };
        for a in alerts {
            let resolved = match a.get("resolved_at_us").and_then(JsonValue::as_num) {
                Some(t) => format!("resolved {t:.1} us"),
                None => "unresolved at session end".to_string(),
            };
            out.push_str(&format!(
                "row {i}: alert {} (partition {}, tenant {}) fired {:.1} us, {}\n",
                a.get("rule").and_then(JsonValue::as_str).unwrap_or("?"),
                a.get("partition")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(-1.0),
                a.get("tenant")
                    .map(|t| match t {
                        JsonValue::Null => "-".to_string(),
                        other => format!("{:.0}", other.as_num().unwrap_or(-1.0)),
                    })
                    .unwrap_or_else(|| "-".to_string()),
                a.get("fired_at_us")
                    .and_then(JsonValue::as_num)
                    .unwrap_or(0.0),
                resolved,
            ));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minijson::parse;

    fn sample_trace() -> JsonValue {
        parse(
            r#"{"displayTimeUnit":"ns","traceEvents":[
            {"name":"thread_name","ph":"M","pid":1,"tid":0,"args":{"name":"interactive"}},
            {"name":"req","cat":"request","ph":"b","pid":1,"tid":0,"id":"0x1","ts":100},
            {"name":"admit","cat":"request","ph":"n","pid":1,"tid":0,"id":"0x1","ts":300},
            {"name":"fault","cat":"fault","ph":"i","pid":100,"tid":1,"ts":500,"args":{"kind":"crash","replica":0}},
            {"name":"req","cat":"request","ph":"e","pid":1,"tid":0,"id":"0x1","ts":700},
            {"name":"served","cat":"scrape","ph":"C","pid":100,"tid":0,"ts":800,"args":{"interactive":1}},
            {"name":"fast-burn","cat":"alert","ph":"i","pid":100,"tid":0,"ts":900,
             "args":{"state":"fire","tenant":0,"value":20.5}},
            {"name":"reprogram","cat":"health","ph":"X","pid":100,"tid":1,"ts":1000,"dur":500,
             "args":{"replica":0}},
            {"name":"req","cat":"request","ph":"b","pid":1,"tid":0,"id":"0x2","ts":1600},
            {"name":"shed","cat":"request","ph":"n","pid":1,"tid":0,"id":"0x2","ts":1700,
             "args":{"reason":"queue-full"}},
            {"name":"req","cat":"request","ph":"e","pid":1,"tid":0,"id":"0x2","ts":1700,
             "args":{"outcome":"shed"}},
            {"name":"fast-burn","cat":"alert","ph":"i","pid":100,"tid":0,"ts":2000,
             "args":{"state":"resolve","tenant":0,"value":0.5}}
            ]}"#,
        )
        .expect("sample trace parses")
    }

    #[test]
    fn attributes_alert_to_nearest_preceding_fault() {
        let a = analyze_trace(&sample_trace()).unwrap();
        assert_eq!(a.alerts.len(), 2);
        let fire = &a.alerts[0];
        assert!(fire.fire);
        assert_eq!(fire.rule, "fast-burn");
        let cause = &a.ops[fire.cause.expect("fire attributes to a cause")];
        assert_eq!(cause.kind, "fault(crash)");
        assert_eq!(cause.t_ns, 500_000, "trace ts is µs, analysis is ns");
        assert!(!a.alerts[1].fire, "second transition is the resolve");
    }

    #[test]
    fn splits_session_into_fault_phases() {
        let a = analyze_trace(&sample_trace()).unwrap();
        let names: Vec<&str> = a.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, vec!["pre-fault", "degraded", "recovered"]);
        // The served request completed at 700 µs, inside the degraded
        // window [500, 1500) µs; the shed completed at 1700, recovered.
        assert_eq!(a.phases[1].served, 1);
        assert_eq!(a.phases[2].shed, 1);
        assert_eq!(a.phases[1].start_ns, 500_000);
        assert_eq!(
            a.phases[1].end_ns, 1_500_000,
            "repair end closes the window"
        );
    }

    #[test]
    fn tenant_attribution_splits_queue_and_execute() {
        let a = analyze_trace(&sample_trace()).unwrap();
        let t = &a.tenants[0];
        assert_eq!((t.served, t.shed), (1, 1));
        assert_eq!(t.name, "interactive");
        // Arrival 100 µs, admit 300, end 700: 200 µs queued, 400 executing.
        assert!((t.queue_mean_us - 200.0).abs() < 1e-9);
        assert!((t.execute_mean_us - 400.0).abs() < 1e-9);
    }

    #[test]
    fn fault_free_sessions_get_a_single_steady_phase() {
        let doc = parse(
            r#"{"traceEvents":[
            {"name":"req","cat":"request","ph":"b","pid":1,"tid":0,"id":"0x1","ts":0},
            {"name":"req","cat":"request","ph":"e","pid":1,"tid":0,"id":"0x1","ts":400}
            ]}"#,
        )
        .unwrap();
        let a = analyze_trace(&doc).unwrap();
        assert_eq!(a.phases.len(), 1);
        assert_eq!(a.phases[0].name, "steady");
        assert_eq!(a.phases[0].served, 1);
    }

    #[test]
    fn render_mentions_the_attributed_cause() {
        let a = analyze_trace(&sample_trace()).unwrap();
        let text = render(&a);
        assert!(text.contains("fast-burn FIRE"));
        assert!(text.contains("after fault(crash)"));
        assert!(text.contains("pre-fault"));
        assert!(text.contains("interactive"));
    }

    #[test]
    fn loadgen_conservation_check_accepts_and_rejects() {
        let good = parse(
            r#"{"timeseries":[
            {"partition":0,"chart":"served","key":"t0","kind":"counter",
             "total":10,"evicted":1,"evicted_sum":4,"samples":[[100,3],[200,3]]}],
            "rows":[{"alerts":[{"partition":0,"rule":"fast-burn","tenant":0,
             "fired_at_us":1.5,"resolved_at_us":9.0,"value":20.0}]}]}"#,
        )
        .unwrap();
        let summary = check_loadgen(&good).unwrap();
        assert!(summary.contains("reconcile"));
        assert!(summary.contains("fast-burn"));

        let bad = parse(
            r#"{"timeseries":[
            {"partition":0,"chart":"served","key":"t0","kind":"counter",
             "total":10,"evicted":0,"evicted_sum":0,"samples":[[100,3]]}],
            "rows":[]}"#,
        )
        .unwrap();
        let err = check_loadgen(&bad).unwrap_err();
        assert!(err.contains("conservation violated"));
    }
}
