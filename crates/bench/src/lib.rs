//! # red-bench
//!
//! Benchmark harness regenerating **every table and figure** of the RED
//! paper's evaluation (§IV), plus ablations the paper's design discussion
//! implies. One binary per artifact:
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table I — benchmark layer geometries |
//! | `fig4` | Fig. 4 — zero-redundancy ratio vs stride |
//! | `fig7` | Fig. 7 — latency: speedup + array/periphery breakdown |
//! | `fig8` | Fig. 8 — energy: saving + array/periphery breakdown |
//! | `fig9` | Fig. 9 — area breakdown |
//! | `headline` | §IV headline claims vs measured values |
//! | `ablation` | zero-skipping / Eq. 2 halving / driver-upsizing / precision ablations |
//! | `experiments` | regenerates `EXPERIMENTS.md` from all of the above |
//!
//! The Criterion benches (`benches/`) measure the *simulator itself*
//! (engine throughput, crossbar VMM paths, cost-model evaluation) so
//! regressions in the substrate are visible too.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyze;
pub mod minijson;

use red_core::prelude::*;
use red_core::Comparison;

/// A named paper claim with its measured counterpart, used by `headline`
/// and `experiments`.
#[derive(Debug, Clone)]
pub struct PaperCheck {
    /// Which figure/section the claim comes from.
    pub source: &'static str,
    /// The claim as the paper states it.
    pub paper: String,
    /// What this reproduction measures.
    pub measured: String,
    /// Whether the measured value falls in the reproduction band.
    pub in_band: bool,
}

/// Evaluates the three designs on every Table I benchmark with the default
/// (paper-calibrated) cost model, one worker thread per benchmark.
pub fn all_comparisons() -> Vec<(Benchmark, Comparison)> {
    let model = CostModel::paper_default();
    std::thread::scope(|s| {
        let handles: Vec<_> = Benchmark::all()
            .into_iter()
            .map(|b| {
                let model = &model;
                s.spawn(move || {
                    let cmp =
                        Comparison::evaluate(model, &b.layer()).expect("Table I layers evaluate");
                    (b, cmp)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluation thread completes"))
            .collect()
    })
}

/// Parses `--flag V` from a raw argument list: the default when the flag
/// is absent, `None` (a usage error) when it is present without a
/// parsable value.
pub fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Option<T> {
    match args.iter().position(|a| a == flag) {
        None => Some(default),
        Some(i) => args.get(i + 1)?.parse().ok(),
    }
}

/// Parses `--flag a,b,c` as a comma-separated list: `default` when the
/// flag is absent, `None` when present without a fully parsable list.
pub fn parse_list_flag<T: std::str::FromStr + Clone>(
    args: &[String],
    flag: &str,
    default: &[T],
) -> Option<Vec<T>> {
    match args.iter().position(|a| a == flag) {
        None => Some(default.to_vec()),
        Some(i) => args
            .get(i + 1)?
            .split(',')
            .map(|s| s.trim().parse().ok())
            .collect(),
    }
}

/// Formats a fixed-width text table (markdown-flavoured) into a string.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let body: Vec<String> = cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        format!("| {} |\n", body.join(" | "))
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    out.push_str(&fmt_row(&sep, &widths));
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Writes `headers` + `rows` as a CSV file, creating parent directories.
///
/// # Errors
///
/// Propagates I/O errors from directory creation or the write.
pub fn write_csv(
    path: &std::path::Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut out = String::new();
    out.push_str(&headers.join(","));
    out.push('\n');
    for row in rows {
        let escaped: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        out.push_str(&escaped.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

/// Escapes a string for embedding inside a JSON string literal (the
/// machine-readable outputs are assembled by hand — the workspace's
/// `serde_json` slot is an offline placeholder).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// If the process was invoked with `--csv <dir>`, writes the table there
/// as `<name>.csv` and reports the path on stdout.
pub fn maybe_write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--csv") {
        let dir = args
            .get(i + 1)
            .cloned()
            .unwrap_or_else(|| "results".to_string());
        let path = std::path::Path::new(&dir).join(format!("{name}.csv"));
        match write_csv(&path, headers, rows) {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(e) => eprintln!("csv write failed: {e}"),
        }
    }
}

/// The headline checks of §IV, computed from the default model.
pub fn headline_checks() -> Vec<PaperCheck> {
    let comps = all_comparisons();
    let speedups: Vec<f64> = comps
        .iter()
        .map(|(_, c)| c.red().speedup_vs(c.zero_padding()))
        .collect();
    let savings: Vec<f64> = comps
        .iter()
        .map(|(_, c)| c.red().energy_saving_vs(c.zero_padding()))
        .collect();
    let min_s = speedups.iter().copied().fold(f64::INFINITY, f64::min);
    let max_s = speedups.iter().copied().fold(0.0, f64::max);
    let min_e = savings.iter().copied().fold(f64::INFINITY, f64::min);
    let max_e = savings.iter().copied().fold(0.0, f64::max);
    let gan_red_area: Vec<f64> = comps
        .iter()
        .filter(|(b, _)| b.is_gan())
        .map(|(_, c)| c.red().area_overhead_vs(c.zero_padding()))
        .collect();
    let red_area = gan_red_area.iter().sum::<f64>() / gan_red_area.len() as f64;
    let pf_gan_energy = comps
        .iter()
        .filter(|(b, _)| b.is_gan())
        .map(|(_, c)| c.padding_free().total_energy_pj() / c.zero_padding().total_energy_pj())
        .fold(0.0, f64::max);
    let pf_gan_array: Vec<f64> = comps
        .iter()
        .filter(|(b, _)| b.is_gan())
        .map(|(_, c)| c.padding_free().array_energy_pj() / c.zero_padding().array_energy_pj())
        .collect();
    let (pf_arr_min, pf_arr_max) = (
        pf_gan_array.iter().copied().fold(f64::INFINITY, f64::min),
        pf_gan_array.iter().copied().fold(0.0, f64::max),
    );
    let zp_pf: Vec<f64> = comps
        .iter()
        .filter(|(b, _)| b.is_gan())
        .map(|(_, c)| c.zero_padding().total_latency_ns() / c.padding_free().total_latency_ns())
        .collect();
    let (zp_pf_min, zp_pf_max) = (
        zp_pf.iter().copied().fold(f64::INFINITY, f64::min),
        zp_pf.iter().copied().fold(0.0, f64::max),
    );

    vec![
        PaperCheck {
            source: "Fig. 7(a)",
            paper: "RED speedup 3.69x - 31.15x over zero-padding".into(),
            measured: format!("{min_s:.2}x - {max_s:.2}x"),
            in_band: (3.4..=4.0).contains(&min_s) && (29.0..=33.0).contains(&max_s),
        },
        PaperCheck {
            source: "SIV-B1",
            paper: "zero-padding latency 1.55x - 2.62x padding-free (GANs)".into(),
            measured: format!("{zp_pf_min:.2}x - {zp_pf_max:.2}x"),
            in_band: zp_pf_min >= 1.55 && zp_pf_max <= 2.62,
        },
        PaperCheck {
            source: "Fig. 8(a)",
            paper: "RED saves 8% - 88.36% energy vs zero-padding".into(),
            measured: format!("{:.1}% - {:.1}%", min_e * 100.0, max_e * 100.0),
            in_band: (0.05..=0.30).contains(&min_e) && (0.80..=0.97).contains(&max_e),
        },
        PaperCheck {
            source: "SIV-B2",
            paper: "padding-free array energy 4.48x - 7.53x the others (GANs)".into(),
            measured: format!("{pf_arr_min:.2}x - {pf_arr_max:.2}x"),
            in_band: pf_arr_min >= 4.0 && pf_arr_max <= 8.0,
        },
        PaperCheck {
            source: "SIV-B2",
            paper: "padding-free up to 6.68x more total energy on GANs".into(),
            measured: format!("up to {pf_gan_energy:.2}x"),
            in_band: (4.0..=7.5).contains(&pf_gan_energy),
        },
        PaperCheck {
            source: "Fig. 9",
            paper: "RED area overhead ~21.41% (abstract: 22.14%)".into(),
            measured: format!("{:.1}% (GAN layers)", red_area * 100.0),
            in_band: (0.15..=0.30).contains(&red_area),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparisons_cover_all_benchmarks() {
        let c = all_comparisons();
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn headline_checks_all_pass() {
        for check in headline_checks() {
            assert!(
                check.in_band,
                "{}: {} vs {}",
                check.source, check.paper, check.measured
            );
        }
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("line\nbreak\t"), "line\\nbreak\\t");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("| 333 |"));
        assert_eq!(t.lines().count(), 4);
    }
}
