//! End-to-end analyzer acceptance: drive a real chaos serving session
//! through `red-server` with scraping armed, export the Chrome trace,
//! and assert the `analyze` pipeline attributes the alert firing to
//! the planned fault and splits the session into pre-fault / degraded
//! / recovered phases. Mirrors the CI bench-gate attribution smoke.

use red_bench::analyze::{analyze_trace, render};
use red_bench::minijson::parse;
use red_core::prelude::*;
use red_core::workloads::networks;
use red_runtime::ChipBuilder;
use red_server::{
    drive, ChipFleet, FaultPlan, LoadMode, LoadgenConfig, ScrapeConfig, ServerConfig, TenantClass,
    WeightedFair,
};
use red_telemetry::Telemetry;

#[test]
fn analyzer_attributes_alerts_to_the_planned_fault() {
    let stack = networks::dcgan_generator(16).unwrap();
    let chip = ChipBuilder::new()
        .design(Design::red(RedLayoutPolicy::Auto))
        .compile_seeded(&stack, 5, 42)
        .unwrap();
    let fleet = ChipFleet::new(chip, 2).unwrap();
    let crash_at = 2_000_000u64; // 2 ms, on a scrape-window boundary
    let tenants = vec![
        TenantClass::named("interactive")
            .weight(4.0)
            .priority(0)
            .slo_ns(200_000),
        TenantClass::named("standard")
            .weight(2.0)
            .priority(1)
            .slo_ns(800_000),
    ];
    let telemetry = Telemetry::enabled();
    let config = ServerConfig::new()
        .max_batch(8)
        .max_wait_ns(50_000)
        .policy(WeightedFair::new(&tenants, 50_000))
        .model_only()
        .tenants(tenants)
        .fault_plan(FaultPlan::new(3).crash(crash_at, 0, 1))
        .scrape(ScrapeConfig {
            interval_ns: 500_000,
            ..ScrapeConfig::default()
        })
        .telemetry(telemetry.clone());
    let load = LoadgenConfig {
        mode: LoadMode::Open { rps: 400_000.0 },
        clients: 8,
        requests: 2_000,
        horizon_ns: None,
        slo_ns: None,
        seed: 7,
        stream: true,
    };
    let report = drive(&fleet, &config, &load, &[]).expect("chaos load runs");
    assert!(report.reconciles());
    assert_eq!(report.faults_injected, 1);
    assert!(
        !report.alerts.is_empty(),
        "the outage must fire at least one alert rule"
    );

    let trace = telemetry.export_chrome_trace();
    let doc = parse(&trace).expect("exported trace parses");
    let analysis = analyze_trace(&doc).expect("exported trace analyzes");
    assert_eq!(
        analysis.overflow_events, 0,
        "a 2000-request session must fit the flight recorder"
    );

    // The quarantine firing is attributed to a same-partition
    // operational event of the planned crash: the fault itself or the
    // quarantine/reprogram it triggered.
    let fire = analysis
        .alerts
        .iter()
        .find(|a| a.fire && a.rule == "quarantine")
        .expect("the quarantine rule fires in the timeline");
    assert_eq!(fire.partition, 0);
    let cause = &analysis.ops[fire.cause.expect("the firing has a cause")];
    assert_eq!(cause.partition, 0);
    assert!(
        cause.kind == "quarantine" || cause.kind.starts_with("fault") || cause.kind == "reprogram",
        "cause must be the planned crash's event chain, got {:?}",
        cause.kind
    );
    assert!(
        cause.t_ns <= fire.t_ns,
        "attribution must point backwards in time"
    );
    // And the matching resolve edge follows once the repair lands.
    assert!(
        analysis
            .alerts
            .iter()
            .any(|a| !a.fire && a.rule == "quarantine" && a.t_ns > fire.t_ns),
        "the quarantine alert must resolve after the repair"
    );

    // The phase split brackets the planned crash.
    let names: Vec<&str> = analysis.phases.iter().map(|p| p.name).collect();
    assert_eq!(names, ["pre-fault", "degraded", "recovered"]);
    assert_eq!(analysis.phases[0].end_ns, crash_at);
    assert!(analysis.phases[1].end_ns > crash_at);
    let served: u64 = analysis.phases.iter().map(|p| p.served).sum();
    let shed: u64 = analysis.phases.iter().map(|p| p.shed).sum();
    assert_eq!(served, report.served);
    assert_eq!(shed, report.shed);

    // The rendered report carries the attribution annotation verbatim.
    let text = render(&analysis);
    assert!(text.contains("ALERT  quarantine FIRE"));
    assert!(
        text.contains("us after"),
        "the firing line must carry its attribution: {text}"
    );
}
