use crate::{AdcModel, WeightScheme, XbarConfig, XbarError};
use red_device::variation::StuckPolarity;

/// One programmed ReRAM crossbar array.
///
/// Rows correspond to input channels (wordlines), logical columns to
/// filters; each logical column expands into several physical columns of
/// multi-level cells according to the configured [`WeightScheme`].
///
/// Two evaluation paths are provided:
///
/// * [`CrossbarArray::vmm_exact`] — the digital integer reference
///   (`out = Wᵀ x`);
/// * [`CrossbarArray::vmm_analog`] — the full Fig. 1(a) pipeline:
///   bit-serial input phases, per-phase analog column-current summation
///   with dummy-column baseline cancellation, integrate-and-fire
///   conversion, and shift-add recombination.
///
/// With an ideal configuration the two are bit-exact (property-tested);
/// [`CrossbarArray::vmm`] dispatches to the fast exact path when the
/// configuration is ideal and to the analog path otherwise.
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    cfg: XbarConfig,
    rows: usize,
    weight_cols: usize,
    phys_cols: usize,
    /// Reference copy of the programmed weights (digital golden model).
    weights: Vec<i64>,
    /// Per-cell conductance in siemens, row-major `rows x phys_cols`,
    /// including programming variation and stuck-at faults.
    conductance: Vec<f64>,
    g_min: f64,
    g_step: f64,
}

impl CrossbarArray {
    /// Programs an array from a `rows x cols` signed weight matrix.
    ///
    /// Device-to-device variation and stuck-at faults from the
    /// configuration are applied once here, at programming time, exactly
    /// as write-and-verify hardware would freeze them.
    ///
    /// # Errors
    ///
    /// * [`XbarError::BadWeightMatrix`] for an empty or ragged matrix;
    /// * [`XbarError::WeightOutOfRange`] when a weight exceeds
    ///   `±(2^(weight_bits-1) - 1)`.
    pub fn program(cfg: &XbarConfig, weights: &[Vec<i64>]) -> Result<Self, XbarError> {
        let rows = weights.len();
        if rows == 0 {
            return Err(XbarError::BadWeightMatrix("no rows".into()));
        }
        let weight_cols = weights[0].len();
        if weight_cols == 0 {
            return Err(XbarError::BadWeightMatrix("no columns".into()));
        }
        if let Some(bad) = weights.iter().find(|r| r.len() != weight_cols) {
            return Err(XbarError::BadWeightMatrix(format!(
                "ragged row of length {} (expected {weight_cols})",
                bad.len()
            )));
        }
        let bound = cfg.weight_bound();
        let mut flat = Vec::with_capacity(rows * weight_cols);
        for row in weights {
            for &w in row {
                if w.abs() > bound {
                    return Err(XbarError::WeightOutOfRange { value: w, bound });
                }
                flat.push(w);
            }
        }
        Self::program_flat(cfg, rows, weight_cols, flat)
    }

    /// Programs an array from a flat row-major weight buffer.
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::program`]; additionally rejects a buffer
    /// whose length is not `rows * cols`.
    pub fn program_flat(
        cfg: &XbarConfig,
        rows: usize,
        weight_cols: usize,
        weights: Vec<i64>,
    ) -> Result<Self, XbarError> {
        if rows == 0 || weight_cols == 0 {
            return Err(XbarError::BadWeightMatrix("zero dimension".into()));
        }
        if weights.len() != rows * weight_cols {
            return Err(XbarError::BadWeightMatrix(format!(
                "buffer length {} != {rows} x {weight_cols}",
                weights.len()
            )));
        }
        let bound = cfg.weight_bound();
        if let Some(&w) = weights.iter().find(|w| w.abs() > bound) {
            return Err(XbarError::WeightOutOfRange { value: w, bound });
        }

        let slices = cfg.slices();
        let per_weight = cfg.phys_cols_per_weight();
        let phys_cols = weight_cols * per_weight;
        let levels = cfg.cell.levels();
        let g_min = 1.0 / cfg.cell.r_off_ohm;
        let g_max = 1.0 / cfg.cell.r_on_ohm;
        let g_step = (g_max - g_min) / f64::from(levels - 1);
        let bpc = cfg.cell.bits_per_cell;
        let level_mask = u64::from(levels - 1);

        let mut variation = cfg.variation.sampler();
        let mut faults = cfg.faults.sampler();
        // Retention drift scales every programmed filament uniformly (the
        // read circuit's reference levels stay fresh, which is exactly why
        // drifted arrays misread).
        let drift = cfg.drift.factor();
        let mut conductance = vec![0.0f64; rows * phys_cols];

        for r in 0..rows {
            for m in 0..weight_cols {
                let w = weights[r * weight_cols + m];
                for s in 0..slices {
                    let shift = (s as u32) * bpc;
                    match cfg.scheme {
                        WeightScheme::Differential => {
                            let mag = w.unsigned_abs();
                            let code = ((mag >> shift) & level_mask) as u16;
                            let (pos_code, neg_code) = if w >= 0 { (code, 0) } else { (0, code) };
                            let base = r * phys_cols + m * per_weight + 2 * s;
                            conductance[base] = drift
                                * Self::cell_conductance(
                                    pos_code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                            conductance[base + 1] = drift
                                * Self::cell_conductance(
                                    neg_code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                        }
                        WeightScheme::OffsetBinary => {
                            let offset = (w + (1i64 << (cfg.weight_bits - 1))) as u64;
                            let code = ((offset >> shift) & level_mask) as u16;
                            let base = r * phys_cols + m * per_weight + s;
                            conductance[base] = drift
                                * Self::cell_conductance(
                                    code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                        }
                    }
                }
            }
        }

        Ok(Self {
            cfg: *cfg,
            rows,
            weight_cols,
            phys_cols,
            weights,
            conductance,
            g_min,
            g_step,
        })
    }

    fn cell_conductance(
        code: u16,
        g_min: f64,
        g_max: f64,
        g_step: f64,
        variation: &mut red_device::variation::VariationSampler,
        faults: &mut red_device::variation::FaultSampler,
    ) -> f64 {
        let ideal = g_min + g_step * f64::from(code);
        match faults.next_fault() {
            Some(StuckPolarity::StuckOff) => g_min,
            Some(StuckPolarity::StuckOn) => g_max,
            None => ideal * variation.next_factor(),
        }
    }

    /// Input channel (row) count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical weight column (filter) count.
    pub fn weight_cols(&self) -> usize {
        self.weight_cols
    }

    /// Physical column count after bit-slicing and sign encoding.
    pub fn phys_cols(&self) -> usize {
        self.phys_cols
    }

    /// The configuration this array was programmed with.
    pub fn config(&self) -> &XbarConfig {
        &self.cfg
    }

    /// The programmed weight at `(row, col)` (digital reference copy).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn weight(&self, row: usize, col: usize) -> i64 {
        assert!(
            row < self.rows && col < self.weight_cols,
            "index out of bounds"
        );
        self.weights[row * self.weight_cols + col]
    }

    /// Exact digital vector-matrix multiply: `out[m] = Σ_r input[r] * W[r,m]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` (use [`CrossbarArray::vmm_checked`]
    /// for a fallible variant).
    pub fn vmm_exact(&self, input: &[i64]) -> Vec<i64> {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        let mut out = vec![0i64; self.weight_cols];
        for (r, &x) in input.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let row = &self.weights[r * self.weight_cols..(r + 1) * self.weight_cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += x * w;
            }
        }
        out
    }

    /// Vector-matrix multiply through the configured model: the fast exact
    /// path when the configuration is ideal, the full analog pipeline
    /// otherwise (the two are bit-identical in the ideal case, see the
    /// property tests).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn vmm(&self, input: &[i64]) -> Vec<i64> {
        let ideal = self.cfg.adc == AdcModel::Ideal
            && self.cfg.variation.is_ideal()
            && self.cfg.faults.is_none()
            && self.cfg.ir_drop.is_ideal()
            && self.cfg.drift.is_fresh();
        if ideal {
            self.vmm_exact(input)
        } else {
            self.vmm_analog(input)
        }
    }

    /// Fallible wrapper over [`CrossbarArray::vmm`].
    ///
    /// # Errors
    ///
    /// * [`XbarError::InputLengthMismatch`] on a wrong-sized vector;
    /// * [`XbarError::InputOutOfRange`] when a value exceeds
    ///   `±(2^(input_bits-1) - 1)`.
    pub fn vmm_checked(&self, input: &[i64]) -> Result<Vec<i64>, XbarError> {
        if input.len() != self.rows {
            return Err(XbarError::InputLengthMismatch {
                rows: self.rows,
                input: input.len(),
            });
        }
        let bound = self.cfg.input_bound();
        if let Some(&x) = input.iter().find(|x| x.abs() > bound) {
            return Err(XbarError::InputOutOfRange { value: x, bound });
        }
        Ok(self.vmm(input))
    }

    /// Full analog-pipeline simulation: bit-serial input phases, analog
    /// column currents, dummy-column baseline cancellation,
    /// integrate-and-fire conversion, shift-add recombination.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    #[allow(clippy::needless_range_loop)] // strided views; indexing reads clearer
    pub fn vmm_analog(&self, input: &[i64]) -> Vec<i64> {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        let slices = self.cfg.slices();
        let per_weight = self.cfg.phys_cols_per_weight();
        let bpc = self.cfg.cell.bits_per_cell;
        let input_mag_bits = self.cfg.input_bits.saturating_sub(1).max(1);
        let v_read = self.cfg.cell.read_voltage;

        let mut acc = vec![0i128; self.weight_cols];
        let mut col_counts = vec![0i64; self.phys_cols];

        // Two polarity phases per magnitude bit: analog sums cannot carry
        // input signs, so positive-sign and negative-sign rows pulse in
        // separate phases and subtract digitally (standard practice).
        for bit in 0..input_mag_bits {
            for polarity in [1i64, -1i64] {
                let active: Vec<usize> = (0..self.rows)
                    .filter(|&r| {
                        let x = input[r];
                        x.signum() == polarity && (x.unsigned_abs() >> bit) & 1 == 1
                    })
                    .collect();
                if active.is_empty() {
                    continue;
                }
                self.convert_phase(&active, v_read, &mut col_counts);
                let phase_scale = polarity * (1i64 << bit);
                match self.cfg.scheme {
                    WeightScheme::Differential => {
                        for m in 0..self.weight_cols {
                            let mut val = 0i128;
                            for s in 0..slices {
                                let base = m * per_weight + 2 * s;
                                let diff = col_counts[base] - col_counts[base + 1];
                                val += i128::from(diff) << ((s as u32) * bpc);
                            }
                            acc[m] += val * i128::from(phase_scale);
                        }
                    }
                    WeightScheme::OffsetBinary => {
                        // Reference: every active row contributes the fixed
                        // offset 2^(wb-1) in each weight, summed digitally
                        // from the known pulse count (the hardware's dummy
                        // reference column).
                        let offset = i128::from(1i64 << (self.cfg.weight_bits - 1));
                        let ref_sum = offset * active.len() as i128;
                        for m in 0..self.weight_cols {
                            let mut val = 0i128;
                            for s in 0..slices {
                                let base = m * per_weight + s;
                                val += i128::from(col_counts[base]) << ((s as u32) * bpc);
                            }
                            acc[m] += (val - ref_sum) * i128::from(phase_scale);
                        }
                    }
                }
            }
        }

        acc.into_iter()
            .map(|v| i64::try_from(v).expect("accumulator overflow"))
            .collect()
    }

    /// One conversion phase: sums currents of the active rows per physical
    /// column (through the IR-drop model when enabled), cancels the `g_min`
    /// baseline via the dummy column, and quantizes to integer counts per
    /// the ADC model.
    #[allow(clippy::needless_range_loop)] // column stride over a flat matrix
    fn convert_phase(&self, active_rows: &[usize], v_read: f64, counts: &mut [i64]) {
        let ir = &self.cfg.ir_drop;
        // The dummy (baseline) column sits next to the sense amps, so its
        // reference current sees the same droop statistics as a column-0
        // read; first-order, the baseline stays V·g_min per active row.
        let baseline = active_rows.len() as f64 * v_read * self.g_min;
        let lsb = v_read * self.g_step;
        for col in 0..self.phys_cols {
            let mut current = 0.0f64;
            for &r in active_rows {
                let g = self.conductance[r * self.phys_cols + col];
                current += ir.cell_current_a(v_read, g, r, col, self.rows);
            }
            let raw = (current - baseline) / lsb;
            counts[col] = match self.cfg.adc {
                AdcModel::Ideal => raw.round() as i64,
                AdcModel::Saturating { bits } => {
                    let max = (1i64 << bits) - 1;
                    (raw.round() as i64).clamp(0, max)
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_weights(rows: usize, cols: usize) -> Vec<Vec<i64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * 31 + c * 7) as i64 % 255) - 127)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exact_vmm_matches_hand_computation() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(a.vmm_exact(&[5, 6]), vec![5 + 18, 10 + 24]);
    }

    #[test]
    fn analog_matches_exact_differential() {
        let cfg = XbarConfig::ideal();
        let w = ramp_weights(17, 5);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let input: Vec<i64> = (0..17).map(|i| ((i * 13) % 255) as i64 - 127).collect();
        assert_eq!(a.vmm_analog(&input), a.vmm_exact(&input));
    }

    #[test]
    fn analog_matches_exact_offset_binary() {
        let cfg = XbarConfig {
            scheme: WeightScheme::OffsetBinary,
            ..XbarConfig::ideal()
        };
        let w = ramp_weights(11, 4);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let input: Vec<i64> = (0..11).map(|i| ((i * 29) % 200) as i64 - 100).collect();
        assert_eq!(a.vmm_analog(&input), a.vmm_exact(&input));
    }

    #[test]
    fn vmm_dispatches_to_exact_when_ideal() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(4, 3)).unwrap();
        let x = vec![1, -2, 3, -4];
        assert_eq!(a.vmm(&x), a.vmm_exact(&x));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(6, 2)).unwrap();
        assert_eq!(a.vmm_analog(&[0; 6]), vec![0, 0]);
    }

    #[test]
    fn saturating_adc_clips_large_sums() {
        // 64 rows of max weight, max input: per-phase column counts far
        // exceed 3 bits -> saturation must reduce the result magnitude.
        let mut cfg = XbarConfig::ideal();
        cfg.adc = AdcModel::Saturating { bits: 3 };
        let w = vec![vec![127i64]; 64];
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x = vec![127i64; 64];
        let exact: i64 = a.vmm_exact(&x)[0];
        let analog = a.vmm_analog(&x)[0];
        assert!(
            analog < exact,
            "saturated {analog} must be below exact {exact}"
        );
        assert!(analog > 0);
    }

    #[test]
    fn variation_perturbs_but_preserves_scale() {
        let cfg = XbarConfig::noisy(0.02, 0.0, 0.0, 99);
        let w = ramp_weights(32, 4);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x: Vec<i64> = (0..32).map(|i| (i % 100) as i64).collect();
        let exact = a.vmm_exact(&x);
        let noisy = a.vmm(&x);
        for (e, n) in exact.iter().zip(&noisy) {
            let denom = (e.abs().max(100)) as f64;
            assert!(
                ((e - n).abs() as f64) / denom < 0.5,
                "noisy {n} too far from exact {e}"
            );
        }
    }

    #[test]
    fn stuck_off_everything_zeroes_output() {
        let cfg = XbarConfig::noisy(0.0, 1.0, 0.0, 5); // all cells stuck off
        let w = ramp_weights(8, 3);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x = vec![50i64; 8];
        assert_eq!(a.vmm(&x), vec![0, 0, 0]);
    }

    #[test]
    fn weight_out_of_range_rejected() {
        let cfg = XbarConfig::ideal();
        assert!(matches!(
            CrossbarArray::program(&cfg, &[vec![128]]),
            Err(XbarError::WeightOutOfRange {
                value: 128,
                bound: 127
            })
        ));
        assert!(CrossbarArray::program(&cfg, &[vec![-127]]).is_ok());
    }

    #[test]
    fn ragged_and_empty_matrices_rejected() {
        let cfg = XbarConfig::ideal();
        assert!(CrossbarArray::program(&cfg, &[]).is_err());
        assert!(CrossbarArray::program(&cfg, &[vec![]]).is_err());
        assert!(CrossbarArray::program(&cfg, &[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn vmm_checked_validates_input() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(3, 2)).unwrap();
        assert!(matches!(
            a.vmm_checked(&[1, 2]),
            Err(XbarError::InputLengthMismatch { rows: 3, input: 2 })
        ));
        assert!(matches!(
            a.vmm_checked(&[1, 2, 200]),
            Err(XbarError::InputOutOfRange {
                value: 200,
                bound: 127
            })
        ));
        assert!(a.vmm_checked(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn geometry_accessors() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(5, 3)).unwrap();
        assert_eq!(a.rows(), 5);
        assert_eq!(a.weight_cols(), 3);
        assert_eq!(a.phys_cols(), 3 * cfg.phys_cols_per_weight());
        assert_eq!(a.weight(2, 1), (2 * 31 + 7) as i64 - 127);
    }

    #[test]
    fn program_flat_equivalent_to_nested() {
        let cfg = XbarConfig::ideal();
        let nested = ramp_weights(4, 4);
        let flat: Vec<i64> = nested.iter().flatten().copied().collect();
        let a = CrossbarArray::program(&cfg, &nested).unwrap();
        let b = CrossbarArray::program_flat(&cfg, 4, 4, flat).unwrap();
        let x = vec![9, -8, 7, -6];
        assert_eq!(a.vmm_exact(&x), b.vmm_exact(&x));
    }
}
