use crate::{AdcModel, WeightScheme, XbarConfig, XbarError};
use red_device::variation::StuckPolarity;

/// Reusable working memory for the analog VMM pipeline.
///
/// [`CrossbarArray::vmm_analog`] needs three working buffers (the shift-add
/// accumulator, the per-phase column counts, and the active-row list). A
/// scratch owns them so steady-state execution — thousands of VMMs through
/// the same array — performs no per-call heap allocation: the buffers are
/// grown on first use and reused afterwards. One scratch serves arrays of
/// any geometry (buffers are resized per call), so an engine can share a
/// single scratch across all its sub-crossbars.
#[derive(Debug, Clone, Default)]
pub struct VmmScratch {
    acc: Vec<i128>,
    col_counts: Vec<i64>,
    active: Vec<usize>,
}

impl VmmScratch {
    /// Creates an empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// One programmed ReRAM crossbar array.
///
/// Rows correspond to input channels (wordlines), logical columns to
/// filters; each logical column expands into several physical columns of
/// multi-level cells according to the configured [`WeightScheme`].
///
/// Two evaluation paths are provided:
///
/// * [`CrossbarArray::vmm_exact`] — the digital integer reference
///   (`out = Wᵀ x`);
/// * [`CrossbarArray::vmm_analog`] — the full Fig. 1(a) pipeline:
///   bit-serial input phases, per-phase analog column-current summation
///   with dummy-column baseline cancellation, integrate-and-fire
///   conversion, and shift-add recombination.
///
/// With an ideal configuration the two are bit-exact (property-tested);
/// [`CrossbarArray::vmm`] dispatches to the fast exact path when the
/// configuration is ideal and to the analog path otherwise.
#[derive(Debug, Clone)]
pub struct CrossbarArray {
    cfg: XbarConfig,
    rows: usize,
    weight_cols: usize,
    phys_cols: usize,
    /// Reference copy of the programmed weights (digital golden model).
    weights: Vec<i64>,
    /// Per-cell conductance in siemens, row-major `rows x phys_cols`,
    /// including programming variation and stuck-at faults.
    conductance: Vec<f64>,
    g_min: f64,
    g_step: f64,
}

impl CrossbarArray {
    /// Programs an array from a `rows x cols` signed weight matrix.
    ///
    /// Device-to-device variation and stuck-at faults from the
    /// configuration are applied once here, at programming time, exactly
    /// as write-and-verify hardware would freeze them.
    ///
    /// # Errors
    ///
    /// * [`XbarError::BadWeightMatrix`] for an empty or ragged matrix;
    /// * [`XbarError::WeightOutOfRange`] when a weight exceeds
    ///   `±(2^(weight_bits-1) - 1)`.
    pub fn program(cfg: &XbarConfig, weights: &[Vec<i64>]) -> Result<Self, XbarError> {
        let rows = weights.len();
        if rows == 0 {
            return Err(XbarError::BadWeightMatrix("no rows".into()));
        }
        let weight_cols = weights[0].len();
        if weight_cols == 0 {
            return Err(XbarError::BadWeightMatrix("no columns".into()));
        }
        if let Some(bad) = weights.iter().find(|r| r.len() != weight_cols) {
            return Err(XbarError::BadWeightMatrix(format!(
                "ragged row of length {} (expected {weight_cols})",
                bad.len()
            )));
        }
        let bound = cfg.weight_bound();
        let mut flat = Vec::with_capacity(rows * weight_cols);
        for row in weights {
            for &w in row {
                if w.abs() > bound {
                    return Err(XbarError::WeightOutOfRange { value: w, bound });
                }
                flat.push(w);
            }
        }
        Self::program_flat(cfg, rows, weight_cols, flat)
    }

    /// Programs an array from a flat row-major weight buffer.
    ///
    /// # Errors
    ///
    /// Same as [`CrossbarArray::program`]; additionally rejects a buffer
    /// whose length is not `rows * cols`.
    pub fn program_flat(
        cfg: &XbarConfig,
        rows: usize,
        weight_cols: usize,
        weights: Vec<i64>,
    ) -> Result<Self, XbarError> {
        if rows == 0 || weight_cols == 0 {
            return Err(XbarError::BadWeightMatrix("zero dimension".into()));
        }
        if weights.len() != rows * weight_cols {
            return Err(XbarError::BadWeightMatrix(format!(
                "buffer length {} != {rows} x {weight_cols}",
                weights.len()
            )));
        }
        let bound = cfg.weight_bound();
        if let Some(&w) = weights.iter().find(|w| w.abs() > bound) {
            return Err(XbarError::WeightOutOfRange { value: w, bound });
        }

        let slices = cfg.slices();
        let per_weight = cfg.phys_cols_per_weight();
        let phys_cols = weight_cols * per_weight;
        let levels = cfg.cell.levels();
        let g_min = 1.0 / cfg.cell.r_off_ohm;
        let g_max = 1.0 / cfg.cell.r_on_ohm;
        let g_step = (g_max - g_min) / f64::from(levels - 1);
        let bpc = cfg.cell.bits_per_cell;
        let level_mask = u64::from(levels - 1);

        let mut variation = cfg.variation.sampler();
        let mut faults = cfg.faults.sampler();
        // Retention drift scales every programmed filament uniformly (the
        // read circuit's reference levels stay fresh, which is exactly why
        // drifted arrays misread).
        let drift = cfg.drift.factor();
        let mut conductance = vec![0.0f64; rows * phys_cols];

        for r in 0..rows {
            for m in 0..weight_cols {
                let w = weights[r * weight_cols + m];
                for s in 0..slices {
                    let shift = (s as u32) * bpc;
                    match cfg.scheme {
                        WeightScheme::Differential => {
                            let mag = w.unsigned_abs();
                            let code = ((mag >> shift) & level_mask) as u16;
                            let (pos_code, neg_code) = if w >= 0 { (code, 0) } else { (0, code) };
                            let base = r * phys_cols + m * per_weight + 2 * s;
                            conductance[base] = drift
                                * Self::cell_conductance(
                                    pos_code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                            conductance[base + 1] = drift
                                * Self::cell_conductance(
                                    neg_code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                        }
                        WeightScheme::OffsetBinary => {
                            let offset = (w + (1i64 << (cfg.weight_bits - 1))) as u64;
                            let code = ((offset >> shift) & level_mask) as u16;
                            let base = r * phys_cols + m * per_weight + s;
                            conductance[base] = drift
                                * Self::cell_conductance(
                                    code,
                                    g_min,
                                    g_max,
                                    g_step,
                                    &mut variation,
                                    &mut faults,
                                );
                        }
                    }
                }
            }
        }

        Ok(Self {
            cfg: *cfg,
            rows,
            weight_cols,
            phys_cols,
            weights,
            conductance,
            g_min,
            g_step,
        })
    }

    fn cell_conductance(
        code: u16,
        g_min: f64,
        g_max: f64,
        g_step: f64,
        variation: &mut red_device::variation::VariationSampler,
        faults: &mut red_device::variation::FaultSampler,
    ) -> f64 {
        let ideal = g_min + g_step * f64::from(code);
        match faults.next_fault() {
            Some(StuckPolarity::StuckOff) => g_min,
            Some(StuckPolarity::StuckOn) => g_max,
            None => ideal * variation.next_factor(),
        }
    }

    /// Input channel (row) count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical weight column (filter) count.
    pub fn weight_cols(&self) -> usize {
        self.weight_cols
    }

    /// Physical column count after bit-slicing and sign encoding.
    pub fn phys_cols(&self) -> usize {
        self.phys_cols
    }

    /// The configuration this array was programmed with.
    pub fn config(&self) -> &XbarConfig {
        &self.cfg
    }

    /// The programmed weight at `(row, col)` (digital reference copy).
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn weight(&self, row: usize, col: usize) -> i64 {
        assert!(
            row < self.rows && col < self.weight_cols,
            "index out of bounds"
        );
        self.weights[row * self.weight_cols + col]
    }

    /// `true` when the configured model has no non-idealities, i.e.
    /// [`CrossbarArray::vmm`] dispatches to the exact digital path.
    pub fn is_ideal(&self) -> bool {
        self.cfg.adc == AdcModel::Ideal
            && self.cfg.variation.is_ideal()
            && self.cfg.faults.is_none()
            && self.cfg.ir_drop.is_ideal()
            && self.cfg.drift.is_fresh()
    }

    /// `true` when [`CrossbarArray::vmm_batch`] will actually cache-block:
    /// the exact path is available and the weight matrix is too large
    /// (≥ 1 MiB) to stay resident between back-to-back per-input passes.
    /// Engines consult this to decide whether gathering a whole batch
    /// pixel-major — which trades input locality for weight reuse — is
    /// worth it; below the threshold a per-input loop with shared scratch
    /// is faster (measured on the committed baseline host).
    pub fn batching_pays(&self) -> bool {
        const BLOCK_BYTES_MIN: usize = 1 << 20;
        self.is_ideal() && self.weights.len() * std::mem::size_of::<i64>() >= BLOCK_BYTES_MIN
    }

    /// Exact digital vector-matrix multiply: `out[m] = Σ_r input[r] * W[r,m]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` (use [`CrossbarArray::vmm_checked`]
    /// for a fallible variant).
    pub fn vmm_exact(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.weight_cols];
        self.vmm_exact_into(input, &mut out);
        out
    }

    /// Allocation-free [`CrossbarArray::vmm_exact`]: writes the result into
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_exact_into(&self, input: &[i64], out: &mut [i64]) {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        assert_eq!(out.len(), self.weight_cols, "output length must match");
        out.fill(0);
        for (r, &x) in input.iter().enumerate() {
            if x == 0 {
                continue;
            }
            let row = &self.weights[r * self.weight_cols..(r + 1) * self.weight_cols];
            for (o, &w) in out.iter_mut().zip(row) {
                *o += x * w;
            }
        }
    }

    /// Cache-blocked multi-input exact VMM: `n` input vectors, flattened
    /// row-major into `inputs` (`n × rows`), produce `n × weight_cols`
    /// results in `out`.
    ///
    /// When the weight matrix is too large to sit in cache across
    /// back-to-back calls, it is walked in row blocks that stay resident
    /// while every input of the batch consumes them, so weight traffic is
    /// paid once per block instead of once per input; small matrices are
    /// already cache-resident, so they take the straight per-input loop
    /// (blocking would only add loop overhead). Integer accumulation is
    /// order-independent, so the result is bit-identical to `n` calls of
    /// [`CrossbarArray::vmm_exact_into`] either way.
    ///
    /// Non-ideal configurations have no exact path to block; for those the
    /// call falls back to the analog pipeline per input (with shared
    /// scratch), keeping the semantics of [`CrossbarArray::vmm`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != n * rows` or `out.len() != n * weight_cols`.
    pub fn vmm_batch(&self, inputs: &[i64], n: usize, out: &mut [i64]) {
        assert_eq!(inputs.len(), n * self.rows, "inputs must be n x rows");
        assert_eq!(
            out.len(),
            n * self.weight_cols,
            "out must be n x weight_cols"
        );
        if !self.is_ideal() {
            let mut scratch = VmmScratch::new();
            for (input, o) in inputs
                .chunks_exact(self.rows)
                .zip(out.chunks_exact_mut(self.weight_cols))
            {
                self.vmm_analog_into(input, &mut scratch, o);
            }
            return;
        }
        if !self.batching_pays() {
            for (input, o) in inputs
                .chunks_exact(self.rows)
                .zip(out.chunks_exact_mut(self.weight_cols))
            {
                self.vmm_exact_into(input, o);
            }
            return;
        }
        out.fill(0);
        // Row blocking: ~ROW_BLOCK * weight_cols weights stay hot while the
        // whole batch streams over them.
        const ROW_BLOCK: usize = 64;
        let m = self.weight_cols;
        for r0 in (0..self.rows).step_by(ROW_BLOCK) {
            let r1 = (r0 + ROW_BLOCK).min(self.rows);
            let wblock = &self.weights[r0 * m..r1 * m];
            for (input, o) in inputs.chunks_exact(self.rows).zip(out.chunks_exact_mut(m)) {
                for (dr, &x) in input[r0..r1].iter().enumerate() {
                    if x == 0 {
                        continue;
                    }
                    let row = &wblock[dr * m..(dr + 1) * m];
                    for (acc, &w) in o.iter_mut().zip(row) {
                        *acc += x * w;
                    }
                }
            }
        }
    }

    /// Vector-matrix multiply through the configured model: the fast exact
    /// path when the configuration is ideal, the full analog pipeline
    /// otherwise (the two are bit-identical in the ideal case, see the
    /// property tests).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn vmm(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.weight_cols];
        self.vmm_into(input, &mut VmmScratch::new(), &mut out);
        out
    }

    /// Allocation-free [`CrossbarArray::vmm`]: dispatches between
    /// [`CrossbarArray::vmm_exact_into`] and
    /// [`CrossbarArray::vmm_analog_into`], writing the result into `out`.
    /// `scratch` is only touched on the analog path.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    pub fn vmm_into(&self, input: &[i64], scratch: &mut VmmScratch, out: &mut [i64]) {
        if self.is_ideal() {
            self.vmm_exact_into(input, out);
        } else {
            self.vmm_analog_into(input, scratch, out);
        }
    }

    /// Fallible wrapper over [`CrossbarArray::vmm`].
    ///
    /// # Errors
    ///
    /// * [`XbarError::InputLengthMismatch`] on a wrong-sized vector;
    /// * [`XbarError::InputOutOfRange`] when a value exceeds
    ///   `±(2^(input_bits-1) - 1)`.
    pub fn vmm_checked(&self, input: &[i64]) -> Result<Vec<i64>, XbarError> {
        if input.len() != self.rows {
            return Err(XbarError::InputLengthMismatch {
                rows: self.rows,
                input: input.len(),
            });
        }
        let bound = self.cfg.input_bound();
        if let Some(&x) = input.iter().find(|x| x.abs() > bound) {
            return Err(XbarError::InputOutOfRange { value: x, bound });
        }
        Ok(self.vmm(input))
    }

    /// Full analog-pipeline simulation: bit-serial input phases, analog
    /// column currents, dummy-column baseline cancellation,
    /// integrate-and-fire conversion, shift-add recombination.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows`.
    pub fn vmm_analog(&self, input: &[i64]) -> Vec<i64> {
        let mut out = vec![0i64; self.weight_cols];
        self.vmm_analog_into(input, &mut VmmScratch::new(), &mut out);
        out
    }

    /// Allocation-free [`CrossbarArray::vmm_analog`]: the same bit-serial
    /// phase pipeline, with the shift-add accumulator, per-phase column
    /// counts and active-row list living in `scratch` so repeated calls
    /// (one per output pixel, thousands per layer) never touch the heap
    /// once the scratch has warmed up.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() != rows` or `out.len() != weight_cols`.
    #[allow(clippy::needless_range_loop)] // strided views; indexing reads clearer
    pub fn vmm_analog_into(&self, input: &[i64], scratch: &mut VmmScratch, out: &mut [i64]) {
        assert_eq!(input.len(), self.rows, "input length must match rows");
        assert_eq!(out.len(), self.weight_cols, "output length must match");
        let slices = self.cfg.slices();
        let per_weight = self.cfg.phys_cols_per_weight();
        let bpc = self.cfg.cell.bits_per_cell;
        let input_mag_bits = self.cfg.input_bits.saturating_sub(1).max(1);
        let v_read = self.cfg.cell.read_voltage;

        scratch.acc.clear();
        scratch.acc.resize(self.weight_cols, 0i128);
        scratch.col_counts.clear();
        scratch.col_counts.resize(self.phys_cols, 0i64);
        let acc = &mut scratch.acc;
        let col_counts = &mut scratch.col_counts;

        // Two polarity phases per magnitude bit: analog sums cannot carry
        // input signs, so positive-sign and negative-sign rows pulse in
        // separate phases and subtract digitally (standard practice).
        for bit in 0..input_mag_bits {
            for polarity in [1i64, -1i64] {
                scratch.active.clear();
                scratch.active.extend((0..self.rows).filter(|&r| {
                    let x = input[r];
                    x.signum() == polarity && (x.unsigned_abs() >> bit) & 1 == 1
                }));
                let active = &scratch.active;
                if active.is_empty() {
                    continue;
                }
                self.convert_phase(active, v_read, col_counts);
                let phase_scale = polarity * (1i64 << bit);
                match self.cfg.scheme {
                    WeightScheme::Differential => {
                        for m in 0..self.weight_cols {
                            let mut val = 0i128;
                            for s in 0..slices {
                                let base = m * per_weight + 2 * s;
                                let diff = col_counts[base] - col_counts[base + 1];
                                val += i128::from(diff) << ((s as u32) * bpc);
                            }
                            acc[m] += val * i128::from(phase_scale);
                        }
                    }
                    WeightScheme::OffsetBinary => {
                        // Reference: every active row contributes the fixed
                        // offset 2^(wb-1) in each weight, summed digitally
                        // from the known pulse count (the hardware's dummy
                        // reference column).
                        let offset = i128::from(1i64 << (self.cfg.weight_bits - 1));
                        let ref_sum = offset * active.len() as i128;
                        for m in 0..self.weight_cols {
                            let mut val = 0i128;
                            for s in 0..slices {
                                let base = m * per_weight + s;
                                val += i128::from(col_counts[base]) << ((s as u32) * bpc);
                            }
                            acc[m] += (val - ref_sum) * i128::from(phase_scale);
                        }
                    }
                }
            }
        }

        for (o, &v) in out.iter_mut().zip(acc.iter()) {
            *o = i64::try_from(v).expect("accumulator overflow");
        }
    }

    /// One conversion phase: sums currents of the active rows per physical
    /// column (through the IR-drop model when enabled), cancels the `g_min`
    /// baseline via the dummy column, and quantizes to integer counts per
    /// the ADC model.
    #[allow(clippy::needless_range_loop)] // column stride over a flat matrix
    fn convert_phase(&self, active_rows: &[usize], v_read: f64, counts: &mut [i64]) {
        let ir = &self.cfg.ir_drop;
        // The dummy (baseline) column sits next to the sense amps, so its
        // reference current sees the same droop statistics as a column-0
        // read; first-order, the baseline stays V·g_min per active row.
        let baseline = active_rows.len() as f64 * v_read * self.g_min;
        let lsb = v_read * self.g_step;
        for col in 0..self.phys_cols {
            let mut current = 0.0f64;
            for &r in active_rows {
                let g = self.conductance[r * self.phys_cols + col];
                current += ir.cell_current_a(v_read, g, r, col, self.rows);
            }
            let raw = (current - baseline) / lsb;
            counts[col] = match self.cfg.adc {
                AdcModel::Ideal => raw.round() as i64,
                AdcModel::Saturating { bits } => {
                    let max = (1i64 << bits) - 1;
                    (raw.round() as i64).clamp(0, max)
                }
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_weights(rows: usize, cols: usize) -> Vec<Vec<i64>> {
        (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| ((r * 31 + c * 7) as i64 % 255) - 127)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exact_vmm_matches_hand_computation() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &[vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(a.vmm_exact(&[5, 6]), vec![5 + 18, 10 + 24]);
    }

    #[test]
    fn analog_matches_exact_differential() {
        let cfg = XbarConfig::ideal();
        let w = ramp_weights(17, 5);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let input: Vec<i64> = (0..17).map(|i| ((i * 13) % 255) as i64 - 127).collect();
        assert_eq!(a.vmm_analog(&input), a.vmm_exact(&input));
    }

    #[test]
    fn analog_matches_exact_offset_binary() {
        let cfg = XbarConfig {
            scheme: WeightScheme::OffsetBinary,
            ..XbarConfig::ideal()
        };
        let w = ramp_weights(11, 4);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let input: Vec<i64> = (0..11).map(|i| ((i * 29) % 200) as i64 - 100).collect();
        assert_eq!(a.vmm_analog(&input), a.vmm_exact(&input));
    }

    #[test]
    fn vmm_dispatches_to_exact_when_ideal() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(4, 3)).unwrap();
        let x = vec![1, -2, 3, -4];
        assert_eq!(a.vmm(&x), a.vmm_exact(&x));
    }

    #[test]
    fn zero_input_gives_zero_output() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(6, 2)).unwrap();
        assert_eq!(a.vmm_analog(&[0; 6]), vec![0, 0]);
    }

    #[test]
    fn saturating_adc_clips_large_sums() {
        // 64 rows of max weight, max input: per-phase column counts far
        // exceed 3 bits -> saturation must reduce the result magnitude.
        let mut cfg = XbarConfig::ideal();
        cfg.adc = AdcModel::Saturating { bits: 3 };
        let w = vec![vec![127i64]; 64];
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x = vec![127i64; 64];
        let exact: i64 = a.vmm_exact(&x)[0];
        let analog = a.vmm_analog(&x)[0];
        assert!(
            analog < exact,
            "saturated {analog} must be below exact {exact}"
        );
        assert!(analog > 0);
    }

    #[test]
    fn variation_perturbs_but_preserves_scale() {
        let cfg = XbarConfig::noisy(0.02, 0.0, 0.0, 99);
        let w = ramp_weights(32, 4);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x: Vec<i64> = (0..32).map(|i| (i % 100) as i64).collect();
        let exact = a.vmm_exact(&x);
        let noisy = a.vmm(&x);
        for (e, n) in exact.iter().zip(&noisy) {
            let denom = (e.abs().max(100)) as f64;
            assert!(
                ((e - n).abs() as f64) / denom < 0.5,
                "noisy {n} too far from exact {e}"
            );
        }
    }

    #[test]
    fn stuck_off_everything_zeroes_output() {
        let cfg = XbarConfig::noisy(0.0, 1.0, 0.0, 5); // all cells stuck off
        let w = ramp_weights(8, 3);
        let a = CrossbarArray::program(&cfg, &w).unwrap();
        let x = vec![50i64; 8];
        assert_eq!(a.vmm(&x), vec![0, 0, 0]);
    }

    #[test]
    fn weight_out_of_range_rejected() {
        let cfg = XbarConfig::ideal();
        assert!(matches!(
            CrossbarArray::program(&cfg, &[vec![128]]),
            Err(XbarError::WeightOutOfRange {
                value: 128,
                bound: 127
            })
        ));
        assert!(CrossbarArray::program(&cfg, &[vec![-127]]).is_ok());
    }

    #[test]
    fn ragged_and_empty_matrices_rejected() {
        let cfg = XbarConfig::ideal();
        assert!(CrossbarArray::program(&cfg, &[]).is_err());
        assert!(CrossbarArray::program(&cfg, &[vec![]]).is_err());
        assert!(CrossbarArray::program(&cfg, &[vec![1, 2], vec![3]]).is_err());
    }

    #[test]
    fn vmm_checked_validates_input() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(3, 2)).unwrap();
        assert!(matches!(
            a.vmm_checked(&[1, 2]),
            Err(XbarError::InputLengthMismatch { rows: 3, input: 2 })
        ));
        assert!(matches!(
            a.vmm_checked(&[1, 2, 200]),
            Err(XbarError::InputOutOfRange {
                value: 200,
                bound: 127
            })
        ));
        assert!(a.vmm_checked(&[1, 2, 3]).is_ok());
    }

    #[test]
    fn geometry_accessors() {
        let cfg = XbarConfig::ideal();
        let a = CrossbarArray::program(&cfg, &ramp_weights(5, 3)).unwrap();
        assert_eq!(a.rows(), 5);
        assert_eq!(a.weight_cols(), 3);
        assert_eq!(a.phys_cols(), 3 * cfg.phys_cols_per_weight());
        assert_eq!(a.weight(2, 1), (2 * 31 + 7) as i64 - 127);
    }

    #[test]
    fn into_variants_match_allocating_paths() {
        let ideal = XbarConfig::ideal();
        let noisy = XbarConfig::noisy(0.01, 0.002, 0.001, 42);
        for cfg in [ideal, noisy] {
            let a = CrossbarArray::program(&cfg, &ramp_weights(13, 6)).unwrap();
            let x: Vec<i64> = (0..13).map(|i| ((i * 17) % 255) as i64 - 127).collect();
            let mut scratch = VmmScratch::new();
            let mut out = vec![0i64; 6];
            a.vmm_into(&x, &mut scratch, &mut out);
            assert_eq!(out, a.vmm(&x));
            // Scratch reuse across calls with different inputs stays exact.
            let y: Vec<i64> = x.iter().map(|v| -v / 2).collect();
            a.vmm_into(&y, &mut scratch, &mut out);
            assert_eq!(out, a.vmm(&y));
        }
    }

    #[test]
    fn one_scratch_serves_arrays_of_different_geometry() {
        let cfg = XbarConfig::noisy(0.01, 0.0, 0.0, 3);
        let small = CrossbarArray::program(&cfg, &ramp_weights(4, 2)).unwrap();
        let big = CrossbarArray::program(&cfg, &ramp_weights(19, 7)).unwrap();
        let mut scratch = VmmScratch::new();
        let xs: Vec<i64> = (0..4).map(|i| i as i64 - 2).collect();
        let xb: Vec<i64> = (0..19).map(|i| (i * 3) as i64 - 20).collect();
        let mut os = vec![0i64; 2];
        let mut ob = vec![0i64; 7];
        big.vmm_into(&xb, &mut scratch, &mut ob);
        small.vmm_into(&xs, &mut scratch, &mut os);
        assert_eq!(ob, big.vmm(&xb));
        assert_eq!(os, small.vmm(&xs));
    }

    #[test]
    fn vmm_batch_bit_exact_vs_per_input() {
        // Small matrix: the cache-resident per-input path.
        // 2048 x 64 (exactly the 1 MiB blocking threshold): the blocked
        // path, with rows crossing several ROW_BLOCK seams.
        let cfg = XbarConfig::ideal();
        for (rows, cols) in [(150usize, 5usize), (2048, 64)] {
            let a = CrossbarArray::program(&cfg, &ramp_weights(rows, cols)).unwrap();
            let n = 3;
            let inputs: Vec<i64> = (0..n * rows)
                .map(|i| ((i * 31) % 255) as i64 - 127)
                .collect();
            let mut out = vec![0i64; n * cols];
            a.vmm_batch(&inputs, n, &mut out);
            for (k, chunk) in inputs.chunks_exact(rows).enumerate() {
                assert_eq!(
                    &out[k * cols..(k + 1) * cols],
                    a.vmm_exact(chunk),
                    "input {k} of {rows}x{cols}"
                );
            }
        }
    }

    #[test]
    fn vmm_batch_falls_back_to_analog_when_noisy() {
        let cfg = XbarConfig::noisy(0.015, 0.001, 0.0, 9);
        let a = CrossbarArray::program(&cfg, &ramp_weights(24, 4)).unwrap();
        let n = 3;
        let inputs: Vec<i64> = (0..n * 24).map(|i| ((i * 13) % 200) as i64 - 99).collect();
        let mut out = vec![0i64; n * 4];
        a.vmm_batch(&inputs, n, &mut out);
        for (k, chunk) in inputs.chunks_exact(24).enumerate() {
            assert_eq!(&out[k * 4..(k + 1) * 4], a.vmm(chunk), "input {k}");
        }
    }

    #[test]
    fn is_ideal_tracks_configuration() {
        let a = CrossbarArray::program(&XbarConfig::ideal(), &ramp_weights(3, 2)).unwrap();
        assert!(a.is_ideal());
        let noisy =
            CrossbarArray::program(&XbarConfig::noisy(0.02, 0.0, 0.0, 1), &ramp_weights(3, 2))
                .unwrap();
        assert!(!noisy.is_ideal());
    }

    #[test]
    fn program_flat_equivalent_to_nested() {
        let cfg = XbarConfig::ideal();
        let nested = ramp_weights(4, 4);
        let flat: Vec<i64> = nested.iter().flatten().copied().collect();
        let a = CrossbarArray::program(&cfg, &nested).unwrap();
        let b = CrossbarArray::program_flat(&cfg, 4, 4, flat).unwrap();
        let x = vec![9, -8, 7, -6];
        assert_eq!(a.vmm_exact(&x), b.vmm_exact(&x));
    }
}
